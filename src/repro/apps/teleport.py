"""Teleportation demos (Fig. 3): move semantics end to end."""

from __future__ import annotations

from ..qmpi.api import QmpiComm, qmpi_run

__all__ = ["teleport_program", "run_teleport_demo", "relay_program", "run_relay_demo"]


def teleport_program(qc: QmpiComm, theta: float, phi: float):
    """Rank 0 prepares Ry(theta) then Rz(phi) |0> and teleports it to the
    last rank, which reports its |1>-probability."""
    last = qc.size - 1
    if qc.rank == 0:
        q = qc.alloc_qmem(1)
        qc.ry(q[0], theta)
        qc.rz(q[0], phi)
        if last != 0:
            qc.send_move(q, last)
            return None
        return qc.prob_one(q[0])
    if qc.rank == last:
        t = qc.alloc_qmem(1)
        qc.recv_move(t, 0)
        return qc.prob_one(t[0])
    return None


def run_teleport_demo(theta: float = 1.234, phi: float = 0.5, n_ranks: int = 2, seed=0):
    """Returns (received |1>-probability, ledger snapshot)."""
    world = qmpi_run(n_ranks, teleport_program, args=(theta, phi), seed=seed)
    return world.results[n_ranks - 1], world.ledger.snapshot()


def relay_program(qc: QmpiComm, theta: float):
    """Teleport a state along the whole chain of ranks (0 -> 1 -> ... ->
    N-1), one hop at a time: N-1 EPR pairs, 2(N-1) classical bits."""
    if qc.rank == 0:
        q = qc.alloc_qmem(1)
        qc.ry(q[0], theta)
        if qc.size > 1:
            qc.send_move(q, 1)
            return None
        return qc.prob_one(q[0])
    t = qc.alloc_qmem(1)
    qc.recv_move(t, qc.rank - 1)
    if qc.rank < qc.size - 1:
        qc.send_move(t, qc.rank + 1)
        return None
    return qc.prob_one(t[0])


def run_relay_demo(theta: float = 0.777, n_ranks: int = 4, seed=0):
    world = qmpi_run(n_ranks, relay_program, args=(theta,), seed=seed)
    return world.results[n_ranks - 1], world.ledger.snapshot()
