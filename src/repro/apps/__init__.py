"""Distributed quantum applications built on QMPI (§7 of the paper)."""

from . import ghz, parity, qft, teleport, tfim

__all__ = ["teleport", "ghz", "parity", "qft", "tfim"]
