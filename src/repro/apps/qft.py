"""Quantum Fourier transform on a rank's local register.

The QFT is the workhorse subroutine of the paper's §2 algorithm families
(phase estimation, Shor) and a natural stress test for the op-stream
gate path: it is built almost entirely from *diagonal* controlled
phases, which the stream coalesces and the sharded engine applies with
zero communication, plus the final bit-reversal — textbook circuits
spell each reversal swap as 3 CNOTs; here it is the native ``swap`` op
from the GATESET (one op, one strided kernel / pair exchange).
"""

from __future__ import annotations

import math

import numpy as np

from ..qmpi.api import QmpiComm, qmpi_run
from ..qmpi.qubit import as_qureg

__all__ = ["qft", "inverse_qft", "qft_program", "run_qft", "dft_column"]


def qft(qc: QmpiComm, qubits, reverse: bool = True) -> None:
    """Apply the QFT to this rank's ``qubits`` (``qubits[0]`` = MSB).

    ``reverse=True`` (default) finishes with the bit-reversal swaps so
    the output ordering matches the DFT matrix convention; pass False to
    keep the reversed order and fold the permutation into the caller's
    indexing (the usual trick when a full inverse follows).
    """
    qubits = as_qureg(qubits)
    n = len(qubits)
    for i in range(n):
        qc.h(qubits[i])
        for j in range(i + 1, n):
            qc.cphase(qubits[j], qubits[i], math.pi / (1 << (j - i)))
    if reverse:
        for i in range(n // 2):
            qc.swap(qubits[i], qubits[n - 1 - i])


def inverse_qft(qc: QmpiComm, qubits, reverse: bool = True) -> None:
    """Exact inverse circuit of :func:`qft` (conjugate phases, reversed)."""
    qubits = as_qureg(qubits)
    n = len(qubits)
    if reverse:
        for i in range(n // 2):
            qc.swap(qubits[i], qubits[n - 1 - i])
    for i in reversed(range(n)):
        for j in reversed(range(i + 1, n)):
            qc.cphase(qubits[j], qubits[i], -math.pi / (1 << (j - i)))
        qc.h(qubits[i])


def qft_program(qc: QmpiComm, n_qubits: int, value: int) -> list[int]:
    """Each rank QFTs its own ``n_qubits``-qubit register prepared in
    basis state ``|value + rank>`` and returns its qubit ids (tests
    compare the backend state against the DFT matrix column)."""
    q = qc.alloc_qmem(n_qubits)
    x = (value + qc.rank) % (1 << n_qubits)
    for i, qb in enumerate(q):
        if (x >> (n_qubits - 1 - i)) & 1:
            qc.x(qb)
    qft(qc, q)
    qc.barrier()
    return list(q)


def run_qft(n_ranks: int = 1, n_qubits: int = 3, value: int = 1, seed=0, **kwargs):
    """Launch :func:`qft_program`; returns the :class:`QmpiWorld`."""
    return qmpi_run(n_ranks, qft_program, args=(n_qubits, value), seed=seed, **kwargs)


def dft_column(n_qubits: int, x: int) -> np.ndarray:
    """Column ``x`` of the unitary DFT matrix — the analytic reference
    :func:`qft` is checked against (tests, examples)."""
    dim = 1 << n_qubits
    k = np.arange(dim)
    return np.exp(2j * math.pi * k * x / dim) / math.sqrt(dim)


#: Backwards-compatible alias (pre-export name).
_dft_column = dft_column
