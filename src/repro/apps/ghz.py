"""Distributed GHZ/cat states (Fig. 4) as an application."""

from __future__ import annotations

import numpy as np

from ..qmpi.api import QmpiComm, qmpi_run
from ..qmpi.cat import cat_state_chain, cat_state_tree

__all__ = ["ghz_program", "run_ghz", "ghz_fidelity_program"]


def ghz_program(qc: QmpiComm, algorithm: str = "chain"):
    """Every rank contributes one qubit to a shared cat state and then
    measures it; all outcomes must agree."""
    q = qc.alloc_qmem(1)
    if algorithm == "chain":
        cat_state_chain(qc, q[0])
    else:
        cat_state_tree(qc, q[0])
    return qc.measure(q[0])


def run_ghz(n_ranks: int = 4, algorithm: str = "chain", seed=0):
    """Returns the per-rank measurement outcomes (all equal for a cat)."""
    world = qmpi_run(n_ranks, ghz_program, args=(algorithm,), seed=seed)
    return world.results, world.ledger.snapshot()


def ghz_fidelity_program(qc: QmpiComm, algorithm: str = "chain"):
    """Prepare the cat and return this rank's qubit id (fidelity is
    checked against (|0..0>+|1..1>)/sqrt(2) by the caller via the shared
    backend)."""
    q = qc.alloc_qmem(1)
    if algorithm == "chain":
        cat_state_chain(qc, q[0])
    else:
        cat_state_tree(qc, q[0])
    qc.barrier()
    return q[0]


def run_ghz_fidelity(n_ranks: int = 4, algorithm: str = "chain", seed=0) -> float:
    """Fidelity of the prepared state with the ideal cat state."""
    world = qmpi_run(n_ranks, ghz_fidelity_program, args=(algorithm,), seed=seed)
    qubits = list(world.results)
    vec = world.backend.statevector(qubits)
    ideal = np.zeros(2**n_ranks, dtype=complex)
    ideal[0] = ideal[-1] = 1 / np.sqrt(2)
    return float(abs(np.vdot(ideal, vec)) ** 2)
