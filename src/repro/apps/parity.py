"""The three distributed parity-rotation circuits of Fig. 6 as runnable
QMPI programs.

All three implement ``exp(-i t Z_0 Z_1 ... Z_{k-1})`` over one data qubit
per rank; the integration tests verify state equivalence against the
dense ``expm`` reference, and the ledger records the EPR/classical-bit
tradeoffs the paper derives:

=============  =========  ==========================
method         EPR pairs  SENDQ delay
=============  =========  ==========================
in-place       2(k-1)     2 E ceil(log2 k) + D_R
out-of-place   k-1 (*)    E k + D_R
const-depth    k-1 (*)    2 E + D_R
=============  =========  ==========================

(*) with the ancilla colocated on a participating rank (Fig. 7's
convention; a dedicated ancilla node adds one more pair).
"""

from __future__ import annotations

from ..mpi import reduce_ops
from ..qmpi.api import QmpiComm
from ..qmpi.cat import cat_state_chain

__all__ = [
    "distributed_cnot_control",
    "distributed_cnot_target",
    "rotate_parity_inplace",
    "rotate_parity_outofplace",
    "rotate_parity_constdepth",
]


def distributed_cnot_control(qc: QmpiComm, ctrl: int, target_rank: int, tag: int = 0) -> None:
    """Control side of a distributed CNOT: fan the control out, then
    uncompute the remote copy after the target applied its local CNOT."""
    qc.send(ctrl, target_rank, tag)
    qc.unsend(ctrl, target_rank, tag)


def distributed_cnot_target(qc: QmpiComm, target: int, control_rank: int, tag: int = 0) -> None:
    """Target side: receive the control copy, CNOT locally, return it."""
    (copy,) = qc.alloc_qmem(1)
    qc.recv(copy, control_rank, tag)
    qc.cnot(copy, target)
    qc.unrecv(copy, control_rank, tag)


def rotate_parity_inplace(qc: QmpiComm, qubit: int, theta: float, tag: int = 0) -> None:
    """Fig. 6(a): binary-tree in-place parity, Rz on the top rank, then
    the mirrored uncompute. 2(k-1) EPR pairs."""
    size, rank = qc.size, qc.rank
    with qc.ledger.scope("fig6a"):
        ladders = _tree_ladders(size)
        for lo, hi in ladders:
            _dcnot(qc, qubit, rank, lo, hi, tag)
        if rank == size - 1:  # the tree's survivor holds the full parity
            qc.rz(qubit, theta)
        qc.barrier()
        for lo, hi in reversed(ladders):
            _dcnot(qc, qubit, rank, lo, hi, tag + 1)


def _tree_ladders(size: int) -> list[tuple[int, int]]:
    """Pairing schedule: adjacent active ranks merge, higher survives."""
    ladders = []
    active = list(range(size))
    while len(active) > 1:
        nxt = []
        for i in range(0, len(active) - 1, 2):
            ladders.append((active[i], active[i + 1]))
            nxt.append(active[i + 1])
        if len(active) % 2:
            nxt.append(active[-1])
        active = nxt
    return ladders


def _dcnot(qc: QmpiComm, qubit: int, rank: int, lo: int, hi: int, tag: int) -> None:
    if rank == lo:
        distributed_cnot_control(qc, qubit, hi, tag)
    elif rank == hi:
        distributed_cnot_target(qc, qubit, lo, tag)


def rotate_parity_outofplace(qc: QmpiComm, qubit: int, theta: float, aux_rank: int | None = None, tag: int = 0) -> None:
    """Fig. 6(b): serial distributed CNOTs into an ancilla on ``aux_rank``
    (default: the last rank, colocated with its data qubit); uncompute is
    classical-only (X-basis measurement + Z on every data qubit)."""
    size, rank = qc.size, qc.rank
    aux_rank = size - 1 if aux_rank is None else aux_rank
    with qc.ledger.scope("fig6b"):
        anc = None
        if rank == aux_rank:
            (anc,) = qc.alloc_qmem(1)
        for src in range(size):
            if src == aux_rank:
                continue
            if rank == src:
                distributed_cnot_control(qc, qubit, aux_rank, tag)
            elif rank == aux_rank:
                distributed_cnot_target(qc, anc, src, tag)
        m = None
        if rank == aux_rank:
            qc.cnot(qubit, anc)  # own contribution, local
            qc.rz(anc, theta)
            qc.h(anc)
            m = qc.measure_and_release(anc)
        m = qc.comm.bcast(m, root=aux_rank)
        qc.ledger.record_classical(1)
        if m:
            qc.z(qubit)


def rotate_parity_constdepth(qc: QmpiComm, qubit: int, theta: float, tag: int = 0) -> None:
    """Fig. 6(c): constant-depth via a cat state.

    1. cat state across all ranks (k-1 EPR pairs, 2 rounds of E);
    2. CZ(data_i, share_i) on every rank kicks the joint parity into the
       cat's phase;
    3. unfanout the cat onto rank 0's share (X-basis measurements, XOR
       fixup), leaving H|parity>;
    4. rank 0: H, Rz(theta), H, X-basis measurement; broadcast the
       outcome; everyone applies Z to their data qubit on outcome 1.
    """
    rank = qc.rank
    with qc.ledger.scope("fig6c"):
        (share,) = qc.alloc_qmem(1)
        cat_state_chain(qc, share, tag)
        qc.cz(qubit, share)
        if rank != 0:
            qc.h(share)
            m = qc.measure_and_release(share)
        else:
            m = 0
        par = qc.comm.reduce(m, reduce_ops.BXOR, root=0)
        qc.ledger.record_classical(1)
        m2 = None
        if rank == 0:
            if par:
                qc.z(share)
            qc.h(share)  # share now holds |parity>
            qc.rz(share, theta)
            qc.h(share)
            m2 = qc.measure_and_release(share)
        m2 = qc.comm.bcast(m2, root=0)
        qc.ledger.record_classical(1)
        if m2:
            qc.z(qubit)
