"""Distributed transverse-field Ising model evolution — Listing 1.

A line-by-line Python port of the paper's appendix A.2: first-order
Trotter steps of

    H = J sum_<ij> Z_i Z_j - g sum_i X_i

on a ring of ``num_spins_per_rank * size`` spins distributed blockwise,
with the ring-closing ZZ terms crossing node boundaries via QMPI
send/unsend (entangled copies), plus the annealing driver from the
listing's ``main``.
"""

from __future__ import annotations

from ..qmpi.api import QmpiComm, qmpi_run
from ..qmpi.qubit import Qureg

__all__ = ["tfim_time_evolution", "annealing_program", "run_annealing", "tfim_program"]


def tfim_time_evolution(
    qc: QmpiComm,
    J: float,
    g: float,
    time: float,
    qubits: Qureg,
    num_trotter: int,
) -> None:
    """One call = ``tfim_time_evolution`` of Listing 1.

    ``qubits``: this rank's block of spins (global ring order: rank r owns
    spins [r*m, (r+1)*m)). Boundary terms connect each rank's last spin to
    the next rank's first spin; the loop sends spin 0 to ``rank-1`` with
    copy semantics, exactly as the listing does, using the even/odd
    ordering to stay deadlock-free with blocking calls.
    """
    size, rank = qc.size, qc.rank
    m = len(qubits)
    dt = time / num_trotter
    for _ in range(num_trotter):
        # intra-node ZZ terms: exp(-i J dt Z_site Z_site+1)
        for site in range(m - 1):
            qc.cnot(qubits[site], qubits[site + 1])
            qc.rz(qubits[site + 1], 2.0 * J * dt)
            qc.cnot(qubits[site], qubits[site + 1])
        if size == 1:
            # single rank: close the ring locally
            if m > 2:
                qc.cnot(qubits[m - 1], qubits[0])
                qc.rz(qubits[0], 2.0 * J * dt)
                qc.cnot(qubits[m - 1], qubits[0])
        else:
            # ring-boundary terms: spin 0 is fanned out to rank-1, which
            # rotates against its last spin (Listing 1's odd/even split).
            for odd in (0, 1):
                if (rank & 1) == odd:
                    qc.send(qubits[0], (rank - 1 + size) % size, 0)
                    qc.unsend(qubits[0], (rank - 1 + size) % size, 0)
                else:
                    tmp = qc.alloc_qmem(1)
                    qc.recv(tmp, (rank + 1) % size, 0)
                    qc.cnot(qubits[m - 1], tmp[0])
                    qc.rz(tmp[0], 2.0 * J * dt)
                    qc.cnot(qubits[m - 1], tmp[0])
                    qc.unrecv(tmp, (rank + 1) % size, 0)
        # transverse field: exp(+i g dt X_i)
        for site in range(m):
            qc.rx(qubits[site], -2.0 * g * dt)


def annealing_program(
    qc: QmpiComm,
    num_local_spins: int = 2,
    num_annealing_steps: int = 20,
    num_trotter: int = 1,
    time: float = 1.0,
):
    """Listing 1's ``main``: anneal from the transverse-field ground state
    (g=1, J=0) toward the classical Ising model (g=0, J=1), then measure.

    Returns this rank's measurement outcomes; rank 0 additionally gathers
    everyone's results (via classical MPI, as in the listing).
    """
    qubits = qc.alloc_qmem(num_local_spins)
    for q in qubits:
        qc.h(q)  # ground state of -sum X is |+...+>
    for step in range(num_annealing_steps):
        J = step * 1.0 / num_annealing_steps
        g = 1.0 - J
        tfim_time_evolution(qc, J, g, time, qubits, num_trotter)
    res = [qc.measure(q) for q in qubits]
    allres = qc.comm.gather(res, root=0)
    if qc.rank == 0:
        return [b for block in allres for b in block]
    return res


def run_annealing(
    n_ranks: int = 2,
    num_local_spins: int = 2,
    num_annealing_steps: int = 10,
    num_trotter: int = 1,
    time: float = 1.0,
    seed=0,
):
    """Launch the annealing program; returns (global outcomes, ledger)."""
    world = qmpi_run(
        n_ranks,
        annealing_program,
        args=(num_local_spins, num_annealing_steps, num_trotter, time),
        seed=seed,
        timeout=300.0,
    )
    return world.results[0], world.ledger.snapshot()


def tfim_program(qc: QmpiComm, J: float, g: float, time: float, num_local_spins: int, num_trotter: int):
    """Evolve |+...+> under fixed (J, g) and return this rank's qubit ids
    (tests compare the backend state against dense exp(-iHt))."""
    qubits = qc.alloc_qmem(num_local_spins)
    for q in qubits:
        qc.h(q)
    tfim_time_evolution(qc, J, g, time, qubits, num_trotter)
    qc.barrier()
    return list(qubits)
