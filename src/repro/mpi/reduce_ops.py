"""Classical reduction operations for the MPI substrate.

Mirrors the MPI predefined ops. Each op is a binary callable; element-wise
application over sequences/ndarrays is handled by the communicator layer
through plain Python semantics (``+`` on numbers, ``^`` on ints, ...), so
NumPy arrays work transparently via their operator overloads (the guide's
"vectorize, don't loop" rule).
"""

from __future__ import annotations

import operator
from typing import Any, Callable

__all__ = ["SUM", "PROD", "MAX", "MIN", "BAND", "BOR", "BXOR", "LAND", "LOR", "LXOR", "Op"]


class Op:
    """A named, associative binary reduction operator."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any], commutative: bool = True):
        self.name = name
        self.fn = fn
        self.commutative = commutative

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"<Op {self.name}>"


SUM = Op("SUM", operator.add)
PROD = Op("PROD", operator.mul)
MAX = Op("MAX", lambda a, b: _elemwise_max(a, b))
MIN = Op("MIN", lambda a, b: _elemwise_min(a, b))
BAND = Op("BAND", operator.and_)
BOR = Op("BOR", operator.or_)
BXOR = Op("BXOR", operator.xor)
LAND = Op("LAND", lambda a, b: bool(a) and bool(b))
LOR = Op("LOR", lambda a, b: bool(a) or bool(b))
LXOR = Op("LXOR", lambda a, b: bool(a) != bool(b))


def _elemwise_max(a, b):
    try:
        import numpy as np

        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.maximum(a, b)
    except Exception:  # pragma: no cover
        pass
    return max(a, b)


def _elemwise_min(a, b):
    try:
        import numpy as np

        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.minimum(a, b)
    except Exception:  # pragma: no cover
        pass
    return min(a, b)
