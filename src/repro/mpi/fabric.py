"""The message fabric: per-rank mailboxes with MPI matching semantics.

A :class:`Fabric` is shared by all ranks of one SPMD job. Each rank owns a
:class:`Mailbox`; a send deposits an envelope into the destination mailbox
(eager protocol — classical payloads are Python objects, copies are the
caller's concern, as in mpi4py's pickle path). Receives match on
``(context, source, tag)`` with wildcard support in arrival order, which
reproduces MPI's non-overtaking guarantee per (source, tag) pair.

The fabric also carries the abort flag used by the runtime watchdog so
blocked receivers wake up and raise instead of hanging forever.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

from .errors import MpiAbort
from .status import ANY_SOURCE, ANY_TAG

__all__ = ["Envelope", "Mailbox", "Fabric"]


@dataclass
class Envelope:
    """One in-flight message."""

    context: int
    source: int
    dest: int
    tag: int
    payload: Any
    seq: int = field(default=0)

    def matches(self, context: int, source: int, tag: int) -> bool:
        return (
            self.context == context
            and (source == ANY_SOURCE or self.source == source)
            and (tag == ANY_TAG or self.tag == tag)
        )


class Mailbox:
    """A rank's incoming message queue with condition-variable blocking."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: list[Envelope] = []

    def deposit(self, env: Envelope) -> None:
        with self._cond:
            self._queue.append(env)
            self._cond.notify_all()

    def _find(self, context: int, source: int, tag: int) -> Envelope | None:
        for i, env in enumerate(self._queue):
            if env.matches(context, source, tag):
                return self._queue.pop(i)
        return None

    def collect(
        self,
        context: int,
        source: int,
        tag: int,
        abort: threading.Event,
        timeout: float | None = None,
    ) -> Envelope:
        """Block until a matching envelope arrives (or abort/timeout)."""
        deadline = None
        with self._cond:
            while True:
                if abort.is_set():
                    raise MpiAbort("job aborted while waiting for a message")
                env = self._find(context, source, tag)
                if env is not None:
                    return env
                # Poll-wake periodically so the abort flag is observed even
                # if no further messages arrive.
                self._cond.wait(timeout=0.05 if timeout is None else timeout)
                if timeout is not None:
                    if deadline is None:
                        deadline = 0  # single bounded wait already done
                    else:  # pragma: no cover - defensive
                        break
        raise MpiAbort("timed out waiting for a message")  # pragma: no cover

    def peek(self, context: int, source: int, tag: int) -> Envelope | None:
        """Non-destructive probe: the first matching envelope, or None."""
        with self._lock:
            for env in self._queue:
                if env.matches(context, source, tag):
                    return env
            return None

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)


class Fabric:
    """Shared routing state for one SPMD job."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.mailboxes = [Mailbox() for _ in range(n_ranks)]
        self.abort = threading.Event()
        self._seq = itertools.count()
        self._ctx_counter = itertools.count(1)
        self._ctx_lock = threading.Lock()

    def send(self, context: int, source: int, dest: int, tag: int, payload: Any) -> None:
        if self.abort.is_set():
            raise MpiAbort("job aborted")
        if not (0 <= dest < self.n_ranks):
            raise ValueError(f"invalid destination rank {dest}")
        env = Envelope(context, source, dest, tag, payload, next(self._seq))
        self.mailboxes[dest].deposit(env)

    def recv(self, context: int, me: int, source: int, tag: int) -> Envelope:
        return self.mailboxes[me].collect(context, source, tag, self.abort)

    def probe(self, context: int, me: int, source: int, tag: int) -> Envelope | None:
        return self.mailboxes[me].peek(context, source, tag)

    def new_context(self) -> int:
        """A fresh communicator context id (collision-free traffic class).

        Called collectively; all ranks must agree on the id, so the counter
        is only advanced by one designated caller (see Communicator.split).
        """
        with self._ctx_lock:
            return next(self._ctx_counter)
