"""The message fabric: per-rank mailboxes with MPI matching semantics.

A :class:`Fabric` is shared by all ranks of one SPMD job. Each rank owns a
:class:`Mailbox`; a send deposits an envelope into the destination mailbox
(eager protocol — classical payloads are Python objects, copies are the
caller's concern, as in mpi4py's pickle path). Receives match on
``(context, source, tag)`` with wildcard support in arrival order, which
reproduces MPI's non-overtaking guarantee per (source, tag) pair.

The fabric also carries the abort flag used by the runtime watchdog so
blocked receivers wake up and raise instead of hanging forever.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from .errors import MpiAbort, RecvTimeout
from .status import ANY_SOURCE, ANY_TAG

__all__ = ["Envelope", "Mailbox", "Fabric"]


@dataclass
class Envelope:
    """One in-flight message."""

    context: int
    source: int
    dest: int
    tag: int
    payload: Any
    seq: int = field(default=0)

    def matches(self, context: int, source: int, tag: int) -> bool:
        return (
            self.context == context
            and (source == ANY_SOURCE or self.source == source)
            and (tag == ANY_TAG or self.tag == tag)
        )


class Mailbox:
    """A rank's incoming message queue with condition-variable blocking."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: list[Envelope] = []

    def deposit(self, env: Envelope) -> None:
        with self._cond:
            self._queue.append(env)
            self._cond.notify_all()

    def _find(self, context: int, source: int, tag: int) -> Envelope | None:
        for i, env in enumerate(self._queue):
            if env.matches(context, source, tag):
                return self._queue.pop(i)
        return None

    def collect(
        self,
        context: int,
        source: int,
        tag: int,
        abort: threading.Event,
        timeout: float | None = None,
    ) -> Envelope:
        """Block until a matching envelope arrives (or abort/timeout).

        Raises
        ------
        MpiAbort
            If ``abort`` is set while waiting.
        RecvTimeout
            If ``timeout`` seconds (monotonic clock) elapse with no match.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if abort.is_set():
                    raise MpiAbort("job aborted while waiting for a message")
                env = self._find(context, source, tag)
                if env is not None:
                    return env
                # Poll-wake periodically so the abort flag is observed even
                # if no further messages arrive; a caller timeout bounds the
                # whole wait, not one interval (spurious wakeups and stray
                # non-matching traffic must not extend or shorten it).
                interval = 0.05
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RecvTimeout(
                            f"no message matching (context={context}, "
                            f"source={source}, tag={tag}) within {timeout}s"
                        )
                    interval = min(interval, remaining)
                self._cond.wait(timeout=interval)

    def peek(self, context: int, source: int, tag: int) -> Envelope | None:
        """Non-destructive probe: the first matching envelope, or None."""
        with self._lock:
            for env in self._queue:
                if env.matches(context, source, tag):
                    return env
            return None

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)


class Fabric:
    """Shared routing state for one SPMD job."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.mailboxes = [Mailbox() for _ in range(n_ranks)]
        self.abort = threading.Event()
        self._seq = itertools.count()
        self._ctx_counter = itertools.count(1)
        self._ctx_lock = threading.Lock()

    def send(self, context: int, source: int, dest: int, tag: int, payload: Any) -> None:
        if self.abort.is_set():
            raise MpiAbort("job aborted")
        if not (0 <= dest < self.n_ranks):
            raise ValueError(f"invalid destination rank {dest}")
        env = Envelope(context, source, dest, tag, payload, next(self._seq))
        self.mailboxes[dest].deposit(env)

    def recv(
        self,
        context: int,
        me: int,
        source: int,
        tag: int,
        timeout: float | None = None,
    ) -> Envelope:
        return self.mailboxes[me].collect(context, source, tag, self.abort, timeout)

    def probe(self, context: int, me: int, source: int, tag: int) -> Envelope | None:
        return self.mailboxes[me].peek(context, source, tag)

    def new_context(self) -> int:
        """A fresh communicator context id (collision-free traffic class).

        NOT a collective: exactly one designated caller per communicator
        creation advances the counter (rank 0 of the parent communicator in
        ``Communicator.split``) and distributes the ids to the members over
        the fabric. The lock only guards concurrent allocations for
        *different* communicators. ``Communicator.split`` double-checks the
        agreement with a debug-mode allgather.
        """
        with self._ctx_lock:
            return next(self._ctx_counter)
