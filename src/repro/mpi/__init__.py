"""In-process classical MPI substrate.

QMPI (§4.1) "leverages MPI for classical communication"; this package is
that MPI. Ranks are threads, messages are Python objects, semantics follow
the MPI standard (tag/source matching, non-overtaking per peer,
communicator isolation, collective algorithms as in real implementations).

Rank *placement* is pluggable (:mod:`repro.mpi.transport`): ranks run as
threads over the in-memory fabric (``transport="inproc"``, the default)
or as one spawned OS process each with a pipe control plane and a
shared-memory data plane (``transport="mp"``).
"""

from . import reduce_ops
from .comm import Communicator
from .errors import (
    DeadlockError,
    MpiAbort,
    MpiError,
    RankFailure,
    RecvTimeout,
    TransportError,
)
from .fabric import Fabric
from .request import Request, testall, waitall
from .runtime import InprocTransport, run_spmd, world_of
from .status import ANY_SOURCE, ANY_TAG, Status
from .transport import TRANSPORTS, Transport, make_transport, register_transport

__all__ = [
    "Communicator",
    "Fabric",
    "run_spmd",
    "world_of",
    "Status",
    "Request",
    "waitall",
    "testall",
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiError",
    "MpiAbort",
    "DeadlockError",
    "RankFailure",
    "RecvTimeout",
    "TransportError",
    "Transport",
    "TRANSPORTS",
    "make_transport",
    "register_transport",
    "InprocTransport",
    "reduce_ops",
]
