"""In-process classical MPI substrate.

QMPI (§4.1) "leverages MPI for classical communication"; this package is
that MPI. Ranks are threads, messages are Python objects, semantics follow
the MPI standard (tag/source matching, non-overtaking per peer,
communicator isolation, collective algorithms as in real implementations).
"""

from . import reduce_ops
from .comm import Communicator
from .errors import DeadlockError, MpiAbort, MpiError, RankFailure
from .fabric import Fabric
from .request import Request, testall, waitall
from .runtime import run_spmd, world_of
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = [
    "Communicator",
    "Fabric",
    "run_spmd",
    "world_of",
    "Status",
    "Request",
    "waitall",
    "testall",
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiError",
    "MpiAbort",
    "DeadlockError",
    "RankFailure",
    "reduce_ops",
]
