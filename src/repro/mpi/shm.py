"""Shared-memory data plane for cross-process message payloads.

The multi-process transport moves classical control traffic (pickled
:class:`~repro.mpi.fabric.Envelope` headers, protocol bits, RPC frames)
over pipes, but numpy payloads — reduce arrays, amplitude vectors
returned by ``statevector``, anything bulk — should not transit the
pickle path: pickling copies once into the pipe buffer, once out, and
serializes through the router. This codec lifts large ``ndarray``
payloads into :mod:`multiprocessing.shared_memory` blocks and replaces
them with small :class:`ShmBlock` descriptors; the pipe then carries
only the descriptor.

Ownership protocol: the *sender* creates the block and forgets it; the
*receiver* attaches, copies out, and unlinks. All processes of one job
share the parent's resource-tracker daemon (spawn inherits its fd), so
registration is balanced — register on create, unregister on the
receiver's unlink — and a block orphaned by a dead rank is reclaimed by
the tracker at shutdown instead of leaking until reboot.

Arrays are encoded when they are the payload itself or sit one level
inside a ``tuple``/``list`` payload (the shapes classical collectives
produce); anything deeper rides the pickle path unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # platforms without POSIX shared memory fall back to pickling
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic platforms
    _shm = None

__all__ = ["ShmBlock", "SHM_MIN_BYTES", "encode_payload", "decode_payload", "scrub_payload"]

#: Arrays below this many bytes ride the pickle path; at or above it they
#: move through a shared-memory block. Pipes copy twice and serialize
#: through the router thread, so the crossover favors shm early.
SHM_MIN_BYTES = 1 << 14


@dataclass(frozen=True)
class ShmBlock:
    """Descriptor of one numpy array parked in a shared-memory block."""

    name: str
    shape: tuple
    dtype: str

    def attach(self) -> np.ndarray:
        """Copy the array out of the block and release it (receiver side)."""
        seg = _attach(self.name)
        try:
            flat = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=seg.buf)
            out = flat.copy()
        finally:
            seg.close()
            _unlink(seg)
        return out

    def discard(self) -> None:
        """Release the block without reading it (abort/teardown paths)."""
        try:
            seg = _attach(self.name)
        except FileNotFoundError:
            return
        seg.close()
        _unlink(seg)


def _attach(name: str):
    """Attach without re-registering where the runtime allows it."""
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: attach registration is idempotent
        return _shm.SharedMemory(name=name)


def _unlink(seg) -> None:
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already reclaimed
        pass


def _park(arr: np.ndarray) -> ShmBlock:
    arr = np.ascontiguousarray(arr)
    seg = _shm.SharedMemory(create=True, size=max(1, arr.nbytes))
    try:
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
    finally:
        seg.close()
    return ShmBlock(seg.name, tuple(arr.shape), arr.dtype.str)


def _eligible(obj, min_bytes: int) -> bool:
    return (
        isinstance(obj, np.ndarray)
        and obj.nbytes >= min_bytes
        and obj.dtype.hasobject is False
    )


def encode_payload(obj, min_bytes: int = SHM_MIN_BYTES):
    """Replace large arrays in ``obj`` with :class:`ShmBlock` descriptors.

    Handles a bare ``ndarray`` and arrays one level inside a
    ``tuple``/``list``; everything else is returned unchanged. With shared
    memory unavailable the input passes through untouched (pure pickle
    fallback).
    """
    if _shm is None:
        return obj
    if _eligible(obj, min_bytes):
        return _park(obj)
    if isinstance(obj, (tuple, list)) and any(_eligible(x, min_bytes) for x in obj):
        items = [_park(x) if _eligible(x, min_bytes) else x for x in obj]
        return tuple(items) if isinstance(obj, tuple) else items
    return obj


def decode_payload(obj):
    """Inverse of :func:`encode_payload` (receiver side: copy + unlink)."""
    if isinstance(obj, ShmBlock):
        return obj.attach()
    if isinstance(obj, (tuple, list)) and any(isinstance(x, ShmBlock) for x in obj):
        items = [x.attach() if isinstance(x, ShmBlock) else x for x in obj]
        return tuple(items) if isinstance(obj, tuple) else items
    return obj


def scrub_payload(obj) -> None:
    """Release any blocks referenced by an encoded payload that will never
    be decoded (undelivered messages found during teardown)."""
    if isinstance(obj, ShmBlock):
        obj.discard()
    elif isinstance(obj, (tuple, list)):
        for x in obj:
            if isinstance(x, ShmBlock):
                x.discard()
