"""Status objects and wildcard constants (mirrors mpi4py naming)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status"]

#: Wildcard source for receives, as in MPI_ANY_SOURCE.
ANY_SOURCE = -1
#: Wildcard tag for receives, as in MPI_ANY_TAG.
ANY_TAG = -1


@dataclass
class Status:
    """Receive status: where the message actually came from.

    Attributes mirror MPI_Status fields; ``Get_source``/``Get_tag``
    accessors are provided for mpi4py familiarity.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag
