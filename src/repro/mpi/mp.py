"""Multi-process transport: one OS process per rank (spawn context).

Topology — a parent-side router with a star of duplex pipes:

* **control plane** (one pipe per rank): pickled
  :class:`~repro.mpi.fabric.Envelope` headers travel child -> router ->
  destination child; each child deposits deliveries into a local
  :class:`~repro.mpi.fabric.Mailbox`, so the ``(context, source, tag)``
  matching semantics — wildcards, arrival order, non-overtaking per
  (source, tag) — are *exactly* the in-proc fabric's, enforced on the
  remote side.
* **data plane**: numpy payloads at or above ``shm_min_bytes`` move
  through :mod:`multiprocessing.shared_memory` blocks
  (:mod:`repro.mpi.shm`); the pipes carry only small descriptors.
* **service plane** (one pipe per rank): request/reply RPC frames for
  parent-held state — the fabric's context-id counter, and whatever
  ``service`` object the caller provides (the QMPI layer parks the
  quantum backend and EPR rendezvous table there, see
  :mod:`repro.qmpi.service`). Replies are matched by request id, so any
  number of child threads can have calls in flight; asynchronous
  parent -> child pushes arrive as ``notify`` frames on the same pipe.

Lifecycle: spawn -> per-rank ``hello`` handshake -> broadcast ``go`` ->
run -> per-rank ``result``/``error``/``aborted`` -> broadcast ``stop`` ->
join. Robustness the in-proc fabric never needed:

* a rank process that dies without reporting (crash, ``os._exit``,
  ``kill -9``) is detected via its process sentinel and surfaces as a
  :class:`~repro.mpi.errors.TransportError` inside the job's
  :class:`~repro.mpi.errors.RankFailure` — never a hang;
* an error on any rank broadcasts ``abort``: blocked receivers on every
  other rank wake and raise :class:`~repro.mpi.errors.MpiAbort`
  (cross-process abort propagation);
* the wall-clock watchdog converts a wedged job into
  :class:`~repro.mpi.errors.DeadlockError`, terminating stragglers;
* per-recv timeouts (``comm.recv(timeout=...)``) behave identically to
  the in-proc transport (same :class:`Mailbox` path).

The rank function and its arguments cross a process boundary, so they
must be picklable (module-level functions — the standard
``multiprocessing`` contract).
"""

from __future__ import annotations

import itertools
import pickle
import queue
import threading
import time
from multiprocessing import connection as _mpc
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from .comm import Communicator
from .errors import DeadlockError, MpiAbort, RankFailure, TransportError
from .fabric import Envelope, Mailbox
from .shm import SHM_MIN_BYTES, decode_payload, encode_payload, scrub_payload
from .transport import DEFAULT_TIMEOUT, Transport, register_transport

__all__ = ["MpTransport", "MpFabric", "RpcClient"]

#: Grace period for ranks to unwind after an abort broadcast, seconds.
_ABORT_GRACE = 5.0


def _picklable_exc(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return TransportError(f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------
class RpcClient:
    """Child-side endpoint of the service plane.

    ``call`` frames carry a request id so calls from any thread
    interleave safely; a dispatcher thread routes replies to the waiting
    caller and hands ``notify`` frames to a single FIFO executor thread
    (EPR match continuations run there — never on the dispatcher, which
    must stay free to route the replies those continuations' own RPCs
    need).
    """

    def __init__(self, conn, shm_min_bytes: int = SHM_MIN_BYTES):
        self._conn = conn
        self._shm_min_bytes = shm_min_bytes
        self._wlock = threading.Lock()
        self._ids = itertools.count()
        self._pending: dict[int, list] = {}  # rid -> [event, ok, value]
        self._plock = threading.Lock()
        self._lost: BaseException | None = None
        self._notify_handler: Callable[[Any], None] | None = None
        self._notify_q: queue.SimpleQueue = queue.SimpleQueue()
        threading.Thread(
            target=self._dispatch, name="mp-rpc-dispatch", daemon=True
        ).start()
        threading.Thread(
            target=self._run_notifies, name="mp-rpc-notify", daemon=True
        ).start()

    def set_notify_handler(self, fn: Callable[[Any], None]) -> None:
        """Install the handler for parent pushes (runs on the executor
        thread, in arrival order)."""
        self._notify_handler = fn

    def call(self, method: str, *args):
        """Synchronous RPC: returns the parent's result or re-raises its
        exception in this thread."""
        if self._lost is not None:
            raise self._lost
        rid = next(self._ids)
        slot = [threading.Event(), False, None]
        with self._plock:
            self._pending[rid] = slot
        payload = tuple(encode_payload(a, self._shm_min_bytes) for a in args)
        with self._wlock:
            self._conn.send(("call", rid, method, payload))
        slot[0].wait()
        if not slot[1]:
            raise slot[2]
        return decode_payload(slot[2])

    def _dispatch(self) -> None:
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):
                self._lost = TransportError("service connection to parent lost")
                with self._plock:
                    pending, self._pending = self._pending, {}
                for slot in pending.values():
                    slot[1], slot[2] = False, self._lost
                    slot[0].set()
                self._notify_q.put(None)
                return
            kind = msg[0]
            if kind == "reply":
                _, rid, ok, value = msg
                with self._plock:
                    slot = self._pending.pop(rid, None)
                if slot is not None:
                    slot[1], slot[2] = ok, value
                    slot[0].set()
            elif kind == "notify":
                self._notify_q.put(msg[1])

    def _run_notifies(self) -> None:
        while True:
            item = self._notify_q.get()
            if item is None:
                return
            handler = self._notify_handler
            if handler is not None:
                handler(item)


class MpFabric:
    """Child-side fabric endpoint: local mailbox + routed sends.

    Duck-types the :class:`~repro.mpi.fabric.Fabric` surface a
    :class:`~repro.mpi.comm.Communicator` uses (``send``, ``recv``,
    ``probe``, ``new_context``, ``abort``, ``n_ranks``); only this rank's
    mailbox exists locally, everything else is reached through the
    router.
    """

    transport = "mp"

    def __init__(self, rank: int, n_ranks: int, conn, rpc: RpcClient, shm_min_bytes: int):
        self.rank = rank
        self.n_ranks = n_ranks
        self.rpc = rpc
        self.abort = threading.Event()
        self.mailbox = Mailbox()
        self._conn = conn
        self._wlock = threading.Lock()
        self._seq = itertools.count()
        self._shm_min_bytes = shm_min_bytes
        self._stopped = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, name="mp-fabric-reader", daemon=True
        )
        self._reader.start()

    # -- outbound ------------------------------------------------------
    def post(self, frame: tuple) -> None:
        """Write one raw control frame to the router (thread-safe)."""
        with self._wlock:
            self._conn.send(frame)

    def send(self, context: int, source: int, dest: int, tag: int, payload: Any) -> None:
        if self.abort.is_set():
            raise MpiAbort("job aborted")
        if not (0 <= dest < self.n_ranks):
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self.rank:  # self-send: skip the codec and the router
            self.mailbox.deposit(Envelope(context, source, dest, tag, payload, next(self._seq)))
            return
        env = Envelope(
            context, source, dest, tag,
            encode_payload(payload, self._shm_min_bytes), next(self._seq),
        )
        self.post(("msg", env))

    # -- inbound -------------------------------------------------------
    def recv(
        self, context: int, me: int, source: int, tag: int, timeout: float | None = None
    ) -> Envelope:
        return self.mailbox.collect(context, source, tag, self.abort, timeout)

    def probe(self, context: int, me: int, source: int, tag: int) -> Envelope | None:
        return self.mailbox.peek(context, source, tag)

    def new_context(self) -> int:
        """Context ids live in the router so every rank's designated
        caller draws from one counter (see ``Fabric.new_context``)."""
        return self.rpc.call("_ctx_new")

    # -- lifecycle -----------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):  # parent vanished: treat as abort
                self.abort.set()
                self._stopped.set()
                return
            kind = msg[0]
            if kind == "deliver":
                env = msg[1]
                try:
                    env.payload = decode_payload(env.payload)
                except FileNotFoundError:  # block scrubbed during teardown
                    continue
                self.mailbox.deposit(env)
            elif kind == "abort":
                self.abort.set()
            elif kind == "stop":
                self._stopped.set()
                return

    def wait_stop(self, timeout: float = 10.0) -> None:
        self._stopped.wait(timeout)

    def scrub(self) -> None:
        """Release shm blocks of undelivered messages (exit path)."""
        try:
            while self._conn.poll(0):
                msg = self._conn.recv()
                if msg[0] == "deliver":
                    scrub_payload(msg[1].payload)
        except (EOFError, OSError):
            pass


def _child_main(
    rank: int,
    n_ranks: int,
    fab_conn,
    svc_conn,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    shm_min_bytes: int,
) -> None:
    """Entry point of one rank process."""
    fab_conn.send(("hello", rank))
    try:
        first = fab_conn.recv()
    except (EOFError, OSError):
        return
    if first[0] != "go":  # startup aborted before launch
        return
    rpc = RpcClient(svc_conn, shm_min_bytes)
    fabric = MpFabric(rank, n_ranks, fab_conn, rpc, shm_min_bytes)
    comm = Communicator(fabric, context=0, group=tuple(range(n_ranks)), rank=rank)
    try:
        value = fn(comm, *args, **kwargs)
    except MpiAbort:
        # Secondary failure caused by teardown — not the root cause.
        fabric.post(("aborted",))
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        fabric.post(("error", _picklable_exc(exc)))
    else:
        try:
            fabric.post(("result", value))
        except Exception as exc:  # unpicklable return value
            fabric.post(("error", TransportError(f"rank {rank} result does not pickle: {exc}")))
    fabric.wait_stop()
    fabric.scrub()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class MpTransport(Transport):
    """Single-host multi-process transport (spawn context).

    Parameters
    ----------
    shm_min_bytes:
        Data-plane threshold: numpy payloads at or above this many bytes
        cross through shared memory instead of the pickle path. ``0``
        forces every array through shm (useful in tests); a very large
        value disables the data plane.
    """

    name = "mp"
    inprocess = False

    def __init__(self, shm_min_bytes: int = SHM_MIN_BYTES):
        self.shm_min_bytes = int(shm_min_bytes)

    def run_spmd(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        service=None,
    ) -> list[Any]:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        try:
            pickle.dumps((fn, tuple(args), dict(kwargs or {})))
        except Exception as exc:
            raise TransportError(
                "transport='mp' runs ranks in separate processes: the rank "
                "function and its arguments must be picklable (module-level "
                f"function, no closures): {exc}"
            ) from None
        job = _Job(self, n_ranks, fn, tuple(args), dict(kwargs or {}), timeout, service)
        return job.run()


class _Job:
    """One mp SPMD run: spawn, route, collect, tear down."""

    def __init__(self, transport, n_ranks, fn, args, kwargs, timeout, service):
        self.transport = transport
        self.n_ranks = n_ranks
        self.timeout = timeout
        self.service = service
        self.ctx = get_context("spawn")
        self.fab: list = [None] * n_ranks  # parent ends, control plane
        self.svc: list = [None] * n_ranks  # parent ends, service plane
        self.procs: list = []
        self.results: list = [None] * n_ranks
        self.failures: dict[int, BaseException] = {}
        self.done: set[int] = set()
        self.hello: set[int] = set()
        self.launched = False
        self.aborting = False
        self._ctx_counter = itertools.count(1)
        for r in range(n_ranks):
            fp, fc = self.ctx.Pipe()
            sp, sc = self.ctx.Pipe()
            self.fab[r], self.svc[r] = fp, sp
            self.procs.append(
                self.ctx.Process(
                    target=_child_main,
                    args=(r, n_ranks, fc, sc, fn, args, kwargs, transport.shm_min_bytes),
                    name=f"mp-rank-{r}",
                    daemon=True,
                )
            )
        if service is not None and hasattr(service, "bind_notify"):
            service.bind_notify(self._notify)

    # -- parent -> child pushes (router thread only) -------------------
    def _notify(self, rank: int, message) -> None:
        try:
            self.svc[rank].send(("notify", message))
        except (BrokenPipeError, OSError):  # rank died; its failure is
            pass  # surfaced via the sentinel

    def _broadcast(self, frame: tuple, ranks=None) -> None:
        for r in ranks if ranks is not None else range(self.n_ranks):
            try:
                self.fab[r].send(frame)
            except (BrokenPipeError, OSError):
                pass

    # -- inbound frame handlers ----------------------------------------
    def _on_fabric(self, rank: int, msg: tuple) -> None:
        kind = msg[0]
        if kind == "hello":
            self.hello.add(rank)
            if not self.launched and len(self.hello) == self.n_ranks:
                self.launched = True
                self._broadcast(("go",))
        elif kind == "msg":
            env = msg[1]
            if env.dest in self.done:
                scrub_payload(env.payload)  # receiver already gone
            else:
                try:
                    self.fab[env.dest].send(("deliver", env))
                except (BrokenPipeError, OSError):
                    scrub_payload(env.payload)
        elif kind == "result":
            self.results[rank] = msg[1]
            self.done.add(rank)
        elif kind == "aborted":
            self.done.add(rank)
        elif kind == "error":
            self.failures[rank] = msg[1]
            self.done.add(rank)
            self._start_abort()

    def _on_service(self, rank: int, msg: tuple) -> None:
        _, rid, method, payload = msg
        try:
            if method == "_ctx_new":
                result = next(self._ctx_counter)
            elif self.service is None:
                raise TransportError(f"no service bound for RPC {method!r}")
            else:
                args = tuple(decode_payload(a) for a in payload)
                result = self.service.handle(rank, method, *args)
            reply = ("reply", rid, True, encode_payload(result, self.transport.shm_min_bytes))
        except BaseException as exc:  # noqa: BLE001 - re-raised in the child
            reply = ("reply", rid, False, _picklable_exc(exc))
        try:
            self.svc[rank].send(reply)
        except (BrokenPipeError, OSError):
            pass

    def _on_dead(self, rank: int) -> None:
        self.procs[rank].join(0.2)
        code = self.procs[rank].exitcode
        self.failures[rank] = TransportError(
            f"rank {rank} process died (exit code {code}) without reporting a result"
        )
        self.done.add(rank)
        self._start_abort()

    def _start_abort(self) -> None:
        if not self.aborting:
            self.aborting = True
            self._broadcast(("abort",), ranks=(set(range(self.n_ranks)) - self.done))

    # -- main loop ------------------------------------------------------
    def run(self) -> list:
        for p in self.procs:
            p.start()
        # Parent copies of the child pipe ends must close for EOF to mean
        # "process gone" — spawn duplicated them into the children.
        deadline = time.monotonic() + self.timeout
        watchdog_fired = False
        sources: dict = {}
        for r in range(self.n_ranks):
            sources[self.fab[r]] = ("fab", r)
            sources[self.svc[r]] = ("svc", r)
            sources[self.procs[r].sentinel] = ("dead", r)
        try:
            while len(self.done) < self.n_ranks:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if watchdog_fired:
                        break  # grace period exhausted too
                    watchdog_fired = True
                    self._start_abort()
                    deadline = time.monotonic() + _ABORT_GRACE
                    continue
                for obj in _mpc.wait(list(sources), timeout=min(remaining, 0.2)):
                    plane, rank = sources[obj]
                    if plane == "dead":
                        del sources[obj]
                        if rank not in self.done:
                            self._on_dead(rank)
                        continue
                    try:
                        while obj.poll(0):
                            msg = obj.recv()
                            if plane == "fab":
                                self._on_fabric(rank, msg)
                            else:
                                self._on_service(rank, msg)
                    except (EOFError, OSError):
                        del sources[obj]  # sentinel handles the death
        finally:
            self._teardown()
        if self.failures:
            raise RankFailure(self.failures)
        if watchdog_fired:
            stuck = sorted(set(range(self.n_ranks)) - self.done)
            raise DeadlockError(
                f"SPMD job did not finish within {self.timeout}s; "
                f"stuck: {[f'rank-{r}' for r in stuck] or 'none (aborted cleanly)'}"
            )
        return self.results

    def _teardown(self) -> None:
        self._broadcast(("stop",))
        for p in self.procs:
            p.join(2.0)
        for p in self.procs:
            if p.is_alive():
                p.terminate()
                p.join(2.0)
        for conn in (*self.fab, *self.svc):
            # Drain undelivered frames so their shm blocks are released.
            try:
                while conn.poll(0):
                    msg = conn.recv()
                    if msg[0] == "msg":
                        scrub_payload(msg[1].payload)
            except (EOFError, OSError):
                pass
            conn.close()


register_transport(MpTransport.name, MpTransport)
