"""SPMD launcher: runs the same function on N ranks (threads).

This replaces ``mpiexec -n N python script.py`` for the in-process
substrate. Each rank gets its own :class:`~repro.mpi.comm.Communicator`
endpoint of COMM_WORLD; return values are collected per rank, exceptions
propagate to the caller, and a watchdog converts hangs into
:class:`~repro.mpi.errors.DeadlockError` instead of wedging the test
suite.

Example
-------
>>> from repro.mpi import run_spmd
>>> def hello(comm):
...     return comm.allreduce(comm.rank)
>>> run_spmd(4, hello)
[6, 6, 6, 6]
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from .comm import Communicator
from .errors import DeadlockError, MpiAbort, RankFailure
from .fabric import Fabric

__all__ = ["run_spmd", "world_of"]

#: Default wall-clock budget for one SPMD job, seconds.
DEFAULT_TIMEOUT = 120.0


def world_of(fabric: Fabric, rank: int) -> Communicator:
    """COMM_WORLD endpoint for ``rank`` on ``fabric`` (context 0)."""
    return Communicator(fabric, context=0, group=tuple(range(fabric.n_ranks)), rank=rank)


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``n_ranks`` concurrent ranks.

    Returns the per-rank return values, in rank order.

    Raises
    ------
    RankFailure
        If any rank raised; carries all per-rank exceptions.
    DeadlockError
        If ranks are still blocked after ``timeout`` seconds.
    """
    kwargs = dict(kwargs or {})
    fabric = Fabric(n_ranks)
    results: list[Any] = [None] * n_ranks
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def body(rank: int) -> None:
        comm = world_of(fabric, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except MpiAbort:
            # Secondary failure caused by teardown — not the root cause.
            pass
        except BaseException as exc:  # noqa: BLE001 - collected and re-raised
            with failures_lock:
                failures[rank] = exc
            fabric.abort.set()

    threads = [
        threading.Thread(target=body, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    deadline = threading.Event()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            deadline.set()
            break
    if deadline.is_set():
        fabric.abort.set()
        for t in threads:
            t.join(5.0)
        if failures:
            raise RankFailure(failures)
        stuck = [t.name for t in threads if t.is_alive()]
        raise DeadlockError(
            f"SPMD job did not finish within {timeout}s; stuck: {stuck or 'none (aborted cleanly)'}"
        )
    if failures:
        raise RankFailure(failures)
    return results
