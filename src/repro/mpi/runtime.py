"""SPMD launcher: runs the same function on N ranks.

This replaces ``mpiexec -n N python script.py``. Each rank gets its own
:class:`~repro.mpi.comm.Communicator` endpoint of COMM_WORLD; return
values are collected per rank, exceptions propagate to the caller, and a
watchdog converts hangs into :class:`~repro.mpi.errors.DeadlockError`
instead of wedging the test suite.

Rank placement is a transport policy (see :mod:`repro.mpi.transport`):
``transport="inproc"`` (default) runs ranks as threads over the
in-memory mailbox fabric; ``transport="mp"`` spawns one OS process per
rank with a pipe control plane and a shared-memory data plane. Process
transports pickle the rank function and its arguments, so both must be
importable module-level objects, exactly as with ``multiprocessing``.

Example
-------
>>> from repro.mpi import run_spmd
>>> def hello(comm):
...     return comm.allreduce(comm.rank)
>>> run_spmd(4, hello)
[6, 6, 6, 6]
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from .comm import Communicator
from .errors import DeadlockError, MpiAbort, RankFailure
from .fabric import Fabric
from .transport import DEFAULT_TIMEOUT, Transport, make_transport, register_transport

__all__ = ["run_spmd", "world_of", "InprocTransport", "DEFAULT_TIMEOUT"]


def world_of(fabric, rank: int) -> Communicator:
    """COMM_WORLD endpoint for ``rank`` on ``fabric`` (context 0)."""
    return Communicator(fabric, context=0, group=tuple(range(fabric.n_ranks)), rank=rank)


class InprocTransport(Transport):
    """Ranks as daemon threads over one in-memory mailbox fabric.

    The zero-copy default: payloads are shared Python objects, the
    quantum backend is reachable by reference, and there are no pickling
    constraints on the rank function. All ranks contend for one GIL, so
    classical rank work never scales with rank count here — that is what
    ``transport="mp"`` is for.
    """

    name = "inproc"
    inprocess = True

    def run_spmd(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        service=None,
    ) -> list[Any]:
        kwargs = dict(kwargs or {})
        fabric = Fabric(n_ranks)
        results: list[Any] = [None] * n_ranks
        failures: dict[int, BaseException] = {}
        failures_lock = threading.Lock()

        def body(rank: int) -> None:
            comm = world_of(fabric, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except MpiAbort:
                # Secondary failure caused by teardown — not the root cause.
                pass
            except BaseException as exc:  # noqa: BLE001 - collected and re-raised
                with failures_lock:
                    failures[rank] = exc
                fabric.abort.set()

        threads = [
            threading.Thread(target=body, args=(r,), name=f"rank-{r}", daemon=True)
            for r in range(n_ranks)
        ]
        for t in threads:
            t.start()
        deadline = threading.Event()
        for t in threads:
            t.join(timeout)
            if t.is_alive():
                deadline.set()
                break
        if deadline.is_set():
            fabric.abort.set()
            for t in threads:
                t.join(5.0)
            if failures:
                raise RankFailure(failures)
            stuck = [t.name for t in threads if t.is_alive()]
            raise DeadlockError(
                f"SPMD job did not finish within {timeout}s; "
                f"stuck: {stuck or 'none (aborted cleanly)'}"
            )
        if failures:
            raise RankFailure(failures)
        return results


register_transport(InprocTransport.name, InprocTransport)


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    transport: "str | type[Transport] | Transport" = "inproc",
    service=None,
    **transport_opts,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``n_ranks`` concurrent ranks.

    Returns the per-rank return values, in rank order.

    Parameters
    ----------
    transport:
        Rank placement: ``"inproc"`` (threads, the default), ``"mp"``
        (one spawned process per rank), a :class:`Transport` class, or a
        prebuilt instance. See :mod:`repro.mpi.transport`.
    service:
        Optional parent-side RPC endpoint for process transports (see
        the service hook protocol in :mod:`repro.mpi.transport`).
    **transport_opts:
        Constructor options for a name/class transport spec, e.g.
        ``run_spmd(..., transport="mp", shm_min_bytes=0)``.

    Raises
    ------
    RankFailure
        If any rank raised; carries all per-rank exceptions. A rank
        process that dies without reporting (crash, ``os._exit``, kill)
        surfaces here as a :class:`~repro.mpi.errors.TransportError`.
    DeadlockError
        If ranks are still blocked after ``timeout`` seconds.
    """
    t = make_transport(transport, **transport_opts)
    return t.run_spmd(n_ranks, fn, args, kwargs, timeout, service=service)
