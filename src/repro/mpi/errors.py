"""Error types for the classical MPI substrate (all transports)."""

from __future__ import annotations

__all__ = [
    "MpiError",
    "MpiAbort",
    "DeadlockError",
    "RankFailure",
    "RecvTimeout",
    "TransportError",
]


class MpiError(RuntimeError):
    """Base class for message-passing errors."""


class MpiAbort(MpiError):
    """Raised inside ranks when the job is being torn down (another rank
    failed or the watchdog fired). Mirrors ``MPI_Abort`` semantics."""


class RecvTimeout(MpiError):
    """A ``timeout=``-bounded receive found no matching message in time."""


class TransportError(MpiError):
    """A transport-level failure: lost connection, handshake failure, or a
    rank process that died without reporting a result."""


class DeadlockError(MpiError):
    """Raised by the runtime watchdog when ranks are blocked past the
    timeout — the in-process equivalent of a hung MPI job."""


class RankFailure(MpiError):
    """Aggregates exceptions raised inside SPMD rank functions."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        lines = [f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(failures.items())]
        super().__init__("SPMD rank failure(s):\n  " + "\n  ".join(lines))
