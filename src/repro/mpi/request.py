"""Non-blocking communication requests.

The fabric uses an eager protocol, so sends buffer immediately and
``isend`` completes at call time. ``irecv`` returns a request whose
``wait`` performs the matching receive; ``test`` uses a non-destructive
probe first so it never blocks. This preserves the observable semantics a
QMPI program relies on (overlap of EPR preparation with local compute).
"""

from __future__ import annotations

from typing import Any

from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["Request", "SendRequest", "RecvRequest", "waitall", "testall"]


class Request:
    """Base request; subclasses implement wait/test."""

    def wait(self, status: Status | None = None) -> Any:
        raise NotImplementedError

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        raise NotImplementedError

    def cancel(self) -> None:
        """Mark the request cancelled (QMPI_Cancel note (b) of Table 2:
        resources may already have been used)."""
        self._cancelled = True


class SendRequest(Request):
    """Eager send: already complete when constructed."""

    def __init__(self) -> None:
        self._cancelled = False

    def wait(self, status: Status | None = None) -> None:
        return None

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        return True, None


class RecvRequest(Request):
    """Deferred receive bound to (comm, source, tag)."""

    def __init__(self, comm, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None
        self._status = Status()
        self._cancelled = False

    def wait(self, status: Status | None = None) -> Any:
        if not self._done:
            self._value = self._comm.recv(
                source=self._source, tag=self._tag, status=self._status
            )
            self._done = True
        if status is not None:
            status.source = self._status.source
            status.tag = self._status.tag
        return self._value

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        if self._done:
            if status is not None:
                status.source, status.tag = self._status.source, self._status.tag
            return True, self._value
        if self._comm.iprobe(source=self._source, tag=self._tag):
            return True, self.wait(status)
        return False, None


def waitall(requests: list[Request]) -> list[Any]:
    """Wait for all requests; returns their values in order."""
    return [r.wait() for r in requests]


def testall(requests: list[Request]) -> bool:
    """True iff every request can complete without blocking (completes
    those that can)."""
    return all(r.test()[0] for r in requests)
