"""Communicators: point-to-point and collective operations.

API follows mpi4py's lowercase object-passing conventions (the domain
guide's idiom): ``comm.send(obj, dest=1, tag=0)``, ``obj = comm.recv()``,
``comm.bcast(obj, root=0)`` etc. Each SPMD rank holds its own
:class:`Communicator` instance; instances of one communicator share a
context id on the fabric so traffic never crosses communicators.

Collective algorithms
---------------------
* ``bcast``/``reduce`` — binomial trees (O(log N) rounds, as real MPI).
* ``scan``/``exscan`` — distance-doubling (Hillis–Steele), the O(log N)
  parallel prefix the paper's §7.1 relies on for the cat-state fixups
  (Sanders & Träff [45]).
* ``barrier`` — dissemination.
* ``gather``/``scatter``/``alltoall`` — direct, fine at in-process scale.

Collective calls draw tags from a reserved negative tag space using a
per-communicator call counter; since collectives are invoked in the same
order on every rank, counters agree without extra synchronization. User
tags must be non-negative, as in MPI.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .errors import MpiError
from .fabric import Fabric
from .reduce_ops import SUM, Op
from .request import RecvRequest, Request, SendRequest
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["Communicator"]

# Tags below this value are reserved for collectives (ANY_TAG is -1).
_COLL_TAG_BASE = -2


class Communicator:
    """One rank's endpoint of a communicator.

    Parameters
    ----------
    fabric:
        Shared :class:`~repro.mpi.fabric.Fabric`.
    context:
        Traffic class; all instances of one communicator share it.
    group:
        Tuple of world ranks in this communicator, index = group rank.
    rank:
        This process's group rank.
    """

    def __init__(self, fabric: Fabric, context: int, group: Sequence[int], rank: int):
        self.fabric = fabric
        self.context = context
        self.group = tuple(group)
        self._rank = rank
        self._coll_calls = 0
        if not (0 <= rank < len(self.group)):
            raise MpiError(f"rank {rank} outside group of size {len(self.group)}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self.group)

    def Get_rank(self) -> int:  # mpi4py-style alias
        return self._rank

    def Get_size(self) -> int:  # mpi4py-style alias
        return self.size

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def _check_tag(self, tag: int) -> None:
        if tag < 0:
            raise MpiError("user tags must be non-negative")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send (eager: buffers and returns)."""
        self._check_tag(tag)
        self._send_raw(obj, dest, tag)

    def _send_raw(self, obj: Any, dest: int, tag: int) -> None:
        if not (0 <= dest < self.size):
            raise MpiError(f"invalid destination rank {dest} (size {self.size})")
        self.fabric.send(self.context, self._rank, self.group[dest], tag, obj)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Blocking receive; returns the payload object.

        ``timeout`` bounds the wait (monotonic seconds); on expiry a
        :class:`~repro.mpi.errors.RecvTimeout` is raised and no message is
        consumed.
        """
        env = self.fabric.recv(
            self.context, self.group[self._rank], source, tag, timeout=timeout
        )
        if status is not None:
            status.source = env.source
            status.tag = env.tag
        return env.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (completes immediately under eager protocol)."""
        self.send(obj, dest, tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; match happens at wait/test time."""
        return RecvRequest(self, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already available."""
        return (
            self.fabric.probe(self.context, self.group[self._rank], source, tag)
            is not None
        )

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; returns its Status."""
        # Spin on iprobe with the fabric's abort handling via recv of a
        # dedicated poll — simplest correct approach: block in collect and
        # re-deposit. To avoid re-ordering we poll.
        import time

        while True:
            env = self.fabric.probe(self.context, self.group[self._rank], source, tag)
            if env is not None:
                return Status(source=env.source, tag=env.tag)
            if self.fabric.abort.is_set():
                from .errors import MpiAbort

                raise MpiAbort("job aborted while probing")
            time.sleep(0.0005)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        """Combined send+receive (deadlock-free under eager sends)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag, status)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _coll_tag(self) -> int:
        tag = _COLL_TAG_BASE - self._coll_calls
        self._coll_calls += 1
        return tag

    def barrier(self) -> None:
        """Dissemination barrier (O(log N) rounds)."""
        tag = self._coll_tag()
        n, r = self.size, self._rank
        dist = 1
        while dist < n:
            self._send_raw(None, (r + dist) % n, tag)
            env = self.fabric.recv(
                self.context, self.group[r], (r - dist) % n, tag
            )
            assert env.payload is None
            dist <<= 1

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the root's object on all ranks."""
        tag = self._coll_tag()
        n = self.size
        rel = (self._rank - root) % n
        mask = 1
        while mask < n:
            if rel < mask:
                peer = rel + mask
                if peer < n:
                    self._send_raw(obj, (peer + root) % n, tag)
            elif rel < 2 * mask:
                env = self.fabric.recv(
                    self.context,
                    self.group[self._rank],
                    ((rel - mask) + root) % n,
                    tag,
                )
                obj = env.payload
            mask <<= 1
        return obj

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank to ``root`` (rank order)."""
        tag = self._coll_tag()
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                st = Status()
                env = self.fabric.recv(
                    self.context, self.group[self._rank], ANY_SOURCE, tag
                )
                out[env.source] = env.payload
            return out
        self._send_raw(obj, root, tag)
        return None

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a length-``size`` sequence from root; returns own item."""
        tag = self._coll_tag()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise MpiError("scatter requires a sequence of length == size on root")
            for dst in range(self.size):
                if dst != root:
                    self._send_raw(objs[dst], dst, tag)
            return objs[root]
        env = self.fabric.recv(self.context, self.group[self._rank], root, tag)
        return env.payload

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to rank 0 then broadcast (returns full list everywhere)."""
        data = self.gather(obj, root=0)
        return self.bcast(data, root=0)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: rank i's ``objs[j]`` goes to rank j."""
        tag = self._coll_tag()
        if len(objs) != self.size:
            raise MpiError("alltoall requires one object per destination rank")
        for dst in range(self.size):
            if dst != self._rank:
                self._send_raw(objs[dst], dst, tag)
        out: list[Any] = [None] * self.size
        out[self._rank] = objs[self._rank]
        for _ in range(self.size - 1):
            env = self.fabric.recv(self.context, self.group[self._rank], ANY_SOURCE, tag)
            out[env.source] = env.payload
        return out

    def reduce(self, obj: Any, op: Op | Callable = SUM, root: int = 0) -> Any:
        """Binomial-tree reduction to ``root`` (rank-ordered combination)."""
        tag = self._coll_tag()
        n = self.size
        rel = (self._rank - root) % n
        acc = obj
        mask = 1
        while mask < n:
            if rel & mask:
                self._send_raw(acc, ((rel - mask) + root) % n, tag)
                break
            peer = rel + mask
            if peer < n:
                env = self.fabric.recv(
                    self.context, self.group[self._rank], (peer + root) % n, tag
                )
                acc = op(acc, env.payload)
            mask <<= 1
        return acc if self._rank == root else None

    def allreduce(self, obj: Any, op: Op | Callable = SUM) -> Any:
        """Reduce to rank 0 then broadcast."""
        val = self.reduce(obj, op, root=0)
        return self.bcast(val, root=0)

    def scan(self, obj: Any, op: Op | Callable = SUM) -> Any:
        """Inclusive prefix reduction, distance-doubling (O(log N) rounds)."""
        tag = self._coll_tag()
        n, r = self.size, self._rank
        prefix = obj
        dist = 1
        while dist < n:
            if r + dist < n:
                self._send_raw(prefix, r + dist, tag)
            if r - dist >= 0:
                env = self.fabric.recv(self.context, self.group[r], r - dist, tag)
                prefix = op(env.payload, prefix)
            dist <<= 1
        return prefix

    def exscan(self, obj: Any, op: Op | Callable = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``.

        This is the classical collective used to compute the cat-state
        fixup parities in §7.1 / Fig. 4.
        """
        inclusive = self.scan(obj, op)
        tag = self._coll_tag()
        n, r = self.size, self._rank
        if r + 1 < n:
            self._send_raw(inclusive, r + 1, tag)
        if r == 0:
            return None
        env = self.fabric.recv(self.context, self.group[r], r - 1, tag)
        return env.payload

    def reduce_scatter(self, objs: Sequence[Any], op: Op | Callable = SUM) -> Any:
        """Element-wise reduce of per-destination lists; rank j gets the
        reduction of all ranks' ``objs[j]``."""
        received = self.alltoall(list(objs))
        acc = received[0]
        for item in received[1:]:
            acc = op(acc, item)
        return acc

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Partition into sub-communicators by ``color``; order by ``key``.

        ``color=None`` (MPI_UNDEFINED) yields no communicator for this rank.
        """
        key = self._rank if key is None else key
        triples = self.allgather((color, key, self._rank))
        # Rank 0 of the parent allocates fresh contexts, one per color, so
        # all members agree.
        colors = sorted({c for c, _, _ in triples if c is not None})
        if self._rank == 0:
            ctxs = {c: self.fabric.new_context() for c in colors}
        else:
            ctxs = None
        ctxs = self.bcast(ctxs, root=0)
        if __debug__:
            # new_context is issued by one designated caller (rank 0, above)
            # and distributed by bcast; verify every member actually received
            # the same context table, so a misuse of Fabric.new_context (two
            # ranks advancing the counter independently) fails loudly here
            # instead of as silent traffic crosstalk.
            agreed = self.allgather(ctxs)
            assert all(view == ctxs for view in agreed), (
                "communicator split disagreed on context ids: "
                f"{agreed!r} (Fabric.new_context must only be advanced by "
                "the designated caller)"
            )
        if color is None:
            return None
        members = sorted(
            [(k, r) for c, k, r in triples if c == color],
        )
        group = tuple(self.group[r] for _, r in members)
        my_new_rank = [r for _, r in members].index(self._rank)
        return Communicator(self.fabric, ctxs[color], group, my_new_rank)

    def dup(self) -> "Communicator":
        """Duplicate: same group, fresh context (isolated traffic)."""
        out = self.split(color=0, key=self._rank)
        assert out is not None
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Communicator ctx={self.context} rank={self._rank}/{self.size} "
            f"group={self.group}>"
        )
