"""Transport registry: how the ranks of one SPMD job are placed and wired.

The :class:`~repro.mpi.fabric.Fabric` gives ranks MPI matching semantics;
a *transport* decides where the ranks live and how envelopes travel:

* ``"inproc"`` — today's substrate: ranks are threads of the calling
  process sharing an in-memory mailbox fabric
  (:class:`~repro.mpi.runtime.InprocTransport`). Zero-copy, GIL-bound.
* ``"mp"`` — one OS process per rank (spawn context): a pipe control
  plane carries pickled envelopes through a parent router that preserves
  the ``(context, source, tag)`` matching semantics on the remote side,
  and a :mod:`multiprocessing.shared_memory` data plane moves numpy
  payloads without transiting the pickle path
  (:class:`~repro.mpi.mp.MpTransport`).

The registry mirrors the backend registry
(:data:`repro.qmpi.backend.BACKENDS`): select by name through
``run_spmd(..., transport=...)`` / ``qmpi_run(..., transport=...)``, or
register your own with :func:`register_transport`.

Service hook
------------
Process transports cannot share parent objects with the ranks, so
``run_spmd`` accepts an optional ``service``: a parent-side object with
``handle(rank, method, *args) -> result`` called synchronously for each
rank RPC, and (optionally) ``bind_notify(fn)`` receiving a
``notify(rank, message)`` function for asynchronous parent->rank pushes.
The QMPI layer uses this to keep the quantum backend and EPR rendezvous
table in the parent — the paper's §6 "forward to rank 0" discipline,
made literal across process boundaries.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = ["Transport", "TRANSPORTS", "register_transport", "make_transport"]

#: Default wall-clock budget for one SPMD job, seconds (all transports).
DEFAULT_TIMEOUT = 120.0


class Transport:
    """One rank-placement policy. Subclasses implement :meth:`run_spmd`."""

    #: Registry name of the transport.
    name: str = "?"
    #: True when ranks share the caller's address space (objects can be
    #: handed to rank functions directly; no pickling constraints).
    inprocess: bool = True

    def run_spmd(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        service=None,
    ) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on ``n_ranks`` ranks.

        Returns per-rank results in rank order; raises
        :class:`~repro.mpi.errors.RankFailure` /
        :class:`~repro.mpi.errors.DeadlockError` exactly like
        :func:`repro.mpi.runtime.run_spmd`.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: Name -> transport class; extend with :func:`register_transport`.
TRANSPORTS: dict[str, type[Transport]] = {}


def register_transport(name: str, cls: type[Transport]) -> None:
    """Register a transport class under ``name`` for :func:`make_transport`."""
    TRANSPORTS[name] = cls


def _ensure_builtin_registration() -> None:
    # The built-in transports live next to their machinery (runtime.py,
    # mp.py) and self-register on import; import lazily to avoid a cycle
    # (runtime imports this module for the registry).
    from . import mp as _mp  # noqa: F401
    from . import runtime as _runtime  # noqa: F401


def make_transport(
    spec: "str | type[Transport] | Transport" = "inproc", **opts
) -> Transport:
    """Resolve a transport spec into a ready instance.

    ``spec`` may be a :class:`Transport` instance (returned as-is), a
    transport class, or a registry name (``"inproc"``, ``"mp"``).
    Keyword options go to the constructor, e.g.
    ``make_transport("mp", shm_min_bytes=0)``.
    """
    if isinstance(spec, Transport):
        if opts:
            raise ValueError(
                "transport options cannot be applied to a prebuilt "
                f"instance: {sorted(opts)}"
            )
        return spec
    if isinstance(spec, type) and issubclass(spec, Transport):
        return spec(**opts)
    _ensure_builtin_registration()
    try:
        cls = TRANSPORTS[str(spec)]
    except KeyError:
        raise ValueError(
            f"unknown transport {spec!r}; known: {sorted(TRANSPORTS)}"
        ) from None
    return cls(**opts)
