"""Process-parallel chunk executor for the sharded engine.

The sharded engine's hot path — communication-free op runs and diagonal
phase-vector multiplies — touches each chunk independently, so chunks
can be updated concurrently.  :class:`ChunkPool` keeps ``N`` persistent
worker *processes* (spawned once, reused for every dispatch) that
operate on the chunks **in place** through
:mod:`multiprocessing.shared_memory` buffers: the engine allocates every
chunk in shared memory when ``workers > 0``, so dispatching a task ships
only a few hundred bytes (the shared-memory segment name plus tiny 2x2
matrices or a phase-vector reference), never the amplitudes.

The primary task kind is **run-level**: one task per worker covering a
static partition of the chunks for a whole communication-free stretch
of the execution schedule (see :mod:`repro.sim.schedule`), so a stretch
costs ``O(workers)`` queue round-trips instead of ``O(chunks x
entries)``:

* ``("segments", chunk_refs, n_local, payloads[, kernel_args[, dtype]])`` —
  ``chunk_refs`` is a tuple of ``(shm_name, size, chunk_index)`` for
  the worker's chunk slice; ``payloads`` is the stretch as
  ``("run", entries)`` kernel runs (:func:`apply_run`) and
  ``("mul", high_bits, vec_map)`` phase-vector multiplies, where
  ``vec_map`` maps each shard-bit signature to its staged scratch
  tensor ``(name, shape)`` and every chunk picks the tensor its own
  signature selects.  ``kernel_args`` is the engine dispatch's
  :meth:`~repro.sim.kernels.KernelDispatch.worker_args` spec: each
  worker process rebuilds (and warm-compiles, once per process) its
  own :class:`~repro.sim.kernels.KernelDispatch` from it, so jitted
  steps run inside the spawned processes without shipping compiled
  state across the queue.

Two single-chunk kinds are kept for targeted dispatch and tests:

* ``("run", chunk, size, n_local, ci, run[, kernel_args[, dtype]])`` —
  one kernel run on one chunk;
* ``("mul", chunk, size, n_local, vec_name, vec_shape[, dtype])`` — one
  staged phase tensor multiplied into one chunk.

The optional trailing ``dtype`` (a dtype string, default
``"complex128"``) is the amplitude precision of the referenced chunks —
the mixed-precision tier ships complex64 registers through the same
shm protocol.  Staged phase tensors stay complex128 in every mode.

Workers are started with the ``spawn`` method: the engine lives inside
multi-threaded SPMD programs (:mod:`repro.mpi.runtime`), where forking
is unsafe.  They are daemons, so an abandoned pool dies with the
parent; call :meth:`ChunkPool.close` for an orderly shutdown.

Speedup obviously requires real CPUs: with ``C`` cores, ``workers <= C``
is the useful range, and on a single-core host the executor only adds
IPC overhead (the benchmark records ``cpu_count`` next to its numbers
for exactly this reason).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time
from multiprocessing import shared_memory

import numpy as np

from .kernels import DEFAULT_KERNELS, KernelDispatch
from .statevector import SimulationError

__all__ = ["ChunkPool", "apply_run", "contract_local", "PARALLEL_MIN_CHUNK"]

#: Default smallest chunk size (amplitudes) worth dispatching to the
#: pool.  Retuned from 2^14 to 2^12 for the run-level dispatch: one
#: ``("segments", ...)`` task per worker amortizes the queue round-trip
#: over a whole communication-free stretch, so the per-chunk IPC
#: overhead that set the old threshold shrank by roughly the
#: entries-per-stretch factor (measured by ``bench_diag_batching.py
#: --only-workers`` and the CI multi-core remeasure job; see
#: docs/benchmarks.md).  The per-process native-kernel warm-up no
#: longer enters this calibration at all: :class:`ChunkPool` passes the
#: engine's ``worker_args`` spec at spawn, so each worker compiles its
#: dispatch while the engine is still setting up, and the first timed
#: stretch sees only steady-state cost.
PARALLEL_MIN_CHUNK = 1 << 12


def contract_local(chunk: np.ndarray, u: np.ndarray, bits, n_local: int) -> None:
    """Contract a ``2^k x 2^k`` unitary into one chunk, in place.

    ``bits`` are chunk-local bit positions, first entry = the matrix's
    most significant index bit (the :class:`~repro.sim.plan.ContractionPlan`
    convention). The result is written back through the chunk view so
    shared-memory-backed chunks mutate in place.

    The chunk may carry leading shot-branch rows (flat size a multiple
    of ``2^n_local``, see :mod:`repro.sim.shots`): the leading ``-1``
    view axis folds them in and the contraction broadcasts over it.
    """
    # Cast u to the chunk's precision (a no-op for complex128): the
    # tensordot then runs cgemm/zgemm on the same rounded operands as
    # KernelDispatch.contract, keeping the two arms bit-identical.
    u = np.asarray(u, dtype=chunk.dtype)
    k = len(bits)
    axes = [1 + n_local - 1 - b for b in bits]
    v = chunk.reshape((-1,) + (2,) * n_local)
    t = np.tensordot(
        u.reshape((2,) * (2 * k)), v, axes=(range(k, 2 * k), axes)
    )
    v[...] = np.moveaxis(t, range(k), axes)


def apply_run(chunk: np.ndarray, run, n_local: int, ci: int, kernels=None) -> None:
    """Apply a run of communication-free kernels to one chunk.

    ``run`` is a sequence of tagged entries, shared between the serial
    engine loop and the pool workers so both paths execute identical
    arithmetic:

    * ``("sq", u, bit, diagonal)`` — a single-qubit 2x2 kernel: a
      local-axis strided pass or, for a diagonal on a shard axis, a
      whole-chunk scale by the factor selected by chunk index ``ci``;
    * ``("cc", u, cmask, local_controls, t_bit, diagonal)`` — a
      single-target controlled gate whose target is chunk-local (or
      diagonal on any axis): the chunk participates iff its shard-axis
      control bits ``cmask`` are all set in ``ci``, and the 2x2 kernel
      applies on the all-ones slice of the ``local_controls`` axes;
    * ``("ct", u, bits)`` — a :class:`~repro.sim.plan.ContractionPlan`
      whose window is entirely chunk-local: one matmul over the window
      axes (:func:`contract_local`);
    * ``("csel", table, hi_bits, lo_bits)`` — a plan whose fused
      unitary is block-diagonal on its shard axes: ``hi_bits`` (shard
      bit positions, window order) select the chunk's signature index
      into ``table``, whose entry is the local sub-block to contract
      over ``lo_bits`` — ``None`` for an identity sub-block (skip), a
      complex scalar when the window has no local qubits.

    ``kernels`` is the engine's :class:`~repro.sim.kernels.KernelDispatch`
    (``None`` = the shared numpy-mode dispatch): every entry routes
    through it, so the native driver and the planar numpy fallbacks are
    chosen per entry with identical arithmetic either way.
    """
    kd = kernels if kernels is not None else DEFAULT_KERNELS
    for entry in run:
        kind = entry[0]
        if kind == "sq":
            _, u, b, diag = entry
            if b >= n_local:
                # Diagonal on a shard axis: the whole chunk scales.
                kd.scale(chunk, u[1, 1] if (ci >> (b - n_local)) & 1 else u[0, 0])
            else:
                kd.sq(chunk, u, b, diag)
        elif kind == "cc":
            _, u, cmask, local_controls, t_bit, diag = entry
            if (ci & cmask) != cmask:
                continue
            if t_bit >= n_local:
                # Diagonal on a shard axis: the target bit is fixed per
                # chunk, so the control slice just scales.
                f = u[1, 1] if (ci >> (t_bit - n_local)) & 1 else u[0, 0]
                kd.masked_scale(chunk, f, local_controls, n_local)
            else:
                kd.cc(chunk, u, local_controls, t_bit, n_local, diag)
        elif kind == "ct":
            _, u, bits = entry
            if not kd.contract(chunk, u, bits, n_local):
                contract_local(chunk, u, bits, n_local)
        elif kind == "csel":
            _, table, hi_bits, lo_bits = entry
            sig = 0
            for sb in hi_bits:
                sig = (sig << 1) | ((ci >> sb) & 1)
            u = table[sig]
            if u is None:
                continue
            if not lo_bits:
                kd.scale(chunk, u)  # all-shard window: a per-chunk scalar
            elif not kd.contract(chunk, u, lo_bits, n_local):
                contract_local(chunk, u, lo_bits, n_local)
        else:  # pragma: no cover - protocol error
            raise ValueError(f"unknown run entry kind {kind!r}")


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block without adopting it.

    On Python 3.13+ ``track=False`` skips resource-tracker registration
    outright. On older versions the attach registers with the tracker
    the worker shares with the spawning engine — registration is
    idempotent there (set semantics), and the engine's own ``unlink``
    balances it, so no extra bookkeeping is needed.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12
        return shared_memory.SharedMemory(name=name)


def _as_array(
    shm: shared_memory.SharedMemory, count: int, dtype=np.complex128
) -> np.ndarray:
    return np.ndarray((count,), dtype=dtype, buffer=shm.buf)


def _worker_kernels(kernel_args):
    """Per-process kernel dispatch for pool workers.

    Built once per distinct ``(mode, jit_min_amps)`` spec and cached in
    the worker's module globals; construction warm-compiles (numba) or
    loads the prebuilt artifact (cffi) *before* the first chunk is
    touched, so cold-compile time never lands inside a timed stretch.
    """
    if kernel_args is None:
        return None
    kd = _WORKER_KERNELS.get(kernel_args)
    if kd is None:
        kd = KernelDispatch(kernel_args[0], jit_min_amps=kernel_args[1])
        kd.warmup()
        _WORKER_KERNELS[kernel_args] = kd
    return kd


_WORKER_KERNELS: dict[tuple, KernelDispatch] = {}


def _worker_main(tasks, results, warmup_args=None) -> None:
    """Worker loop: pop a task, mutate the referenced chunk, acknowledge.

    ``warmup_args`` is an optional
    :meth:`~repro.sim.kernels.KernelDispatch.worker_args` spec warmed
    *before* the first task is popped: the per-process native-provider
    import/compile then happens during pool spawn, concurrently with the
    engine's own work, instead of inside the first timed stretch — which
    keeps ``parallel_min_chunk`` a pure steady-state break-even.
    """
    if warmup_args is not None:
        try:
            _worker_kernels(tuple(warmup_args))
        except Exception:  # pragma: no cover - fall back to lazy warm-up
            pass
    while True:
        task = tasks.get()
        if task is None:
            return
        try:
            kind = task[0]
            if kind == "segments":
                _, chunk_refs, nl, payloads = task[:4]
                kd = _worker_kernels(task[4] if len(task) > 4 else None)
                dt = np.dtype(task[5]) if len(task) > 5 else np.complex128
                vec_shms: dict[str, shared_memory.SharedMemory] = {}
                vec_arrs: dict[str, np.ndarray] = {}
                try:
                    for name, count, ci in chunk_refs:
                        shm = _attach(name)
                        try:
                            arr = _as_array(shm, count, dt)
                            for p in payloads:
                                if p[0] == "run":
                                    apply_run(arr, p[1], nl, ci, kd)
                                else:  # ("mul", high_bits, vec_map)
                                    _, high_bits, vec_map = p
                                    sig = tuple(
                                        (ci >> hb) & 1 for hb in high_bits
                                    )
                                    vname, vshape = vec_map[sig]
                                    if vname not in vec_arrs:
                                        vshm = _attach(vname)
                                        vec_shms[vname] = vshm
                                        vec_arrs[vname] = np.ndarray(
                                            vshape,
                                            dtype=np.complex128,
                                            buffer=vshm.buf,
                                        )
                                    view = arr.reshape((-1,) + (2,) * nl)
                                    view *= vec_arrs[vname]
                                    del view
                            del arr
                        finally:
                            shm.close()
                finally:
                    vec_arrs.clear()
                    for vshm in vec_shms.values():
                        vshm.close()
            elif kind == "run":
                _, name, count, nl, ci, run = task[:6]
                kd = _worker_kernels(task[6] if len(task) > 6 else None)
                dt = np.dtype(task[7]) if len(task) > 7 else np.complex128
                shm = _attach(name)
                try:
                    apply_run(_as_array(shm, count, dt), run, nl, ci, kd)
                finally:
                    shm.close()
            elif kind == "mul":
                _, name, count, nl, vec_name, vec_shape = task[:6]
                dt = np.dtype(task[6]) if len(task) > 6 else np.complex128
                shm = _attach(name)
                vshm = _attach(vec_name)
                try:
                    # Phase tensors are always complex128 (see
                    # repro.sim.diag); the in-place multiply casts into
                    # the chunk dtype identically in every mode.
                    vec = np.ndarray(
                        vec_shape, dtype=np.complex128, buffer=vshm.buf
                    )
                    view = _as_array(shm, count, dt).reshape((-1,) + (2,) * nl)
                    view *= vec
                    del vec, view
                finally:
                    vshm.close()
                    shm.close()
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown task kind {kind!r}")
            results.put(None)
        except Exception as exc:  # surface, don't kill the worker
            results.put(f"{type(exc).__name__}: {exc}")


class ChunkPool:
    """A persistent pool of chunk-worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (must be >= 1).  Workers are spawned
        immediately and stay resident until :meth:`close`.
    warmup_args:
        Optional :meth:`~repro.sim.kernels.KernelDispatch.worker_args`
        spec each worker warms at startup, so the one-off native
        compile/import cost lands during spawn rather than inside the
        first dispatched stretch.
    """

    #: Seconds to wait for any single task acknowledgement before
    #: declaring the pool wedged (a worker died mid-task).
    TIMEOUT = 120.0

    def __init__(self, workers: int, warmup_args=None):
        if workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        #: Total tasks ever dispatched (white-box dispatch accounting:
        #: run-level dispatch issues O(workers) tasks per
        #: communication-free stretch, not O(chunks x entries)).
        self.tasks_dispatched = 0
        ctx = mp.get_context("spawn")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, warmup_args),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for p in self._procs:
            p.start()

    @property
    def workers(self) -> int:
        """Number of worker processes in the pool."""
        return len(self._procs)

    def run_tasks(self, tasks) -> None:
        """Dispatch tasks to the pool and block until all acknowledge.

        Raises :class:`~repro.sim.statevector.SimulationError` if any
        worker reports an error or fails to acknowledge within
        :attr:`TIMEOUT` — in either case the chunks may be partially
        updated and the simulation state must be considered lost.
        """
        tasks = list(tasks)
        self.tasks_dispatched += len(tasks)
        for t in tasks:
            self._tasks.put(t)
        errors = []
        for _ in tasks:
            # The deadline is per acknowledgement: it resets on every
            # completed task, so a large batch of slow-but-progressing
            # tasks is never mistaken for a wedged pool.
            deadline = time.monotonic() + self.TIMEOUT
            while True:
                try:
                    ack = self._results.get(timeout=1.0)
                    break
                except _queue.Empty:
                    if not any(p.is_alive() for p in self._procs):
                        self.close()
                        raise SimulationError(
                            "all chunk workers died (spawn failure? the main "
                            "module must be importable for mp 'spawn')"
                        ) from None
                    if time.monotonic() > deadline:
                        self.close()
                        raise SimulationError(
                            "chunk worker did not acknowledge within "
                            f"{self.TIMEOUT}s (worker died mid-task?)"
                        ) from None
            if ack is not None:
                errors.append(ack)
        if errors:
            raise SimulationError(
                "chunk worker failed: " + "; ".join(errors)
            )

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        procs, self._procs = self._procs, []
        if not procs:
            return
        for _ in procs:
            try:
                self._tasks.put(None)
            except Exception:  # pragma: no cover - queue already closed
                break
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - wedged worker
                p.terminate()
                p.join(timeout=5.0)
        for q in (self._tasks, self._results):
            q.close()
            q.join_thread()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
