"""Quantum state-vector simulation substrate.

Public surface:

* :class:`~repro.sim.statevector.StateVector` — the engine
* :class:`~repro.sim.sharded.ShardedStateVector` — chunk-distributed engine
* :class:`~repro.sim.tracker.TrackedStateVector` — engine + gate tallies
* :mod:`~repro.sim.diag` — diagonal phase-vector batching (``DiagBatch``)
* :mod:`~repro.sim.plan` — per-chunk contraction plans (``ContractionPlan``)
* :mod:`~repro.sim.parallel` — process-parallel chunk executor
* :mod:`~repro.sim.gates` — gate matrices
* :mod:`~repro.sim.pauli` — Pauli-string application / rotation
* :mod:`~repro.sim.arith` — reversible adders for QMPI_SUM reductions
"""

from . import arith, diag, gates, parallel, pauli, plan, schedule
from .diag import DiagBatch, coalesce_diagonals
from .parallel import ChunkPool
from .plan import ContractionPlan, plan_contractions
from .schedule import (
    DEFAULT_COST_MODEL,
    CostModel,
    DiagSegment,
    ExchangeSegment,
    KernelRun,
    PlanSegment,
    Segment,
    compile_segments,
    lower_flush,
)
from .sharded import ShardedStateVector
from .statevector import SimulationError, StateVector
from .tracker import GateCounts, TrackedStateVector

__all__ = [
    "StateVector",
    "ShardedStateVector",
    "TrackedStateVector",
    "GateCounts",
    "DiagBatch",
    "ContractionPlan",
    "ChunkPool",
    "coalesce_diagonals",
    "plan_contractions",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Segment",
    "KernelRun",
    "DiagSegment",
    "PlanSegment",
    "ExchangeSegment",
    "compile_segments",
    "lower_flush",
    "SimulationError",
    "diag",
    "plan",
    "parallel",
    "schedule",
    "gates",
    "pauli",
    "arith",
]
