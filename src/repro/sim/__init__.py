"""Quantum state-vector simulation substrate.

Public surface:

* :class:`~repro.sim.statevector.StateVector` — the engine
* :class:`~repro.sim.sharded.ShardedStateVector` — chunk-distributed engine
* :class:`~repro.sim.tracker.TrackedStateVector` — engine + gate tallies
* :mod:`~repro.sim.gates` — gate matrices
* :mod:`~repro.sim.pauli` — Pauli-string application / rotation
* :mod:`~repro.sim.arith` — reversible adders for QMPI_SUM reductions
"""

from . import arith, gates, pauli
from .sharded import ShardedStateVector
from .statevector import SimulationError, StateVector
from .tracker import GateCounts, TrackedStateVector

__all__ = [
    "StateVector",
    "ShardedStateVector",
    "TrackedStateVector",
    "GateCounts",
    "SimulationError",
    "gates",
    "pauli",
    "arith",
]
