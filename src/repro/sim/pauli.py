"""Pauli-string operations on the state-vector engine.

Used by the chemistry applications: each Hamiltonian term after a fermionic
encoding is a Pauli string, and Trotterized time evolution applies
``exp(-i t P/2)`` per string (Eq. (1) of the paper, up to single-qubit
basis changes).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from . import gates as G
from .statevector import SimulationError, StateVector

__all__ = ["apply_pauli_string", "rotate_pauli_string", "basis_change", "undo_basis_change"]


def _validate(mapping: Mapping[int, str]) -> dict[int, str]:
    out = {}
    for q, p in mapping.items():
        p = p.upper()
        if p not in ("X", "Y", "Z"):
            raise SimulationError(f"invalid Pauli {p!r} on qubit {q}")
        out[q] = p
    return out


def apply_pauli_string(sv: StateVector, mapping: Mapping[int, str]) -> None:
    """Apply the tensor product of Paulis given by ``{qubit: axis}``."""
    for q, p in _validate(mapping).items():
        sv.apply(G.PAULIS[p], q)


def rotate_pauli_string(sv: StateVector, mapping: Mapping[int, str], theta: float) -> None:
    """Apply ``exp(-i theta/2 * P)`` for the Pauli string ``P``.

    Implemented exactly as the paper's Fig. 6 circuits do on hardware:
    basis-change each qubit so the string becomes Z...Z, compute the parity
    into the last involved qubit with a CNOT ladder, rotate, uncompute.
    Operating directly on the simulator keeps the cost at one ladder pass
    rather than a dense ``2^k`` matrix.
    """
    mapping = _validate(mapping)
    if not mapping:
        return
    qubits = sorted(mapping)
    basis_change(sv, mapping)
    for a, b in zip(qubits, qubits[1:]):
        sv.cnot(a, b)
    sv.rz(qubits[-1], theta)
    for a, b in reversed(list(zip(qubits, qubits[1:]))):
        sv.cnot(a, b)
    undo_basis_change(sv, mapping)


def basis_change(sv: StateVector, mapping: Mapping[int, str]) -> None:
    """Rotate each qubit so its Pauli axis becomes Z (X: H, Y: S† then H)."""
    for q, p in _validate(mapping).items():
        if p == "X":
            sv.h(q)
        elif p == "Y":
            sv.sdg(q)
            sv.h(q)


def undo_basis_change(sv: StateVector, mapping: Mapping[int, str]) -> None:
    """Inverse of :func:`basis_change`."""
    for q, p in _validate(mapping).items():
        if p == "X":
            sv.h(q)
        elif p == "Y":
            sv.h(q)
            sv.s(q)


def pauli_string_matrix(mapping: Mapping[int, str], qubits: list[int]) -> np.ndarray:
    """Dense matrix of the Pauli string over the ordered ``qubits`` list."""
    mats = [G.PAULIS[_validate(mapping).get(q, "I")] for q in qubits]
    return G.kron_all(*mats)
