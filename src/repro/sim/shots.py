"""Shot-batched trajectory bookkeeping shared by both engines.

A ``shots=N`` run executes the program **once**: unitary segments walk
the normal schedule-IR interpreters, and only *measurement* makes the N
trajectories observable.  Both engines therefore keep, next to their
amplitudes, a small ensemble structure:

* a **branch** is one distinct measurement history.  The state carries a
  leading branch axis (``(B,) + (2,)*n`` for the shared engine, ``B``
  stacked rows per chunk for the sharded one); unitary segments are
  vectorized over it, so the state evolution runs once regardless of N.
* ``shot_of`` maps each of the N shots to its branch.  Before the first
  mid-circuit measurement there is a single branch and every shot points
  at it — this is the "sample from the final state without re-running"
  fast path, made structural: a communication-free, measurement-free
  circuit simply never forks.
* a measurement **forks**: per-branch ``P(1)`` is computed once, every
  shot draws its outcome from its branch's distribution (one vectorized
  RNG draw), and each ``(branch, outcome)`` pair that received at least
  one shot becomes a new branch (the projected, renormalized state).
  Deterministic outcomes (``p`` equal to 0 or 1) never fork, so a GHZ
  measure-all splits once and then stays at two branches.

Measurement results under shots are :class:`ShotBits` — an int-like
per-shot bit vector.  The QMPI protocols compute their Pauli fixups with
ordinary integer arithmetic (``m | 2 * m2``, ``r & 1``) which ShotBits
supports elementwise; *branching* on a result requires either unanimity
across shots (plain ``bool()`` works) or the engines' conditional
application path (``apply_pauli_if``), which reduces the per-shot
condition to a per-branch mask — exact, because every shot of a branch
shares the same measurement history.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

__all__ = ["ShotBits", "ShotDivergenceError", "fork_outcomes", "branch_mask"]


class ShotDivergenceError(RuntimeError):
    """A per-shot value was used where a single classical value is needed.

    Raised when ``bool()``/``int()`` is taken of a :class:`ShotBits`
    whose shots disagree.  Program-level fixups should go through the
    conditional application path (``backend.apply_pauli_if``) instead of
    ``if bit:`` branching.
    """


class ShotBits:
    """Per-shot classical measurement data: an int-like vector of bits.

    Supports the integer arithmetic the QMPI protocols use on classical
    fixup bits (``&``, ``|``, ``^``, ``+``, ``*``, shifts) elementwise,
    against ints or other ShotBits.  Converting to ``bool``/``int``
    requires all shots to agree (:class:`ShotDivergenceError` otherwise),
    so deterministic protocol branches keep working unchanged under
    ``shots=``.
    """

    __slots__ = ("values",)

    def __init__(self, values):
        self.values = np.asarray(values, dtype=np.int64)
        self.values.setflags(write=False)

    # -- container protocol -------------------------------------------
    def __len__(self) -> int:
        return self.values.size

    def __iter__(self):
        return iter(int(v) for v in self.values)

    def __getitem__(self, i) -> int:
        return int(self.values[i])

    @property
    def shots(self) -> int:
        """Number of shots (the vector length)."""
        return self.values.size

    def counts(self) -> Counter:
        """Histogram of the per-shot values."""
        return Counter(int(v) for v in self.values)

    # -- scalar conversion (unanimous only) ---------------------------
    def _scalar(self) -> int:
        v = self.values
        if v.size == 0:
            return 0
        first = int(v[0])
        if not np.all(v == first):
            raise ShotDivergenceError(
                "shots disagree on this classical value; use the engines' "
                "conditional path (apply_pauli_if) instead of branching on it"
            )
        return first

    def __bool__(self) -> bool:
        return bool(self._scalar())

    def __int__(self) -> int:
        return self._scalar()

    __index__ = __int__

    # -- elementwise integer arithmetic --------------------------------
    @staticmethod
    def _coerce(other):
        if isinstance(other, ShotBits):
            return other.values
        if isinstance(other, (int, np.integer)):
            return int(other)
        if isinstance(other, np.ndarray):
            return other
        return NotImplemented

    def _binop(self, other, fn):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ShotBits(fn(self.values, o))

    def __and__(self, other):
        return self._binop(other, np.bitwise_and)

    __rand__ = __and__

    def __or__(self, other):
        return self._binop(other, np.bitwise_or)

    __ror__ = __or__

    def __xor__(self, other):
        return self._binop(other, np.bitwise_xor)

    __rxor__ = __xor__

    def __add__(self, other):
        return self._binop(other, np.add)

    __radd__ = __add__

    def __mul__(self, other):
        return self._binop(other, np.multiply)

    __rmul__ = __mul__

    def __rshift__(self, other):
        return self._binop(other, np.right_shift)

    def __lshift__(self, other):
        return self._binop(other, np.left_shift)

    def __mod__(self, other):
        return self._binop(other, np.mod)

    def __eq__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return bool(np.array_equal(self.values, np.broadcast_to(o, self.values.shape)))

    def __ne__(self, other):
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    __hash__ = None  # mutable-adjacent value semantics; not hashable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        v = self.values
        head = ",".join(str(int(x)) for x in v[:8])
        tail = ",..." if v.size > 8 else ""
        return f"<ShotBits n={v.size} [{head}{tail}]>"


def fork_outcomes(p1, shot_of, rng):
    """Plan a measurement fork: sample every shot, split the branches.

    Parameters
    ----------
    p1:
        Per-branch probability of outcome 1, shape ``(B,)``.
    shot_of:
        Shot-to-branch assignment, shape ``(S,)`` of ints in ``[0, B)``.
    rng:
        The engine's :class:`numpy.random.Generator` (one vectorized
        draw of ``S`` uniforms — the shots analogue of the engines'
        one-draw-per-measurement discipline).

    Returns
    -------
    (bits, new_shot_of, spec):
        ``bits`` — :class:`ShotBits` of the sampled outcomes;
        ``new_shot_of`` — the post-fork assignment; ``spec`` — one
        ``(old_branch, outcome, scale)`` triple per *surviving* new
        branch, in new-branch order, where ``scale`` is the
        renormalization factor ``1/sqrt(P(outcome))`` the engine applies
        to the projected amplitudes.  Branches that received no shots
        are dropped.
    """
    p1 = np.asarray(p1, dtype=float)
    shot_of = np.asarray(shot_of)
    draws = rng.random(shot_of.size)
    bits = (draws < p1[shot_of]).astype(np.int64)
    spec: list[tuple[int, int, float]] = []
    new_shot_of = np.empty_like(shot_of)
    for b in range(p1.size):
        in_branch = shot_of == b
        for outcome in (0, 1):
            sel = in_branch & (bits == outcome)
            if not np.any(sel):
                continue
            p = p1[b] if outcome else 1.0 - p1[b]
            new_shot_of[sel] = len(spec)
            spec.append((b, outcome, 1.0 / math.sqrt(p)))
    return ShotBits(bits), new_shot_of, spec


def branch_mask(cond, shot_of, n_branches: int) -> np.ndarray:
    """Reduce a per-shot condition to a per-branch boolean mask.

    Every shot of a branch shares the same measurement history, so any
    condition derived from measurement results is constant within a
    branch; this checks that invariant and returns the ``(B,)`` mask.
    A scalar condition broadcasts to every branch.
    """
    if isinstance(cond, ShotBits):
        cond = cond.values
    if isinstance(cond, np.ndarray) and cond.ndim:
        vals = (np.asarray(cond) != 0).astype(np.int8)
        if vals.shape != np.shape(shot_of):
            raise ValueError(
                f"condition has {vals.shape[0]} entries for {np.shape(shot_of)[0]} shots"
            )
        lo = np.ones(n_branches, dtype=np.int8)
        hi = np.zeros(n_branches, dtype=np.int8)
        np.minimum.at(lo, shot_of, vals)
        np.maximum.at(hi, shot_of, vals)
        if np.any(lo != hi):
            raise ShotDivergenceError(
                "conditional value varies within a branch; it does not "
                "derive from this run's measurement history"
            )
        return hi.astype(bool)
    return np.full(n_branches, bool(cond))
