"""Per-chunk contraction plans: cross-op fusion of bounded qubit windows.

Peephole fusion (:class:`~repro.qmpi.stream.OpStream`) merges adjacent
*single*-qubit ops into one 2x2 product, and diagonal coalescing
(:func:`repro.sim.diag.coalesce_diagonals`) collapses diagonal runs
into phase tables — but a dense two-qubit-heavy circuit (a CNOT ladder,
a swap network, a random entangler) still dispatches one strided engine
pass per gate.  This module closes that gap at flush time:

:func:`plan_contractions` scans the (already diagonal-coalesced) op
sequence and fuses runs of one- and two-qubit ops into bounded qubit
**windows** (at most :data:`MAX_WINDOW` = 3 distinct qubits each),
emitting one :class:`ContractionPlan` per window — a precontracted
``4x4``/``8x8`` unitary plus the window's qubit tuple.  Several
windows stay open at once: because ops on *disjoint* qubit sets
commute, an op interleaved between two independent interaction
clusters (a brickwork entangler layer, gates on far-apart pairs) still
lands in the window of the cluster it touches, and only an op that
would push its window past the bound — or one that bridges two open
windows that cannot merge — forces an emission.  Windows are pairwise
qubit-disjoint by construction, which is exactly what makes the
reordering exact.  Each engine then applies **one matmul per plan**
instead of one pass per op; on the sharded engine a plan is
additionally *classified once* against the chunk layout (see
:meth:`repro.sim.sharded.ShardedStateVector.apply_ops`):

* every window qubit on a local axis — communication-free, the plan
  joins the per-chunk kernel run;
* shard-axis qubits on which the fused unitary is **block-diagonal**
  (control-like axes: a fused CNOT ladder controlled from a high axis)
  — still communication-free: each chunk applies the sub-block its
  shard-bit signature selects, one small matrix per signature;
* a shard axis the unitary genuinely mixes — one restricted pair/group
  chunk exchange for the *whole plan* instead of one per op.

Within a window the fused product is taken in program order, and ops
are only ever commuted past ops of *other* (qubit-disjoint) windows,
so semantics are exact; windows holding a single op pass through
untouched, preserving the engines' specialized single-op paths (a lone
cz stays communication-free, a lone high-target CNOT keeps its
restricted exchange).

This module lives in :mod:`repro.sim` (below the op IR) next to
:mod:`repro.sim.diag` so both engines and the parallel workers can
import it without cycles; :mod:`repro.qmpi.ops` re-exports
:class:`ContractionPlan` as part of the public IR.
"""

from __future__ import annotations

import numpy as np

from .diag import DiagBatch

__all__ = [
    "ContractionPlan",
    "plan_contractions",
    "window_product",
    "freeze_window",
    "replay_window",
    "MAX_WINDOW",
]

#: Default largest number of distinct qubits a plan window may span.
#: Three local qubits keep the fused unitary at 8x8 — still far below
#: chunk size — while letting ladder-shaped circuits (cnot chains, swap
#: networks) fuse pairs of overlapping two-qubit gates.  The schedule
#: cost model (:class:`repro.sim.schedule.CostModel`) makes the bound
#: size-aware at flush time: planning is bypassed outright on small
#: registers and the window widens to four qubits (one 16x16
#: contraction) on large ones, where memory traffic dominates.
MAX_WINDOW = 3


class ContractionPlan:
    """A fused run of adjacent small ops: one unitary, one qubit window.

    Instances quack like :class:`~repro.qmpi.ops.Op` where the pipeline
    cares (``qubits``/``targets``/``controls``, ``is_diagonal``,
    ``spec``/``gate``/``params``, ``target_matrix``) so rank-ownership
    checks and generic dispatch treat them uniformly; engines
    special-case them for the one-matmul fast path.

    Build instances with :meth:`from_ops` (or let
    :func:`plan_contractions` do it); the constructor trusts its
    arguments.
    """

    __slots__ = ("u", "_qubits", "n_ops", "is_diagonal", "sources")

    #: Op-protocol constants: a plan is an uncontrolled multi-target
    #: pseudo-op outside the GATESET registry.
    spec = None
    gate = "contraction_plan"
    params: tuple = ()
    controls: tuple = ()
    n_controls = 0
    is_single = False

    def __init__(self, u: np.ndarray, qubits, n_ops: int):
        self.u = u
        self._qubits = tuple(qubits)
        self.n_ops = int(n_ops)
        self.is_diagonal = bool(
            np.count_nonzero(u - np.diag(np.diagonal(u))) == 0
        )
        #: Source op records the plan was fused from (set by
        #: :meth:`from_ops`; ``None`` for directly constructed plans).
        #: The schedule cache keys on them to rebind the window unitary
        #: under fresh rotation parameters.
        self.sources = None

    @property
    def qubits(self) -> tuple:
        """The window qubits, first-touch order (first = matrix MSB)."""
        return self._qubits

    @property
    def targets(self) -> tuple:
        """Alias of :attr:`qubits` (a plan has no control operands)."""
        return self._qubits

    def target_matrix(self) -> np.ndarray:
        """The precontracted window unitary (same as :meth:`matrix`)."""
        return self.u

    def matrix(self) -> np.ndarray:
        """The precontracted window unitary over :attr:`qubits`."""
        return self.u

    @classmethod
    def from_ops(cls, ops) -> "ContractionPlan":
        """Fuse an in-order run of one-/two-qubit ops into one plan.

        The window is the union of the ops' operands in first-touch
        order (at most :data:`MAX_WINDOW` qubits — the caller enforces
        the bound); the plan unitary is the in-order operator product
        ``op_k ... op_2 op_1`` with every op's full matrix (controls
        included) embedded over the window.
        """
        ops = tuple(ops)
        window: list[int] = []
        seen: set[int] = set()
        for op in ops:
            for q in op.qubits:
                if q not in seen:
                    seen.add(q)
                    window.append(q)
        u = window_product(ops, window, lambda op: op.matrix())
        plan = cls(u, window, len(ops))
        plan.sources = ops
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ContractionPlan qubits={self._qubits} n_ops={self.n_ops}>"


def window_product(ops, window, matrix_of, dtype=np.complex128):
    """In-order operator product of ``ops`` embedded over ``window``.

    ``matrix_of(op)`` supplies each op's full matrix (controls
    included); the result is the ``2^w x 2^w`` product ``M_k ... M_1``
    with every matrix embedded over the window qubits.  An op spanning
    the whole window in window order is a plain matmul (the common case
    for two-qubit windows), anything else embeds through a
    ``(2,)*w + (2,)*w`` view of U — applying the op matrix to U's row
    axes is the operator product ``E @ U`` without materializing the
    embedded ``E``.  :meth:`ContractionPlan.from_ops` runs it on the
    actual matrices; the schedule cache runs it on non-negative
    *support* matrices (which cannot cancel) to classify parametric
    windows independently of their rotation angles.
    """
    window = list(window)
    w = len(window)
    wtup = tuple(window)
    u = np.eye(1 << w, dtype=dtype)
    for op in ops:
        m = np.asarray(matrix_of(op), dtype=dtype)
        if op.qubits == wtup:
            u = m @ u
            continue
        k = len(op.qubits)
        axes = [window.index(q) for q in op.qubits]
        t = np.tensordot(
            m.reshape((2,) * (2 * k)),
            u.reshape((2,) * (2 * w)),
            axes=(range(k, 2 * k), axes),
        )
        u = np.ascontiguousarray(
            np.moveaxis(t, range(k), axes)
        ).reshape(1 << w, 1 << w)
    return u


def freeze_window(ops, window):
    """Precompute the structural recipe of one :func:`window_product`.

    For every op the recipe captures the shape of its embedding step —
    ``None`` for a full-window matmul, else ``(k, perm_in, perm_out)``
    where the permutations are exactly the transposes
    ``np.tensordot``/``np.moveaxis`` derive internally per call.  The
    recipe depends only on the window structure (op arities and qubit
    positions), never on matrix values, so the schedule cache computes
    it once per cached plan and replays fresh parameter payloads through
    :func:`replay_window` at a fraction of the per-flush cost.
    """
    window = list(window)
    w = len(window)
    wtup = tuple(window)
    widx = {q: i for i, q in enumerate(window)}
    steps = []
    for op in ops:
        if op.qubits == wtup:
            steps.append(None)
            continue
        k = len(op.qubits)
        axes = [widx[q] for q in op.qubits]
        # np.tensordot(m.reshape((2,)*2k), u.reshape((2,)*2w),
        #              axes=(range(k, 2k), axes)) transposes u by
        # contracted-axes-first before one flat dot ...
        perm_in = tuple(axes) + tuple(
            x for x in range(2 * w) if x not in axes
        )
        # ... and np.moveaxis(t, range(k), axes) is this transpose.
        order = list(range(k, 2 * w))
        for dest, src in sorted(zip(axes, range(k))):
            order.insert(dest, src)
        steps.append((k, perm_in, tuple(order)))
    return (w, tuple(steps))


def replay_window(recipe, mats, dtype=np.complex128):
    """Re-run a frozen :func:`window_product` on fresh matrices.

    Performs, step for step, the same numpy operations
    :func:`window_product` performs — the flat ``dot`` with the same
    operand layouts, the same transposes, the same contiguous copy — so
    the result is bit-identical to rebuilding the product from scratch;
    only the per-call structure derivation is skipped.
    """
    w, steps = recipe
    full = (2,) * (2 * w)
    dim = 1 << w
    u = np.eye(dim, dtype=dtype)
    for m, step in zip(mats, steps):
        if step is None:
            u = m @ u
            continue
        k, perm_in, perm_out = step
        bt = u.reshape(full).transpose(perm_in).reshape(1 << k, -1)
        t = np.dot(m, bt)
        u = np.ascontiguousarray(
            t.reshape(full).transpose(perm_out)
        ).reshape(dim, dim)
    return u


def _plannable(op) -> bool:
    """One- or two-qubit plain ops fuse; batches and plans are barriers."""
    return (
        not isinstance(op, (DiagBatch, ContractionPlan))
        and 1 <= len(op.qubits) <= 2
    )


def plan_contractions(
    ops,
    max_window: int = MAX_WINDOW,
    min_ops: int = 2,
    max_open: int = 16,
    merge_window: int | None = None,
):
    """Fuse small-op runs into :class:`ContractionPlan` records.

    Scans the op sequence in order, growing a set of open *windows* —
    pairwise qubit-disjoint clusters of at most ``max_window`` distinct
    qubits, each accumulating the ops that touch it in program order:

    * an op touching exactly one window joins it if the union still
      fits; otherwise that window is emitted and the op opens a fresh
      one (the classic break on a fourth distinct qubit);
    * an op touching no window opens a new one (oldest-first emission
      keeps at most ``max_open`` windows alive);
    * an op bridging several windows merges them when the combined
      qubit set fits, and emits them otherwise;
    * anything non-plannable — :class:`~repro.sim.diag.DiagBatch`
      records, three-qubit ops — is a barrier: every window is emitted
      and the op passes through unchanged.

    Windows holding fewer than ``min_ops`` ops — or fewer ops than
    window qubits (the fused ``2^w`` matmul only pays once it replaces
    about one op per qubit) — pass their ops through untouched, so
    single gates and sparse runs keep the engines' specialized paths.
    Because distinct windows never share a qubit, ops are only ever
    commuted past ops they trivially commute with, and each window's
    internal order is program order — the result is exact.

    With ``max_window`` above :data:`MAX_WINDOW` (size-aware widening,
    see :meth:`repro.sim.schedule.CostModel.plan_window`), only
    single-window *growth* may exceed ``merge_window`` (default
    ``max_window``; the size-aware caller pins it to
    :data:`MAX_WINDOW`): an op extending one live window to a fourth
    qubit would otherwise force an emit-and-reopen — one more pass over
    the amplitudes — so the 16x16 contraction that swallows it wins.
    A *bridge merge*, by contrast, combines windows that would each be
    emitted as a dense small plan anyway; fusing them saves no pass and
    only inflates the per-amplitude flops, so merges stay bounded by
    ``merge_window`` — measured, not guessed: unrestricted widening
    costs the ``brickwork`` 20q shared row ~10% while growth-only
    widening keeps ``rand2q``'s 11-16% win.
    """
    if merge_window is None:
        merge_window = max_window
    out: list = []
    windows: list[tuple[list, set[int]]] = []  # (run, qubit set)

    def emit(i: int) -> None:
        run, wq = windows.pop(i)
        # Density rule: a 2^w contraction costs ~2^w flops per amplitude
        # while a sparse controlled gate costs ~1, so a window must hold
        # at least as many ops as qubits before the fused matmul can
        # amortize (two shard-axis-targeting CNOTs sharing only their
        # target, say, are faster through the per-op restricted
        # exchange — measured, not guessed: the chigh_cnot benchmark
        # row loses 3x without this bound).
        if len(run) < max(min_ops, len(wq)):
            out.extend(run)
            return
        out.append(ContractionPlan.from_ops(run))

    for op in ops:
        if not _plannable(op):
            while windows:
                emit(0)
            out.append(op)
            continue
        qs = set(op.qubits)
        hits = [i for i, (_, wq) in enumerate(windows) if wq & qs]
        if len(hits) == 1:
            run, wq = windows[hits[0]]
            if len(wq | qs) <= max_window:
                run.append(op)
                wq |= qs
                continue
            emit(hits[0])
        elif hits:
            merged = set().union(qs, *(windows[i][1] for i in hits))
            if len(merged) <= merge_window:
                run = [o for i in hits for o in windows[i][0]]
                run.append(op)
                for i in reversed(hits):
                    windows.pop(i)
                windows.append((run, merged))
                continue
            for i in reversed(hits):
                emit(i)
        windows.append(([op], qs))
        if len(windows) > max_open:
            emit(0)
    while windows:
        emit(0)
    return out
