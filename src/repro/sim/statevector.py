"""Full state-vector quantum simulator.

This is the quantum substrate of the QMPI prototype. The paper's C++
prototype (§6) keeps one global state vector owned by rank 0; here the
engine itself is single-threaded and :class:`repro.qmpi.backend.SharedBackend`
adds the rank-0-style serialization on top.

Design notes
------------
* The state is stored as an ndarray of shape ``(2,) * n``; qubit handles
  are stable integer ids mapped to tensor axes, so qubits can be allocated
  and released dynamically (``QMPI_Alloc_qmem`` / ``QMPI_Free_qmem``).
* Gate application uses ``np.tensordot`` + ``np.moveaxis`` — vectorized,
  no Python loop over amplitudes (per the HPC guide: avoid explicit loops,
  operate on views).
* Measurement uses an injectable :class:`numpy.random.Generator` so that
  distributed runs are reproducible.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from . import gates as G
from .diag import DiagBatch, chunk_phase
from .kernels import KernelDispatch
from .schedule import DEFAULT_COST_MODEL, DiagSegment, KernelRun, compile_segments
from .shots import ShotBits, branch_mask, fork_outcomes

__all__ = ["StateVector", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid simulator operations (bad qubit ids, non-unitary
    input, releasing an entangled qubit, ...)."""


class StateVector:
    """A dynamically sized full state-vector simulator.

    Parameters
    ----------
    n_qubits:
        Number of qubits to allocate immediately (ids ``0..n-1``).
    seed:
        Seed or :class:`numpy.random.Generator` for measurement sampling.
    kernels:
        Kernel dispatch mode (``"auto"``/``"numpy"``/``"jit"``; ``None``
        reads ``REPRO_QMPI_KERNELS``).  On the shared engine only the
        diagonal phase-table materializer dispatches natively — the
        dense axis kernels are single ``tensordot``/BLAS calls already,
        and no native rewrite of those could stay bit-identical (see
        :mod:`repro.sim.kernels`).  Amplitudes are bit-identical in
        every mode.
    dtype:
        Amplitude precision: ``"complex128"`` (default) or
        ``"complex64"`` (half the memory/bandwidth at float32
        precision).  ``None`` reads ``REPRO_QMPI_DTYPE`` before
        defaulting to ``"complex128"``.

    Examples
    --------
    >>> sv = StateVector(2)
    >>> sv.h(0); sv.cnot(0, 1)
    >>> abs(sv.amplitude([0, 0])) ** 2  # doctest: +ELLIPSIS
    0.4999...
    """

    def __init__(
        self,
        n_qubits: int = 0,
        seed=None,
        kernels: str | None = None,
        dtype: str | None = None,
    ):
        self._kernels = KernelDispatch(
            kernels, jit_min_amps=DEFAULT_COST_MODEL.jit_min_amps
        )
        if dtype is None:
            dtype = os.environ.get("REPRO_QMPI_DTYPE") or "complex128"
        if str(dtype) not in ("complex64", "complex128"):
            raise SimulationError(
                f'dtype must be "complex128" or "complex64", got {dtype!r}'
            )
        self._dtype = np.dtype(str(dtype))
        # Tolerance knobs scale with the amplitude precision: float32
        # rounding leaves ~1e-7 residuals where float64 leaves ~1e-16.
        if self._dtype == np.complex64:
            self._zero_atol, self._norm_eps, self._agree_eps = 1e-4, 1e-6, 1e-5
        else:
            self._zero_atol, self._norm_eps, self._agree_eps = 1e-9, 1e-12, 1e-9
        self._psi = np.ones((), dtype=self._dtype)  # shape () == zero qubits
        self._axis_of: dict[int, int] = {}
        self._next_id = 0
        self._shots: int | None = None
        self._shot_of: np.ndarray | None = None
        self.segments_executed = 0
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)
        if n_qubits:
            self.alloc(n_qubits)

    # ------------------------------------------------------------------
    # shot-batched trajectories (see repro.sim.shots)
    # ------------------------------------------------------------------
    @property
    def shots(self) -> int | None:
        """Number of tracked shots, or ``None`` outside shots mode."""
        return self._shots

    @property
    def n_branches(self) -> int:
        """Number of distinct measurement histories currently tracked."""
        return self._psi.shape[0] if self._shots is not None else 1

    def begin_shots(self, shots: int) -> None:
        """Enter shot-batched mode: track ``shots`` trajectories in one run.

        The state gains a leading *branch* axis (one row per distinct
        measurement history — initially a single row shared by every
        shot); unitary segments broadcast over it unchanged, and
        :meth:`measure` forks it. Must be called before any
        measurement-induced fork, typically right after construction.
        """
        if self._shots is not None:
            if self._axis_of:
                raise SimulationError(
                    "begin_shots() called twice on a non-empty engine"
                )
            # Empty engine (all qubits released): the leftover per-branch
            # global phases are unobservable — reset to a fresh run so a
            # reused backend (job runner) can start a new shot batch.
            self._psi = np.ones((), dtype=self._dtype)
        if shots < 1:
            raise SimulationError(f"shots must be >= 1, got {shots}")
        self._shots = int(shots)
        self._shot_of = np.zeros(self._shots, dtype=np.int64)
        self._psi = self._psi[None]
        for q in self._axis_of:
            self._axis_of[q] += 1

    def reseed(self, seed) -> None:
        """Replace the measurement RNG (per-job streams use this hook)."""
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of currently allocated qubits."""
        return len(self._axis_of)

    @property
    def dtype(self) -> str:
        """Amplitude dtype name, derived from the live state array.

        Part of the engine :meth:`layout_key`, so cached schedules never
        replay across precisions.
        """
        return self._psi.dtype.name

    @property
    def qubit_ids(self) -> tuple[int, ...]:
        """Allocated qubit ids in axis order (allocation order)."""
        order = sorted(self._axis_of, key=self._axis_of.__getitem__)
        return tuple(order)

    def alloc(self, n: int = 1) -> list[int]:
        """Allocate ``n`` fresh qubits in |0> and return their ids."""
        if n < 1:
            raise SimulationError(f"cannot allocate {n} qubits")
        ids = []
        for _ in range(n):
            qid = self._next_id
            self._next_id += 1
            self._axis_of[qid] = self._psi.ndim
            pad = np.zeros((2,), dtype=self._dtype)
            pad[0] = 1.0
            self._psi = np.multiply.outer(self._psi, pad)
            ids.append(qid)
        return ids

    def release(self, qubit: int) -> None:
        """Release a qubit that is disentangled and in state |0>.

        Mirrors ``QMPI_Free_qmem``: freeing a qubit that still carries
        amplitude in |1> (or is entangled) is a program error.
        """
        ax = self._axis(qubit)
        moved = np.moveaxis(self._psi, ax, 0)
        if not np.allclose(moved[1], 0.0, atol=self._zero_atol):
            raise SimulationError(
                f"qubit {qubit} is not in |0> (or is entangled); "
                "measure/uncompute before releasing"
            )
        self._psi = moved[0]
        self._drop_axis(qubit, ax)

    def measure_and_release(self, qubit: int) -> int:
        """Measure ``qubit`` in the Z basis, then remove it. Returns the bit."""
        bit = self.measure(qubit)
        self.apply_pauli_if(bit, "X", qubit)
        self.release(qubit)
        return bit

    def _axis(self, qubit: int) -> int:
        try:
            return self._axis_of[qubit]
        except KeyError:
            raise SimulationError(f"unknown qubit id {qubit}") from None

    def _drop_axis(self, qubit: int, ax: int) -> None:
        del self._axis_of[qubit]
        for q, a in self._axis_of.items():
            if a > ax:
                self._axis_of[q] = a - 1

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------
    def apply(self, u: np.ndarray, *qubits: int) -> None:
        """Apply a ``2^k x 2^k`` unitary to ``k`` qubits.

        The first qubit in ``qubits`` corresponds to the most significant
        bit of the matrix index (``U = sum |i><j|`` over k-bit ints).
        """
        k = len(qubits)
        if len(set(qubits)) != k:
            raise SimulationError(f"duplicate qubits in {qubits}")
        # Rounding boundary: the matrix lands in the register dtype once,
        # so the contraction runs in-precision (NEP 50 would otherwise
        # promote a complex64 state to complex128).
        u = np.asarray(u, dtype=self._dtype)
        if u.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {u.shape} does not match {k} qubits"
            )
        axes = [self._axis(q) for q in qubits]
        ut = u.reshape((2,) * (2 * k))
        # Contract the "column" indices of U with the state's qubit axes.
        psi = np.tensordot(ut, self._psi, axes=(range(k, 2 * k), axes))
        # tensordot puts the k new indices first; move them back in place.
        self._psi = np.moveaxis(psi, range(k), axes)

    def apply_controlled(
        self, u: np.ndarray, controls: Sequence[int], targets: Sequence[int]
    ) -> None:
        """Apply ``u`` on ``targets`` conditioned on all ``controls`` = |1>.

        Works on the |1...1> control slice in place — no ``2^k``-dim
        controlled matrix is ever materialized.
        """
        controls = list(controls)
        targets = list(targets)
        if set(controls) & set(targets):
            raise SimulationError("control and target qubits overlap")
        k = len(targets)
        u = np.asarray(u, dtype=self._dtype)
        if u.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {u.shape} does not match {k} targets"
            )
        c_axes = [self._axis(q) for q in controls]
        view = self._psi
        # Slice out the all-ones control subspace (a view on the state).
        idx: list = [slice(None)] * view.ndim
        for a in c_axes:
            idx[a] = 1
        sub = view[tuple(idx)]
        # Target axes within the sliced view: axes shift down past removed
        # control axes.
        t_axes = []
        for q in targets:
            a = self._axis(q)
            t_axes.append(a - sum(1 for c in c_axes if c < a))
        ut = u.reshape((2,) * (2 * k))
        new = np.tensordot(ut, sub, axes=(range(k, 2 * k), t_axes))
        view[tuple(idx)] = np.moveaxis(new, range(k), t_axes)

    def apply_ops(self, ops) -> None:
        """Execute a batch of typed op records (see :mod:`repro.qmpi.ops`).

        The batch is compiled into typed segments by
        :func:`repro.sim.schedule.compile_segments` (layout-less: one
        flat array means everything is communication-free) and this
        engine merely interprets them: each
        :class:`~repro.sim.schedule.KernelRun` is an in-order loop of
        duck-typed ops, each :class:`~repro.sim.schedule.DiagSegment`
        one broadcasted phase-vector multiply, and each
        :class:`~repro.sim.schedule.PlanSegment` one tensor contraction
        of its precontracted window unitary (one pass over the
        amplitudes for the whole fused run); the sharded engine overlays
        real per-chunk batching and worker dispatch on the same IR.
        """
        self.execute_segments(self.compile_batch(ops))

    # ------------------------------------------------------------------
    # schedule-cache engine API (see repro.sim.cache)
    # ------------------------------------------------------------------
    def layout_key(self, qubits):
        """Layout fingerprint of this engine for the touched ``qubits``.

        Two calls returning equal keys guarantee that a segment list
        compiled under the first is valid under the second: the key
        pins the axis of every touched qubit, the total axis count, the
        presence of the shots branch axis, and the amplitude dtype.
        Unknown qubit ids raise, so a stale cached schedule can never
        bind to a recycled engine that no longer owns them.
        """
        branch = self._shots is not None
        return (
            "shared",
            tuple(self._axis(q) for q in qubits),
            self._psi.ndim,
            branch,
            self.dtype,
        )

    def compile_batch(self, ops):
        """Compile a lowered op batch into this engine's segment list."""
        return compile_segments(ops)

    def execute_segments(self, segments) -> None:
        """Interpret an already-compiled segment list (cache replay path)."""
        for seg in segments:
            self.segments_executed += 1
            if isinstance(seg, KernelRun):
                for op in seg.ops:
                    controls = op.controls
                    if controls:
                        self.apply_controlled(
                            op.target_matrix(), list(controls), list(op.targets)
                        )
                    else:
                        self.apply(op.target_matrix(), *op.targets)
            elif isinstance(seg, DiagSegment):
                self._apply_diag_batch(seg.batch)
            else:  # PlanSegment (ExchangeSegment never occurs layout-less)
                self.apply(seg.plan.u, *seg.plan.qubits)

    # ------------------------------------------------------------------
    # frozen replay (schedule-cache warm path)
    # ------------------------------------------------------------------
    def _freeze_contraction(self, target_axes, ndim):
        """Precompute the transpose/reshape/dot pipeline of one ``apply``.

        Replicates exactly what ``np.tensordot(ut, psi, (col_axes,
        target_axes))`` followed by ``np.moveaxis(res, range(k), axes)``
        does: transpose the contracted axes to the front, flatten to a
        ``(2^k, rest)`` matrix, one ``np.dot``, then the inverse
        permutation — the same array operations on the same values, so
        the result is bit-identical to the interpreter.
        """
        k = len(target_axes)
        notin = tuple(a for a in range(ndim) if a not in target_axes)
        perm_in = tuple(target_axes) + notin
        order = list(range(k, ndim))
        for dest, src in sorted(zip(target_axes, range(k))):
            order.insert(dest, src)
        return k, 1 << k, notin, perm_in, tuple(order)

    def freeze_segments(self, segments):
        """Freeze a bound segment list into a replay program.

        One step per kernel op / diagonal batch / plan, with every
        axis permutation precomputed against this engine's current
        layout (the schedule cache keeps one program per
        :meth:`layout_key`).  Steps hold references to the live segment
        objects, so the cache's in-place parameter rebinding flows
        through; matrices are memoized per op *object* (a rebind swaps
        the op, invalidating the memo).
        """
        ndim = self._psi.ndim
        steps = []
        n_segments = 0
        for seg in segments:
            n_segments += 1
            if isinstance(seg, KernelRun):
                for i, op in enumerate(seg.ops):
                    controls = op.controls
                    if not controls:
                        axes = [self._axis(q) for q in op.targets]
                        steps.append(
                            ("k", seg, i, [None, None],
                             *self._freeze_contraction(axes, ndim))
                        )
                        continue
                    c_axes = [self._axis(q) for q in controls]
                    idx: list = [slice(None)] * ndim
                    for a in c_axes:
                        idx[a] = 1
                    t_axes = []
                    for q in op.targets:
                        a = self._axis(q)
                        t_axes.append(a - sum(1 for c in c_axes if c < a))
                    steps.append(
                        ("c", seg, i, [None, None], tuple(idx),
                         *self._freeze_contraction(t_axes, ndim - len(c_axes)))
                    )
            elif isinstance(seg, DiagSegment):
                steps.append(("d", seg))
            else:  # PlanSegment
                axes = [self._axis(q) for q in seg.plan.qubits]
                steps.append(
                    ("p", seg, *self._freeze_contraction(axes, ndim))
                )
        return n_segments, tuple(steps)

    def execute_frozen(self, program) -> None:
        """Replay a frozen program (same arithmetic as the interpreter)."""
        n_segments, steps = program
        self.segments_executed += n_segments
        dot = np.dot
        for step in steps:
            kind = step[0]
            if kind == "k":
                _, seg, i, cell, k, rows, notin, perm_in, perm_out = step
                op = seg.ops[i]
                if op is cell[0]:
                    u = cell[1]
                else:
                    u = np.asarray(op.target_matrix(), dtype=self._dtype)
                    cell[0], cell[1] = op, u
                psi = self._psi
                st = psi.transpose(perm_in).reshape(rows, -1)
                shape = (2,) * k + tuple(psi.shape[a] for a in notin)
                self._psi = dot(u, st).reshape(shape).transpose(perm_out)
            elif kind == "c":
                _, seg, i, cell, idx, k, rows, notin, perm_in, perm_out = step
                op = seg.ops[i]
                if op is cell[0]:
                    u = cell[1]
                else:
                    u = np.asarray(op.target_matrix(), dtype=self._dtype)
                    cell[0], cell[1] = op, u
                view = self._psi
                sub = view[idx]
                st = sub.transpose(perm_in).reshape(rows, -1)
                shape = (2,) * k + tuple(sub.shape[a] for a in notin)
                view[idx] = dot(u, st).reshape(shape).transpose(perm_out)
            elif kind == "d":
                self._apply_diag_batch(step[1].batch)
            else:  # "p"
                _, seg, k, rows, notin, perm_in, perm_out = step
                u = np.asarray(seg.plan.u, dtype=self._dtype)
                psi = self._psi
                st = psi.transpose(perm_in).reshape(rows, -1)
                shape = (2,) * k + tuple(psi.shape[a] for a in notin)
                self._psi = dot(u, st).reshape(shape).transpose(perm_out)

    def _apply_diag_batch(self, batch: DiagBatch) -> None:
        """One vectorized multiply for a whole coalesced diagonal run.

        The batch's phase tables are materialized as a single tensor of
        shape ``(1|2,) * n`` (size 2 only on the involved axes) and
        broadcast-multiplied into the state — one pass instead of one
        strided kernel per gate.
        """
        n = self._psi.ndim
        singles = [
            (n - 1 - self._axis(q), t) for q, t in batch.phases1.items()
        ]
        pairs = [
            ((n - 1 - self._axis(a), n - 1 - self._axis(b)), t)
            for (a, b), t in batch.phases2.items()
        ]
        self._psi *= chunk_phase(singles, pairs, n, kernels=self._kernels)

    # -- conveniences ---------------------------------------------------
    def h(self, q: int) -> None:
        self.apply(G.H, q)

    def x(self, q: int) -> None:
        self.apply(G.X, q)

    def y(self, q: int) -> None:
        self.apply(G.Y, q)

    def z(self, q: int) -> None:
        self.apply(G.Z, q)

    def s(self, q: int) -> None:
        self.apply(G.S, q)

    def sdg(self, q: int) -> None:
        self.apply(G.SDG, q)

    def t(self, q: int) -> None:
        self.apply(G.T, q)

    def tdg(self, q: int) -> None:
        self.apply(G.TDG, q)

    def rx(self, q: int, theta: float) -> None:
        self.apply(G.rx(theta), q)

    def ry(self, q: int, theta: float) -> None:
        self.apply(G.ry(theta), q)

    def rz(self, q: int, theta: float) -> None:
        self.apply(G.rz(theta), q)

    def cnot(self, control: int, target: int) -> None:
        self.apply_controlled(G.X, [control], [target])

    def cz(self, control: int, target: int) -> None:
        self.apply_controlled(G.Z, [control], [target])

    def crz(self, control: int, target: int, theta: float) -> None:
        self.apply_controlled(G.rz(theta), [control], [target])

    def cphase(self, control: int, target: int, lam: float) -> None:
        self.apply_controlled(G.phase(lam), [control], [target])

    def swap(self, a: int, b: int) -> None:
        self.apply(G.SWAP, a, b)

    def toffoli(self, c1: int, c2: int, target: int) -> None:
        self.apply_controlled(G.X, [c1, c2], [target])

    # ------------------------------------------------------------------
    # measurement and inspection
    # ------------------------------------------------------------------
    def _branch_prob_one(self, qubit: int) -> np.ndarray:
        """Per-branch probability of |1> on ``qubit``, shape ``(B,)``."""
        ax = self._axis(qubit)
        moved = np.moveaxis(self._psi, ax, 1)  # (B, 2, ...)
        p = np.abs(moved[:, 1].reshape(moved.shape[0], -1)) ** 2
        return np.clip(p.sum(axis=1), 0.0, 1.0)

    def prob_one(self, qubit: int):
        """Probability of measuring |1> on ``qubit`` (no collapse).

        Outside shots mode (and whenever every tracked branch agrees)
        this is a plain float; after a measurement fork made the
        probability branch-dependent, the per-shot values are returned
        as an array instead.
        """
        if self._shots is None:
            ax = self._axis(qubit)
            moved = np.moveaxis(self._psi, ax, 0)
            return float(np.sum(np.abs(moved[1]) ** 2))
        p = self._branch_prob_one(qubit)
        if np.ptp(p) < self._agree_eps:
            return float(p[0])
        return p[self._shot_of]

    def measure(self, qubit: int):
        """Projective Z-basis measurement with collapse.

        Returns 0 or 1; in shots mode returns a
        :class:`~repro.sim.shots.ShotBits` of per-shot outcomes, and the
        state forks into one branch per surviving ``(branch, outcome)``
        pair.
        """
        if self._shots is None:
            p1 = self.prob_one(qubit)
            bit = int(self.rng.random() < p1)
            self.postselect(qubit, bit)
            return bit
        p1 = self._branch_prob_one(qubit)
        bits, self._shot_of, spec = fork_outcomes(p1, self._shot_of, self.rng)
        ax = self._axis(qubit)
        moved = np.moveaxis(self._psi, ax, 1)  # (B, 2, ...)
        new = np.zeros((len(spec),) + moved.shape[1:], dtype=moved.dtype)
        for i, (b, outcome, scale) in enumerate(spec):
            # float(scale) keeps the scalar weak under NEP 50 so a
            # complex64 state is not promoted (exact for float64).
            new[i, outcome] = moved[b, outcome] * float(scale)
        self._psi = np.moveaxis(new, 1, ax)
        return bits

    def apply_pauli_if(self, cond, pauli: str, qubit: int) -> None:
        """Apply a Pauli to ``qubit`` where ``cond`` holds.

        ``cond`` is an int/bool (plain conditional application) or
        per-shot measurement data (:class:`~repro.sim.shots.ShotBits`):
        the Pauli is then applied only on the branches whose shots
        satisfy it — the vectorized form of the protocols' classical
        ``if m: X`` fixups.
        """
        u = G.PAULIS[pauli.upper()]
        if self._shots is None:
            if cond:
                self.apply(u, qubit)
            return
        mask = branch_mask(cond, self._shot_of, self._psi.shape[0])
        if not mask.any():
            return
        if mask.all():
            self.apply(u, qubit)
            return
        ax = self._axis(qubit)
        moved = np.moveaxis(self._psi, ax, 1)  # (B, 2, ...)
        p = pauli.upper()
        if p == "X":
            moved[mask] = moved[mask][:, ::-1]
        elif p == "Z":
            moved[mask, 1] = moved[mask, 1] * -1.0
        else:  # Y
            sel = moved[mask]
            out = np.empty_like(sel)
            out[:, 0] = -1j * sel[:, 1]
            out[:, 1] = 1j * sel[:, 0]
            moved[mask] = out

    def postselect(self, qubit: int, bit: int) -> None:
        """Project ``qubit`` onto ``|bit>`` and renormalize (per branch)."""
        ax = self._axis(qubit)
        moved = np.moveaxis(self._psi, ax, 0)
        moved[1 - bit] = 0.0
        if self._shots is None:
            norm = np.linalg.norm(self._psi)
            if norm < self._norm_eps:
                raise SimulationError(
                    f"postselecting qubit {qubit} on {bit}: outcome has zero "
                    "probability"
                )
            self._psi /= norm
            return
        flat = np.abs(self._psi.reshape(self._psi.shape[0], -1)) ** 2
        norms = np.sqrt(flat.sum(axis=1))
        if np.any(norms < self._norm_eps):
            raise SimulationError(
                f"postselecting qubit {qubit} on {bit}: outcome has zero "
                "probability in some branch"
            )
        self._psi /= norms.reshape((-1,) + (1,) * (self._psi.ndim - 1))

    def measure_many(self, qubits: Iterable[int]) -> list[int]:
        """Measure several qubits sequentially (with collapse)."""
        return [self.measure(q) for q in qubits]

    def amplitude(self, bits: Sequence[int], qubits: Sequence[int] | None = None) -> complex:
        """Amplitude of the computational basis state given by ``bits``.

        ``qubits`` defaults to all qubits in allocation order.
        """
        qubits = list(qubits) if qubits is not None else list(self.qubit_ids)
        if len(bits) != len(qubits):
            raise SimulationError("bits and qubits must have equal length")
        if len(qubits) != self.num_qubits:
            raise SimulationError("amplitude() requires all qubits")
        self._require_unforked("amplitude")
        idx = [0] * self._psi.ndim
        for b, q in zip(bits, qubits):
            idx[self._axis(q)] = int(b)
        return complex(self._psi[tuple(idx)])

    def statevector(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Dense state vector with ``qubits[0]`` as the most significant bit.

        ``qubits`` must enumerate all allocated qubits; defaults to
        allocation order.
        """
        qubits = list(qubits) if qubits is not None else list(self.qubit_ids)
        if sorted(qubits) != sorted(self._axis_of):
            raise SimulationError("statevector() requires all qubit ids exactly once")
        self._require_unforked("statevector")
        axes = [self._axis(q) for q in qubits]
        if self._shots is not None:
            moved = np.moveaxis(self._psi, axes, range(1, len(axes) + 1))
            return moved[0].reshape(-1).copy()
        return np.moveaxis(self._psi, axes, range(len(axes))).reshape(-1).copy()

    def _require_unforked(self, what: str) -> None:
        if self._shots is not None and self._psi.shape[0] > 1:
            raise SimulationError(
                f"{what}() is ambiguous after a mid-circuit measurement "
                f"fork ({self._psi.shape[0]} branches); inspect counts or "
                "per-shot measurement results instead"
            )

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Measurement distribution over computational basis states."""
        vec = self.statevector(qubits)
        return np.abs(vec) ** 2

    def norm(self) -> float:
        """Euclidean norm of the state (should always be ~1).

        In shots mode this is the root-mean-square of the per-branch
        norms, so it stays ~1 regardless of how many branches exist.
        """
        if self._shots is not None:
            return float(np.linalg.norm(self._psi) / np.sqrt(self._psi.shape[0]))
        return float(np.linalg.norm(self._psi))

    def expectation_pauli(self, mapping: dict[int, str]) -> float:
        """Expectation value of a Pauli string ``{qubit: 'X'|'Y'|'Z'}``."""
        self._require_unforked("expectation_pauli")
        tmp = self._psi.copy()
        saved = self._psi
        try:
            self._psi = tmp
            for q, p in mapping.items():
                self.apply(G.PAULIS[p.upper()], q)
            val = np.vdot(saved, self._psi)
        finally:
            self._psi = saved
        return float(np.real(val))

    def copy(self) -> "StateVector":
        """Deep copy (shares no state, including a cloned RNG)."""
        out = StateVector.__new__(StateVector)
        # Same mode/threshold, fresh counters: the copy's kernel hits
        # are its own.
        out._kernels = KernelDispatch(
            self._kernels.mode, jit_min_amps=self._kernels.jit_min_amps
        )
        out._dtype = self._dtype
        out._zero_atol = self._zero_atol
        out._norm_eps = self._norm_eps
        out._agree_eps = self._agree_eps
        out._psi = self._psi.copy()
        out._axis_of = dict(self._axis_of)
        out._next_id = self._next_id
        out._shots = self._shots
        out._shot_of = None if self._shot_of is None else self._shot_of.copy()
        out.segments_executed = self.segments_executed
        out.rng = np.random.default_rng(self.rng.integers(2**63))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StateVector n={self.num_qubits} ids={self.qubit_ids}>"
