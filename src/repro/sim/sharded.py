"""Sharded state-vector engine: amplitudes distributed across chunk ranks.

Classical HPC simulators (QCMPI; QuEST; the chunked ``SimDistribute``
design) do not funnel every operation through one rank-0-owned array the
way the paper's §6 prototype does. Instead the ``2^n`` amplitudes are
split into ``R`` contiguous chunks, one per simulation rank, and each
gate is applied cooperatively:

* a gate on a **local axis** (one of the low ``n - log2(R)`` bits) only
  permutes/combines amplitudes *within* each chunk, so every rank applies
  a vectorized strided kernel to its own flat array — no communication;
* a gate on a **high axis** (one of the top ``log2(R)`` bits) pairs each
  chunk with the chunk whose index differs in that bit, and the pair
  exchange their amplitudes before combining — here the exchange travels
  through the same :class:`repro.mpi.Fabric` mailboxes that carry QMPI's
  classical traffic, so message matching is exercised for real;
* **diagonal** gates — single-qubit (Z, S, T, Rz) or single-target
  controlled (CZ, controlled-phase) — never need the exchange even on
  high axes: each chunk just scales itself.

Layout
------
The state is a list of ``R`` flat contiguous complex128 arrays.  Global
amplitude index ``g`` lives in ``chunks[g >> n_local][g & (csize - 1)]``
with ``csize = 2^n_local``.  Qubit handles are stable integer ids mapped
to *bit positions*: a freshly allocated qubit is the least significant
bit, pushing all existing qubits one bit up, which keeps both allocation
(interleave-doubling each chunk) and the paper-convention ``statevector``
(first-allocated qubit = most significant bit = plain chunk
concatenation) purely local operations.

While fewer than ``log2(R)`` qubits exist the engine runs with
``min(R, 2^n)`` active chunks and grows to the full shard count as qubits
are allocated; releasing a high-axis qubit compacts the chunk list again.

Batched execution exploits the chunk layout two ways (see
:meth:`ShardedStateVector.apply_ops`): communication-free single-qubit
runs execute chunk-by-chunk in one pass, and coalesced
:class:`~repro.sim.diag.DiagBatch` records materialize as one phase
vector per shard-bit signature — computed once and reused by every chunk
that shares the signature — applied in a single vectorized multiply.
With ``workers=N`` both bulk paths additionally fan out across a
persistent process pool (:class:`~repro.sim.parallel.ChunkPool`) that
mutates the chunks in place through shared-memory buffers.

The class mirrors :class:`repro.sim.statevector.StateVector`'s public API
exactly (same methods, same error messages, same RNG draw discipline), so
the two engines are drop-in interchangeable behind
:class:`repro.qmpi.backend.QuantumBackend`.
"""

from __future__ import annotations

import itertools
from multiprocessing import shared_memory
from typing import Iterable, Sequence

import numpy as np

from ..mpi.fabric import Fabric
from . import gates as G
from .diag import DiagBatch, chunk_phase
from .parallel import ChunkPool, apply_run, contract_local
from .plan import ContractionPlan
from .statevector import SimulationError

__all__ = ["ShardedStateVector"]


class ShardedStateVector:
    """A dynamically sized state-vector simulator sharded into chunks.

    Parameters
    ----------
    n_qubits:
        Number of qubits to allocate immediately (ids ``0..n-1``).
    seed:
        Seed or :class:`numpy.random.Generator` for measurement sampling.
    n_shards:
        Number of chunks the amplitudes are distributed over; must be a
        power of two. ``n_shards=1`` degenerates to a single flat array.
    workers:
        Number of persistent chunk-worker processes for the opt-in
        parallel executor (default 0 = serial). When positive, chunks
        live in shared-memory buffers and communication-free op runs and
        diagonal phase-vector multiplies are mapped across the chunks by
        a :class:`~repro.sim.parallel.ChunkPool`. Call :meth:`close`
        when done (GC also closes as a safety net).
    parallel_min_chunk:
        Smallest chunk size (amplitudes) worth dispatching to the pool;
        below it the per-task IPC overhead exceeds the kernel time and
        execution stays serial. Tests force the pool with ``1``.

    Examples
    --------
    >>> sv = ShardedStateVector(2, n_shards=2)
    >>> sv.h(0); sv.cnot(0, 1)
    >>> abs(sv.amplitude([0, 0])) ** 2  # doctest: +ELLIPSIS
    0.4999...
    """

    def __init__(
        self,
        n_qubits: int = 0,
        seed=None,
        n_shards: int = 4,
        workers: int = 0,
        parallel_min_chunk: int = 1 << 14,
    ):
        if n_shards < 1 or (n_shards & (n_shards - 1)):
            raise SimulationError(f"n_shards must be a power of two, got {n_shards}")
        if workers < 0:
            raise SimulationError(f"workers must be >= 0, got {workers}")
        self.n_shards = n_shards
        self._fabric = Fabric(n_shards)
        self._tags = itertools.count()
        self._workers = int(workers)
        self._parallel_min_chunk = int(parallel_min_chunk)
        self._pool: ChunkPool | None = None
        self._shm: list[shared_memory.SharedMemory] | None = [] if workers else None
        self._retired: list[shared_memory.SharedMemory] = []
        # Zero qubits == one chunk holding the single amplitude 1.
        self._chunks: list[np.ndarray] = []
        self._store_chunks([np.ones(1, dtype=np.complex128)])
        self._bit_of: dict[int, int] = {}
        self._next_id = 0
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)
        if n_qubits:
            self.alloc(n_qubits)

    # ------------------------------------------------------------------
    # layout introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of currently allocated qubits."""
        return len(self._bit_of)

    @property
    def num_chunks(self) -> int:
        """Active chunk count (at most ``min(n_shards, 2^num_qubits)``;
        releasing a high-axis qubit halves it until the next alloc
        rebalances)."""
        return len(self._chunks)

    @property
    def chunk_size(self) -> int:
        """Amplitudes per chunk (``2^n_local``)."""
        return self._chunks[0].size

    @property
    def n_local(self) -> int:
        """Number of local (intra-chunk) axes."""
        return self.chunk_size.bit_length() - 1

    def chunk(self, rank: int) -> np.ndarray:
        """Chunk ``rank``'s amplitudes (a live view, for white-box tests)."""
        return self._chunks[rank]

    @property
    def qubit_ids(self) -> tuple[int, ...]:
        """Allocated qubit ids in allocation order (descending bit position)."""
        return tuple(sorted(self._bit_of, key=self._bit_of.__getitem__, reverse=True))

    @property
    def workers(self) -> int:
        """Worker-process count of the parallel chunk executor (0 = serial)."""
        return self._workers

    # ------------------------------------------------------------------
    # chunk storage (shared-memory backed when workers are enabled)
    # ------------------------------------------------------------------
    def _store_chunks(self, arrs: Sequence[np.ndarray]) -> None:
        """Install a new chunk list, preserving shared-memory backing.

        With ``workers=0`` this is a plain rebind. With workers enabled,
        a same-layout update copies into the existing shared-memory
        buffers (chunk identity stays stable — no segment churn on
        high-axis gates), while a layout change (alloc/release/
        rebalance) reallocates the segments.
        """
        arrs = list(arrs)
        if self._shm is None:
            self._chunks = arrs
            return
        if len(arrs) == len(self._chunks) and all(
            a.size == c.size for a, c in zip(arrs, self._chunks)
        ):
            for a, c in zip(arrs, self._chunks):
                if a is not c:
                    c[:] = a
            return
        self._drain_retired()
        old = self._shm
        self._shm = []
        chunks = []
        for a in arrs:
            shm = shared_memory.SharedMemory(create=True, size=max(16, 16 * a.size))
            self._shm.append(shm)
            view = np.ndarray((a.size,), dtype=np.complex128, buffer=shm.buf)
            view[:] = a
            chunks.append(view)
        self._chunks = chunks
        del arrs
        for s in old:
            self._release_shm(s)

    def _set_chunk(self, i: int, arr: np.ndarray) -> None:
        """Replace one same-size chunk (in place when shared-memory backed)."""
        if self._shm is None:
            self._chunks[i] = arr
        else:
            self._chunks[i][:] = arr

    def _release_shm(self, shm: shared_memory.SharedMemory) -> None:
        # Unlink first (always possible); if a stale external view still
        # pins the mapping, park the segment and retry the close later.
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            shm.close()
        except BufferError:
            self._retired.append(shm)

    def _drain_retired(self) -> None:
        still = []
        for shm in self._retired:
            try:
                shm.close()
            except BufferError:
                still.append(shm)
        self._retired = still

    def _get_pool(self) -> ChunkPool:
        if self._pool is None:
            self._pool = ChunkPool(self._workers)
        return self._pool

    def _parallel_ready(self) -> bool:
        """True when a bulk op should be dispatched to the worker pool."""
        return (
            self._workers > 0
            and len(self._chunks) > 1
            and self.chunk_size >= self._parallel_min_chunk
        )

    def close(self) -> None:
        """Shut down the worker pool and release shared-memory buffers.

        The engine stays usable afterwards: amplitudes migrate back to
        ordinary process-private arrays and execution continues
        serially. Idempotent; garbage collection calls it as a safety
        net, but deterministic cleanup (tests, long-lived services)
        should call it explicitly.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._shm is not None:
            self._chunks = [c.copy() for c in self._chunks]
            shms, self._shm = self._shm, None
            for s in shms:
                self._release_shm(s)
            self._workers = 0
        self._drain_retired()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, n: int = 1) -> list[int]:
        """Allocate ``n`` fresh qubits in |0> and return their ids."""
        if n < 1:
            raise SimulationError(f"cannot allocate {n} qubits")
        ids = []
        for _ in range(n):
            qid = self._next_id
            self._next_id += 1
            for q in self._bit_of:
                self._bit_of[q] += 1
            self._bit_of[qid] = 0
            # New LSB in |0>: amplitudes interleave with zeros, chunk-locally.
            grown = []
            for c in self._chunks:
                g = np.zeros(2 * c.size, dtype=np.complex128)
                g[0::2] = c
                grown.append(g)
            if len(grown) < self.n_shards:
                # Rebalance: split each doubled chunk at its top bit so the
                # active chunk count tracks min(n_shards, 2^n).
                half = grown[0].size // 2
                grown = [part for c in grown for part in (c[:half].copy(), c[half:].copy())]
            self._store_chunks(grown)
            ids.append(qid)
        return ids

    def release(self, qubit: int) -> None:
        """Release a qubit that is disentangled and in state |0>.

        Mirrors ``QMPI_Free_qmem``: freeing a qubit that still carries
        amplitude in |1> (or is entangled) is a program error.
        """
        b = self._bit(qubit)
        nl = self.n_local
        if b < nl:
            stride = 1 << b
            views = [c.reshape(-1, 2, stride) for c in self._chunks]
            if any(not np.allclose(v[:, 1, :], 0.0, atol=1e-9) for v in views):
                self._raise_not_zero(qubit)
            self._store_chunks(
                [np.ascontiguousarray(v[:, 0, :]).reshape(-1) for v in views]
            )
        else:
            mask = 1 << (b - nl)
            ones = [c for i, c in enumerate(self._chunks) if i & mask]
            if any(not np.allclose(c, 0.0, atol=1e-9) for c in ones):
                self._raise_not_zero(qubit)
            self._store_chunks(
                [c for i, c in enumerate(self._chunks) if not i & mask]
            )
        del self._bit_of[qubit]
        for q, bb in self._bit_of.items():
            if bb > b:
                self._bit_of[q] = bb - 1

    def measure_and_release(self, qubit: int) -> int:
        """Measure ``qubit`` in the Z basis, then remove it. Returns the bit."""
        bit = self.measure(qubit)
        if bit:
            self.x(qubit)
        self.release(qubit)
        return bit

    def _bit(self, qubit: int) -> int:
        try:
            return self._bit_of[qubit]
        except KeyError:
            raise SimulationError(f"unknown qubit id {qubit}") from None

    @staticmethod
    def _raise_not_zero(qubit: int) -> None:
        raise SimulationError(
            f"qubit {qubit} is not in |0> (or is entangled); "
            "measure/uncompute before releasing"
        )

    # ------------------------------------------------------------------
    # chunk exchange (the communication layer)
    # ------------------------------------------------------------------
    def _pair_exchange(self, shard_bit: int) -> list[np.ndarray]:
        """Every chunk sends its amplitudes to its partner in ``shard_bit``
        and receives the partner's, all through the fabric mailboxes.
        Returns the partner chunk for each chunk index."""
        tag = next(self._tags)
        mask = 1 << shard_bit
        for c in range(len(self._chunks)):
            self._fabric.send(0, c, c ^ mask, tag, self._chunks[c])
        return [
            self._fabric.recv(0, c, c ^ mask, tag).payload
            for c in range(len(self._chunks))
        ]

    def _group_exchange(
        self, shard_bits: Sequence[int]
    ) -> tuple[dict[int, list[int]], dict[int, list[np.ndarray]]]:
        """All-to-all chunk exchange within each ``2^h``-member group.

        Chunks agreeing on every shard bit *not* in ``shard_bits`` form a
        group; each member ships its chunk to every other member over the
        fabric. Returns ``(groups, gathered)`` where ``groups`` maps a
        group base index to its member indices (ascending, i.e. ordered by
        the value of the ``shard_bits`` coordinate) and ``gathered`` maps
        each chunk index to the group's chunks in that same order.
        """
        tag = next(self._tags)
        groups: dict[int, list[int]] = {}
        for c in range(len(self._chunks)):
            base = c
            for j in shard_bits:
                base &= ~(1 << j)
            groups.setdefault(base, []).append(c)
        for members in groups.values():
            for src in members:
                for dst in members:
                    if dst != src:
                        self._fabric.send(0, src, dst, tag, self._chunks[src])
        gathered: dict[int, list[np.ndarray]] = {}
        for members in groups.values():
            for dst in members:
                gathered[dst] = [
                    self._chunks[dst]
                    if src == dst
                    else self._fabric.recv(0, dst, src, tag).payload
                    for src in members
                ]
        return groups, gathered

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------
    def apply_ops(self, ops) -> None:
        """Execute a batch of typed op records (see :mod:`repro.qmpi.ops`)
        with per-chunk batching.

        Communication-free single-qubit ops (local axis, or diagonal on
        any axis) are collected into runs and executed chunk-by-chunk in
        a single pass — one traversal of each flat chunk for the whole
        run instead of one per gate. Coalesced
        :class:`~repro.sim.diag.DiagBatch` records apply as one phase
        vector per shard-bit signature (see :meth:`_apply_diag_batch`).
        :class:`~repro.sim.plan.ContractionPlan` records are classified
        once against the chunk layout (see :meth:`_classify_plan`):
        communication-free forms join the pending run as one matmul per
        chunk; only a plan whose unitary genuinely mixes a shard axis
        drains the run and performs one group exchange for the whole
        plan. Other ops that need chunk exchange (or multi-qubit
        contraction) are likewise barriers: they drain the pending run,
        dispatch individually, and the next run resumes after them.
        With ``workers=N`` the run and phase-vector paths fan out across
        the chunk worker pool.
        """
        run: list[tuple] = []  # tagged entries, see parallel.apply_run
        for op in ops:
            if isinstance(op, DiagBatch):
                if run:
                    self._apply_single_run(run)
                    run = []
                self._apply_diag_batch(op)
                continue
            if isinstance(op, ContractionPlan):
                entry = self._classify_plan(op)
                if entry is not None:
                    run.append(entry)
                    continue
                if run:
                    self._apply_single_run(run)
                    run = []
                # Shard-axis-mixing plan: one exchange for the whole
                # fused run instead of one per constituent op.
                self.apply(op.u, *op.qubits)
                continue
            if not op.controls and len(op.qubits) == 1:
                u = np.asarray(op.target_matrix(), dtype=np.complex128)
                b = self._bit(op.qubits[0])
                diag = u[0, 1] == 0 and u[1, 0] == 0
                if diag or b < self.n_local:
                    run.append(("sq", u, b, diag))
                    continue
            if run:
                self._apply_single_run(run)
                run = []
            if op.controls:
                self.apply_controlled(op.target_matrix(), list(op.controls), list(op.targets))
            else:
                self.apply(op.target_matrix(), *op.targets)
        if run:
            self._apply_single_run(run)

    def _classify_plan(self, plan: ContractionPlan):
        """Classify a contraction plan against the chunk layout, once.

        Returns a run entry for the communication-free forms, or
        ``None`` when the plan needs chunk exchange:

        * every window qubit on a local axis — ``("ct", u, bits)``: one
          in-chunk matmul per chunk;
        * the fused unitary **block-diagonal** on every shard axis it
          touches (control-like high qubits: a fused CNOT ladder
          controlled from a shard axis, products of diagonals...) —
          ``("csel", table, hi_bits, lo_bits)``: amplitudes never cross
          a chunk boundary, so each chunk contracts the sub-block its
          shard-bit signature selects (identity sub-blocks are skipped
          outright; the table is built once per plan and shared by all
          chunks with the same signature);
        * anything else mixes amplitudes across a shard axis — the
          caller falls back to one group exchange for the whole plan.
        """
        bits = [self._bit(q) for q in plan.qubits]
        nl = self.n_local
        if all(b < nl for b in bits):
            return ("ct", plan.u, tuple(bits))
        w = len(bits)
        high_idx = [i for i, b in enumerate(bits) if b >= nl]
        h = len(high_idx)
        # Row/column index bit of window qubit i is (w - 1 - i); the
        # plan is exchange-free iff no matrix entry couples two distinct
        # shard-axis bit patterns.
        hmask = sum(1 << (w - 1 - i) for i in high_idx)
        g = np.arange(1 << w)
        mixing = (g[:, None] & hmask) != (g[None, :] & hmask)
        if np.any(np.abs(plan.u[mixing]) > 1e-12):
            return None
        eye = np.eye(1 << (w - h), dtype=np.complex128)
        table = []
        for sig in range(1 << h):
            pattern = sum(
                ((sig >> (h - 1 - j)) & 1) << (w - 1 - i)
                for j, i in enumerate(high_idx)
            )
            rows = g[(g & hmask) == pattern]
            sub = np.ascontiguousarray(plan.u[np.ix_(rows, rows)])
            if np.allclose(sub, eye, rtol=0.0, atol=1e-12):
                table.append(None)
            elif sub.shape == (1, 1):
                table.append(complex(sub[0, 0]))
            else:
                table.append(sub)
        hi_bits = tuple(bits[i] - nl for i in high_idx)
        lo_bits = tuple(b for b in bits if b < nl)
        return ("csel", tuple(table), hi_bits, lo_bits)

    def _apply_single_run(self, run) -> None:
        """One pass over each chunk applying a run of communication-free
        kernels — tagged single-qubit entries plus local/sub-block
        contraction-plan matmuls (the shared
        :func:`repro.sim.parallel.apply_run` kernel — same arithmetic as
        :meth:`_apply_single` / :func:`repro.sim.parallel.contract_local`),
        dispatched to the worker pool when the chunks are large enough
        to pay for it."""
        nl = self.n_local
        if self._parallel_ready():
            self._get_pool().run_tasks(
                ("run", self._shm[ci].name, c.size, nl, ci, run)
                for ci, c in enumerate(self._chunks)
            )
            return
        for ci, c in enumerate(self._chunks):
            apply_run(c, run, nl, ci)

    def _apply_diag_batch(self, batch: DiagBatch) -> None:
        """Apply a coalesced diagonal batch as per-chunk phase vectors.

        The per-qubit/per-pair phase tables are materialized into one
        broadcastable tensor per *shard-bit signature* — the tuple of
        high-axis bit values the batch touches — so the tensor is
        computed once per shape and shared by every chunk with that
        signature (the signature-independent local part is computed
        exactly once). Each chunk then updates with a single vectorized
        in-place multiply; no chunk ever exchanges amplitudes,
        regardless of which axes the batch touches.
        """
        nl = self.n_local
        singles = [(self._bit(q), t) for q, t in batch.phases1.items()]
        pairs = [
            ((self._bit(a), self._bit(b)), t)
            for (a, b), t in batch.phases2.items()
        ]
        lo_s = [(b, t) for b, t in singles if b < nl]
        hi_s = [(b, t) for b, t in singles if b >= nl]
        lo_p = [(bb, t) for bb, t in pairs if bb[0] < nl and bb[1] < nl]
        hi_p = [(bb, t) for bb, t in pairs if bb[0] >= nl or bb[1] >= nl]
        base = chunk_phase(lo_s, lo_p, nl)
        high_bits = sorted(
            {b - nl for b, _ in hi_s}
            | {b - nl for bb, _ in hi_p for b in bb if b >= nl}
        )
        vecs: dict[tuple[int, ...], np.ndarray] = {}
        sig_of: list[tuple[int, ...]] = []
        for ci in range(len(self._chunks)):
            sig = tuple((ci >> hb) & 1 for hb in high_bits)
            sig_of.append(sig)
            if sig not in vecs:
                if not high_bits:
                    vecs[sig] = base
                else:
                    extra = chunk_phase(hi_s, hi_p, nl, ci)
                    # All-identity extras (e.g. a control bit fixed to 0)
                    # come back 0-d: those chunks just reuse the base.
                    if extra.ndim == 0 and extra.item() == 1.0:
                        vecs[sig] = base
                    else:
                        vecs[sig] = base * extra
        if self._parallel_ready():
            self._mul_chunks_parallel(vecs, sig_of, nl)
            return
        for ci, c in enumerate(self._chunks):
            v = c.reshape((2,) * nl)
            v *= vecs[sig_of[ci]]

    def _mul_chunks_parallel(self, vecs, sig_of, nl: int) -> None:
        """Fan a per-signature phase-vector multiply out across the pool.

        Each signature's tensor is staged once in scratch shared memory
        (the in-process analogue of "compute on rank 0, broadcast");
        workers multiply their chunks in place and the scratch segments
        are released when every chunk has acknowledged.
        """
        scratch: dict[tuple[int, ...], tuple[shared_memory.SharedMemory, tuple]] = {}
        try:
            for sig, vec in vecs.items():
                shm = shared_memory.SharedMemory(
                    create=True, size=max(16, vec.nbytes)
                )
                staged = np.ndarray(vec.shape, dtype=np.complex128, buffer=shm.buf)
                staged[...] = vec
                del staged
                scratch[sig] = (shm, vec.shape)
            self._get_pool().run_tasks(
                (
                    "mul",
                    self._shm[ci].name,
                    c.size,
                    nl,
                    scratch[sig_of[ci]][0].name,
                    scratch[sig_of[ci]][1],
                )
                for ci, c in enumerate(self._chunks)
            )
        finally:
            for shm, _ in scratch.values():
                self._release_shm(shm)

    def apply(self, u: np.ndarray, *qubits: int) -> None:
        """Apply a ``2^k x 2^k`` unitary to ``k`` qubits.

        The first qubit in ``qubits`` corresponds to the most significant
        bit of the matrix index (``U = sum |i><j|`` over k-bit ints).
        """
        k = len(qubits)
        if len(set(qubits)) != k:
            raise SimulationError(f"duplicate qubits in {qubits}")
        u = np.asarray(u, dtype=np.complex128)
        if u.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {u.shape} does not match {k} qubits"
            )
        bits = [self._bit(q) for q in qubits]
        if k == 1:
            self._apply_single(u, bits[0])
        elif all(b < self.n_local for b in bits):
            self._apply_local(u, bits)
        else:
            self._apply_mixed(u, bits)

    def _apply_single(self, u: np.ndarray, b: int) -> None:
        nl = self.n_local
        if u[0, 1] == 0 and u[1, 0] == 0:
            # Diagonal gate: pure per-amplitude phase, never communicates.
            if b < nl:
                stride = 1 << b
                for c in self._chunks:
                    v = c.reshape(-1, 2, stride)
                    if u[0, 0] != 1.0:
                        v[:, 0, :] *= u[0, 0]
                    if u[1, 1] != 1.0:
                        v[:, 1, :] *= u[1, 1]
            else:
                mask = 1 << (b - nl)
                for i, c in enumerate(self._chunks):
                    c *= u[1, 1] if i & mask else u[0, 0]
            return
        if b < nl:
            # Local axis: strided in-place kernel on each flat chunk.
            stride = 1 << b
            for c in self._chunks:
                v = c.reshape(-1, 2, stride)
                a0 = v[:, 0, :].copy()
                a1 = v[:, 1, :]
                v[:, 0, :] = u[0, 0] * a0 + u[0, 1] * a1
                v[:, 1, :] = u[1, 0] * a0 + u[1, 1] * a1
            return
        # High axis: pair-chunk exchange, then a local linear combination.
        mask = 1 << (b - nl)
        partners = self._pair_exchange(b - nl)
        self._store_chunks(
            [
                u[1, 0] * partners[i] + u[1, 1] * c
                if i & mask
                else u[0, 0] * c + u[0, 1] * partners[i]
                for i, c in enumerate(self._chunks)
            ]
        )

    def _apply_local(self, u: np.ndarray, bits: Sequence[int]) -> None:
        # All axes intra-chunk: tensor contraction per chunk, no traffic
        # (the same in-place kernel the plan run entries use).
        nl = self.n_local
        for c in self._chunks:
            contract_local(c, u, bits, nl)

    def _apply_mixed(self, u: np.ndarray, bits: Sequence[int]) -> None:
        # At least one high axis: gather the 2^h group chunks, contract the
        # full group tensor, keep our slice. (Each member recomputes the
        # group tensor — redundant by 2^h, but h <= log2(n_shards) and
        # high-axis multi-qubit gates are the rare, communication-bound
        # case by construction.)
        k = len(bits)
        nl = self.n_local
        shard_bits = sorted({b - nl for b in bits if b >= nl})
        h = len(shard_bits)
        groups, gathered = self._group_exchange(shard_bits)
        ut = u.reshape((2,) * (2 * k))
        # Group-tensor axes: h shard axes first (most significant shard bit
        # first), then the n_local intra-chunk axes (bit nl-1 first).
        axes = [
            (h - 1 - shard_bits.index(b - nl)) if b >= nl else (h + nl - 1 - b)
            for b in bits
        ]
        new_chunks: list[np.ndarray] = [None] * len(self._chunks)  # type: ignore[list-item]
        for members in groups.values():
            for dst in members:
                t = np.stack(gathered[dst]).reshape((2,) * h + (2,) * nl)
                t = np.tensordot(ut, t, axes=(range(k, 2 * k), axes))
                t = np.moveaxis(t, range(k), axes)
                own = tuple((dst >> shard_bits[h - 1 - i]) & 1 for i in range(h))
                new_chunks[dst] = np.ascontiguousarray(t[own]).reshape(-1)
        self._store_chunks(new_chunks)

    def apply_controlled(
        self, u: np.ndarray, controls: Sequence[int], targets: Sequence[int]
    ) -> None:
        """Apply ``u`` on ``targets`` conditioned on all ``controls`` = |1>.

        When every target is a local axis this needs no communication at
        all, regardless of where the controls live: a chunk participates
        only if all its high-axis control bits are 1, and within it the
        |1...1> local-control slice is updated in place. Diagonal
        single-target gates (cz, controlled-phase) are communication-free
        on any axis; only a non-diagonal high-axis *target* falls back to
        the dense controlled matrix (and its exchange).
        """
        controls = list(controls)
        targets = list(targets)
        if set(controls) & set(targets):
            raise SimulationError("control and target qubits overlap")
        k = len(targets)
        u = np.asarray(u, dtype=np.complex128)
        if u.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {u.shape} does not match {k} targets"
            )
        if not controls:
            self.apply(u, *targets)
            return
        nl = self.n_local
        c_bits = [self._bit(q) for q in controls]
        t_bits = [self._bit(q) for q in targets]
        if len(set(c_bits + t_bits)) != len(c_bits) + len(t_bits):
            raise SimulationError(f"duplicate qubits in {(*controls, *targets)}")
        if any(b >= nl for b in t_bits):
            if k == 1 and u[0, 1] == 0 and u[1, 0] == 0:
                # Diagonal single-target (cz, controlled-phase): a pure
                # phase needs no exchange even on a high axis — the
                # target bit is fixed per chunk.
                tb = t_bits[0] - nl
                cmask = sum(1 << (b - nl) for b in c_bits if b >= nl)
                idx: list = [slice(None)] * nl
                for b in c_bits:
                    if b < nl:
                        idx[nl - 1 - b] = 1
                idx = tuple(idx)
                for i, c in enumerate(self._chunks):
                    if (i & cmask) != cmask:
                        continue
                    f = u[1, 1] if (i >> tb) & 1 else u[0, 0]
                    if f != 1.0:
                        c.reshape((2,) * nl)[idx] *= f
                return
            if k == 1:
                self._apply_controlled_high_target(u, c_bits, t_bits[0])
                return
            self.apply(G.controlled(u, len(controls)), *controls, *targets)
            return
        mask = sum(1 << (b - nl) for b in c_bits if b >= nl)
        local_controls = [b for b in c_bits if b < nl]
        ut = u.reshape((2,) * (2 * k))
        idx: list = [slice(None)] * nl
        for b in local_controls:
            idx[nl - 1 - b] = 1
        idx = tuple(idx)
        if k == 1:
            # Strided fast path for the cnot/cz/toffoli family: operate on
            # the two target slices of the |1...1> control subspace.
            ax = nl - 1 - t_bits[0]
            idx0 = list(idx)
            idx0[ax] = 0
            idx0 = tuple(idx0)
            idx1 = list(idx)
            idx1[ax] = 1
            idx1 = tuple(idx1)
            diag = u[0, 1] == 0 and u[1, 0] == 0
            for i, c in enumerate(self._chunks):
                if (i & mask) != mask:
                    continue
                view = c.reshape((2,) * nl)
                if diag:
                    # Indexed in-place ops: a plain `view[idx0] * u` would be
                    # a copy once every axis is integer-indexed (chunk_size 2).
                    if u[0, 0] != 1.0:
                        view[idx0] *= u[0, 0]
                    if u[1, 1] != 1.0:
                        view[idx1] *= u[1, 1]
                else:
                    a0 = view[idx0]
                    a1 = view[idx1]
                    new0 = u[0, 0] * a0 + u[0, 1] * a1
                    view[idx1] = u[1, 0] * a0 + u[1, 1] * a1
                    view[idx0] = new0
            return
        # Target axes within the sliced view shift down past removed
        # control axes (same arithmetic as StateVector.apply_controlled).
        t_axes = [
            nl - 1 - b - sum(1 for cb in local_controls if cb > b) for b in t_bits
        ]
        for i, c in enumerate(self._chunks):
            if (i & mask) != mask:
                continue
            view = c.reshape((2,) * nl)
            sub = view[idx]
            new = np.tensordot(ut, sub, axes=(range(k, 2 * k), t_axes))
            view[idx] = np.moveaxis(new, range(k), t_axes)

    def _apply_controlled_high_target(self, u: np.ndarray, c_bits, t_bit: int) -> None:
        """Non-diagonal single-target controlled gate whose target is a
        shard axis: pair-chunk exchange restricted to participating chunks.

        Only chunks whose high-axis control bits are all 1 take part; each
        sends its amplitudes to its partner in the target bit and combines
        on the |1...1> slice of any *local* control axes. This replaces
        the dense ``controlled(u)`` + group all-to-all fallback: half (or
        fewer) of the chunks exchange, pairwise, with no group tensor.
        """
        nl = self.n_local
        cmask = sum(1 << (b - nl) for b in c_bits if b >= nl)
        idx: list = [slice(None)] * nl
        for b in c_bits:
            if b < nl:
                idx[nl - 1 - b] = 1
        idx = tuple(idx)
        pmask = 1 << (t_bit - nl)
        tag = next(self._tags)
        parts = [i for i in range(len(self._chunks)) if (i & cmask) == cmask]
        for i in parts:
            self._fabric.send(0, i, i ^ pmask, tag, self._chunks[i])
        partners = {
            i: self._fabric.recv(0, i, i ^ pmask, tag).payload for i in parts
        }
        # Two passes: payloads may alias live peer chunks (the in-process
        # fabric does not copy), so compute every new slice before any
        # chunk is mutated.
        new = {}
        for i in parts:
            own = self._chunks[i].reshape((2,) * nl)
            par = partners[i].reshape((2,) * nl)
            if i & pmask:
                new[i] = u[1, 0] * par[idx] + u[1, 1] * own[idx]
            else:
                new[i] = u[0, 0] * own[idx] + u[0, 1] * par[idx]
        for i in parts:
            self._chunks[i].reshape((2,) * nl)[idx] = new[i]

    # -- conveniences ---------------------------------------------------
    def h(self, q: int) -> None:
        self.apply(G.H, q)

    def x(self, q: int) -> None:
        self.apply(G.X, q)

    def y(self, q: int) -> None:
        self.apply(G.Y, q)

    def z(self, q: int) -> None:
        self.apply(G.Z, q)

    def s(self, q: int) -> None:
        self.apply(G.S, q)

    def sdg(self, q: int) -> None:
        self.apply(G.SDG, q)

    def t(self, q: int) -> None:
        self.apply(G.T, q)

    def tdg(self, q: int) -> None:
        self.apply(G.TDG, q)

    def rx(self, q: int, theta: float) -> None:
        self.apply(G.rx(theta), q)

    def ry(self, q: int, theta: float) -> None:
        self.apply(G.ry(theta), q)

    def rz(self, q: int, theta: float) -> None:
        self.apply(G.rz(theta), q)

    def cnot(self, control: int, target: int) -> None:
        self.apply_controlled(G.X, [control], [target])

    def cz(self, control: int, target: int) -> None:
        self.apply_controlled(G.Z, [control], [target])

    def crz(self, control: int, target: int, theta: float) -> None:
        self.apply_controlled(G.rz(theta), [control], [target])

    def cphase(self, control: int, target: int, lam: float) -> None:
        self.apply_controlled(G.phase(lam), [control], [target])

    def swap(self, a: int, b: int) -> None:
        self.apply(G.SWAP, a, b)

    def toffoli(self, c1: int, c2: int, target: int) -> None:
        self.apply_controlled(G.X, [c1, c2], [target])

    # ------------------------------------------------------------------
    # measurement and inspection
    # ------------------------------------------------------------------
    def prob_one(self, qubit: int) -> float:
        """Probability of measuring |1> on ``qubit`` (no collapse)."""
        b = self._bit(qubit)
        nl = self.n_local
        if b < nl:
            stride = 1 << b
            return float(
                sum(
                    np.sum(np.abs(c.reshape(-1, 2, stride)[:, 1, :]) ** 2)
                    for c in self._chunks
                )
            )
        mask = 1 << (b - nl)
        return float(
            sum(
                np.sum(np.abs(c) ** 2)
                for i, c in enumerate(self._chunks)
                if i & mask
            )
        )

    def measure(self, qubit: int) -> int:
        """Projective Z-basis measurement with collapse. Returns 0 or 1."""
        p1 = self.prob_one(qubit)
        bit = int(self.rng.random() < p1)
        self.postselect(qubit, bit)
        return bit

    def postselect(self, qubit: int, bit: int) -> None:
        """Project ``qubit`` onto ``|bit>`` and renormalize."""
        b = self._bit(qubit)
        nl = self.n_local
        if b < nl:
            stride = 1 << b
            for c in self._chunks:
                c.reshape(-1, 2, stride)[:, 1 - bit, :] = 0.0
        else:
            mask = 1 << (b - nl)
            for i, c in enumerate(self._chunks):
                if bool(i & mask) != bool(bit):
                    c[:] = 0.0
        norm = self.norm()
        if norm < 1e-12:
            raise SimulationError(
                f"postselecting qubit {qubit} on {bit}: outcome has zero "
                "probability"
            )
        for c in self._chunks:
            c /= norm

    def measure_many(self, qubits: Iterable[int]) -> list[int]:
        """Measure several qubits sequentially (with collapse)."""
        return [self.measure(q) for q in qubits]

    def amplitude(self, bits: Sequence[int], qubits: Sequence[int] | None = None) -> complex:
        """Amplitude of the computational basis state given by ``bits``.

        ``qubits`` defaults to all qubits in allocation order.
        """
        qubits = list(qubits) if qubits is not None else list(self.qubit_ids)
        if len(bits) != len(qubits):
            raise SimulationError("bits and qubits must have equal length")
        if len(qubits) != self.num_qubits:
            raise SimulationError("amplitude() requires all qubits")
        g = 0
        for bval, q in zip(bits, qubits):
            g |= int(bval) << self._bit(q)
        nl = self.n_local
        return complex(self._chunks[g >> nl][g & ((1 << nl) - 1)])

    def statevector(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Dense state vector with ``qubits[0]`` as the most significant bit.

        ``qubits`` must enumerate all allocated qubits; defaults to
        allocation order (for which this is a plain chunk concatenation).
        """
        qubits = list(qubits) if qubits is not None else list(self.qubit_ids)
        if sorted(qubits) != sorted(self._bit_of):
            raise SimulationError("statevector() requires all qubit ids exactly once")
        full = np.concatenate(self._chunks)
        n = self.num_qubits
        # Axis i of the (2,)*n view is global bit n-1-i == qubit_ids[i].
        axes = [n - 1 - self._bit(q) for q in qubits]
        return np.moveaxis(full.reshape((2,) * n), axes, range(n)).reshape(-1).copy()

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Measurement distribution over computational basis states."""
        vec = self.statevector(qubits)
        return np.abs(vec) ** 2

    def norm(self) -> float:
        """Euclidean norm of the state (should always be ~1)."""
        return float(np.sqrt(sum(float(np.sum(np.abs(c) ** 2)) for c in self._chunks)))

    def expectation_pauli(self, mapping: dict[int, str]) -> float:
        """Expectation value of a Pauli string ``{qubit: 'X'|'Y'|'Z'}``."""
        saved = [c.copy() for c in self._chunks]
        try:
            for q, p in mapping.items():
                self.apply(G.PAULIS[p.upper()], q)
            val = sum(np.vdot(s, c) for s, c in zip(saved, self._chunks))
        finally:
            self._store_chunks(saved)
        return float(np.real(val))

    def copy(self) -> "ShardedStateVector":
        """Deep copy (shares no state, including a cloned RNG).

        The copy always runs serially: it does not inherit the worker
        pool or the shared-memory chunk backing.
        """
        out = ShardedStateVector.__new__(ShardedStateVector)
        out.n_shards = self.n_shards
        out._fabric = Fabric(self.n_shards)
        out._tags = itertools.count()
        out._workers = 0
        out._parallel_min_chunk = self._parallel_min_chunk
        out._pool = None
        out._shm = None
        out._retired = []
        out._chunks = [c.copy() for c in self._chunks]
        out._bit_of = dict(self._bit_of)
        out._next_id = self._next_id
        out.rng = np.random.default_rng(self.rng.integers(2**63))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedStateVector n={self.num_qubits} chunks={self.num_chunks}"
            f"x{self.chunk_size} ids={self.qubit_ids}>"
        )
