"""Sharded state-vector engine: amplitudes distributed across chunk ranks.

Classical HPC simulators (QCMPI; QuEST; the chunked ``SimDistribute``
design) do not funnel every operation through one rank-0-owned array the
way the paper's §6 prototype does. Instead the ``2^n`` amplitudes are
split into ``R`` contiguous chunks, one per simulation rank, and each
gate is applied cooperatively:

* a gate on a **local axis** (one of the low ``n - log2(R)`` bits) only
  permutes/combines amplitudes *within* each chunk, so every rank applies
  a vectorized strided kernel to its own flat array — no communication;
* a gate on a **high axis** (one of the top ``log2(R)`` bits) pairs each
  chunk with the chunk whose index differs in that bit, and the pair
  exchange their amplitudes before combining — here the exchange travels
  through the same :class:`repro.mpi.Fabric` mailboxes that carry QMPI's
  classical traffic, so message matching is exercised for real;
* **diagonal** gates — single-qubit (Z, S, T, Rz) or single-target
  controlled (CZ, controlled-phase) — never need the exchange even on
  high axes: each chunk just scales itself.

Layout
------
The state is a list of ``R`` flat contiguous complex arrays (complex128
by default; ``dtype="complex64"`` selects the half-footprint
mixed-precision tier, and ``spill=`` backs the chunks with memory-mapped
files once the register outgrows a RAM budget — see the constructor).
Global amplitude index ``g`` lives in ``chunks[g >> n_local][g & (csize - 1)]``
with ``csize = 2^n_local``.  Qubit handles are stable integer ids mapped
to *bit positions*: a freshly allocated qubit is the least significant
bit, pushing all existing qubits one bit up, which keeps both allocation
(interleave-doubling each chunk) and the paper-convention ``statevector``
(first-allocated qubit = most significant bit = plain chunk
concatenation) purely local operations.

While fewer than ``log2(R)`` qubits exist the engine runs with
``min(R, 2^n)`` active chunks and grows to the full shard count as qubits
are allocated; releasing a high-axis qubit compacts the chunk list again.

Batched execution interprets the compiled execution schedule
(:mod:`repro.sim.schedule` — see :meth:`ShardedStateVector.apply_ops`):
every record of a flushed batch is classified against the chunk layout
exactly once, communication-free stretches execute chunk-by-chunk in
one pass (kernel runs, plan sub-blocks, and
:class:`~repro.sim.diag.DiagBatch` phase vectors materialized once per
shard-bit signature), and only ``mixing`` segments exchange chunks.
With ``workers=N`` each stretch ships to a persistent process pool
(:class:`~repro.sim.parallel.ChunkPool`) as one task per worker over a
static chunk partition, mutating shared-memory chunk buffers in place.

The class mirrors :class:`repro.sim.statevector.StateVector`'s public API
exactly (same methods, same error messages, same RNG draw discipline), so
the two engines are drop-in interchangeable behind
:class:`repro.qmpi.backend.QuantumBackend`.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from multiprocessing import shared_memory
from typing import Iterable, Sequence

import numpy as np

from ..mpi.fabric import Fabric
from . import gates as G
from . import kernels as _K
from .diag import DiagBatch, signature_vectors
from .kernels import KernelDispatch
from .parallel import PARALLEL_MIN_CHUNK, ChunkPool, apply_run, contract_local
from .schedule import (
    DEFAULT_COST_MODEL,
    DiagSegment,
    KernelRun,
    PlanSegment,
    compile_segments,
    iter_stretches,
)
from .shots import branch_mask, fork_outcomes
from .statevector import SimulationError

__all__ = ["ShardedStateVector"]


def _pack_native(seq):
    """Pack one chunk's raw freeze items into typed step blocks.

    ``seq`` holds ``("s", code, arg0, arg1, seg, i)`` native-able steps
    and ``("p", step)`` python steps.  Maximal native runs become
    ``("blk", codes, arg0, arg1, refs)`` with int64 step arrays — one
    ``KernelDispatch.drive`` call each — while the matrices stay as
    ``(seg, i)`` refs re-read at execution so cache rebinding flows
    through.
    """
    out = []
    buf: list = []

    def flush():
        if buf:
            out.append(
                (
                    "blk",
                    np.array([b[0] for b in buf], dtype=np.int64),
                    np.array([b[1] for b in buf], dtype=np.int64),
                    np.array([b[2] for b in buf], dtype=np.int64),
                    tuple((b[3], b[4]) for b in buf),
                )
            )
            buf.clear()

    for item in seq:
        if item[0] == "s":
            buf.append(item[1:])
        else:
            flush()
            out.append(("py", item[1]))
    flush()
    return tuple(out)


class ShardedStateVector:
    """A dynamically sized state-vector simulator sharded into chunks.

    Parameters
    ----------
    n_qubits:
        Number of qubits to allocate immediately (ids ``0..n-1``).
    seed:
        Seed or :class:`numpy.random.Generator` for measurement sampling.
    n_shards:
        Number of chunks the amplitudes are distributed over; must be a
        power of two. ``n_shards=1`` degenerates to a single flat array.
    workers:
        Number of persistent chunk-worker processes for the opt-in
        parallel executor (default 0 = serial). When positive, chunks
        live in shared-memory buffers and communication-free op runs and
        diagonal phase-vector multiplies are mapped across the chunks by
        a :class:`~repro.sim.parallel.ChunkPool`. Call :meth:`close`
        when done (GC also closes as a safety net).
    parallel_min_chunk:
        Break-even chunk size (amplitudes) for dispatching a
        *single-kernel* stretch to the pool (default
        :data:`repro.sim.parallel.PARALLEL_MIN_CHUNK`). The gate is
        cost-aware: a stretch whose segment cost tags sum to k kernels
        dispatches at chunks k times smaller, because the one
        run-level round-trip amortizes over the whole stretch (see
        :meth:`_parallel_ready`). Tests force the pool with ``1``.
    kernels:
        Kernel dispatch mode — ``"auto"`` (native kernels at or above
        the :class:`~repro.sim.schedule.CostModel` break-even size
        ``jit_min_amps``), ``"numpy"`` (pure-numpy always), ``"jit"``
        (native whenever a provider is importable).  ``None`` reads
        ``REPRO_QMPI_KERNELS`` before defaulting to ``"auto"``.  All
        modes produce bit-identical amplitudes (see
        :mod:`repro.sim.kernels`).
    dtype:
        Amplitude precision: ``"complex128"`` (default) or
        ``"complex64"`` (half the memory/bandwidth at float32
        precision; kernel arms stay bit-identical *within* the dtype).
        ``None`` reads ``REPRO_QMPI_DTYPE`` before defaulting to
        ``"complex128"``.
    spill:
        Out-of-core chunk store: ``None`` (default, chunks stay in
        RAM), ``"auto"`` (back chunks with ``np.memmap`` files under a
        temporary directory once the register exceeds the RAM budget)
        or a directory path (same, files created under that path).
        Spilled runs execute each communication-free stretch chunk by
        chunk in partition order, touching every chunk exactly once per
        stretch.  Mutually exclusive with ``workers`` (the pool's
        shared-memory backing is itself a storage tier).  Spill files
        are removed when the register shrinks back under budget and on
        :meth:`close`.
    spill_budget:
        RAM budget in bytes for the ``spill`` decision (default: the
        ``REPRO_QMPI_SPILL_BUDGET`` environment variable, else 1 GiB).
        The budget covers the register itself; transient working memory
        stays O(chunk), so keep it at a few chunks minimum.

    Examples
    --------
    >>> sv = ShardedStateVector(2, n_shards=2)
    >>> sv.h(0); sv.cnot(0, 1)
    >>> abs(sv.amplitude([0, 0])) ** 2  # doctest: +ELLIPSIS
    0.4999...
    """

    def __init__(
        self,
        n_qubits: int = 0,
        seed=None,
        n_shards: int = 4,
        workers: int = 0,
        parallel_min_chunk: int = PARALLEL_MIN_CHUNK,
        kernels: str | None = None,
        dtype: str | None = None,
        spill: str | None = None,
        spill_budget: int | None = None,
    ):
        if n_shards < 1 or (n_shards & (n_shards - 1)):
            raise SimulationError(f"n_shards must be a power of two, got {n_shards}")
        if workers < 0:
            raise SimulationError(f"workers must be >= 0, got {workers}")
        if dtype is None:
            dtype = os.environ.get("REPRO_QMPI_DTYPE") or "complex128"
        if str(dtype) not in ("complex64", "complex128"):
            raise SimulationError(
                f'dtype must be "complex128" or "complex64", got {dtype!r}'
            )
        self._dtype = np.dtype(str(dtype))
        # Tolerance knobs scale with the amplitude precision: float32
        # rounding leaves ~1e-7 residuals where float64 leaves ~1e-16.
        if self._dtype == np.complex64:
            self._zero_atol, self._norm_eps, self._agree_eps = 1e-4, 1e-6, 1e-5
        else:
            self._zero_atol, self._norm_eps, self._agree_eps = 1e-9, 1e-12, 1e-9
        if spill is not None and workers:
            raise SimulationError(
                "spill= and workers= are mutually exclusive storage tiers"
            )
        self._spill = str(spill) if spill is not None else None
        if spill_budget is None:
            spill_budget = int(
                os.environ.get("REPRO_QMPI_SPILL_BUDGET") or (1 << 30)
            )
        self._spill_budget = int(spill_budget)
        self._spill_dir: str | None = None
        self._spill_files: list[str] = []
        self._spill_seq = itertools.count()
        self._mmapped = False
        self.n_shards = n_shards
        # Kernel dispatch (repro.sim.kernels): "auto"/"numpy"/"jit",
        # None = the REPRO_QMPI_KERNELS environment default.  Amplitudes
        # are bit-identical in every mode; only the counters and the
        # wall clock move.
        self._kernels = KernelDispatch(
            kernels, jit_min_amps=DEFAULT_COST_MODEL.jit_min_amps
        )
        self._fabric = Fabric(n_shards)
        self._tags = itertools.count()
        self._workers = int(workers)
        self._parallel_min_chunk = int(parallel_min_chunk)
        self._pool: ChunkPool | None = None
        self._shm: list[shared_memory.SharedMemory] | None = [] if workers else None
        self._retired: list[shared_memory.SharedMemory] = []
        # Memoized run-level task partition: ((n_chunks, n_tasks), refs)
        # — reused verbatim across stretches (and cached-schedule
        # replays) until the chunk layout reallocates.
        self._partition_memo: tuple | None = None
        # Zero qubits == one chunk holding the single amplitude 1.
        self._chunks: list[np.ndarray] = []
        self._store_chunks([np.ones(1, dtype=self._dtype)])
        self._bit_of: dict[int, int] = {}
        self._next_id = 0
        self._shots: int | None = None
        self._shot_of: np.ndarray | None = None
        self._n_branches = 1
        self.segments_executed = 0
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)
        if n_qubits:
            self.alloc(n_qubits)

    # ------------------------------------------------------------------
    # shot-batched trajectories (see repro.sim.shots)
    # ------------------------------------------------------------------
    @property
    def shots(self) -> int | None:
        """Number of tracked shots, or ``None`` outside shots mode."""
        return self._shots

    @property
    def n_branches(self) -> int:
        """Number of distinct measurement histories currently tracked."""
        return self._n_branches

    def begin_shots(self, shots: int) -> None:
        """Enter shot-batched mode: track ``shots`` trajectories in one run.

        Each chunk gains leading *branch* rows (one per distinct
        measurement history, initially a single row shared by every
        shot): a chunk's flat array holds ``B`` stacked per-branch
        copies of its ``2^n_local`` amplitudes.  Strided local kernels
        and whole-chunk scalings are branch-agnostic on that layout, so
        unitary segments — including the worker-pool path — run
        untouched; only :meth:`measure` forks the rows.
        """
        if self._shots is not None:
            if self._bit_of:
                raise SimulationError(
                    "begin_shots() called twice on a non-empty engine"
                )
            # Empty engine (all qubits released): drop the leftover branch
            # rows (unobservable global phases) so a reused backend (job
            # runner) can start a new shot batch.
            self._store_chunks([np.ones(1, dtype=self._dtype)])
            self._n_branches = 1
        if shots < 1:
            raise SimulationError(f"shots must be >= 1, got {shots}")
        self._shots = int(shots)
        self._shot_of = np.zeros(self._shots, dtype=np.int64)

    def reseed(self, seed) -> None:
        """Replace the measurement RNG (per-job streams use this hook)."""
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.default_rng(seed)

    def _require_unforked(self, what: str) -> None:
        if self._n_branches > 1:
            raise SimulationError(
                f"{what}() is ambiguous after a mid-circuit measurement "
                f"fork ({self._n_branches} branches); inspect counts or "
                "per-shot measurement results instead"
            )

    # ------------------------------------------------------------------
    # layout introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of currently allocated qubits."""
        return len(self._bit_of)

    @property
    def num_chunks(self) -> int:
        """Active chunk count (at most ``min(n_shards, 2^num_qubits)``;
        releasing a high-axis qubit halves it until the next alloc
        rebalances)."""
        return len(self._chunks)

    @property
    def chunk_size(self) -> int:
        """Amplitudes per chunk per branch (``2^n_local``)."""
        return self._chunks[0].size // self._n_branches

    @property
    def n_local(self) -> int:
        """Number of local (intra-chunk) axes."""
        return self.chunk_size.bit_length() - 1

    def chunk(self, rank: int) -> np.ndarray:
        """Chunk ``rank``'s amplitudes (a live view, for white-box tests)."""
        return self._chunks[rank]

    @property
    def qubit_ids(self) -> tuple[int, ...]:
        """Allocated qubit ids in allocation order (descending bit position)."""
        return tuple(sorted(self._bit_of, key=self._bit_of.__getitem__, reverse=True))

    @property
    def workers(self) -> int:
        """Worker-process count of the parallel chunk executor (0 = serial)."""
        return self._workers

    @property
    def dtype(self) -> str:
        """Amplitude dtype name, derived from the live chunks.

        Part of the engine :meth:`layout_key`, so cached schedules never
        replay across precisions.
        """
        return self._chunks[0].dtype.name

    # ------------------------------------------------------------------
    # chunk storage (shared-memory backed when workers are enabled)
    # ------------------------------------------------------------------
    def _store_chunks(self, arrs, layout: tuple[int, int] | None = None) -> None:
        """Install a new chunk list, preserving the storage backing.

        With ``workers=0`` this is a plain rebind. With workers enabled,
        a same-layout update copies into the existing shared-memory
        buffers (chunk identity stays stable — no segment churn on
        high-axis gates), while a layout change (alloc/release/
        rebalance) reallocates the segments.  With ``spill=`` set the
        storage tier (RAM arrays vs ``np.memmap`` files) is re-decided
        against the budget on every layout change.

        ``arrs`` may be a lazy iterable when ``layout`` — the new
        ``(n_chunks, flat_chunk_size)`` — is given, so alloc/release can
        stream chunks through without holding two full registers in RAM.
        """
        if self._spill is not None:
            self._store_spill(arrs, layout)
            return
        arrs = list(arrs)
        if self._shm is None:
            self._chunks = arrs
            return
        if len(arrs) == len(self._chunks) and all(
            a.size == c.size for a, c in zip(arrs, self._chunks)
        ):
            for a, c in zip(arrs, self._chunks):
                if a is not c:
                    c[:] = a
            return
        self._drain_retired()
        self._partition_memo = None
        old = self._shm
        self._shm = []
        chunks = []
        for a in arrs:
            shm = shared_memory.SharedMemory(
                create=True, size=max(16, a.size * a.dtype.itemsize)
            )
            self._shm.append(shm)
            view = np.ndarray((a.size,), dtype=a.dtype, buffer=shm.buf)
            view[:] = a
            chunks.append(view)
        self._chunks = chunks
        del arrs
        for s in old:
            self._release_shm(s)

    def _store_spill(self, arrs, layout: tuple[int, int] | None = None) -> None:
        """Spill-aware chunk install: memmap files past the RAM budget.

        The whole new generation is written before any old spill file is
        removed (the inputs may read from the old files), so transient
        disk usage peaks at two generations while RAM stays O(chunk).
        """
        if layout is None:
            arrs = list(arrs)
            layout = (len(arrs), arrs[0].size)
        n_chunks, csize = layout
        old_files = self._spill_files
        if n_chunks * csize * self._dtype.itemsize <= self._spill_budget:
            # RAM tier.  Copy defensively while the register is mmapped:
            # inputs may be (views of) the spill files about to go away.
            if self._mmapped:
                self._chunks = [np.array(a, dtype=self._dtype) for a in arrs]
                self._mmapped = False
            else:
                self._chunks = list(arrs)
        else:
            if self._spill_dir is None:
                base = None if self._spill == "auto" else self._spill
                if base is not None:
                    os.makedirs(base, exist_ok=True)
                self._spill_dir = tempfile.mkdtemp(prefix="qmpi-spill-", dir=base)
            gen = next(self._spill_seq)
            chunks: list[np.ndarray] = []
            files: list[str] = []
            for i, a in enumerate(arrs):
                path = os.path.join(self._spill_dir, f"chunk-{gen}-{i}.dat")
                m = np.memmap(path, dtype=self._dtype, mode="w+", shape=(csize,))
                m[:] = a
                chunks.append(m)
                files.append(path)
            self._chunks = chunks
            self._spill_files = files
            self._mmapped = True
        if old_files and (not self._mmapped or old_files is not self._spill_files):
            for p in old_files:
                try:
                    os.remove(p)
                except OSError:  # pragma: no cover - already gone
                    pass
            if not self._mmapped:
                self._spill_files = []

    def _set_chunk(self, i: int, arr: np.ndarray) -> None:
        """Replace one same-size chunk (in place when shm/memmap backed)."""
        if self._shm is None and not self._mmapped:
            self._chunks[i] = arr
        else:
            self._chunks[i][:] = arr

    def _release_shm(self, shm: shared_memory.SharedMemory) -> None:
        # Unlink first (always possible); if a stale external view still
        # pins the mapping, park the segment and retry the close later.
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            shm.close()
        except BufferError:
            self._retired.append(shm)

    def _drain_retired(self) -> None:
        still = []
        for shm in self._retired:
            try:
                shm.close()
            except BufferError:
                still.append(shm)
        self._retired = still

    def _get_pool(self) -> ChunkPool:
        if self._pool is None:
            # Warm each worker's kernel dispatch at spawn: the one-off
            # native provider import/compile then happens outside any
            # timed stretch, so parallel_min_chunk stays a pure
            # steady-state break-even (see repro.sim.parallel).
            warm = (
                self._kernels.worker_args()
                if self._kernels.mode != "numpy"
                else None
            )
            self._pool = ChunkPool(self._workers, warmup_args=warm)
        return self._pool

    def _parallel_ready(self, stretch_cost: float = DEFAULT_COST_MODEL.sq_flops) -> bool:
        """True when a stretch of this cost should ship to the pool.

        The gate is cost-aware: ``parallel_min_chunk`` is the break-even
        chunk size for a *single-kernel* stretch (cost ``sq_flops``),
        and run-level dispatch amortizes its one round-trip over the
        whole stretch, so a stretch carrying k times the work pays off
        at chunks k times smaller — ``chunk_size * stretch_cost`` is
        compared against the single-kernel break-even product.
        """
        return (
            self._workers > 0
            and len(self._chunks) > 1
            # Flat size (branch rows included): that is the work a
            # worker actually does per chunk.
            and self._chunks[0].size * stretch_cost
            >= self._parallel_min_chunk * DEFAULT_COST_MODEL.sq_flops
        )

    def close(self) -> None:
        """Shut down the worker pool and release shared-memory buffers.

        The engine stays usable afterwards: amplitudes migrate back to
        ordinary process-private arrays and execution continues
        serially. Idempotent; garbage collection calls it as a safety
        net, but deterministic cleanup (tests, long-lived services)
        should call it explicitly.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._shm is not None:
            self._chunks = [c.copy() for c in self._chunks]
            shms, self._shm = self._shm, None
            for s in shms:
                self._release_shm(s)
            self._workers = 0
        if self._mmapped:
            self._chunks = [np.array(c) for c in self._chunks]
            self._mmapped = False
        if self._spill_dir is not None:
            for p in self._spill_files:
                try:
                    os.remove(p)
                except OSError:  # pragma: no cover - already gone
                    pass
            self._spill_files = []
            try:
                os.rmdir(self._spill_dir)
            except OSError:  # pragma: no cover - user-owned dir not empty
                pass
            self._spill_dir = None
        self._spill = None
        self._drain_retired()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, n: int = 1) -> list[int]:
        """Allocate ``n`` fresh qubits in |0> and return their ids."""
        if n < 1:
            raise SimulationError(f"cannot allocate {n} qubits")
        ids = []
        for _ in range(n):
            qid = self._next_id
            self._next_id += 1
            for q in self._bit_of:
                self._bit_of[q] += 1
            self._bit_of[qid] = 0
            # New LSB in |0>: amplitudes interleave with zeros,
            # chunk-locally.  When the active chunk count is still below
            # n_shards the doubled chunk also splits at its top *local*
            # bit (per branch row) so the count tracks min(n_shards, 2^n).
            # Streamed through a generator: the spill store then never
            # holds more than O(chunk) fresh arrays in RAM.
            rebalance = len(self._chunks) < self.n_shards
            B = self._n_branches
            old_size = self._chunks[0].size

            def grown_iter():
                for c in self._chunks:
                    g = np.zeros(2 * c.size, dtype=self._dtype)
                    g[0::2] = c
                    if rebalance:
                        half = g.size // B // 2
                        v = g.reshape(B, -1)
                        yield np.ascontiguousarray(v[:, :half]).reshape(-1)
                        yield np.ascontiguousarray(v[:, half:]).reshape(-1)
                    else:
                        yield g

            layout = (
                (2 * len(self._chunks), old_size)
                if rebalance
                else (len(self._chunks), 2 * old_size)
            )
            self._store_chunks(grown_iter(), layout)
            ids.append(qid)
        return ids

    def release(self, qubit: int) -> None:
        """Release a qubit that is disentangled and in state |0>.

        Mirrors ``QMPI_Free_qmem``: freeing a qubit that still carries
        amplitude in |1> (or is entangled) is a program error.
        """
        b = self._bit(qubit)
        nl = self.n_local
        atol = self._zero_atol
        if b < nl:
            stride = 1 << b
            views = [c.reshape(-1, 2, stride) for c in self._chunks]
            if any(not np.allclose(v[:, 1, :], 0.0, atol=atol) for v in views):
                self._raise_not_zero(qubit)
            self._store_chunks(
                (np.ascontiguousarray(v[:, 0, :]).reshape(-1) for v in views),
                (len(self._chunks), self._chunks[0].size // 2),
            )
        else:
            mask = 1 << (b - nl)
            ones = [c for i, c in enumerate(self._chunks) if i & mask]
            if any(not np.allclose(c, 0.0, atol=atol) for c in ones):
                self._raise_not_zero(qubit)
            keep = [c for i, c in enumerate(self._chunks) if not i & mask]
            self._store_chunks(keep, (len(keep), keep[0].size))
        del self._bit_of[qubit]
        for q, bb in self._bit_of.items():
            if bb > b:
                self._bit_of[q] = bb - 1

    def measure_and_release(self, qubit: int) -> int:
        """Measure ``qubit`` in the Z basis, then remove it. Returns the bit."""
        bit = self.measure(qubit)
        self.apply_pauli_if(bit, "X", qubit)
        self.release(qubit)
        return bit

    def _bit(self, qubit: int) -> int:
        try:
            return self._bit_of[qubit]
        except KeyError:
            raise SimulationError(f"unknown qubit id {qubit}") from None

    @staticmethod
    def _raise_not_zero(qubit: int) -> None:
        raise SimulationError(
            f"qubit {qubit} is not in |0> (or is entangled); "
            "measure/uncompute before releasing"
        )

    # ------------------------------------------------------------------
    # chunk exchange (the communication layer)
    # ------------------------------------------------------------------
    def _pair_exchange(self, shard_bit: int) -> list[np.ndarray]:
        """Every chunk sends its amplitudes to its partner in ``shard_bit``
        and receives the partner's, all through the fabric mailboxes.
        Returns the partner chunk for each chunk index."""
        tag = next(self._tags)
        mask = 1 << shard_bit
        for c in range(len(self._chunks)):
            self._fabric.send(0, c, c ^ mask, tag, self._chunks[c])
        return [
            self._fabric.recv(0, c, c ^ mask, tag).payload
            for c in range(len(self._chunks))
        ]

    def _group_exchange(
        self, shard_bits: Sequence[int]
    ) -> tuple[dict[int, list[int]], dict[int, list[np.ndarray]]]:
        """All-to-all chunk exchange within each ``2^h``-member group.

        Chunks agreeing on every shard bit *not* in ``shard_bits`` form a
        group; each member ships its chunk to every other member over the
        fabric. Returns ``(groups, gathered)`` where ``groups`` maps a
        group base index to its member indices (ascending, i.e. ordered by
        the value of the ``shard_bits`` coordinate) and ``gathered`` maps
        each chunk index to the group's chunks in that same order.
        """
        tag = next(self._tags)
        groups: dict[int, list[int]] = {}
        for c in range(len(self._chunks)):
            base = c
            for j in shard_bits:
                base &= ~(1 << j)
            groups.setdefault(base, []).append(c)
        for members in groups.values():
            for src in members:
                for dst in members:
                    if dst != src:
                        self._fabric.send(0, src, dst, tag, self._chunks[src])
        gathered: dict[int, list[np.ndarray]] = {}
        for members in groups.values():
            for dst in members:
                gathered[dst] = [
                    self._chunks[dst]
                    if src == dst
                    else self._fabric.recv(0, dst, src, tag).payload
                    for src in members
                ]
        return groups, gathered

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------
    def apply_ops(self, ops) -> None:
        """Execute a batch of typed op records (see :mod:`repro.qmpi.ops`)
        as a compiled execution schedule.

        The batch is compiled once into typed segments by
        :func:`repro.sim.schedule.compile_segments` — every record is
        classified against the chunk layout exactly once (local /
        block-diagonal-shard-axes / mixing) — and this engine merely
        *interprets* the segments: maximal communication-free stretches
        execute chunk-by-chunk in one pass (kernel runs, sub-block
        selections and phase-vector multiplies), and only a ``mixing``
        segment exchanges chunks through the fabric.  With ``workers=N``
        each stretch is shipped to the pool as **one task per worker**
        covering a static partition of the chunks (run-level dispatch:
        O(workers) queue round-trips per stretch instead of
        O(chunks x entries)).
        """
        self.execute_segments(self.compile_batch(ops))

    # ------------------------------------------------------------------
    # schedule-cache engine API (see repro.sim.cache)
    # ------------------------------------------------------------------
    def layout_key(self, qubits):
        """Layout fingerprint of this engine for the touched ``qubits``.

        Pins each touched qubit's global bit position, the chunk
        boundary, the active chunk count, the presence of shot-branch
        rows, and the amplitude dtype — everything
        :meth:`compile_batch`'s classification *and* the segment
        interpreters depend on.  Equal keys mean a cached segment list
        compiled under one is exact under the other; unknown qubit ids
        raise, so a recycled engine can never bind a stale schedule.
        """
        return (
            "sharded",
            tuple(self._bit(q) for q in qubits),
            self.n_local,
            len(self._chunks),
            self._shots is not None,
            self.dtype,
        )

    def compile_batch(self, ops):
        """Compile a lowered op batch against the current chunk layout."""
        return compile_segments(ops, bit=self._bit, n_local=self.n_local)

    def execute_segments(self, segments) -> None:
        """Interpret an already-compiled segment list (cache replay path)."""
        for stretch, barrier in iter_stretches(segments):
            self.segments_executed += len(stretch) + (0 if barrier is None else 1)
            if stretch:
                self._apply_stretch(stretch)
            if barrier is None:
                continue
            if isinstance(barrier, PlanSegment):
                # Shard-axis-mixing plan: one exchange for the whole
                # fused run instead of one per constituent op.
                self.apply(barrier.plan.u, *barrier.plan.qubits)
            else:
                op = barrier.op
                if op.controls:
                    self.apply_controlled(
                        op.target_matrix(), list(op.controls), list(op.targets)
                    )
                else:
                    self.apply(op.target_matrix(), *op.targets)

    # ------------------------------------------------------------------
    # frozen replay (schedule-cache warm path)
    # ------------------------------------------------------------------
    def freeze_segments(self, segments):
        """Freeze a bound segment list into a replay program.

        Precomputes the stretch grouping (:func:`iter_stretches`), the
        per-stretch cost tag (structural — rebinding never changes it),
        the run/diag fold boundaries, and — per kernel-run fold — one
        specialized step list **per chunk** (:meth:`_freeze_run`): every
        branch :func:`~repro.sim.parallel.apply_run` decides per entry
        per chunk per flush (kind dispatch, shard-axis factor selection,
        control-mask participation, index-tuple construction) is decided
        once here.  Steps reference the live segment objects and re-read
        their entries on every execution, so the cache's in-place
        parameter rebinding flows through; the arithmetic on the
        amplitudes is the interpreter's, expression for expression.
        """
        nl = self.n_local
        n_chunks = len(self._chunks)
        steps = []
        for stretch, barrier in iter_stretches(segments):
            if stretch:
                folds = []
                run: list = []
                for seg in stretch:
                    if isinstance(seg, DiagSegment):
                        if run:
                            folds.append(
                                ("run", self._freeze_run(run, nl, n_chunks))
                            )
                            run = []
                        folds.append(("diag", seg))
                    else:
                        run.append(seg)
                if run:
                    folds.append(("run", self._freeze_run(run, nl, n_chunks)))
                cost = sum(seg.cost for seg in stretch)
                steps.append(
                    ("stretch", tuple(stretch), cost, tuple(folds), len(stretch))
                )
            if barrier is not None:
                steps.append(("barrier", barrier))
        return tuple(steps)

    @staticmethod
    def _freeze_run(segs, nl, n_chunks):
        """Specialize a kernel-run fold into per-chunk replay programs.

        Mirrors :func:`~repro.sim.parallel.apply_run`'s dispatch exactly:
        each entry becomes, per chunk, one precomputed step — or no step
        at all for a chunk whose shard-axis control bits rule it out.
        Only ``(seg, i)`` references are stored for the matrices, which
        rebinding replaces inside the live segments.

        Returns ``(per_chunk, native)``: the tagged python step lists
        (the planar-numpy arm) and, per chunk, the same program packed
        into contiguous typed step arrays — maximal ``("blk", codes,
        arg0, arg1, refs)`` runs of :mod:`repro.sim.kernels` opcodes
        that one native ``drive`` call walks per chunk, broken by
        ``("py", step)`` items for the generic ``ct``/``csel`` entries
        (whose matmul stays on BLAS in every mode).  Which arm executes
        is decided per chunk per flush by the engine's dispatch; both
        arms replay the identical planar expression tree.
        """
        per_chunk: list[list] = [[] for _ in range(n_chunks)]
        raw_native: list[list] = [[] for _ in range(n_chunks)]
        vshape = (-1,) + (2,) * nl
        for seg in segs:
            if isinstance(seg, KernelRun):
                sources = [(seg, i, e) for i, e in enumerate(seg.entries)]
            else:  # communication-free PlanSegment
                sources = [(seg, None, seg.entry)]
            for src, i, e in sources:
                kind = e[0]
                if kind == "sq":
                    b, diag = e[2], e[3]
                    if b >= nl:
                        sh = b - nl
                        for ci in range(n_chunks):
                            sel = (ci >> sh) & 1
                            per_chunk[ci].append(("ss", src, i, sel))
                            raw_native[ci].append(
                                ("s", _K.OP_SCALE, sel, 0, src, i)
                            )
                    else:
                        shp = (-1, 2, 1 << b)
                        tag = "sd" if diag else "sf"
                        code = _K.OP_SQ_DIAG if diag else _K.OP_SQ_FULL
                        for ci in range(n_chunks):
                            per_chunk[ci].append((tag, src, i, shp))
                            raw_native[ci].append(("s", code, b, 0, src, i))
                elif kind == "cc":
                    cmask, local_controls, t_bit, diag = e[2], e[3], e[4], e[5]
                    base: list = [slice(None)] * (nl + 1)
                    lmask = 0
                    for b in local_controls:
                        base[1 + nl - 1 - b] = 1
                        lmask |= 1 << b
                    if t_bit >= nl:
                        idx = tuple(base)
                        sh = t_bit - nl
                        for ci in range(n_chunks):
                            if (ci & cmask) != cmask:
                                continue
                            sel = (ci >> sh) & 1
                            per_chunk[ci].append(
                                ("cs", src, i, vshape, idx, sel)
                            )
                            raw_native[ci].append(
                                ("s", _K.OP_MASK_SCALE, lmask, sel, src, i)
                            )
                    else:
                        ax = 1 + nl - 1 - t_bit
                        idx0 = list(base)
                        idx0[ax] = 0
                        idx1 = list(base)
                        idx1[ax] = 1
                        step = (
                            "cd" if diag else "cf",
                            src,
                            i,
                            vshape,
                            tuple(idx0),
                            tuple(idx1),
                        )
                        code = _K.OP_CC_DIAG if diag else _K.OP_CC_FULL
                        for ci in range(n_chunks):
                            if (ci & cmask) != cmask:
                                continue
                            per_chunk[ci].append(step)
                            raw_native[ci].append(
                                ("s", code, lmask, t_bit, src, i)
                            )
                elif i is None:  # PlanSegment "ct"/"csel": generic entry
                    for ci in range(n_chunks):
                        per_chunk[ci].append(("gp", src))
                        raw_native[ci].append(("p", ("gp", src)))
                else:  # KernelRun "ct"/"csel": generic entry
                    for ci in range(n_chunks):
                        per_chunk[ci].append(("g", src, i))
                        raw_native[ci].append(("p", ("g", src, i)))
        native = tuple(_pack_native(seq) for seq in raw_native)
        return tuple(tuple(s) for s in per_chunk), native

    def _exec_frozen_run(self, frozen, nl) -> None:
        """Run one frozen kernel fold chunk by chunk."""
        for ci, chunk in enumerate(self._chunks):
            self._exec_frozen_chunk(frozen, nl, ci, chunk)

    def _exec_frozen_chunk(self, frozen, nl, ci, chunk) -> None:
        """Replay one chunk's frozen kernel-fold program.

        When the engine's dispatch goes native for the chunk, the typed
        step blocks are walked by one compiled ``drive`` call each
        (matrices re-filled from the live ``(seg, i)`` refs, so cache
        rebinding flows through); otherwise each tagged python step
        replays the same planar expression tree through the
        :mod:`repro.sim.kernels` numpy helpers.  The two arms are
        bit-identical by the planar kernel contract; scalars and
        matrices are rounded to the chunk dtype exactly once here (the
        rounding boundary) in both arms.
        """
        per_chunk, native = frozen
        kd = self._kernels
        c64 = chunk.dtype == np.complex64
        if kd.native(chunk.size):
            for item in native[ci]:
                if item[0] == "blk":
                    _, codes, arg0, arg1, refs = item
                    mats = np.empty((len(refs), 4), dtype=chunk.dtype)
                    for j, (src, i) in enumerate(refs):
                        u = src.entries[i][1]
                        mats[j, 0] = u[0, 0]
                        mats[j, 1] = u[0, 1]
                        mats[j, 2] = u[1, 0]
                        mats[j, 3] = u[1, 1]
                    kd.drive(
                        chunk,
                        codes,
                        arg0,
                        arg1,
                        mats.view(np.float32 if c64 else np.float64),
                    )
                else:  # ("py", step): generic ct/csel entry
                    st = item[1]
                    if st[0] == "g":
                        apply_run(chunk, (st[1].entries[st[2]],), nl, ci, kd)
                    else:
                        apply_run(chunk, (st[1].entry,), nl, ci, kd)
            return
        counters = kd.counters
        for st in per_chunk[ci]:
            tag = st[0]
            if tag == "sf":
                counters["numpy_fallbacks"] += 1
                _K.sq_full_view(chunk.reshape(st[3]), st[1].entries[st[2]][1])
            elif tag == "sd":
                counters["numpy_fallbacks"] += 1
                _K.sq_diag_view(chunk.reshape(st[3]), st[1].entries[st[2]][1])
            elif tag == "cf":
                counters["numpy_fallbacks"] += 1
                _K.cc_full_view(
                    chunk.reshape(st[3]), st[4], st[5], st[1].entries[st[2]][1]
                )
            elif tag == "cd":
                counters["numpy_fallbacks"] += 1
                _K.cc_diag_view(
                    chunk.reshape(st[3]), st[4], st[5], st[1].entries[st[2]][1]
                )
            elif tag == "ss":
                counters["numpy_fallbacks"] += 1
                u = st[1].entries[st[2]][1]
                f = u[st[3], st[3]]
                if c64:
                    # Round once, like the native arm's mats staging
                    # (multiplying by an exactly-1.0 rounded factor is
                    # the identity, so the skip guard cannot diverge).
                    f = complex(np.complex64(f))
                if f != 1.0:
                    _K.imul(chunk, f)
            elif tag == "cs":
                counters["numpy_fallbacks"] += 1
                u = st[1].entries[st[2]][1]
                f = u[st[5], st[5]]
                if c64:
                    f = complex(np.complex64(f))
                if f != 1.0:
                    _K.imul(chunk.reshape(st[3])[st[4]], f)
            elif tag == "g":
                apply_run(chunk, (st[1].entries[st[2]],), nl, ci, kd)
            else:  # "gp"
                apply_run(chunk, (st[1].entry,), nl, ci, kd)

    def execute_frozen(self, program) -> None:
        """Replay a frozen program (same arithmetic as the interpreter)."""
        nl = self.n_local
        for step in program:
            if step[0] == "stretch":
                _, stretch, cost, folds, n_segments = step
                self.segments_executed += n_segments
                if self._parallel_ready(cost):
                    self._dispatch_stretch(stretch)
                    continue
                # Chunk-major: materialize every fold's phase tensors
                # first, then touch each chunk exactly once for the whole
                # stretch (chunks are independent between barriers, so
                # the per-chunk op order — and the amplitudes — are
                # identical to fold-major order).  Out-of-core registers
                # then stream each chunk through the page cache once per
                # stretch instead of once per fold.
                prepped = [
                    ("diag", self._prep_diag_batch(payload.batch))
                    if kind == "diag"
                    else ("run", payload)
                    for kind, payload in folds
                ]
                for ci, chunk in enumerate(self._chunks):
                    for kind, payload in prepped:
                        if kind == "diag":
                            vecs, sig_of = payload
                            v = chunk.reshape((-1,) + (2,) * nl)
                            v *= vecs[sig_of[ci]]
                        else:
                            self._exec_frozen_chunk(payload, nl, ci, chunk)
                continue
            barrier = step[1]
            self.segments_executed += 1
            if isinstance(barrier, PlanSegment):
                self.apply(barrier.plan.u, *barrier.plan.qubits)
            else:
                op = barrier.op
                if op.controls:
                    self.apply_controlled(
                        op.target_matrix(), list(op.controls), list(op.targets)
                    )
                else:
                    self.apply(op.target_matrix(), *op.targets)

    @staticmethod
    def _fold_stretch(stretch):
        """Fold a stretch into bulk payloads: the one shared walk.

        Yields ``("run", entries)`` for each maximal run of kernel
        entries (:class:`~repro.sim.schedule.KernelRun` entries plus
        communication-free :class:`~repro.sim.schedule.PlanSegment`
        entries, merged across segment boundaries) and
        ``("diag", batch)`` for each diagonal segment, in program
        order.  Both the serial executor and the run-level pool
        dispatch consume this, so the two paths cannot drift.
        """
        entries: list = []
        for seg in stretch:
            if isinstance(seg, DiagSegment):
                if entries:
                    yield ("run", tuple(entries))
                    entries = []
                yield ("diag", seg.batch)
            elif isinstance(seg, KernelRun):
                entries.extend(seg.entries)
            else:  # communication-free PlanSegment
                entries.append(seg.entry)
        if entries:
            yield ("run", tuple(entries))

    def _apply_stretch(self, stretch) -> None:
        """Execute one communication-free stretch of segments.

        Serially this is one pass over each chunk per kernel run plus
        one vectorized multiply per diagonal segment — identical
        arithmetic to the worker path (:func:`repro.sim.parallel.apply_run`).
        With the pool ready — a cost-aware decision: the segments' cost
        tags weigh the stretch against the per-dispatch round-trip (see
        :meth:`_parallel_ready`) — the whole stretch ships as one
        ``("segments", ...)`` task per worker (see :meth:`_dispatch_stretch`).
        """
        if self._parallel_ready(sum(seg.cost for seg in stretch)):
            self._dispatch_stretch(stretch)
            return
        nl = self.n_local
        kd = self._kernels
        # Chunk-major (see execute_frozen): prepare every fold, then one
        # pass over the chunks applying all of them — each chunk is
        # touched exactly once per communication-free stretch, which is
        # what lets spilled registers stream through the page cache.
        prepped = [
            ("diag", self._prep_diag_batch(payload))
            if kind == "diag"
            else ("run", payload)
            for kind, payload in self._fold_stretch(stretch)
        ]
        for ci, c in enumerate(self._chunks):
            for kind, payload in prepped:
                if kind == "run":
                    apply_run(c, payload, nl, ci, kd)
                else:
                    vecs, sig_of = payload
                    v = c.reshape((-1,) + (2,) * nl)
                    v *= vecs[sig_of[ci]]

    def _batch_tables(self, batch: DiagBatch):
        """A batch's phase tables keyed by bit position (chunk layout)."""
        singles = [(self._bit(q), t) for q, t in batch.phases1.items()]
        pairs = [
            ((self._bit(a), self._bit(b)), t)
            for (a, b), t in batch.phases2.items()
        ]
        return singles, pairs

    def _prep_diag_batch(self, batch: DiagBatch):
        """Materialize a diagonal batch's per-signature phase tensors.

        The per-qubit/per-pair phase tables become one broadcastable
        complex128 tensor per *shard-bit signature*
        (:func:`repro.sim.diag.signature_vectors`) — computed once per
        signature and shared by every chunk with it.  Phase tensors stay
        complex128 in every register dtype: the in-place chunk multiply
        casts on store, so a complex64 register still sees phases
        accumulated at full precision.
        """
        singles, pairs = self._batch_tables(batch)
        _, vecs, sig_of = signature_vectors(
            singles, pairs, self.n_local, len(self._chunks), kernels=self._kernels
        )
        return vecs, sig_of

    def _apply_diag_batch(self, batch: DiagBatch) -> None:
        """Apply a coalesced diagonal batch as per-chunk phase vectors.

        Each chunk updates with a single vectorized in-place multiply;
        no chunk ever exchanges amplitudes, regardless of which axes the
        batch touches.
        """
        nl = self.n_local
        vecs, sig_of = self._prep_diag_batch(batch)
        for ci, c in enumerate(self._chunks):
            # Leading -1 axis folds in any shot-branch rows; the phase
            # tensor (ndim nl) broadcasts over it right-aligned.
            v = c.reshape((-1,) + (2,) * nl)
            v *= vecs[sig_of[ci]]

    def _dispatch_stretch(self, stretch) -> None:
        """Ship a communication-free stretch to the pool, run-level.

        The stretch is folded into worker payloads — consecutive kernel
        entries merge into ``("run", entries)`` records, each diagonal
        segment stages its per-signature phase tensors once in scratch
        shared memory and becomes ``("mul", high_bits, vec_map)`` — and
        the chunks are partitioned statically: **one**
        ``("segments", chunk_slice, ...)`` task per worker covers the
        whole stretch, so queue round-trips are O(workers) per stretch
        (the scratch staging is the in-process analogue of "compute on
        rank 0, broadcast").
        """
        nl = self.n_local
        payloads: list[tuple] = []
        scratch: list[shared_memory.SharedMemory] = []
        try:
            for kind, payload in self._fold_stretch(stretch):
                if kind == "run":
                    payloads.append(("run", payload))
                    continue
                singles, pairs = self._batch_tables(payload)
                high_bits, vecs, _ = signature_vectors(
                    singles, pairs, nl, len(self._chunks), kernels=self._kernels
                )
                vec_map: dict[tuple[int, ...], tuple[str, tuple]] = {}
                for sig, vec in vecs.items():
                    shm = shared_memory.SharedMemory(
                        create=True, size=max(16, vec.nbytes)
                    )
                    scratch.append(shm)
                    staged = np.ndarray(
                        vec.shape, dtype=np.complex128, buffer=shm.buf
                    )
                    staged[...] = vec
                    del staged
                    vec_map[sig] = (shm.name, vec.shape)
                payloads.append(("mul", tuple(high_bits), vec_map))
            pool = self._get_pool()
            n_chunks = len(self._chunks)
            n_tasks = min(pool.workers, n_chunks)
            memo = self._partition_memo
            if memo is None or memo[0] != (n_chunks, n_tasks):
                parts = []
                for w in range(n_tasks):
                    lo = w * n_chunks // n_tasks
                    hi = (w + 1) * n_chunks // n_tasks
                    parts.append(
                        tuple(
                            (self._shm[ci].name, self._chunks[ci].size, ci)
                            for ci in range(lo, hi)
                        )
                    )
                memo = ((n_chunks, n_tasks), tuple(parts))
                self._partition_memo = memo
            kargs = self._kernels.worker_args()
            tasks = [
                ("segments", refs, nl, tuple(payloads), kargs, self.dtype)
                for refs in memo[1]
            ]
            pool.run_tasks(tasks)
        finally:
            for shm in scratch:
                self._release_shm(shm)

    def apply(self, u: np.ndarray, *qubits: int) -> None:
        """Apply a ``2^k x 2^k`` unitary to ``k`` qubits.

        The first qubit in ``qubits`` corresponds to the most significant
        bit of the matrix index (``U = sum |i><j|`` over k-bit ints).
        """
        k = len(qubits)
        if len(set(qubits)) != k:
            raise SimulationError(f"duplicate qubits in {qubits}")
        # Rounding boundary: the matrix lands in the register dtype once,
        # so all downstream arithmetic runs in-precision (and NEP 50
        # never silently promotes a complex64 register to complex128).
        u = np.asarray(u, dtype=self._dtype)
        if u.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {u.shape} does not match {k} qubits"
            )
        bits = [self._bit(q) for q in qubits]
        if k == 1:
            self._apply_single(u, bits[0])
        elif all(b < self.n_local for b in bits):
            self._apply_local(u, bits)
        else:
            self._apply_mixed(u, bits)

    def _apply_single(self, u: np.ndarray, b: int) -> None:
        nl = self.n_local
        if u[0, 1] == 0 and u[1, 0] == 0:
            # Diagonal gate: pure per-amplitude phase, never communicates.
            if b < nl:
                stride = 1 << b
                for c in self._chunks:
                    v = c.reshape(-1, 2, stride)
                    if u[0, 0] != 1.0:
                        v[:, 0, :] *= u[0, 0]
                    if u[1, 1] != 1.0:
                        v[:, 1, :] *= u[1, 1]
            else:
                mask = 1 << (b - nl)
                for i, c in enumerate(self._chunks):
                    c *= u[1, 1] if i & mask else u[0, 0]
            return
        if b < nl:
            # Local axis: strided in-place kernel on each flat chunk.
            stride = 1 << b
            for c in self._chunks:
                v = c.reshape(-1, 2, stride)
                a0 = v[:, 0, :].copy()
                a1 = v[:, 1, :]
                v[:, 0, :] = u[0, 0] * a0 + u[0, 1] * a1
                v[:, 1, :] = u[1, 0] * a0 + u[1, 1] * a1
            return
        # High axis: pair-chunk exchange, then a local linear
        # combination, one pair at a time so peak transient RAM is
        # O(chunk) rather than a second full register.  The fabric
        # payloads alias live peer chunks, so both halves of a pair are
        # computed before either is written.
        mask = 1 << (b - nl)
        partners = self._pair_exchange(b - nl)
        for i in range(len(self._chunks)):
            if i & mask:
                continue
            j = i | mask
            new_lo = u[0, 0] * self._chunks[i] + u[0, 1] * partners[i]
            new_hi = u[1, 0] * partners[j] + u[1, 1] * self._chunks[j]
            self._set_chunk(i, new_lo)
            self._set_chunk(j, new_hi)

    def _apply_local(self, u: np.ndarray, bits: Sequence[int]) -> None:
        # All axes intra-chunk: tensor contraction per chunk, no traffic
        # (the same in-place kernel the plan run entries use).
        nl = self.n_local
        for c in self._chunks:
            contract_local(c, u, bits, nl)

    def _apply_mixed(self, u: np.ndarray, bits: Sequence[int]) -> None:
        # At least one high axis: gather the 2^h group chunks, contract the
        # full group tensor, keep our slice. (Each member recomputes the
        # group tensor — redundant by 2^h, but h <= log2(n_shards) and
        # high-axis multi-qubit gates are the rare, communication-bound
        # case by construction.)
        k = len(bits)
        nl = self.n_local
        shard_bits = sorted({b - nl for b in bits if b >= nl})
        h = len(shard_bits)
        groups, gathered = self._group_exchange(shard_bits)
        ut = u.reshape((2,) * (2 * k))
        # Group-tensor axes: h shard axes first (most significant shard bit
        # first), then a folded shot-branch axis (size 1 when unbranched),
        # then the n_local intra-chunk axes (bit nl-1 first).
        axes = [
            (h - 1 - shard_bits.index(b - nl)) if b >= nl else (h + 1 + nl - 1 - b)
            for b in bits
        ]
        # Per-group compute-then-write: the gathered payloads alias live
        # member chunks, so every member's new slice is computed before
        # any member is mutated — and groups are disjoint, so finishing
        # one group before starting the next keeps peak transient RAM at
        # O(group) instead of a second full register.
        for members in groups.values():
            new: dict[int, np.ndarray] = {}
            for dst in members:
                t = np.stack(gathered[dst]).reshape((2,) * h + (-1,) + (2,) * nl)
                t = np.tensordot(ut, t, axes=(range(k, 2 * k), axes))
                t = np.moveaxis(t, range(k), axes)
                own = tuple((dst >> shard_bits[h - 1 - i]) & 1 for i in range(h))
                new[dst] = np.ascontiguousarray(t[own]).reshape(-1)
            for dst in members:
                self._set_chunk(dst, new[dst])

    def apply_controlled(
        self, u: np.ndarray, controls: Sequence[int], targets: Sequence[int]
    ) -> None:
        """Apply ``u`` on ``targets`` conditioned on all ``controls`` = |1>.

        When every target is a local axis this needs no communication at
        all, regardless of where the controls live: a chunk participates
        only if all its high-axis control bits are 1, and within it the
        |1...1> local-control slice is updated in place. Diagonal
        single-target gates (cz, controlled-phase) are communication-free
        on any axis; only a non-diagonal high-axis *target* falls back to
        the dense controlled matrix (and its exchange).
        """
        controls = list(controls)
        targets = list(targets)
        if set(controls) & set(targets):
            raise SimulationError("control and target qubits overlap")
        k = len(targets)
        u = np.asarray(u, dtype=self._dtype)
        if u.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {u.shape} does not match {k} targets"
            )
        if not controls:
            self.apply(u, *targets)
            return
        nl = self.n_local
        c_bits = [self._bit(q) for q in controls]
        t_bits = [self._bit(q) for q in targets]
        if len(set(c_bits + t_bits)) != len(c_bits) + len(t_bits):
            raise SimulationError(f"duplicate qubits in {(*controls, *targets)}")
        if any(b >= nl for b in t_bits):
            if k == 1 and u[0, 1] == 0 and u[1, 0] == 0:
                # Diagonal single-target (cz, controlled-phase): a pure
                # phase needs no exchange even on a high axis — the
                # target bit is fixed per chunk.
                tb = t_bits[0] - nl
                cmask = sum(1 << (b - nl) for b in c_bits if b >= nl)
                # Leading -1 axis folds in any shot-branch rows.
                idx: list = [slice(None)] * (nl + 1)
                for b in c_bits:
                    if b < nl:
                        idx[1 + nl - 1 - b] = 1
                idx = tuple(idx)
                for i, c in enumerate(self._chunks):
                    if (i & cmask) != cmask:
                        continue
                    f = u[1, 1] if (i >> tb) & 1 else u[0, 0]
                    if f != 1.0:
                        c.reshape((-1,) + (2,) * nl)[idx] *= f
                return
            if k == 1:
                self._apply_controlled_high_target(u, c_bits, t_bits[0])
                return
            self.apply(G.controlled(u, len(controls)), *controls, *targets)
            return
        mask = sum(1 << (b - nl) for b in c_bits if b >= nl)
        local_controls = [b for b in c_bits if b < nl]
        ut = u.reshape((2,) * (2 * k))
        # Leading -1 axis folds in any shot-branch rows (no-op when
        # unbranched); local axes shift up by one.
        idx: list = [slice(None)] * (nl + 1)
        for b in local_controls:
            idx[1 + nl - 1 - b] = 1
        idx = tuple(idx)
        if k == 1:
            # Strided fast path for the cnot/cz/toffoli family: operate on
            # the two target slices of the |1...1> control subspace.
            ax = 1 + nl - 1 - t_bits[0]
            idx0 = list(idx)
            idx0[ax] = 0
            idx0 = tuple(idx0)
            idx1 = list(idx)
            idx1[ax] = 1
            idx1 = tuple(idx1)
            diag = u[0, 1] == 0 and u[1, 0] == 0
            for i, c in enumerate(self._chunks):
                if (i & mask) != mask:
                    continue
                view = c.reshape((-1,) + (2,) * nl)
                if diag:
                    # Indexed in-place ops: a plain `view[idx0] * u` would be
                    # a copy once every axis is integer-indexed (chunk_size 2).
                    if u[0, 0] != 1.0:
                        view[idx0] *= u[0, 0]
                    if u[1, 1] != 1.0:
                        view[idx1] *= u[1, 1]
                else:
                    a0 = view[idx0]
                    a1 = view[idx1]
                    new0 = u[0, 0] * a0 + u[0, 1] * a1
                    view[idx1] = u[1, 0] * a0 + u[1, 1] * a1
                    view[idx0] = new0
            return
        # Target axes within the sliced view shift down past removed
        # control axes (same arithmetic as StateVector.apply_controlled);
        # the leading branch axis survives the slicing at position 0.
        t_axes = [
            1 + nl - 1 - b - sum(1 for cb in local_controls if cb > b)
            for b in t_bits
        ]
        for i, c in enumerate(self._chunks):
            if (i & mask) != mask:
                continue
            view = c.reshape((-1,) + (2,) * nl)
            sub = view[idx]
            new = np.tensordot(ut, sub, axes=(range(k, 2 * k), t_axes))
            view[idx] = np.moveaxis(new, range(k), t_axes)

    def _apply_controlled_high_target(self, u: np.ndarray, c_bits, t_bit: int) -> None:
        """Non-diagonal single-target controlled gate whose target is a
        shard axis: pair-chunk exchange restricted to participating chunks.

        Only chunks whose high-axis control bits are all 1 take part; each
        sends its amplitudes to its partner in the target bit and combines
        on the |1...1> slice of any *local* control axes. This replaces
        the dense ``controlled(u)`` + group all-to-all fallback: half (or
        fewer) of the chunks exchange, pairwise, with no group tensor.
        """
        nl = self.n_local
        cmask = sum(1 << (b - nl) for b in c_bits if b >= nl)
        # Leading -1 axis folds in any shot-branch rows.
        idx: list = [slice(None)] * (nl + 1)
        for b in c_bits:
            if b < nl:
                idx[1 + nl - 1 - b] = 1
        idx = tuple(idx)
        pmask = 1 << (t_bit - nl)
        tag = next(self._tags)
        parts = [i for i in range(len(self._chunks)) if (i & cmask) == cmask]
        for i in parts:
            self._fabric.send(0, i, i ^ pmask, tag, self._chunks[i])
        partners = {
            i: self._fabric.recv(0, i, i ^ pmask, tag).payload for i in parts
        }
        # Two passes: payloads may alias live peer chunks (the in-process
        # fabric does not copy), so compute every new slice before any
        # chunk is mutated.
        new = {}
        for i in parts:
            own = self._chunks[i].reshape((-1,) + (2,) * nl)
            par = partners[i].reshape((-1,) + (2,) * nl)
            if i & pmask:
                new[i] = u[1, 0] * par[idx] + u[1, 1] * own[idx]
            else:
                new[i] = u[0, 0] * own[idx] + u[0, 1] * par[idx]
        for i in parts:
            self._chunks[i].reshape((-1,) + (2,) * nl)[idx] = new[i]

    # -- conveniences ---------------------------------------------------
    def h(self, q: int) -> None:
        self.apply(G.H, q)

    def x(self, q: int) -> None:
        self.apply(G.X, q)

    def y(self, q: int) -> None:
        self.apply(G.Y, q)

    def z(self, q: int) -> None:
        self.apply(G.Z, q)

    def s(self, q: int) -> None:
        self.apply(G.S, q)

    def sdg(self, q: int) -> None:
        self.apply(G.SDG, q)

    def t(self, q: int) -> None:
        self.apply(G.T, q)

    def tdg(self, q: int) -> None:
        self.apply(G.TDG, q)

    def rx(self, q: int, theta: float) -> None:
        self.apply(G.rx(theta), q)

    def ry(self, q: int, theta: float) -> None:
        self.apply(G.ry(theta), q)

    def rz(self, q: int, theta: float) -> None:
        self.apply(G.rz(theta), q)

    def cnot(self, control: int, target: int) -> None:
        self.apply_controlled(G.X, [control], [target])

    def cz(self, control: int, target: int) -> None:
        self.apply_controlled(G.Z, [control], [target])

    def crz(self, control: int, target: int, theta: float) -> None:
        self.apply_controlled(G.rz(theta), [control], [target])

    def cphase(self, control: int, target: int, lam: float) -> None:
        self.apply_controlled(G.phase(lam), [control], [target])

    def swap(self, a: int, b: int) -> None:
        self.apply(G.SWAP, a, b)

    def toffoli(self, c1: int, c2: int, target: int) -> None:
        self.apply_controlled(G.X, [c1, c2], [target])

    # ------------------------------------------------------------------
    # measurement and inspection
    # ------------------------------------------------------------------
    def _branch_prob_one(self, qubit: int) -> np.ndarray:
        """Per-branch probability of |1> on ``qubit``, shape ``(B,)``."""
        b = self._bit(qubit)
        nl = self.n_local
        B = self._n_branches
        p = np.zeros(B)
        if b < nl:
            stride = 1 << b
            for c in self._chunks:
                v = np.abs(c.reshape(B, -1, 2, stride)[:, :, 1, :]) ** 2
                p += v.reshape(B, -1).sum(axis=1)
        else:
            mask = 1 << (b - nl)
            for i, c in enumerate(self._chunks):
                if i & mask:
                    p += (np.abs(c.reshape(B, -1)) ** 2).sum(axis=1)
        return np.clip(p, 0.0, 1.0)

    def prob_one(self, qubit: int):
        """Probability of measuring |1> on ``qubit`` (no collapse).

        Outside shots mode (and whenever every tracked branch agrees)
        this is a plain float; after a measurement fork made the
        probability branch-dependent, the per-shot values are returned
        as an array instead.
        """
        if self._shots is None:
            return float(self._branch_prob_one(qubit)[0])
        p = self._branch_prob_one(qubit)
        if np.ptp(p) < self._agree_eps:
            return float(p[0])
        return p[self._shot_of]

    def measure(self, qubit: int):
        """Projective Z-basis measurement with collapse.

        Returns 0 or 1; in shots mode returns a
        :class:`~repro.sim.shots.ShotBits` of per-shot outcomes, and
        every chunk's branch rows fork into one row per surviving
        ``(branch, outcome)`` pair.
        """
        if self._shots is None:
            p1 = self.prob_one(qubit)
            bit = int(self.rng.random() < p1)
            self.postselect(qubit, bit)
            return bit
        p1 = self._branch_prob_one(qubit)
        bits, self._shot_of, spec = fork_outcomes(p1, self._shot_of, self.rng)
        b = self._bit(qubit)
        nl = self.n_local
        csize = self.chunk_size
        B_old = self._n_branches
        new_chunks = []
        for ci, c in enumerate(self._chunks):
            v = c.reshape(B_old, csize)
            out = np.zeros((len(spec), csize), dtype=self._dtype)
            for i, (src, outcome, scale) in enumerate(spec):
                # float(scale) keeps the scalar weak under NEP 50 so a
                # complex64 register is not promoted (exact for float64).
                if b < nl:
                    row = v[src] * float(scale)
                    row.reshape(-1, 2, 1 << b)[:, 1 - outcome, :] = 0.0
                    out[i] = row
                elif ((ci >> (b - nl)) & 1) == outcome:
                    out[i] = v[src] * float(scale)
                # else: this chunk holds the projected-away half — zero.
            new_chunks.append(out.reshape(-1))
        self._n_branches = len(spec)
        self._store_chunks(new_chunks)
        return bits

    def apply_pauli_if(self, cond, pauli: str, qubit: int) -> None:
        """Apply a Pauli to ``qubit`` where ``cond`` holds.

        ``cond`` is an int/bool (plain conditional application) or
        per-shot measurement data (:class:`~repro.sim.shots.ShotBits`):
        the Pauli is then applied only on the branch rows whose shots
        satisfy it — the vectorized form of the protocols' classical
        ``if m: X`` fixups.
        """
        if self._shots is None:
            if cond:
                self.apply(G.PAULIS[pauli.upper()], qubit)
            return
        mask = branch_mask(cond, self._shot_of, self._n_branches)
        if not mask.any():
            return
        if mask.all():
            self.apply(G.PAULIS[pauli.upper()], qubit)
            return
        self._branch_apply(mask, pauli.upper(), qubit)

    def _branch_apply(self, mask: np.ndarray, pauli: str, qubit: int) -> None:
        """Apply X/Y/Z to ``qubit`` on the masked branch rows only."""
        B = self._n_branches
        if pauli == "Y":
            # Y = i X Z: the masked rows pick up an i phase on top.
            self._branch_apply(mask, "Z", qubit)
            self._branch_apply(mask, "X", qubit)
            for c in self._chunks:
                v = c.reshape(B, -1)
                v[mask] = v[mask] * 1j
            return
        b = self._bit(qubit)
        nl = self.n_local
        if pauli == "Z":
            if b < nl:
                stride = 1 << b
                for c in self._chunks:
                    v = c.reshape(B, -1, 2, stride)
                    v[mask, :, 1, :] = v[mask, :, 1, :] * -1.0
            else:
                hbit = 1 << (b - nl)
                for i, c in enumerate(self._chunks):
                    if i & hbit:
                        v = c.reshape(B, -1)
                        v[mask] = v[mask] * -1.0
            return
        # X
        if b < nl:
            stride = 1 << b
            for c in self._chunks:
                v = c.reshape(B, -1, 2, stride)
                v[mask] = v[mask][:, :, ::-1, :]
            return
        # High axis: the masked rows swap with the partner chunk's rows.
        # Gather every replacement first — the in-process fabric does not
        # copy payloads, so partner arrays alias live peer chunks.
        partners = self._pair_exchange(b - nl)
        rows = [p.reshape(B, -1)[mask] for p in partners]  # fancy index copies
        for c, r in zip(self._chunks, rows):
            c.reshape(B, -1)[mask] = r

    def postselect(self, qubit: int, bit: int) -> None:
        """Project ``qubit`` onto ``|bit>`` and renormalize (per branch)."""
        b = self._bit(qubit)
        nl = self.n_local
        if b < nl:
            stride = 1 << b
            for c in self._chunks:
                c.reshape(-1, 2, stride)[:, 1 - bit, :] = 0.0
        else:
            mask = 1 << (b - nl)
            for i, c in enumerate(self._chunks):
                if bool(i & mask) != bool(bit):
                    c[:] = 0.0
        if self._shots is None:
            norm = self.norm()
            if norm < self._norm_eps:
                raise SimulationError(
                    f"postselecting qubit {qubit} on {bit}: outcome has zero "
                    "probability"
                )
            for c in self._chunks:
                c /= norm
            return
        B = self._n_branches
        sq = np.zeros(B)
        for c in self._chunks:
            sq += (np.abs(c.reshape(B, -1)) ** 2).sum(axis=1)
        norms = np.sqrt(sq)
        if np.any(norms < self._norm_eps):
            raise SimulationError(
                f"postselecting qubit {qubit} on {bit}: outcome has zero "
                "probability in some branch"
            )
        for c in self._chunks:
            c.reshape(B, -1)[:] /= norms[:, None]

    def measure_many(self, qubits: Iterable[int]) -> list[int]:
        """Measure several qubits sequentially (with collapse)."""
        return [self.measure(q) for q in qubits]

    def amplitude(self, bits: Sequence[int], qubits: Sequence[int] | None = None) -> complex:
        """Amplitude of the computational basis state given by ``bits``.

        ``qubits`` defaults to all qubits in allocation order.
        """
        qubits = list(qubits) if qubits is not None else list(self.qubit_ids)
        if len(bits) != len(qubits):
            raise SimulationError("bits and qubits must have equal length")
        if len(qubits) != self.num_qubits:
            raise SimulationError("amplitude() requires all qubits")
        self._require_unforked("amplitude")
        g = 0
        for bval, q in zip(bits, qubits):
            g |= int(bval) << self._bit(q)
        nl = self.n_local
        return complex(self._chunks[g >> nl][g & ((1 << nl) - 1)])

    def statevector(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Dense state vector with ``qubits[0]`` as the most significant bit.

        ``qubits`` must enumerate all allocated qubits; defaults to
        allocation order (for which this is a plain chunk concatenation).
        """
        qubits = list(qubits) if qubits is not None else list(self.qubit_ids)
        if sorted(qubits) != sorted(self._bit_of):
            raise SimulationError("statevector() requires all qubit ids exactly once")
        self._require_unforked("statevector")
        full = np.concatenate(self._chunks)
        n = self.num_qubits
        # Axis i of the (2,)*n view is global bit n-1-i == qubit_ids[i].
        axes = [n - 1 - self._bit(q) for q in qubits]
        return np.moveaxis(full.reshape((2,) * n), axes, range(n)).reshape(-1).copy()

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Measurement distribution over computational basis states."""
        vec = self.statevector(qubits)
        return np.abs(vec) ** 2

    def norm(self) -> float:
        """Euclidean norm of the state (should always be ~1).

        In shots mode this is the root-mean-square of the per-branch
        norms, so it stays ~1 regardless of how many branches exist.
        """
        sq = sum(float(np.sum(np.abs(c) ** 2)) for c in self._chunks)
        if self._shots is not None:
            sq /= self._n_branches
        return float(np.sqrt(sq))

    def expectation_pauli(self, mapping: dict[int, str]) -> float:
        """Expectation value of a Pauli string ``{qubit: 'X'|'Y'|'Z'}``."""
        self._require_unforked("expectation_pauli")
        saved = [c.copy() for c in self._chunks]
        try:
            for q, p in mapping.items():
                self.apply(G.PAULIS[p.upper()], q)
            val = sum(np.vdot(s, c) for s, c in zip(saved, self._chunks))
        finally:
            self._store_chunks(saved)
        return float(np.real(val))

    def copy(self) -> "ShardedStateVector":
        """Deep copy (shares no state, including a cloned RNG).

        The copy always runs serially: it does not inherit the worker
        pool or the shared-memory chunk backing.
        """
        out = ShardedStateVector.__new__(ShardedStateVector)
        # Same mode/threshold, fresh counters: the copy's kernel hits
        # are its own.
        out._kernels = KernelDispatch(
            self._kernels.mode, jit_min_amps=self._kernels.jit_min_amps
        )
        out._partition_memo = None
        out.n_shards = self.n_shards
        out._fabric = Fabric(self.n_shards)
        out._tags = itertools.count()
        out._workers = 0
        out._parallel_min_chunk = self._parallel_min_chunk
        out._dtype = self._dtype
        out._zero_atol = self._zero_atol
        out._norm_eps = self._norm_eps
        out._agree_eps = self._agree_eps
        # The copy is always a plain in-RAM register (like workers, the
        # spill tier is not inherited).
        out._spill = None
        out._spill_budget = self._spill_budget
        out._spill_dir = None
        out._spill_files = []
        out._spill_seq = itertools.count()
        out._mmapped = False
        out._pool = None
        out._shm = None
        out._retired = []
        out._chunks = [c.copy() for c in self._chunks]
        out._bit_of = dict(self._bit_of)
        out._next_id = self._next_id
        out._shots = self._shots
        out._shot_of = None if self._shot_of is None else self._shot_of.copy()
        out._n_branches = self._n_branches
        out.segments_executed = self.segments_executed
        out.rng = np.random.default_rng(self.rng.integers(2**63))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedStateVector n={self.num_qubits} chunks={self.num_chunks}"
            f"x{self.chunk_size} ids={self.qubit_ids}>"
        )
