"""Unified execution-schedule IR: cost-classified segments for both engines.

The QMPI paper's performance model works because every operation is
classified *once* — local vs. EPR-mediated, with a known cost — before
execution.  Until this module existed, the flush pipeline had grown the
opposite way: ``OpStream.flush`` handed each backend a heterogeneous
``Op | DiagBatch | ContractionPlan`` list that ``StateVector``,
``ShardedStateVector`` and the ``ChunkPool`` each re-interpreted and
re-classified ad hoc.  This module is now the **single place where
execution strategy is decided**, in two passes:

:func:`lower_flush` — the stream-side pass (called by
:meth:`repro.qmpi.stream.OpStream.flush`): diagonal coalescing followed
by **size-aware** contraction planning.  The :class:`CostModel` decides
whether planning pays at all (the fused matmul only amortizes its
planning + window-product overhead from about 16 qubits — below
``plan_min_qubits`` the pass is bypassed outright) and how wide windows
may grow (beyond ``wide_window_min_qubits`` the per-pass memory traffic
dominates, so 4-qubit windows — one 16x16 contraction replacing >= 4
strided passes — win and :data:`~repro.sim.plan.MAX_WINDOW` is widened
to ``wide_window``).

:func:`compile_segments` — the engine-side pass (called by both
``apply_ops`` implementations): turns the lowered op list into an
ordered list of typed **segments**, each tagged exactly once with its
communication class and a cost estimate:

* :class:`KernelRun`    — a maximal run of communication-free kernels
  (single-qubit strided passes, controlled gates with chunk-local
  targets, chunk-local contractions);
* :class:`DiagSegment`  — one coalesced :class:`~repro.sim.diag.DiagBatch`,
  always communication-free (phase-vector multiply per shard-bit
  signature);
* :class:`PlanSegment`  — one :class:`~repro.sim.plan.ContractionPlan`,
  classified against the chunk layout exactly once (the logic that
  used to live in ``ShardedStateVector._classify_plan``);
* :class:`ExchangeSegment` — an op whose unitary genuinely mixes
  amplitudes across a shard axis (or a rare generic shape outside the
  kernel vocabulary): the engines fall back to their exchange paths.

Communication classes (:data:`LOCAL` / :data:`BLOCKDIAG` /
:data:`MIXING`) mirror the sharded layout: ``local`` never reads the
chunk index, ``blockdiag`` selects per-chunk factors or sub-blocks from
the shard-bit signature but never moves amplitude between chunks, and
``mixing`` requires chunk exchange.  A maximal run of non-``mixing``
segments is a **communication-free stretch** — the unit
:meth:`repro.sim.sharded.ShardedStateVector.apply_ops` ships to the
worker pool as one task per worker (run-level dispatch) instead of one
task per chunk per entry.

Engines are pure *interpreters* of this IR: they decide nothing, they
only execute segments.  The shared engine compiles with no layout
(everything is ``local``); the sharded engine passes its bit mapping
and chunk-boundary position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .diag import DiagBatch, coalesce_diagonals
from .plan import MAX_WINDOW, ContractionPlan, plan_contractions, window_product

__all__ = [
    "LOCAL",
    "BLOCKDIAG",
    "MIXING",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Segment",
    "KernelRun",
    "DiagSegment",
    "PlanSegment",
    "ExchangeSegment",
    "classify_matrix",
    "is_parametric",
    "plan_support",
    "lower_flush",
    "compile_segments",
    "iter_stretches",
]

#: Communication class: the segment never reads the chunk index.
LOCAL = "local"
#: Communication class: per-chunk factors/sub-blocks selected by the
#: shard-bit signature; amplitudes never cross a chunk boundary.
BLOCKDIAG = "blockdiag"
#: Communication class: amplitudes move between chunks (fabric exchange).
MIXING = "mixing"


@dataclass(frozen=True)
class CostModel:
    """Small calibratable model of per-amplitude execution cost.

    Costs are in *per-amplitude work units* (roughly flops per amplitude
    touched, with exchange bandwidth folded into the same scale);
    multiply by ``2^n_qubits`` for an absolute estimate.  The planning
    thresholds are the calibrated knobs: they come from the committed
    ``BENCH_plan.json`` sweeps (fused matmuls lose below ~16 qubits,
    where per-op dispatch overhead is cheaper than planning; the 16x16
    four-qubit contraction wins from ~18 qubits, where one pass over the
    amplitudes beats four).
    """

    #: Register size below which contraction planning is bypassed
    #: entirely (the matmul cannot amortize the planning pass).
    plan_min_qubits: int = 16
    #: Register size from which plan windows widen to ``wide_window``
    #: qubits (memory traffic dominates: one 2^w x 2^w pass wins).
    wide_window_min_qubits: int = 18
    #: Widened window bound used at or above ``wide_window_min_qubits``.
    #: Widening is growth-only: bridge merges stay at ``base_window``
    #: (merging two viable small windows saves no pass — see
    #: :func:`repro.sim.plan.plan_contractions`).
    wide_window: int = 4
    #: Default window bound (:data:`repro.sim.plan.MAX_WINDOW`).
    base_window: int = MAX_WINDOW
    #: Per-amplitude cost of a single-qubit strided kernel pass.
    sq_flops: float = 2.0
    #: Per-amplitude cost of a phase-vector multiply.
    diag_flops: float = 1.0
    #: Per-amplitude cost surcharge of shipping a chunk through the
    #: fabric and recombining (bandwidth + latency, folded to one knob).
    exchange_flops: float = 8.0
    #: Break-even chunk size (amplitudes) for the native kernel
    #: dispatch: ``kernels="auto"`` stays on the planar numpy fallback
    #: below it, where per-call staging overhead beats the single-pass
    #: win (calibrated by ``benchmarks/bench_kernels.py``; mirrored by
    #: :data:`repro.sim.kernels.JIT_MIN_AMPS_DEFAULT`).
    jit_min_amps: int = 4096

    def plan_window(self, n_qubits: int) -> int:
        """Window bound for contraction planning at this register size.

        Returns 0 when planning should be bypassed outright (below
        ``plan_min_qubits``), ``wide_window`` on large registers, and
        ``base_window`` in between.
        """
        if n_qubits < self.plan_min_qubits:
            return 0
        if n_qubits >= self.wide_window_min_qubits:
            return self.wide_window
        return self.base_window

    def contract_flops(self, window: int) -> float:
        """Per-amplitude cost of a ``2^w x 2^w`` window contraction."""
        return float(1 << window)


    def entry_cost(self, entry) -> float:
        """Per-amplitude cost of one kernel-run entry."""
        kind = entry[0]
        if kind == "sq" or kind == "cc":
            return self.sq_flops
        if kind == "ct":
            return self.contract_flops(len(entry[2]))
        # "csel": contraction over the local window qubits only.
        return self.contract_flops(len(entry[3]))

    def op_cost(self, op) -> float:
        """Per-amplitude cost of one op executed without layout info."""
        if isinstance(op, DiagBatch):
            return self.diag_flops
        k = len(op.qubits)
        return self.sq_flops if k == 1 else self.contract_flops(k)


#: The model used when none is supplied (thresholds calibrated against
#: the committed BENCH_plan.json / BENCH_schedule.json sweeps).
DEFAULT_COST_MODEL = CostModel()


class Segment:
    """Base of all schedule segments: a communication class and a cost.

    ``comm`` is :data:`LOCAL`, :data:`BLOCKDIAG` or :data:`MIXING`;
    ``cost`` is the cost model's per-amplitude work estimate for the
    whole segment.  Segments are produced by :func:`compile_segments`
    and consumed by the engine interpreters — they are never built by
    user code.
    """

    __slots__ = ("comm", "cost")

    def __init__(self, comm: str, cost: float):
        self.comm = comm
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} comm={self.comm} cost={self.cost:.1f}>"


class KernelRun(Segment):
    """A maximal run of communication-free kernels.

    ``ops`` are the source op records (what a layout-less interpreter
    executes); ``entries`` are the tagged per-chunk kernel entries for
    :func:`repro.sim.parallel.apply_run` (``None`` when compiled
    without a layout).
    """

    __slots__ = ("ops", "entries")

    def __init__(self, ops, entries, comm, cost):
        super().__init__(comm, cost)
        self.ops = tuple(ops)
        self.entries = None if entries is None else tuple(entries)


class DiagSegment(Segment):
    """One coalesced diagonal batch (always communication-free)."""

    __slots__ = ("batch",)

    def __init__(self, batch: DiagBatch, comm, cost):
        super().__init__(comm, cost)
        self.batch = batch


class PlanSegment(Segment):
    """One contraction plan, classified against the layout exactly once.

    ``entry`` is the plan's kernel-run entry — ``("ct", u, bits)`` for
    an all-local window, ``("csel", table, hi_bits, lo_bits)`` for a
    window block-diagonal on its shard axes — or ``None`` for a
    ``mixing`` plan the engine must exchange for.
    """

    __slots__ = ("plan", "entry")

    def __init__(self, plan: ContractionPlan, entry, comm, cost):
        super().__init__(comm, cost)
        self.plan = plan
        self.entry = entry


class ExchangeSegment(Segment):
    """An op executed through the engine's generic (exchange) path."""

    __slots__ = ("op",)

    def __init__(self, op, comm, cost):
        super().__init__(comm, cost)
        self.op = op


# ----------------------------------------------------------------------
# stream-side pass: size-aware lowering
# ----------------------------------------------------------------------
def lower_flush(
    ops,
    n_qubits: int,
    *,
    diag_batching: bool = True,
    planning: bool = True,
    cost_model: CostModel = DEFAULT_COST_MODEL,
):
    """Lower a flushed op buffer: coalesce diagonals, then plan windows.

    This is the stream-side half of the flush-time compiler —
    :meth:`repro.qmpi.stream.OpStream.flush` calls it with the current
    register size so the planning decision is **size-aware**: below
    ``cost_model.plan_min_qubits`` the contraction pass is bypassed
    outright (no :class:`~repro.sim.plan.ContractionPlan` is ever
    built), and on large registers windows widen to
    ``cost_model.wide_window`` qubits.  ``diag_batching=False`` /
    ``planning=False`` reproduce the ``fusion="nodiag"`` /
    ``fusion="noplan"`` ablation modes.
    """
    ops = list(ops)
    if diag_batching:
        ops = coalesce_diagonals(ops)
        if planning:
            w = cost_model.plan_window(n_qubits)
            if w:
                # Widening is growth-only: merges stay at the base
                # bound (see plan_contractions).
                ops = plan_contractions(
                    ops,
                    max_window=w,
                    merge_window=min(w, cost_model.base_window),
                )
    return ops


# ----------------------------------------------------------------------
# layout classification
# ----------------------------------------------------------------------
def _csel_layout(bits, n_local: int):
    """Structural sub-block layout of a window over the chunk boundary.

    Returns ``(mixing, rows_per_sig, hi_bits, lo_bits)``: the boolean
    mask of matrix entries that would couple two distinct shard-axis
    bit patterns, the row-index array each shard-bit signature selects,
    and the shard-/local-bit tuples of the eventual ``"csel"`` entry.
    Depends only on ``bits`` and ``n_local`` — never on matrix values —
    so the schedule cache can reuse it across parameter rebinds.
    """
    bits = list(bits)
    w = len(bits)
    high_idx = [i for i, b in enumerate(bits) if b >= n_local]
    h = len(high_idx)
    # Row/column index bit of window qubit i is (w - 1 - i); the matrix
    # is exchange-free iff no entry couples two distinct shard-axis bit
    # patterns.
    hmask = sum(1 << (w - 1 - i) for i in high_idx)
    g = np.arange(1 << w)
    mixing = (g[:, None] & hmask) != (g[None, :] & hmask)
    rows_per_sig = []
    for sig in range(1 << h):
        pattern = sum(
            ((sig >> (h - 1 - j)) & 1) << (w - 1 - i)
            for j, i in enumerate(high_idx)
        )
        rows_per_sig.append(g[(g & hmask) == pattern])
    hi_bits = tuple(bits[i] - n_local for i in high_idx)
    lo_bits = tuple(b for b in bits if b < n_local)
    return mixing, rows_per_sig, hi_bits, lo_bits


def _csel_table(u: np.ndarray, rows_per_sig):
    """Extract the per-signature sub-blocks of a block-diagonal window.

    Identity sub-blocks become ``None`` (skipped at execution), ``1x1``
    sub-blocks collapse to scalars.  Value-dependent by design: the
    schedule cache re-runs this per parameter payload while reusing the
    structural ``rows_per_sig`` layout.
    """
    eye = np.eye(len(rows_per_sig[0]), dtype=np.complex128)
    table = []
    for rows in rows_per_sig:
        sub = np.ascontiguousarray(u[np.ix_(rows, rows)])
        if np.allclose(sub, eye, rtol=0.0, atol=1e-12):
            table.append(None)
        elif sub.shape == (1, 1):
            table.append(complex(sub[0, 0]))
        else:
            table.append(sub)
    return tuple(table)


def classify_matrix(u: np.ndarray, bits, n_local: int, support=None):
    """Classify a unitary over bit positions against the chunk layout.

    Returns a kernel-run entry for the communication-free forms, or
    ``None`` when the matrix needs chunk exchange:

    * every bit below ``n_local`` — ``("ct", u, bits)``: one in-chunk
      contraction per chunk;
    * the matrix **block-diagonal** on every shard axis it touches
      (control-like high bits, products of diagonals) — ``("csel",
      table, hi_bits, lo_bits)``: each chunk contracts the sub-block
      its shard-bit signature selects (identity sub-blocks ``None`` are
      skipped; a window with no local qubits reduces to per-chunk
      scalars);
    * anything else mixes amplitudes across a shard axis — ``None``.

    ``support`` (optional) is a non-negative matrix whose nonzero
    pattern is a superset of ``|u|``'s for *every* parameter assignment
    (see :func:`plan_support`): when given, the block-diagonality
    decision is made on it instead of on ``u``'s current values, so the
    classification is stable under parameter rebinding — a window that
    happens to be block-diagonal at one angle but mixes at another is
    always classified ``mixing``.

    This is the classification that used to live in
    ``ShardedStateVector._classify_plan``, hoisted here so it runs in
    exactly one place, once per plan.
    """
    bits = list(bits)
    if all(b < n_local for b in bits):
        return ("ct", u, tuple(bits))
    mixing, rows_per_sig, hi_bits, lo_bits = _csel_layout(bits, n_local)
    probe = np.abs(u) if support is None else support
    if np.any(probe[mixing] > 1e-12):
        return None
    return ("csel", _csel_table(u, rows_per_sig), hi_bits, lo_bits)


# ----------------------------------------------------------------------
# parameter-stable structure: support supersets
# ----------------------------------------------------------------------
#: Generic sample angles for parametric support evaluation.  Every
#: matrix entry of the built-in rotation builders is of the form
#: ``cos(t/2)``, ``sin(t/2)`` or ``e^{i t}`` — each vanishes only on an
#: isolated lattice of angles spaced ``pi`` apart (as half-angles), so
#: no entry can vanish at both samples and the elementwise maximum over
#: them covers the support of *every* parameter assignment.
_SUPPORT_SAMPLES = (0.7365439, 2.1130981)


def is_parametric(op) -> bool:
    """Whether ``op`` is a named gate with continuous parameters.

    Parametric ops are the ones whose matrix values the schedule cache
    holds out of the structural key (the parameters travel in the
    payload vector instead); explicit-``unitary`` ops and constant
    gates hash by value/name.
    """
    return bool(
        getattr(op, "params", ())
        and getattr(op, "spec", None) is not None
        and getattr(op.spec, "builder", None) is not None
    )


def _op_support(op) -> np.ndarray:
    """Non-negative support superset of an op's full matrix.

    Constant and explicit-matrix ops contribute their exact nonzero
    pattern; parametric ops contribute the union of their patterns at
    the two generic :data:`_SUPPORT_SAMPLES` angles, which covers every
    parameter assignment for sinusoidal/phase entries.
    """
    if is_parametric(op):
        acc = None
        for s in _SUPPORT_SAMPLES:
            sampled = type(op)(op.gate, op.qubits, (s,) * len(op.params))
            m = np.abs(np.asarray(sampled.matrix(), dtype=np.complex128))
            acc = m if acc is None else np.maximum(acc, m)
        m = acc
    else:
        m = np.abs(np.asarray(op.matrix(), dtype=np.complex128))
    return (m > 1e-12).astype(np.float64)


def plan_support(plan: ContractionPlan):
    """Support superset of a plan's window unitary over all parameters.

    Returns ``None`` when the plan carries no parametric sources (its
    current values *are* its structure — classify them directly), else
    a non-negative matrix whose nonzero pattern contains ``|plan.u|``'s
    for every parameter assignment: the boolean chain product of the
    per-op support matrices (non-negative products cannot cancel, so
    the product pattern only ever over-approximates).  Classifying on
    it keeps the block-diagonal/mixing decision identical across
    parameter rebinds — the invariant the schedule cache relies on.
    """
    sources = plan.sources
    if sources is None or not any(is_parametric(op) for op in sources):
        return None
    s = window_product(
        sources, plan.qubits, _op_support, dtype=np.float64
    )
    return (s > 1e-12).astype(np.float64)


# ----------------------------------------------------------------------
# engine-side pass: op list -> segments
# ----------------------------------------------------------------------
def compile_segments(
    ops,
    bit=None,
    n_local: int = 0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
):
    """Compile a lowered op list into an ordered list of segments.

    ``bit`` is a callable mapping a qubit id to its global bit position
    (the sharded engine passes its ``_bit``); ``n_local`` is the chunk
    boundary (bits below it are chunk-local).  With ``bit=None`` the
    compilation is layout-less: every record is communication-free by
    construction (one flat array), :class:`KernelRun` segments carry
    only source ops, and no :class:`ExchangeSegment` is ever emitted.

    Segment order preserves program order op-for-op — each input record
    lands in exactly one segment, and segments are emitted in
    first-touch order — so interpreting the segments in sequence is
    exactly the sequential application.
    """
    segs: list[Segment] = []
    run_ops: list = []
    run_entries: list | None = None if bit is None else []
    run_comm = LOCAL
    run_cost = 0.0

    def close_run() -> None:
        nonlocal run_ops, run_entries, run_comm, run_cost
        if run_ops:
            segs.append(KernelRun(run_ops, run_entries, run_comm, run_cost))
            run_ops = []
            run_entries = None if bit is None else []
            run_comm = LOCAL
            run_cost = 0.0

    def push_entry(op, entry, comm) -> None:
        nonlocal run_comm, run_cost
        run_ops.append(op)
        if run_entries is not None:
            run_entries.append(entry)
        if comm == BLOCKDIAG:
            run_comm = BLOCKDIAG
        run_cost += cost_model.entry_cost(entry) if entry else cost_model.op_cost(op)

    for op in ops:
        if isinstance(op, DiagBatch):
            close_run()
            comm = LOCAL
            if bit is not None and any(bit(q) >= n_local for q in op.qubits):
                comm = BLOCKDIAG
            segs.append(DiagSegment(op, comm, cost_model.diag_flops))
            continue
        if isinstance(op, ContractionPlan):
            close_run()
            if bit is None:
                segs.append(
                    PlanSegment(
                        op, None, LOCAL,
                        cost_model.contract_flops(len(op.qubits)),
                    )
                )
                continue
            bits = [bit(q) for q in op.qubits]
            entry = classify_matrix(
                op.u, bits, n_local, support=plan_support(op)
            )
            if entry is None:
                segs.append(
                    PlanSegment(
                        op, None, MIXING,
                        cost_model.contract_flops(len(op.qubits))
                        + cost_model.exchange_flops,
                    )
                )
            else:
                comm = LOCAL if entry[0] == "ct" else BLOCKDIAG
                segs.append(
                    PlanSegment(op, entry, comm, cost_model.entry_cost(entry))
                )
            continue
        if bit is None:
            # Layout-less compile: every op is a local kernel.
            push_entry(op, None, LOCAL)
            continue
        controls = op.controls
        targets = op.targets
        if not controls and len(targets) == 1:
            u = np.asarray(op.target_matrix(), dtype=np.complex128)
            b = bit(targets[0])
            # Structural diagonality (gate spec, not current values):
            # an rx(0.0) that happens to be the identity is still
            # routed as non-diagonal, so the comm pattern is a function
            # of circuit *shape* and the schedule cache can replay it
            # under any parameter payload.
            diag = op.is_diagonal
            if b < n_local:
                push_entry(op, ("sq", u, b, diag), LOCAL)
                continue
            if diag:
                push_entry(op, ("sq", u, b, diag), BLOCKDIAG)
                continue
            close_run()
            segs.append(
                ExchangeSegment(
                    op, MIXING, cost_model.sq_flops + cost_model.exchange_flops
                )
            )
            continue
        if controls and len(targets) == 1:
            u = np.asarray(op.target_matrix(), dtype=np.complex128)
            t_b = bit(targets[0])
            diag = op.is_diagonal
            if t_b >= n_local and not diag:
                # Non-diagonal shard-axis target: restricted pair
                # exchange (the engine's specialized path).
                close_run()
                segs.append(
                    ExchangeSegment(
                        op, MIXING,
                        cost_model.sq_flops + cost_model.exchange_flops,
                    )
                )
                continue
            c_bits = [bit(q) for q in controls]
            cmask = sum(1 << (b - n_local) for b in c_bits if b >= n_local)
            local_controls = tuple(sorted(b for b in c_bits if b < n_local))
            entry = ("cc", u, cmask, local_controls, t_b, diag)
            comm = BLOCKDIAG if (cmask or t_b >= n_local) else LOCAL
            push_entry(op, entry, comm)
            continue
        # Generic shape (uncontrolled multi-qubit, or the rare
        # multi-target controlled gate): classify its full matrix.
        qubits = op.qubits
        bits = [bit(q) for q in qubits]
        u = np.asarray(op.matrix(), dtype=np.complex128)
        entry = classify_matrix(u, bits, n_local)
        if entry is None:
            close_run()
            segs.append(
                ExchangeSegment(
                    op, MIXING,
                    cost_model.contract_flops(len(bits))
                    + cost_model.exchange_flops,
                )
            )
            continue
        comm = LOCAL if entry[0] == "ct" else BLOCKDIAG
        push_entry(op, entry, comm)
    close_run()
    return segs


def iter_stretches(segments):
    """Split a segment list into communication-free stretches.

    Yields ``(stretch, barrier)`` pairs in order: ``stretch`` is a
    (possibly empty) list of consecutive non-``mixing`` segments and
    ``barrier`` is the ``mixing`` segment that terminated it, or
    ``None`` for the final stretch.  A stretch is the unit the sharded
    engine ships to the worker pool as one task per worker.
    """
    stretch: list[Segment] = []
    for seg in segments:
        if seg.comm != MIXING:
            stretch.append(seg)
        else:
            yield stretch, seg
            stretch = []
    yield stretch, None
