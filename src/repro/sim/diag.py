"""Diagonal phase-vector batching: the ``DiagBatch`` record and its kernels.

Diagonal ops (z, s, t, tdg, rz, phase, cz, crz, cphase, and any fused
2x2 diagonal) all commute in the computational basis, so a run of them
is a single diagonal operator.  :func:`coalesce_diagonals` collapses
such runs — the :class:`~repro.qmpi.stream.OpStream` calls it at flush
time — into one :class:`DiagBatch` op carrying *phase tables*:

* ``phases1[q]``      — a length-2 table: the factor each value of qubit
  ``q`` picks up;
* ``phases2[(a, b)]`` — a length-4 table indexed by ``(bit_a << 1) |
  bit_b``: the joint factor a qubit pair picks up (cz / crz / cphase
  collapse here, with repeats on the same pair merging into one table).

The engines then materialize each batch as **one phase vector** and
apply it in a single vectorized multiply instead of one strided pass
per gate: :func:`chunk_phase` builds a broadcastable tensor over the
``(2,)*n`` amplitude view, resolving any *shard-axis* bits against the
chunk index so distributed chunks only ever scale themselves — no
pair-chunk traffic, on any axis.  The tensor itself is built by a
**doubling/DP scheme**: the flat table grows one live bit at a time and
each phase table folds in while the array is still small (as soon as
its highest bit exists), so all-distinct pair sets like the QFT ladder
cost ``sum_parts 2^(maxbit+1)`` updates instead of ``parts * 2^L``.
Chunks sharing the same shard-bit signature share the same vector, so
it is computed once per shape and reused (or recomputed per worker in
the parallel executor, which is the same trade the QMPI paper's rank-0
broadcast makes).

This module lives in :mod:`repro.sim` (below the op IR) so both engines
and the :mod:`repro.sim.parallel` workers can import it without cycles;
:mod:`repro.qmpi.ops` re-exports :class:`DiagBatch` as part of the
public IR.
"""

from __future__ import annotations

import cmath

import numpy as np

from .kernels import imul as _imul

__all__ = ["DiagBatch", "coalesce_diagonals", "chunk_phase", "signature_vectors"]

#: Table re-index that swaps the two bits of a pair phase table
#: (``(a, b) -> (b, a)``: entries 01 and 10 trade places).
_PAIR_SWAP = (0, 2, 1, 3)


class DiagBatch:
    """A coalesced run of commuting diagonal ops, as phase tables.

    Instances quack like :class:`~repro.qmpi.ops.Op` where the pipeline
    cares (``qubits``/``targets``/``controls``, ``is_diagonal``,
    ``spec``/``gate``/``params``) so rank-ownership checks and dispatch
    treat them uniformly; engines special-case them for the phase-vector
    fast path, and anything else can fall back to :meth:`terms`.

    Build instances with :meth:`from_ops` (or let
    :func:`coalesce_diagonals` do it); the constructor trusts its
    arguments.
    """

    __slots__ = ("phases1", "phases2", "_qubits", "sources")

    #: Op-protocol constants: a batch is an uncontrolled, multi-target,
    #: diagonal pseudo-op outside the GATESET registry.
    spec = None
    gate = "diag_batch"
    params: tuple = ()
    controls: tuple = ()
    n_controls = 0
    is_diagonal = True
    is_single = False
    u = None

    def __init__(self, phases1, phases2, qubits):
        self.phases1 = phases1
        self.phases2 = phases2
        self._qubits = tuple(qubits)
        #: Source op records the batch was coalesced from (set by
        #: :meth:`from_ops` when every input is a plain op; ``None``
        #: otherwise).  The schedule cache keys on them to rebuild the
        #: phase tables under fresh rotation parameters.
        self.sources = None

    @property
    def qubits(self) -> tuple:
        """Every qubit the batch touches, in first-touch order."""
        return self._qubits

    @property
    def targets(self) -> tuple:
        """Alias of :attr:`qubits` (a batch has no control operands)."""
        return self._qubits

    @property
    def n_ops(self) -> int:
        """Number of phase tables carried (after same-operand merging)."""
        return len(self.phases1) + len(self.phases2)

    @classmethod
    def from_ops(cls, ops) -> "DiagBatch":
        """Coalesce a run of diagonal ops (or batches) into one batch.

        Every op must be diagonal on one or two qubits (controls count:
        ``crz(c, t)`` is a two-qubit diagonal).  Repeated operands
        multiply into the existing table — L layers of the same ZZ pair
        cost one table — and a reversed pair key ``(b, a)`` is permuted
        into the first-seen orientation.
        """
        phases1: dict[int, np.ndarray] = {}
        phases2: dict[tuple[int, int], np.ndarray] = {}
        order: list[int] = []
        seen: set[int] = set()

        def touch(qs):
            for q in qs:
                if q not in seen:
                    seen.add(q)
                    order.append(q)

        def mul1(q, table):
            if q in phases1:
                phases1[q] *= table
            else:
                phases1[q] = np.array(table, dtype=np.complex128)

        def mul2(a, b, table):
            if (a, b) in phases2:
                phases2[(a, b)] *= table
            elif (b, a) in phases2:
                phases2[(b, a)] *= np.asarray(table)[list(_PAIR_SWAP)]
            else:
                phases2[(a, b)] = np.array(table, dtype=np.complex128)

        ops = tuple(ops)
        plain = True
        for op in ops:
            if isinstance(op, DiagBatch):
                plain = False
                for q, t in op.phases1.items():
                    touch((q,))
                    mul1(q, t)
                for (a, b), t in op.phases2.items():
                    touch((a, b))
                    mul2(a, b, t)
                continue
            qs = op.qubits
            if not op.is_diagonal or not 1 <= len(qs) <= 2:
                raise ValueError(f"cannot coalesce non-diagonal op {op!r}")
            touch(qs)
            # Read the diagonal without materializing the (controlled)
            # matrix: a single-control gate contributes (1, 1, u00, u11).
            tm = op.target_matrix()
            if op.n_controls == 1 and len(op.targets) == 1:
                d = (1.0, 1.0, tm[0, 0], tm[1, 1])
            else:
                d = np.diagonal(tm)
            if len(qs) == 1:
                mul1(qs[0], d)
            else:
                mul2(qs[0], qs[1], d)
        batch = cls(phases1, phases2, order)
        if plain:
            batch.sources = ops
        return batch

    def terms(self):
        """Yield ``(qubits, table)`` elementary diagonal factors.

        The generic fallback for engines without a phase-vector path:
        applying ``np.diag(table)`` to each ``qubits`` tuple in order
        reproduces the batch exactly.
        """
        for q, t in self.phases1.items():
            yield (q,), t
        for (a, b), t in self.phases2.items():
            yield (a, b), t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DiagBatch singles={sorted(self.phases1)} "
            f"pairs={sorted(self.phases2)}>"
        )


def coalesce_diagonals(ops):
    """Collapse maximal runs of small diagonal ops into ``DiagBatch`` records.

    Scans the op sequence in order: contiguous runs of diagonal ops on
    one or two qubits (z/s/t/tdg/rz/phase/cz/crz/cphase, fused 2x2
    diagonals, prior batches) collapse into one :class:`DiagBatch` per
    run; any other op — including diagonal ops wider than two qubits —
    is a barrier that splits the run.  Runs of length one are left as
    plain ops (a lone cz already has a communication-free path).
    Semantics are exact: diagonal ops commute, so the batched product
    equals the sequential application.
    """
    out: list = []
    run: list = []

    def drain():
        if len(run) >= 2:
            out.append(DiagBatch.from_ops(run))
        else:
            out.extend(run)
        run.clear()

    for op in ops:
        if op.is_diagonal and 1 <= len(op.qubits) <= 2:
            run.append(op)
        else:
            drain()
            out.append(op)
    drain()
    return out


def signature_vectors(singles, pairs, n_local, num_chunks, kernels=None):
    """Materialize phase tables once per shard-bit signature.

    ``singles``/``pairs`` are bit-position phase tables (the
    :func:`chunk_phase` convention, with bits ``>= n_local`` on shard
    axes).  Chunks sharing the same values of the touched shard bits
    share one phase tensor, so each distinct *signature* is built
    exactly once (the signature-independent local part exactly once
    overall) and reused by every chunk with that signature.

    Returns ``(high_bits, vecs, sig_of)``: the sorted shard-bit
    positions the batch touches (chunk-index-relative), a dict mapping
    each signature tuple to its broadcastable tensor, and the per-chunk
    signature list (``sig_of[ci]`` keys into ``vecs``).

    ``kernels`` (a :class:`repro.sim.kernels.KernelDispatch`) routes
    table materialization through the native phase-fill driver when the
    engine's mode and the table size warrant it; tables are bit-identical
    either way.
    """
    lo_s = [(b, t) for b, t in singles if b < n_local]
    hi_s = [(b, t) for b, t in singles if b >= n_local]
    lo_p = [(bb, t) for bb, t in pairs if bb[0] < n_local and bb[1] < n_local]
    hi_p = [(bb, t) for bb, t in pairs if bb[0] >= n_local or bb[1] >= n_local]
    base = chunk_phase(lo_s, lo_p, n_local, kernels=kernels)
    high_bits = sorted(
        {b - n_local for b, _ in hi_s}
        | {b - n_local for bb, _ in hi_p for b in bb if b >= n_local}
    )
    vecs: dict[tuple[int, ...], np.ndarray] = {}
    sig_of: list[tuple[int, ...]] = []
    for ci in range(num_chunks):
        sig = tuple((ci >> hb) & 1 for hb in high_bits)
        sig_of.append(sig)
        if sig not in vecs:
            if not high_bits:
                vecs[sig] = base
            else:
                extra = chunk_phase(hi_s, hi_p, n_local, ci, kernels=kernels)
                # All-identity extras (e.g. a control bit fixed to 0)
                # come back 0-d: those chunks just reuse the base.
                if extra.ndim == 0 and extra.item() == 1.0:
                    vecs[sig] = base
                else:
                    vecs[sig] = base * extra
    return high_bits, vecs, sig_of


def chunk_phase(singles, pairs, n_axes, ci=0, kernels=None):
    """Materialize phase tables as one broadcastable tensor.

    Parameters
    ----------
    singles:
        Iterable of ``(bit, table2)`` — single-qubit phase tables at bit
        position ``bit`` (bit 0 = least significant amplitude index).
    pairs:
        Iterable of ``((bit_a, bit_b), table4)`` — pair tables indexed
        by ``(bit_a << 1) | bit_b``.
    n_axes:
        Number of *local* axes: the returned tensor broadcasts against
        an amplitude view of shape ``(2,) * n_axes``.
    ci:
        Chunk index.  Bits ``>= n_axes`` are shard-axis bits whose value
        is fixed per chunk: they contribute scalars (or collapse a pair
        table to a single-axis table) read from ``ci``'s bits.
    kernels:
        Optional :class:`repro.sim.kernels.KernelDispatch`.  The
        multiply-path doubling fill dispatches to the native driver when
        the mode/size gate passes; the wide-batch angle path always
        stays on numpy's vectorized cos/sin (libm transcendentals are
        not bit-portable), so it is identical in every mode.

    Returns a complex tensor of shape ``(1|2,) * n_axes`` — size 2 only
    on the axes a table touches — so applying a whole batch to a chunk
    is the single in-place multiply ``chunk.reshape((2,)*n_axes) *= out``.
    """
    scalar = complex(1.0)
    parts: list[tuple[tuple[int, ...], np.ndarray]] = []
    for b, t in singles:
        if b >= n_axes:
            scalar *= complex(t[(ci >> (b - n_axes)) & 1])
        else:
            parts.append(((n_axes - 1 - b,), np.asarray(t, dtype=np.complex128)))
    for (ba, bb), t in pairs:
        t = np.asarray(t, dtype=np.complex128).reshape(2, 2)
        va = (ci >> (ba - n_axes)) & 1 if ba >= n_axes else None
        vb = (ci >> (bb - n_axes)) & 1 if bb >= n_axes else None
        if va is not None and vb is not None:
            scalar *= complex(t[va, vb])
        elif va is not None:
            parts.append(((n_axes - 1 - bb,), t[va]))
        elif vb is not None:
            parts.append(((n_axes - 1 - ba,), t[:, vb]))
        else:
            ax_a, ax_b = n_axes - 1 - ba, n_axes - 1 - bb
            if ax_a > ax_b:
                parts.append(((ax_b, ax_a), t.T))
            else:
                parts.append(((ax_a, ax_b), t))
    # Pre-scan for non-identity parts: tables collapsed by shard bits
    # are often pure identity (a control bit fixed to 0), and the tensor
    # only needs size 2 on axes a *live* part touches. Scalar entries
    # are compared as Python complex — numpy scalar compares in a loop
    # this hot are measurably slow.
    live = []
    for axes, t in parts:
        vals = t.reshape(-1).tolist()
        nz = [i for i, v in enumerate(vals) if v != 1.0]
        if nz:
            live.append((axes, vals, nz))
    if not live:
        # 0-d result: broadcasts as a scalar against any chunk view.
        return np.full((), scalar, dtype=np.complex128)
    # The tensor is built *compressed* — a flat array over just the live
    # axes — and materialized by **doubling**: the flat table grows one
    # live bit at a time (concatenating the array with itself), and each
    # part is folded in as soon as its highest flat bit exists, through
    # a 3-d/5-d strided view of the still-small array. A part whose
    # highest live bit is P therefore costs 2^(P+1) updates instead of
    # 2^L over the full table, which is what makes all-distinct pair
    # sets (the QFT ladder) affordable: sum_parts 2^(maxbit+1) instead
    # of parts * 2^L. Replication is exact because a part's contribution
    # never depends on bits above its own.
    live_axes = sorted({ax for axes, _, _ in live for ax in axes})
    pos = {ax: len(live_axes) - 1 - i for i, ax in enumerate(live_axes)}
    n_live = len(live_axes)
    # Wide batches accumulate float64 *angles* instead of multiplying
    # complex factors: diagonal gate tables are unit-modulus, so each
    # entry is a pure phase, angle adds move half the memory traffic of
    # complex multiplies, and one cos/sin pass at the end rebuilds the
    # vector. Non-unit entries (a non-unitary explicit diagonal) fall
    # back to complex multiplies on the result. The threshold is where
    # the halved per-part traffic amortizes the two transcendental
    # passes of the final cos/sin.
    use_angles = len(live) >= 24
    deferred = []
    parts_at: list[list] = [[] for _ in range(n_live)]
    for part in live:
        axes, vals, nz = part
        if use_angles and any(abs(abs(vals[i]) - 1.0) > 1e-12 for i in nz):
            deferred.append(part)
        else:
            parts_at[max(pos[ax] for ax in axes)].append(part)
    if use_angles:
        acc = np.zeros(1, dtype=np.float64)
        for p in range(n_live):
            acc = np.concatenate([acc, acc])
            for axes, vals, nz in parts_at[p]:
                if len(axes) == 1:
                    v = acc.reshape(-1, 2, 1 << pos[axes[0]])
                    for i in nz:
                        v[:, i, :] += cmath.phase(vals[i])
                else:
                    pa, pb = pos[axes[0]], pos[axes[1]]  # ascending => pa > pb
                    v = acc.reshape(-1, 2, 1 << (pa - pb - 1), 2, 1 << pb)
                    for i in nz:
                        v[:, i >> 1, :, i & 1, :] += cmath.phase(vals[i])
        out = np.empty(acc.size, dtype=np.complex128)
        out.real = np.cos(acc)
        out.imag = np.sin(acc)
        if scalar != 1.0:
            out *= scalar
    else:
        # The multiply path is the dispatched kernel: folds are planar
        # float64 multiplies (see repro.sim.kernels — numpy's complex
        # ufunc may FMA-contract, the planar tree cannot), so the numpy
        # fill below and the native fill are bit-identical.
        out = None
        if kernels is not None and kernels.native(1 << n_live):
            enc = []
            for p in range(n_live):
                for axes, vals, nz in parts_at[p]:
                    if len(axes) == 1:
                        enc.append((p, 1, pos[axes[0]], 0, vals, nz))
                    else:
                        enc.append((p, 2, pos[axes[0]], pos[axes[1]], vals, nz))
            out = kernels.phase_fill(scalar, n_live, enc)
        if out is None:
            if kernels is not None:
                kernels.counters["numpy_fallbacks"] += 1
            out = np.full(1, scalar, dtype=np.complex128)
            for p in range(n_live):
                out = np.concatenate([out, out])
                for axes, vals, nz in parts_at[p]:
                    if len(axes) == 1:
                        v = out.reshape(-1, 2, 1 << pos[axes[0]])
                        for i in nz:
                            _imul(v[:, i, :], vals[i])
                    else:
                        pa, pb = pos[axes[0]], pos[axes[1]]  # ascending => pa > pb
                        v = out.reshape(-1, 2, 1 << (pa - pb - 1), 2, 1 << pb)
                        for i in nz:
                            _imul(v[:, i >> 1, :, i & 1, :], vals[i])
    # Non-unit-modulus leftovers of the angle path: rare, applied as
    # full-size strided complex multiplies on the finished table.
    for axes, vals, nz in deferred:
        if len(axes) == 1:
            v = out.reshape(-1, 2, 1 << pos[axes[0]])
            for i in nz:
                v[:, i, :] *= vals[i]
        else:
            pa, pb = pos[axes[0]], pos[axes[1]]  # axes ascending => pa > pb
            v = out.reshape(-1, 2, 1 << (pa - pb - 1), 2, 1 << pb)
            for i in nz:
                v[:, i >> 1, :, i & 1, :] *= vals[i]
    shape = [1] * n_axes
    for ax in live_axes:
        shape[ax] = 2
    return out.reshape(tuple(shape))
