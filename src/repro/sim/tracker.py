"""Gate/measurement counting for resource accounting.

The QMPI resource ledger (Tables 1-3) counts EPR pairs and classical bits;
this tracker counts the *local* quantum cost underneath: how many gates of
each kind, how many measurements, peak qubit usage. Useful for the SENDQ
rule of thumb that rotations dominate (§5.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["GateCounts", "TrackedStateVector"]

from .diag import DiagBatch
from .statevector import StateVector


@dataclass
class GateCounts:
    """Mutable tally of simulator activity."""

    gates: Counter = field(default_factory=Counter)
    measurements: int = 0
    allocations: int = 0
    releases: int = 0
    peak_qubits: int = 0

    def total_gates(self) -> int:
        return sum(self.gates.values())

    def rotations(self) -> int:
        """Count of arbitrary-angle rotations (the expensive gates in §3)."""
        return sum(v for k, v in self.gates.items() if k in ("rx", "ry", "rz"))

    def as_dict(self) -> dict:
        return {
            "gates": dict(self.gates),
            "total_gates": self.total_gates(),
            "rotations": self.rotations(),
            "measurements": self.measurements,
            "allocations": self.allocations,
            "releases": self.releases,
            "peak_qubits": self.peak_qubits,
        }


class TrackedStateVector(StateVector):
    """A :class:`StateVector` that tallies every operation it performs."""

    def __init__(self, n_qubits: int = 0, seed=None):
        self.counts = GateCounts()
        super().__init__(n_qubits=n_qubits, seed=seed)

    # -- bookkeeping hooks ----------------------------------------------
    def alloc(self, n: int = 1):
        ids = super().alloc(n)
        self.counts.allocations += n
        self.counts.peak_qubits = max(self.counts.peak_qubits, self.num_qubits)
        return ids

    def release(self, qubit: int) -> None:
        super().release(qubit)
        self.counts.releases += 1

    def measure(self, qubit: int) -> int:
        bit = super().measure(qubit)
        self.counts.measurements += 1
        return bit

    def apply(self, u, *qubits) -> None:
        super().apply(u, *qubits)
        self.counts.gates[f"u{len(qubits)}"] += 1

    def apply_controlled(self, u, controls, targets) -> None:
        super().apply_controlled(u, controls, targets)
        self.counts.gates[f"c{len(list(controls))}u{len(list(targets))}"] += 1

    def apply_ops(self, ops) -> None:
        # Re-tag registry-named ops so batched execution counts like the
        # named conveniences; fused/unitary ops keep the generic tag.
        # A coalesced DiagBatch bypasses apply()/apply_controlled(), so
        # tally its phase tables directly — one u1 per single-qubit
        # table, one u2 per pair table — matching the engine work the
        # batch actually performs (merged repeats count once, exactly
        # like peephole-fused products).
        for op in ops:
            super().apply_ops((op,))
            if isinstance(op, DiagBatch):
                if op.phases1:
                    self.counts.gates["u1"] += len(op.phases1)
                if op.phases2:
                    self.counts.gates["u2"] += len(op.phases2)
            elif op.spec is not None:
                nc = op.n_controls
                generic = f"c{nc}u{len(op.targets)}" if nc else f"u{len(op.targets)}"
                self._named(op.gate, generic)

    # Re-tag the named gates so counts are human readable. The base class
    # conveniences call apply()/apply_controlled(); we override to replace
    # the generic tag with the gate name.
    def _named(self, name: str, generic: str) -> None:
        self.counts.gates[generic] -= 1
        if self.counts.gates[generic] == 0:
            del self.counts.gates[generic]
        self.counts.gates[name] += 1

    def h(self, q):
        super().h(q)
        self._named("h", "u1")

    def x(self, q):
        super().x(q)
        self._named("x", "u1")

    def y(self, q):
        super().y(q)
        self._named("y", "u1")

    def z(self, q):
        super().z(q)
        self._named("z", "u1")

    def s(self, q):
        super().s(q)
        self._named("s", "u1")

    def sdg(self, q):
        super().sdg(q)
        self._named("sdg", "u1")

    def t(self, q):
        super().t(q)
        self._named("t", "u1")

    def tdg(self, q):
        super().tdg(q)
        self._named("tdg", "u1")

    def rx(self, q, theta):
        super().rx(q, theta)
        self._named("rx", "u1")

    def ry(self, q, theta):
        super().ry(q, theta)
        self._named("ry", "u1")

    def rz(self, q, theta):
        super().rz(q, theta)
        self._named("rz", "u1")

    def cnot(self, c, t):
        super().cnot(c, t)
        self._named("cnot", "c1u1")

    def cz(self, c, t):
        super().cz(c, t)
        self._named("cz", "c1u1")

    def crz(self, c, t, theta):
        super().crz(c, t, theta)
        self._named("crz", "c1u1")

    def cphase(self, c, t, lam):
        super().cphase(c, t, lam)
        self._named("cphase", "c1u1")

    def swap(self, a, b):
        super().swap(a, b)
        self._named("swap", "u2")

    def toffoli(self, c1, c2, t):
        super().toffoli(c1, c2, t)
        self._named("toffoli", "c2u1")
