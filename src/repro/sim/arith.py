"""Reversible arithmetic circuits.

QMPI reductions must be reversible (§4.5: "QMPI_Reduce only accepts
reversible operations"). Bitwise parity/XOR is trivially reversible with
CNOTs; integer addition needs a reversible adder. We implement the
Cuccaro/CDKM ripple-carry adder (MAJ/UMA network, one ancilla), which is
the standard in-place modular adder used in fault-tolerant resource
estimates.

``add_in_place(sv, a, b)`` computes ``b <- (a + b) mod 2**len(b)`` with
``a`` unchanged — exactly the shape needed for an in-place reversible
``QMPI_SUM`` reduction.
"""

from __future__ import annotations

from typing import Sequence

from .statevector import SimulationError, StateVector

__all__ = ["add_in_place", "subtract_in_place", "encode_int", "decode_int"]


def _maj(sv: StateVector, c: int, b: int, a: int) -> None:
    sv.cnot(a, b)
    sv.cnot(a, c)
    sv.toffoli(c, b, a)


def _maj_inv(sv: StateVector, c: int, b: int, a: int) -> None:
    sv.toffoli(c, b, a)
    sv.cnot(a, c)
    sv.cnot(a, b)


def _uma(sv: StateVector, c: int, b: int, a: int) -> None:
    sv.toffoli(c, b, a)
    sv.cnot(a, c)
    sv.cnot(c, b)


def _uma_inv(sv: StateVector, c: int, b: int, a: int) -> None:
    sv.cnot(c, b)
    sv.cnot(a, c)
    sv.toffoli(c, b, a)


def _check(a: Sequence[int], b: Sequence[int]) -> tuple[list[int], list[int]]:
    a, b = list(a), list(b)
    if len(a) != len(b):
        raise SimulationError("registers must have equal size")
    if set(a) & set(b):
        raise SimulationError("registers must not overlap")
    return a, b


def add_in_place(sv: StateVector, a: Sequence[int], b: Sequence[int]) -> None:
    """Reversible ``b <- (a + b) mod 2**n``; ``a`` is preserved.

    ``a`` and ``b`` are little-endian qubit lists of equal length. Uses one
    ancilla (allocated and returned to |0> internally). The carry chain of
    the CDKM adder threads through ``a`` itself: the carry into bit ``i``
    lives on ``a[i-1]`` (ancilla for ``i = 0``).
    """
    a, b = _check(a, b)
    if not a:
        return
    (anc,) = sv.alloc(1)
    carries = [anc] + a[:-1]
    for i in range(len(a)):
        _maj(sv, carries[i], b[i], a[i])
    # A full adder would now copy the carry-out from a[-1]; the modular
    # (mod 2**n) variant simply omits that CNOT.
    for i in reversed(range(len(a))):
        _uma(sv, carries[i], b[i], a[i])
    sv.release(anc)


def subtract_in_place(sv: StateVector, a: Sequence[int], b: Sequence[int]) -> None:
    """Reversible ``b <- (b - a) mod 2**n`` — the exact inverse circuit of
    :func:`add_in_place` (inverse gates in reverse order)."""
    a, b = _check(a, b)
    if not a:
        return
    (anc,) = sv.alloc(1)
    carries = [anc] + a[:-1]
    for i in range(len(a)):
        _uma_inv(sv, carries[i], b[i], a[i])
    for i in reversed(range(len(a))):
        _maj_inv(sv, carries[i], b[i], a[i])
    sv.release(anc)


def encode_int(sv: StateVector, qubits: Sequence[int], value: int) -> None:
    """Set a little-endian register of |0> qubits to ``value`` with X gates."""
    for i, q in enumerate(qubits):
        if (value >> i) & 1:
            sv.x(q)


def decode_int(sv: StateVector, qubits: Sequence[int]) -> int:
    """Measure a little-endian register, returning the integer value."""
    out = 0
    for i, q in enumerate(qubits):
        out |= sv.measure(q) << i
    return out
