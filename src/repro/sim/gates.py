"""Quantum gate matrix library.

All gates are dense complex128 NumPy arrays. Single-qubit gates are 2x2,
two-qubit gates 4x4 with the convention that the *first* qubit argument of
:meth:`repro.sim.statevector.StateVector.apply` is the most significant
axis of the matrix (row-major Kronecker ordering ``U = U_q0 ⊗ U_q1``).

The set matches the paper's §2: Hadamard, S, T, the Paulis, controlled
Paulis, and Pauli rotations ``R_P(theta) = exp(-i theta P / 2)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "rx",
    "ry",
    "rz",
    "rotation",
    "phase",
    "u3",
    "CX",
    "CY",
    "CZ",
    "SWAP",
    "controlled",
    "is_unitary",
    "kron_all",
    "PAULIS",
]

I2 = np.eye(2, dtype=np.complex128)
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2.0)
S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)
TDG = T.conj().T
#: Square root of X (up to global phase); completes the common gate set.
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128)

#: Name -> matrix for the single-qubit Paulis (identity included).
PAULIS = {"I": I2, "X": X, "Y": Y, "Z": Z}


def rx(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def ry(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz(theta: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    e = np.exp(-0.5j * theta)
    return np.array([[e, 0], [0, np.conj(e)]], dtype=np.complex128)


def rotation(pauli: str, theta: float) -> np.ndarray:
    """Pauli rotation ``R_P(theta) = exp(-0.5 i theta P)`` for P in X, Y, Z."""
    try:
        return {"X": rx, "Y": ry, "Z": rz}[pauli.upper()](theta)
    except KeyError:
        raise ValueError(f"rotation axis must be X, Y or Z, got {pauli!r}") from None


def phase(lam: float) -> np.ndarray:
    """Diagonal phase gate ``diag(1, e^{i lam})``."""
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=np.complex128)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary in the standard Euler parametrization."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


def controlled(u: np.ndarray, n_controls: int = 1) -> np.ndarray:
    """Build the controlled version of unitary ``u`` with the control(s) as
    the most significant qubits: ``|1..1><1..1| ⊗ u + rest ⊗ I``."""
    if n_controls < 1:
        raise ValueError("n_controls must be >= 1")
    dim = u.shape[0]
    total = dim * 2**n_controls
    out = np.eye(total, dtype=np.complex128)
    out[total - dim :, total - dim :] = u
    return out


CX = controlled(X)
CY = controlled(Y)
CZ = controlled(Z)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
    dtype=np.complex128,
)


def kron_all(*mats: np.ndarray) -> np.ndarray:
    """Kronecker product of the given matrices, left to right."""
    out = np.array([[1.0 + 0j]])
    for m in mats:
        out = np.kron(out, m)
    return out


def is_unitary(u: np.ndarray, atol: float = 1e-10) -> bool:
    """Check ``U† U = I`` within tolerance."""
    u = np.asarray(u)
    if u.ndim != 2 or u.shape[0] != u.shape[1]:
        return False
    return bool(np.allclose(u.conj().T @ u, np.eye(u.shape[0]), atol=atol))
