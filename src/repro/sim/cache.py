"""Schedule cache: structural circuit hashing and parameterized replay.

Production QMPI workloads replay the same circuit *shapes* millions of
times — VQE/Trotter parameter sweeps, shot services, job streams — yet
every flush used to re-run the whole schedule compiler
(:func:`~repro.sim.schedule.lower_flush` +
:func:`~repro.sim.schedule.compile_segments`) from scratch.  QCMPI and
MPI-Q amortize exactly this with precompiled communication schedules;
this module is that amortization for the flush pipeline.

The key insight is the split between a batch's **structure** and its
**payload**:

* the *structural key* covers everything the compiled segment list's
  shape depends on — gate names, canonicalized qubit patterns (ids are
  renumbered by first touch, so a recycled backend with drifted ids
  still hits), explicit-matrix bytes for fused
  :data:`~repro.qmpi.ops.UNITARY` records (peephole fusion makes their
  structure value-dependent by design), the register size and the
  fusion/cost-model flags steering the lowering passes;
* the *payload* is the flat vector of continuous gate parameters
  (rz/crz/cphase angles, ...), held **out** of the key: two flushes of
  the same Trotter step with different angles share one cache entry.

A cache entry (:class:`CachedSchedule`) holds the lowered template and,
per *engine layout* (:meth:`layout_key` — qubit positions, chunk
boundary, chunk count, shots branch axis, dtype), one
:class:`CompiledLayout`: the compiled segment list plus *binders* that
know which segment parts are value-dependent.  Replay then rebinds only
those parts — rebuilt matrices for parametric kernel entries, fresh
phase tables for :class:`~repro.sim.diag.DiagBatch` segments, fresh
window products for :class:`~repro.sim.plan.ContractionPlan` segments —
through the *same* numeric routines the cold compiler uses, so cached
replay is float-identical to a cold compile (the differential fuzz
suite asserts per-shot bit-equality).

Safety relies on two invariants established in
:mod:`repro.sim.schedule`:

* classification is **parameter-stable**: single-qubit routing uses the
  structural :attr:`~repro.qmpi.ops.Op.is_diagonal` flag and parametric
  plan windows are classified on a value-independent support superset
  (:func:`~repro.sim.schedule.plan_support`), so a segment's kind and
  communication class never change under rebinding;
* the engine layout key pins everything else the segments depend on —
  a changed layout (alloc/release/rebalance, shots mode, recycled
  backend) misses the layout table and recompiles instead of replaying
  stale segments.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .diag import DiagBatch
from .plan import ContractionPlan, freeze_window, replay_window
from .schedule import (
    DEFAULT_COST_MODEL,
    DiagSegment,
    KernelRun,
    PlanSegment,
    _csel_layout,
    _csel_table,
    lower_flush,
)

__all__ = [
    "ScheduleCache",
    "CachedSchedule",
    "CompiledLayout",
    "structural_key",
]

#: ``(op class, gate name) -> spec has a matrix builder`` — whether the
#: op's parameters can be rebound through the gate registry.  Gate names
#: cannot be re-registered (:func:`repro.qmpi.ops.register_gate`), so
#: entries never go stale.
_PARAMETRIC_MEMO: dict = {}


def structural_key(ops, n_qubits, diag_batching, planning, cost_model):
    """Split a flush buffer into a structural key and a parameter payload.

    Returns ``(key, payload, ids, slices)`` — the hashable key, the flat
    tuple of continuous parameters in op order, the touched qubit ids in
    first-touch order (the canonicalization basis), and one payload
    ``(start, stop)`` slice per op (``None`` for non-parametric ops) —
    or ``None`` when the buffer cannot be safely cached (an op outside
    the Op protocol, or the same op *object* appearing twice, which
    would make the positional payload mapping ambiguous).

    Qubit ids are canonicalized by first touch, so two structurally
    identical circuits on different absolute ids (a recycled backend
    whose monotonic id counter drifted) produce the same key; the actual
    ids travel alongside for layout lookup and binding.  Explicit
    matrices hash by value: peephole fusion makes a ``UNITARY`` record's
    content parameter-dependent, so different fused values are —
    correctly — different schedules.  ``n_qubits`` and the lowering
    flags are part of the key because they steer size-aware planning.
    """
    canon: dict[int, int] = {}
    tokens = []
    payload: list[float] = []
    slices: list[tuple[int, int] | None] = []
    seen_objs: set[int] = set()
    canon_of = canon.setdefault
    for op in ops:
        oid = id(op)
        if oid in seen_objs:
            return None
        seen_objs.add(oid)
        gate = getattr(op, "gate", None)
        qubits = getattr(op, "qubits", None)
        if gate is None or qubits is None:
            return None
        cq = tuple(canon_of(q, len(canon)) for q in qubits)
        params = getattr(op, "params", ())
        if params:
            # Rebindability is a property of the op's class and gate
            # name (does the spec carry a matrix builder?), memoized so
            # the hot path skips the spec lookup per op.
            ck = (op.__class__, gate)
            parametric = _PARAMETRIC_MEMO.get(ck)
            if parametric is None:
                spec = getattr(op, "spec", None)
                parametric = (
                    spec is not None
                    and getattr(spec, "builder", None) is not None
                )
                _PARAMETRIC_MEMO[ck] = parametric
            if parametric:
                start = len(payload)
                payload.extend(params)
                tokens.append(("p", gate, cq, len(params)))
                slices.append((start, len(payload)))
                continue
            u = getattr(op, "u", None)
            if u is None:
                # Parameters but no builder: they cannot be rebound
                # through the spec, so they hash by value.
                tokens.append(("cp", gate, cq, tuple(float(p) for p in params)))
                slices.append(None)
                continue
        else:
            u = getattr(op, "u", None)
            if u is None:
                tokens.append(("c", gate, cq))
                slices.append(None)
                continue
        m = np.ascontiguousarray(np.asarray(u, dtype=np.complex128))
        tokens.append(("u", cq, m.shape, m.tobytes()))
        slices.append(None)
    key = (
        tuple(tokens),
        int(n_qubits),
        bool(diag_batching),
        bool(planning),
        cost_model,
    )
    return key, tuple(payload), tuple(canon), tuple(slices)


def _fresh_op(op, sl, idmap, payload):
    """A copy of ``op`` with remapped qubits / rebound parameters.

    Returns ``op`` itself when nothing changes — the common case on the
    cold path, where the template records are reused verbatim.
    """
    qubits = tuple(idmap[q] for q in op.qubits) if idmap is not None else op.qubits
    if sl is None:
        if qubits == op.qubits:
            return op
        return op.rebind(qubits=qubits)
    params = payload[sl[0] : sl[1]]
    if qubits == op.qubits and params == op.params:
        return op
    return op.rebind(qubits=qubits, params=params)


class CompiledLayout:
    """A cached schedule compiled against one concrete engine layout.

    Holds the segment list plus *binders*: per-segment descriptors of
    the value-dependent parts, built once by walking the compiled
    segments against the lowered records (the compiler maps records to
    segments one-to-one in program order, so the walk is positional).
    :meth:`bind` rebinds ids and parameters in place — replaying with
    the same payload and ids is a pure pointer return.
    """

    __slots__ = ("segments", "binders", "bound_ids", "bound_payload", "frozen")

    def __init__(self, segments, records, ids, payload, layout_key):
        self.segments = segments
        self.frozen = None  # engine replay program, built on first execute
        self.bound_ids = ids
        self.bound_payload = payload
        if layout_key[0] == "sharded":
            pos_of = dict(zip(ids, layout_key[1]))
            n_local = layout_key[2]
        else:
            pos_of = None
            n_local = None
        self.binders = self._build_binders(records, pos_of, n_local)

    def _build_binders(self, records, pos_of, n_local):
        """Walk segments against their source records, noting parametric
        sites and precomputing the structural layout (``rows_per_sig``)
        any ``"csel"`` rebuild will need."""
        binders = []
        it = iter(records)

        def csel_rows(qubits):
            bits = [pos_of[q] for q in qubits]
            return _csel_layout(bits, n_local)[1]

        for seg in self.segments:
            if isinstance(seg, KernelRun):
                sites = []
                for i, op in enumerate(seg.ops):
                    rec, sl = next(it)
                    if rec is not op:  # pragma: no cover - compiler invariant
                        raise RuntimeError("schedule cache record walk desync")
                    if sl is None:
                        continue
                    info = None
                    if seg.entries is not None and seg.entries[i][0] == "csel":
                        info = csel_rows(op.qubits)
                    sites.append((i, sl, info))
                if sites:
                    binders.append(("run", seg, tuple(sites)))
            elif isinstance(seg, DiagSegment):
                rec, sls = next(it)
                if any(s is not None for s in sls):
                    binders.append(("diag", seg, sls))
            elif isinstance(seg, PlanSegment):
                rec, sls = next(it)
                if any(s is not None for s in sls):
                    info = None
                    if seg.entry is not None and seg.entry[0] == "csel":
                        info = csel_rows(seg.plan.qubits)
                    recipe = freeze_window(seg.plan.sources, seg.plan.qubits)
                    binders.append(("plan", seg, sls, info, recipe))
            else:  # ExchangeSegment
                rec, sl = next(it)
                if sl is not None:
                    binders.append(("xchg", seg, sl))
        leftover = next(it, None)
        if leftover is not None:  # pragma: no cover - compiler invariant
            raise RuntimeError("schedule cache record walk desync")
        return tuple(binders)

    def bind(self, ids, payload):
        """Rebind the cached segments to ``ids``/``payload`` and return them.

        Three tiers, cheapest first: identical ids and payload return
        the segments verbatim; changed ids remap every id-referencing
        object (classified entries are positional, so they survive — the
        layout key guarantees equal positions); a changed payload
        rebuilds only the parametric parts through the same numeric
        routines the cold compiler uses.
        """
        if ids != self.bound_ids:
            self._remap(dict(zip(self.bound_ids, ids)))
            self.bound_ids = ids
        if payload != self.bound_payload:
            self._rebind(payload)
            self.bound_payload = payload
        return self.segments

    def _remap(self, idmap):
        """Point every id-referencing object at the new qubit ids.

        Values (matrices, phase tables, window products) are untouched:
        the layout key pins the *positions* of the touched qubits, so a
        remap never changes what any entry computes.
        """
        for seg in self.segments:
            if isinstance(seg, KernelRun):
                seg.ops = tuple(
                    op.rebind(qubits=tuple(idmap[q] for q in op.qubits))
                    for op in seg.ops
                )
            elif isinstance(seg, DiagSegment):
                b = seg.batch
                nb = DiagBatch(
                    {idmap[q]: t for q, t in b.phases1.items()},
                    {
                        (idmap[a], idmap[c]): t
                        for (a, c), t in b.phases2.items()
                    },
                    tuple(idmap[q] for q in b.qubits),
                )
                if b.sources is not None:
                    nb.sources = tuple(
                        op.rebind(qubits=tuple(idmap[q] for q in op.qubits))
                        for op in b.sources
                    )
                seg.batch = nb
            elif isinstance(seg, PlanSegment):
                p = seg.plan
                nplan = ContractionPlan(
                    p.u, tuple(idmap[q] for q in p.qubits), p.n_ops
                )
                if p.sources is not None:
                    nplan.sources = tuple(
                        op.rebind(qubits=tuple(idmap[q] for q in op.qubits))
                        for op in p.sources
                    )
                seg.plan = nplan
            else:  # ExchangeSegment
                seg.op = seg.op.rebind(
                    qubits=tuple(idmap[q] for q in seg.op.qubits)
                )

    def _rebind(self, payload):
        """Rebuild the value-dependent parts for a fresh parameter payload.

        Every rebuild routes through the same numeric code as a cold
        compile — ``target_matrix``/``matrix`` for kernel entries,
        :meth:`DiagBatch.from_ops` for phase tables,
        :meth:`ContractionPlan.from_ops` for window products,
        :func:`~repro.sim.schedule._csel_table` over the precomputed
        row layout for sub-block tables — so replayed amplitudes are
        bit-identical to an uncached run.
        """
        for binder in self.binders:
            kind, seg = binder[0], binder[1]
            if kind == "run":
                ops = list(seg.ops)
                entries = None if seg.entries is None else list(seg.entries)
                for i, sl, rows in binder[2]:
                    op = _fresh_op(ops[i], sl, None, payload)
                    ops[i] = op
                    if entries is None:
                        continue
                    e = entries[i]
                    ek = e[0]
                    if ek == "sq":
                        u = np.asarray(op.target_matrix(), dtype=np.complex128)
                        entries[i] = ("sq", u, e[2], e[3])
                    elif ek == "cc":
                        u = np.asarray(op.target_matrix(), dtype=np.complex128)
                        entries[i] = ("cc", u, e[2], e[3], e[4], e[5])
                    elif ek == "ct":
                        u = np.asarray(op.matrix(), dtype=np.complex128)
                        entries[i] = ("ct", u, e[2])
                    else:  # "csel"
                        u = np.asarray(op.matrix(), dtype=np.complex128)
                        entries[i] = ("csel", _csel_table(u, rows), e[2], e[3])
                seg.ops = tuple(ops)
                if entries is not None:
                    seg.entries = tuple(entries)
            elif kind == "diag":
                sources = seg.batch.sources
                fresh = tuple(
                    _fresh_op(op, sl, None, payload)
                    for op, sl in zip(sources, binder[2])
                )
                seg.batch = DiagBatch.from_ops(fresh)
            elif kind == "plan":
                sources = seg.plan.sources
                fresh = tuple(
                    _fresh_op(op, sl, None, payload)
                    for op, sl in zip(sources, binder[2])
                )
                # Same floats as ``ContractionPlan.from_ops`` — the
                # frozen recipe replays the identical operations with
                # the window structure precomputed.
                mats = [
                    np.asarray(op.matrix(), dtype=np.complex128)
                    for op in fresh
                ]
                nplan = ContractionPlan(
                    replay_window(binder[4], mats),
                    seg.plan.qubits,
                    len(fresh),
                )
                nplan.sources = fresh
                seg.plan = nplan
                entry, rows = seg.entry, binder[3]
                if entry is not None:
                    if entry[0] == "ct":
                        seg.entry = ("ct", nplan.u, entry[2])
                    else:  # "csel"
                        seg.entry = (
                            "csel",
                            _csel_table(nplan.u, rows),
                            entry[2],
                            entry[3],
                        )
            else:  # "xchg"
                seg.op = _fresh_op(seg.op, binder[2], None, payload)


class CachedSchedule:
    """One cache entry: the lowered template plus its per-layout compiles.

    ``lowered`` pairs each lowered record with its payload-slice
    annotation — one slice per plain op, a slice tuple per
    :class:`~repro.sim.diag.DiagBatch` /
    :class:`~repro.sim.plan.ContractionPlan` source — which is what lets
    a :class:`CompiledLayout` map parameters back into segments without
    re-running the lowering passes.
    """

    __slots__ = ("template_ids", "template_payload", "lowered", "layouts")

    def __init__(self, template_ids, template_payload, lowered):
        self.template_ids = template_ids
        self.template_payload = template_payload
        self.lowered = lowered
        self.layouts: OrderedDict = OrderedDict()

    @classmethod
    def build(cls, ops, slices, ids, payload, key):
        """Lower the template buffer and annotate payload provenance.

        Returns ``None`` when a lowered record cannot be traced back to
        its source ops (a record built outside the standard lowering
        passes) — the caller then bypasses the cache for this shape.
        """
        _, n_qubits, diag_batching, planning, cost_model = key
        lowered = lower_flush(
            list(ops),
            n_qubits,
            diag_batching=diag_batching,
            planning=planning,
            cost_model=cost_model,
        )
        smap = {id(op): sl for op, sl in zip(ops, slices)}
        annotated = []
        for rec in lowered:
            if isinstance(rec, (DiagBatch, ContractionPlan)):
                if rec.sources is None or any(
                    id(s) not in smap for s in rec.sources
                ):
                    return None
                annotated.append(
                    (rec, tuple(smap[id(s)] for s in rec.sources))
                )
            else:
                if id(rec) not in smap:
                    return None
                annotated.append((rec, smap[id(rec)]))
        return cls(ids, payload, tuple(annotated))

    def materialize(self, ids, payload):
        """Lowered records bound to ``ids``/``payload``.

        Identical ids and payload reuse the template records verbatim
        (the cold-miss path compiles what it just lowered); otherwise
        every record is rebuilt through the same ``from_ops`` routines
        the lowering passes use.
        """
        if ids == self.template_ids and payload == self.template_payload:
            return self.lowered
        idmap = dict(zip(self.template_ids, ids))
        out = []
        for rec, sl in self.lowered:
            if isinstance(rec, (DiagBatch, ContractionPlan)):
                fresh = tuple(
                    _fresh_op(op, s, idmap, payload)
                    for op, s in zip(rec.sources, sl)
                )
                out.append((type(rec).from_ops(fresh), sl))
            else:
                out.append((_fresh_op(rec, sl, idmap, payload), sl))
        return tuple(out)


class ScheduleCache:
    """Bounded LRU cache of compiled execution schedules.

    One instance lives on each :class:`~repro.qmpi.backend.QuantumBackend`
    built with ``cache="on"`` (the default); because the job runner
    recycles backends per spec, the cache is automatically shared across
    the jobs of one spec and travels with the recycled engine.  All
    calls happen under the backend lock, so binders may mutate cached
    segments in place.

    Counters: ``hits``/``misses`` count structural-key lookups,
    ``evictions`` counts entries dropped by the LRU bound, ``bypasses``
    counts flushes that could not be cached (non-Op records, ambiguous
    payload mapping) and ran through the one-shot path instead.
    """

    def __init__(self, maxsize: int = 128, max_layouts: int = 8):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if max_layouts < 1:
            raise ValueError(f"max_layouts must be >= 1, got {max_layouts}")
        self.maxsize = int(maxsize)
        self.max_layouts = int(max_layouts)
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> dict:
        """Counter snapshot (the ``cache_info`` surface for benches/tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def keys(self):
        """The cached structural keys, LRU order (oldest first)."""
        return list(self._entries)

    def execute(
        self,
        engine,
        ops,
        *,
        num_qubits: int,
        diag_batching: bool = True,
        planning: bool = True,
        cost_model=DEFAULT_COST_MODEL,
    ) -> None:
        """Execute a flush buffer through the cache.

        Key the buffer structurally; on a miss, lower once and remember
        the template; per engine layout, compile once and remember the
        segments; then bind the payload and interpret.  Anything the
        cache cannot key safely falls back to the one-shot
        lower-compile-execute path (counted in ``bypasses``).
        """
        keyed = structural_key(
            ops, num_qubits, diag_batching, planning, cost_model
        )
        entry = None
        if keyed is not None:
            key, payload, ids, slices = keyed
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
            else:
                built = CachedSchedule.build(ops, slices, ids, payload, key)
                if built is not None:
                    self.misses += 1
                    entry = built
                    self._entries[key] = entry
                    if len(self._entries) > self.maxsize:
                        self._entries.popitem(last=False)
                        self.evictions += 1
        if entry is None:
            self.bypasses += 1
            lowered = lower_flush(
                list(ops),
                num_qubits,
                diag_batching=diag_batching,
                planning=planning,
                cost_model=cost_model,
            )
            engine.execute_segments(engine.compile_batch(lowered))
            return
        lk = engine.layout_key(ids)
        layout = entry.layouts.get(lk)
        if layout is None:
            records = entry.materialize(ids, payload)
            segments = engine.compile_batch([rec for rec, _ in records])
            layout = CompiledLayout(segments, records, ids, payload, lk)
            entry.layouts[lk] = layout
            if len(entry.layouts) > self.max_layouts:
                entry.layouts.popitem(last=False)
        else:
            entry.layouts.move_to_end(lk)
        segments = layout.bind(ids, payload)
        # Engines exposing a freeze surface replay through a per-layout
        # frozen program: the same arithmetic with the interpreter's
        # per-op dispatch precompiled away (see ``freeze_segments`` on
        # the engines).  The sharded engine additionally packs runs of
        # strided steps into contiguous typed opcode arrays that the
        # native kernel driver (:mod:`repro.sim.kernels`) walks in one
        # call per chunk when ``kernels`` dispatch selects the jit path.
        # The program references the live segment objects, so in-place
        # rebinds flow through automatically — matrices are re-read at
        # execute time, not freeze time.
        execute_frozen = getattr(engine, "execute_frozen", None)
        if execute_frozen is not None:
            if layout.frozen is None:
                layout.frozen = engine.freeze_segments(segments)
            execute_frozen(layout.frozen)
        else:
            engine.execute_segments(segments)
