"""JIT-compiled chunk kernels with a bit-identical pure-numpy fallback.

This module is the native half of the compiled-schedule thread: PR 8
froze flush schedules into flat replay programs precisely so the hot
per-chunk inner loops could stop being one python-dispatched numpy
expression per step.  Three loop families are covered:

* the strided single-qubit / controlled kernel pass (the ``"sq"`` /
  ``"cc"`` run entries, frozen as ``sf/sd/cf/cd/ss/cs`` steps) — a
  whole frozen kernel fold is specialized into contiguous typed step
  arrays (``codes``/``arg0``/``arg1`` + a per-step 2x2 matrix table)
  that one compiled driver (:func:`_drive_py` and its native twins)
  walks per chunk in a single call;
* the ``csel``/``ct`` per-shard-bit sub-block matmul — the strided
  window gather/scatter is specialized through a precomputed index
  matrix while the 2^k-dim matmul itself stays on BLAS (``np.dot`` is
  already native code, and no reimplementation of zgemm could promise
  bit-identity);
* the doubling/DP diagonal phase-table materializer of
  :func:`repro.sim.diag.chunk_phase` (the multiply path; the wide-batch
  angle-accumulation path stays on numpy's vectorized cos/sin in every
  mode, because libm and numpy's SIMD transcendentals differ per host).

**The bit-identity contract.**  The acceptance bar is that
``kernels="jit"`` and ``kernels="numpy"`` produce *bit-identical*
amplitudes (enforced by tests/integration/test_differential_fuzz.py).
numpy's complex-multiply ufunc is free to use FMA-contracted SIMD
paths that neither gcc (``-ffp-contract=off``) nor LLVM/numba will
reproduce, so the contract is defined in **planar arithmetic**: every
kernel computes separate real/imaginary parts through the fixed
expression tree

    re = (ur*ar - ui*ai) + ...    im = (ur*ai + ui*ar) + ...

with one IEEE-754 multiply/add per node and no fused operations.  The
numpy fallbacks evaluate that tree with float array ops (each ufunc
call is one exactly-rounded IEEE op per element); the native kernels
evaluate it scalar-by-scalar with contraction disabled.  Equality is
then guaranteed by IEEE semantics on any host — and re-verified at
provider warm-up by :func:`_self_check`, which demotes a provider that
fails to reproduce the reference driver bit-for-bit.

The tree exists in two precisions: float64 for ``complex128`` chunks
and float32 for ``complex64`` chunks (the PR 10 mixed-precision tier).
The contract is *within* a dtype — a complex64 run is bit-identical
between jit and numpy arms, never to a complex128 run.  To keep the
float32 arms aligned, every 2x2 matrix / scalar factor is rounded to
the chunk's precision exactly **once**, at the dispatch boundary in
this module (and at the frozen-step build sites in the engines), so
both arms consume identical pre-rounded operands; the compiled float
loops run in SSE single precision (``FLT_EVAL_METHOD == 0``), one
rounding per node, matching numpy's float32 ufuncs.  Diagonal *phase
tables* (:mod:`repro.sim.diag`) stay complex128 in every mode: their
application is an in-place same-kind multiply whose rounding is
dtype-independent, so no float32 phase arm exists.

**Providers.**  ``numba`` when importable (the ``pip install -e
.[jit]`` extra; the CI jit leg), else a small C module compiled once
through ``cffi`` + the system C compiler and cached on disk, else pure
numpy.  Selection is observable through ``backend.kernel_info()``.

Environment knobs:

* ``REPRO_QMPI_KERNELS`` — default mode (``auto``/``numpy``/``jit``)
  when a backend is built without an explicit ``kernels=``;
* ``REPRO_QMPI_DISABLE_JIT=1`` — no native provider is ever used (the
  CI fallback leg proves the pure-numpy path with this set);
* ``REPRO_QMPI_KERNEL_PROVIDER`` — pin ``numba`` or ``cffi``;
* ``REPRO_QMPI_KERNEL_CACHE`` — cffi build cache directory (numba's
  own on-disk cache honors ``NUMBA_CACHE_DIR``).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import time

import numpy as np

__all__ = [
    "KernelDispatch",
    "JIT_MIN_AMPS_DEFAULT",
    "provider_name",
    "reset_provider_cache",
]

#: Break-even chunk size (amplitudes) below which ``kernels="auto"``
#: stays on the numpy fallback: under ~2^12 amplitudes the per-call
#: dispatch overhead (argument staging + the foreign call) eats the
#: single-pass advantage (calibrated by benchmarks/bench_kernels.py;
#: mirrored by ``CostModel.jit_min_amps``).
JIT_MIN_AMPS_DEFAULT = 1 << 12

_MODES = ("auto", "numpy", "jit")

# Typed step opcodes walked by the frozen-program driver.  arg0/arg1
# carry the step's integer operands; the matrix table row carries the
# live 2x2 (re-filled from the bound segments on every execution, so
# schedule-cache parameter rebinding flows through).
OP_SQ_FULL = 0  # arg0 = local bit            (strided 2x2 pass)
OP_SQ_DIAG = 1  # arg0 = local bit            (guarded diagonal scale)
OP_CC_FULL = 2  # arg0 = control mask, arg1 = target bit
OP_CC_DIAG = 3  # arg0 = control mask, arg1 = target bit
OP_SCALE = 4  # arg0 = diagonal index       (whole-chunk scale)
OP_MASK_SCALE = 5  # arg0 = control mask, arg1 = diagonal index


# ----------------------------------------------------------------------
# reference driver (pure python scalar loops)
# ----------------------------------------------------------------------
# This function is the executable specification: the numba provider
# compiles it verbatim, the C source below transliterates it, and the
# vectorized numpy fallbacks evaluate the same expression trees.  Unit
# tests call it directly (on tiny chunks) so every opcode's semantics
# are covered even where no native provider exists.
def _drive_py(af, codes, arg0, arg1, mats):
    n_amps = af.shape[0] >> 1
    for s in range(codes.shape[0]):
        code = codes[s]
        u00r = mats[s, 0]
        u00i = mats[s, 1]
        u01r = mats[s, 2]
        u01i = mats[s, 3]
        u10r = mats[s, 4]
        u10i = mats[s, 5]
        u11r = mats[s, 6]
        u11i = mats[s, 7]
        if code == 0:  # OP_SQ_FULL
            b = arg0[s]
            stride = 1 << b
            for i in range(n_amps >> 1):
                lo = ((((i >> b) << (b + 1)) | (i & (stride - 1)))) << 1
                hi = lo + (stride << 1)
                ar = af[lo]
                ai = af[lo + 1]
                br = af[hi]
                bi = af[hi + 1]
                af[lo] = (u00r * ar - u00i * ai) + (u01r * br - u01i * bi)
                af[lo + 1] = (u00r * ai + u00i * ar) + (u01r * bi + u01i * br)
                af[hi] = (u10r * ar - u10i * ai) + (u11r * br - u11i * bi)
                af[hi + 1] = (u10r * ai + u10i * ar) + (u11r * bi + u11i * br)
        elif code == 1:  # OP_SQ_DIAG
            b = arg0[s]
            tbit = 1 << b
            g0 = (u00r != 1.0) or (u00i != 0.0)
            g1 = (u11r != 1.0) or (u11i != 0.0)
            if g0 or g1:
                for i in range(n_amps):
                    if i & tbit:
                        if g1:
                            r = af[2 * i]
                            m = af[2 * i + 1]
                            af[2 * i] = u11r * r - u11i * m
                            af[2 * i + 1] = u11r * m + u11i * r
                    elif g0:
                        r = af[2 * i]
                        m = af[2 * i + 1]
                        af[2 * i] = u00r * r - u00i * m
                        af[2 * i + 1] = u00r * m + u00i * r
        elif code == 2:  # OP_CC_FULL
            lmask = arg0[s]
            tbit = 1 << arg1[s]
            for i in range(n_amps):
                if (i & lmask) == lmask and (i & tbit) == 0:
                    lo = i << 1
                    hi = (i | tbit) << 1
                    ar = af[lo]
                    ai = af[lo + 1]
                    br = af[hi]
                    bi = af[hi + 1]
                    af[lo] = (u00r * ar - u00i * ai) + (u01r * br - u01i * bi)
                    af[lo + 1] = (u00r * ai + u00i * ar) + (u01r * bi + u01i * br)
                    af[hi] = (u10r * ar - u10i * ai) + (u11r * br - u11i * bi)
                    af[hi + 1] = (u10r * ai + u10i * ar) + (u11r * bi + u11i * br)
        elif code == 3:  # OP_CC_DIAG
            lmask = arg0[s]
            tbit = 1 << arg1[s]
            g0 = (u00r != 1.0) or (u00i != 0.0)
            g1 = (u11r != 1.0) or (u11i != 0.0)
            if g0 or g1:
                for i in range(n_amps):
                    if (i & lmask) == lmask:
                        if i & tbit:
                            if g1:
                                r = af[2 * i]
                                m = af[2 * i + 1]
                                af[2 * i] = u11r * r - u11i * m
                                af[2 * i + 1] = u11r * m + u11i * r
                        elif g0:
                            r = af[2 * i]
                            m = af[2 * i + 1]
                            af[2 * i] = u00r * r - u00i * m
                            af[2 * i + 1] = u00r * m + u00i * r
        elif code == 4:  # OP_SCALE
            if arg0[s]:
                fr = u11r
                fi = u11i
            else:
                fr = u00r
                fi = u00i
            if (fr != 1.0) or (fi != 0.0):
                for i in range(n_amps):
                    r = af[2 * i]
                    m = af[2 * i + 1]
                    af[2 * i] = fr * r - fi * m
                    af[2 * i + 1] = fr * m + fi * r
        else:  # OP_MASK_SCALE
            lmask = arg0[s]
            if arg1[s]:
                fr = u11r
                fi = u11i
            else:
                fr = u00r
                fi = u00i
            if (fr != 1.0) or (fi != 0.0):
                for i in range(n_amps):
                    if (i & lmask) == lmask:
                        r = af[2 * i]
                        m = af[2 * i + 1]
                        af[2 * i] = fr * r - fi * m
                        af[2 * i + 1] = fr * m + fi * r


def _phase_py(outf, n_live, lvl, kind, pa, pb, nzm, vals, sr, si):
    """Doubling phase-table fill (reference; see chunk_phase's numpy twin).

    ``outf`` is the float64 view of the 2^n_live complex table.  Parts
    arrive sorted by fold level; each level duplicates the current
    prefix (the doubling step) and then folds in its parts as strided
    planar multiplies — per element exactly one multiply per part, in
    part order, matching the numpy doubling path multiply for multiply.
    """
    outf[0] = sr
    outf[1] = si
    size = 1
    pi = 0
    n_parts = lvl.shape[0]
    for p in range(n_live):
        for e in range(2 * size):
            outf[2 * size + e] = outf[e]
        size <<= 1
        while pi < n_parts and lvl[pi] == p:
            a = pa[pi]
            b = pb[pi]
            m = nzm[pi]
            two = kind[pi] == 2
            for e in range(size):
                if two:
                    i = (((e >> a) & 1) << 1) | ((e >> b) & 1)
                else:
                    i = (e >> a) & 1
                if m & (1 << i):
                    vr = vals[8 * pi + 2 * i]
                    vi = vals[8 * pi + 2 * i + 1]
                    r = outf[2 * e]
                    w = outf[2 * e + 1]
                    outf[2 * e] = vr * r - vi * w
                    outf[2 * e + 1] = vr * w + vi * r
            pi += 1


# ----------------------------------------------------------------------
# planar numpy kernels (the fallback arms; also used by the engines'
# interpreter and frozen-replay paths so every mode shares one tree)
# ----------------------------------------------------------------------
def imul(sub, f) -> None:
    """Planar in-place multiply of a complex view by a complex scalar."""
    fr = f.real
    fi = f.imag
    # .copy() (never ascontiguousarray: a size-1 view is already
    # "contiguous" and would alias) — the old parts must survive the
    # first in-place write.
    r = sub.real.copy()
    m = sub.imag.copy()
    sub.real = fr * r - fi * m
    sub.imag = fr * m + fi * r


def sq_full_view(v, u) -> None:
    """Planar strided 2x2 pass on a ``(-1, 2, stride)`` chunk view."""
    u00 = complex(u[0, 0])
    u01 = complex(u[0, 1])
    u10 = complex(u[1, 0])
    u11 = complex(u[1, 1])
    a0 = v[:, 0, :]
    a1 = v[:, 1, :]
    a0r = a0.real.copy()
    a0i = a0.imag.copy()
    a1r = a1.real.copy()
    a1i = a1.imag.copy()
    a0.real = (u00.real * a0r - u00.imag * a0i) + (u01.real * a1r - u01.imag * a1i)
    a0.imag = (u00.real * a0i + u00.imag * a0r) + (u01.real * a1i + u01.imag * a1r)
    a1.real = (u10.real * a0r - u10.imag * a0i) + (u11.real * a1r - u11.imag * a1i)
    a1.imag = (u10.real * a0i + u10.imag * a0r) + (u11.real * a1i + u11.imag * a1r)


def sq_diag_view(v, u) -> None:
    """Planar guarded diagonal pass on a ``(-1, 2, stride)`` chunk view."""
    if u[0, 0] != 1.0:
        imul(v[:, 0, :], complex(u[0, 0]))
    if u[1, 1] != 1.0:
        imul(v[:, 1, :], complex(u[1, 1]))


def cc_full_view(view, idx0, idx1, u) -> None:
    """Planar controlled 2x2 on the all-ones control slice pair."""
    u00 = complex(u[0, 0])
    u01 = complex(u[0, 1])
    u10 = complex(u[1, 0])
    u11 = complex(u[1, 1])
    a0 = view[idx0]
    a1 = view[idx1]
    a0r = a0.real.copy()
    a0i = a0.imag.copy()
    a1r = a1.real.copy()
    a1i = a1.imag.copy()
    a0.real = (u00.real * a0r - u00.imag * a0i) + (u01.real * a1r - u01.imag * a1i)
    a0.imag = (u00.real * a0i + u00.imag * a0r) + (u01.real * a1i + u01.imag * a1r)
    a1.real = (u10.real * a0r - u10.imag * a0i) + (u11.real * a1r - u11.imag * a1i)
    a1.imag = (u10.real * a0i + u10.imag * a0r) + (u11.real * a1i + u11.imag * a1r)


def cc_diag_view(view, idx0, idx1, u) -> None:
    """Planar guarded controlled diagonal on the control slice pair."""
    if u[0, 0] != 1.0:
        imul(view[idx0], complex(u[0, 0]))
    if u[1, 1] != 1.0:
        imul(view[idx1], complex(u[1, 1]))


# ----------------------------------------------------------------------
# native providers
# ----------------------------------------------------------------------
_C_SOURCE = r"""
/* Transliteration of kernels._drive_py / kernels._phase_py.  Compiled
 * with -ffp-contract=off: each multiply/add below must stay one
 * exactly-rounded IEEE-754 operation so results are bit-identical to
 * the planar numpy fallback on any host. */
void qk_drive(double *af, long long n_amps,
              const long long *codes, const long long *arg0,
              const long long *arg1, const double *mats,
              long long n_steps)
{
    for (long long s = 0; s < n_steps; s++) {
        long long code = codes[s];
        const double *u = mats + 8 * s;
        double u00r = u[0], u00i = u[1], u01r = u[2], u01i = u[3];
        double u10r = u[4], u10i = u[5], u11r = u[6], u11i = u[7];
        if (code == 0) {
            long long b = arg0[s];
            long long stride = 1LL << b;
            long long half = n_amps >> 1;
            for (long long i = 0; i < half; i++) {
                long long lo = ((((i >> b) << (b + 1)) | (i & (stride - 1)))) << 1;
                long long hi = lo + (stride << 1);
                double ar = af[lo], ai = af[lo + 1];
                double br = af[hi], bi = af[hi + 1];
                af[lo] = (u00r * ar - u00i * ai) + (u01r * br - u01i * bi);
                af[lo + 1] = (u00r * ai + u00i * ar) + (u01r * bi + u01i * br);
                af[hi] = (u10r * ar - u10i * ai) + (u11r * br - u11i * bi);
                af[hi + 1] = (u10r * ai + u10i * ar) + (u11r * bi + u11i * br);
            }
        } else if (code == 1) {
            long long tbit = 1LL << arg0[s];
            int g0 = (u00r != 1.0) || (u00i != 0.0);
            int g1 = (u11r != 1.0) || (u11i != 0.0);
            if (g0 || g1) {
                for (long long i = 0; i < n_amps; i++) {
                    if (i & tbit) {
                        if (g1) {
                            double r = af[2 * i], m = af[2 * i + 1];
                            af[2 * i] = u11r * r - u11i * m;
                            af[2 * i + 1] = u11r * m + u11i * r;
                        }
                    } else if (g0) {
                        double r = af[2 * i], m = af[2 * i + 1];
                        af[2 * i] = u00r * r - u00i * m;
                        af[2 * i + 1] = u00r * m + u00i * r;
                    }
                }
            }
        } else if (code == 2) {
            long long lmask = arg0[s];
            long long tbit = 1LL << arg1[s];
            for (long long i = 0; i < n_amps; i++) {
                if ((i & lmask) == lmask && (i & tbit) == 0) {
                    long long lo = i << 1;
                    long long hi = (i | tbit) << 1;
                    double ar = af[lo], ai = af[lo + 1];
                    double br = af[hi], bi = af[hi + 1];
                    af[lo] = (u00r * ar - u00i * ai) + (u01r * br - u01i * bi);
                    af[lo + 1] = (u00r * ai + u00i * ar) + (u01r * bi + u01i * br);
                    af[hi] = (u10r * ar - u10i * ai) + (u11r * br - u11i * bi);
                    af[hi + 1] = (u10r * ai + u10i * ar) + (u11r * bi + u11i * br);
                }
            }
        } else if (code == 3) {
            long long lmask = arg0[s];
            long long tbit = 1LL << arg1[s];
            int g0 = (u00r != 1.0) || (u00i != 0.0);
            int g1 = (u11r != 1.0) || (u11i != 0.0);
            if (g0 || g1) {
                for (long long i = 0; i < n_amps; i++) {
                    if ((i & lmask) == lmask) {
                        if (i & tbit) {
                            if (g1) {
                                double r = af[2 * i], m = af[2 * i + 1];
                                af[2 * i] = u11r * r - u11i * m;
                                af[2 * i + 1] = u11r * m + u11i * r;
                            }
                        } else if (g0) {
                            double r = af[2 * i], m = af[2 * i + 1];
                            af[2 * i] = u00r * r - u00i * m;
                            af[2 * i + 1] = u00r * m + u00i * r;
                        }
                    }
                }
            }
        } else if (code == 4) {
            double fr = arg0[s] ? u11r : u00r;
            double fi = arg0[s] ? u11i : u00i;
            if ((fr != 1.0) || (fi != 0.0)) {
                for (long long i = 0; i < n_amps; i++) {
                    double r = af[2 * i], m = af[2 * i + 1];
                    af[2 * i] = fr * r - fi * m;
                    af[2 * i + 1] = fr * m + fi * r;
                }
            }
        } else {
            long long lmask = arg0[s];
            double fr = arg1[s] ? u11r : u00r;
            double fi = arg1[s] ? u11i : u00i;
            if ((fr != 1.0) || (fi != 0.0)) {
                for (long long i = 0; i < n_amps; i++) {
                    if ((i & lmask) == lmask) {
                        double r = af[2 * i], m = af[2 * i + 1];
                        af[2 * i] = fr * r - fi * m;
                        af[2 * i + 1] = fr * m + fi * r;
                    }
                }
            }
        }
    }
}

/* Single-precision twin of qk_drive for complex64 chunks: the same
 * expression tree, evaluated in SSE float (FLT_EVAL_METHOD == 0, no
 * promotion to double, contraction off) so each node is one exactly
 * rounded float32 operation, matching numpy's float32 ufuncs. */
void qk_drive_f(float *af, long long n_amps,
                const long long *codes, const long long *arg0,
                const long long *arg1, const float *mats,
                long long n_steps)
{
    for (long long s = 0; s < n_steps; s++) {
        long long code = codes[s];
        const float *u = mats + 8 * s;
        float u00r = u[0], u00i = u[1], u01r = u[2], u01i = u[3];
        float u10r = u[4], u10i = u[5], u11r = u[6], u11i = u[7];
        if (code == 0) {
            long long b = arg0[s];
            long long stride = 1LL << b;
            long long half = n_amps >> 1;
            for (long long i = 0; i < half; i++) {
                long long lo = ((((i >> b) << (b + 1)) | (i & (stride - 1)))) << 1;
                long long hi = lo + (stride << 1);
                float ar = af[lo], ai = af[lo + 1];
                float br = af[hi], bi = af[hi + 1];
                af[lo] = (u00r * ar - u00i * ai) + (u01r * br - u01i * bi);
                af[lo + 1] = (u00r * ai + u00i * ar) + (u01r * bi + u01i * br);
                af[hi] = (u10r * ar - u10i * ai) + (u11r * br - u11i * bi);
                af[hi + 1] = (u10r * ai + u10i * ar) + (u11r * bi + u11i * br);
            }
        } else if (code == 1) {
            long long tbit = 1LL << arg0[s];
            int g0 = (u00r != 1.0f) || (u00i != 0.0f);
            int g1 = (u11r != 1.0f) || (u11i != 0.0f);
            if (g0 || g1) {
                for (long long i = 0; i < n_amps; i++) {
                    if (i & tbit) {
                        if (g1) {
                            float r = af[2 * i], m = af[2 * i + 1];
                            af[2 * i] = u11r * r - u11i * m;
                            af[2 * i + 1] = u11r * m + u11i * r;
                        }
                    } else if (g0) {
                        float r = af[2 * i], m = af[2 * i + 1];
                        af[2 * i] = u00r * r - u00i * m;
                        af[2 * i + 1] = u00r * m + u00i * r;
                    }
                }
            }
        } else if (code == 2) {
            long long lmask = arg0[s];
            long long tbit = 1LL << arg1[s];
            for (long long i = 0; i < n_amps; i++) {
                if ((i & lmask) == lmask && (i & tbit) == 0) {
                    long long lo = i << 1;
                    long long hi = (i | tbit) << 1;
                    float ar = af[lo], ai = af[lo + 1];
                    float br = af[hi], bi = af[hi + 1];
                    af[lo] = (u00r * ar - u00i * ai) + (u01r * br - u01i * bi);
                    af[lo + 1] = (u00r * ai + u00i * ar) + (u01r * bi + u01i * br);
                    af[hi] = (u10r * ar - u10i * ai) + (u11r * br - u11i * bi);
                    af[hi + 1] = (u10r * ai + u10i * ar) + (u11r * bi + u11i * br);
                }
            }
        } else if (code == 3) {
            long long lmask = arg0[s];
            long long tbit = 1LL << arg1[s];
            int g0 = (u00r != 1.0f) || (u00i != 0.0f);
            int g1 = (u11r != 1.0f) || (u11i != 0.0f);
            if (g0 || g1) {
                for (long long i = 0; i < n_amps; i++) {
                    if ((i & lmask) == lmask) {
                        if (i & tbit) {
                            if (g1) {
                                float r = af[2 * i], m = af[2 * i + 1];
                                af[2 * i] = u11r * r - u11i * m;
                                af[2 * i + 1] = u11r * m + u11i * r;
                            }
                        } else if (g0) {
                            float r = af[2 * i], m = af[2 * i + 1];
                            af[2 * i] = u00r * r - u00i * m;
                            af[2 * i + 1] = u00r * m + u00i * r;
                        }
                    }
                }
            }
        } else if (code == 4) {
            float fr = arg0[s] ? u11r : u00r;
            float fi = arg0[s] ? u11i : u00i;
            if ((fr != 1.0f) || (fi != 0.0f)) {
                for (long long i = 0; i < n_amps; i++) {
                    float r = af[2 * i], m = af[2 * i + 1];
                    af[2 * i] = fr * r - fi * m;
                    af[2 * i + 1] = fr * m + fi * r;
                }
            }
        } else {
            long long lmask = arg0[s];
            float fr = arg1[s] ? u11r : u00r;
            float fi = arg1[s] ? u11i : u00i;
            if ((fr != 1.0f) || (fi != 0.0f)) {
                for (long long i = 0; i < n_amps; i++) {
                    if ((i & lmask) == lmask) {
                        float r = af[2 * i], m = af[2 * i + 1];
                        af[2 * i] = fr * r - fi * m;
                        af[2 * i + 1] = fr * m + fi * r;
                    }
                }
            }
        }
    }
}

void qk_phase(double *outf, long long n_live,
              const long long *lvl, const long long *kind,
              const long long *pa, const long long *pb,
              const long long *nzm, const double *vals,
              long long n_parts, double sr, double si)
{
    outf[0] = sr;
    outf[1] = si;
    long long size = 1;
    long long pi = 0;
    for (long long p = 0; p < n_live; p++) {
        for (long long e = 0; e < 2 * size; e++)
            outf[2 * size + e] = outf[e];
        size <<= 1;
        while (pi < n_parts && lvl[pi] == p) {
            long long a = pa[pi], b = pb[pi], m = nzm[pi];
            int two = kind[pi] == 2;
            for (long long e = 0; e < size; e++) {
                long long i = two
                    ? ((((e >> a) & 1) << 1) | ((e >> b) & 1))
                    : ((e >> a) & 1);
                if (m & (1LL << i)) {
                    double vr = vals[8 * pi + 2 * i];
                    double vi = vals[8 * pi + 2 * i + 1];
                    double r = outf[2 * e], w = outf[2 * e + 1];
                    outf[2 * e] = vr * r - vi * w;
                    outf[2 * e + 1] = vr * w + vi * r;
                }
            }
            pi++;
        }
    }
}
"""

_C_DECLS = """
void qk_drive(double *, long long, const long long *, const long long *,
              const long long *, const double *, long long);
void qk_drive_f(float *, long long, const long long *, const long long *,
                const long long *, const float *, long long);
void qk_phase(double *, long long, const long long *, const long long *,
              const long long *, const long long *, const long long *,
              const double *, long long, double, double);
"""


class _NumbaProvider:
    """``@njit`` wrappers around the reference driver (fastmath off)."""

    name = "numba"

    def __init__(self, numba):
        jit = numba.njit(cache=True, fastmath=False)
        self._drive = jit(_drive_py)
        self._phase = jit(_phase_py)

    def drive(self, af, codes, arg0, arg1, mats):
        self._drive(af, codes, arg0, arg1, mats)

    def phase(self, outf, n_live, lvl, kind, pa, pb, nzm, vals, sr, si):
        self._phase(outf, n_live, lvl, kind, pa, pb, nzm, vals, sr, si)


class _CffiProvider:
    """The cached-on-disk C module compiled through cffi + system cc."""

    name = "cffi"

    def __init__(self, ffi, lib):
        self._ffi = ffi
        self._lib = lib

    def _d(self, arr):
        return self._ffi.cast("double *", arr.ctypes.data)

    def _f(self, arr):
        return self._ffi.cast("float *", arr.ctypes.data)

    def _l(self, arr):
        return self._ffi.cast("long long *", arr.ctypes.data)

    def drive(self, af, codes, arg0, arg1, mats):
        # af is the planar float view of the chunk; its dtype selects the
        # single- or double-precision compiled driver (mats matches it).
        if af.dtype == np.float32:
            self._lib.qk_drive_f(
                self._f(af), af.shape[0] >> 1,
                self._l(codes), self._l(arg0), self._l(arg1),
                self._f(mats), codes.shape[0],
            )
            return
        self._lib.qk_drive(
            self._d(af), af.shape[0] >> 1,
            self._l(codes), self._l(arg0), self._l(arg1),
            self._d(mats), codes.shape[0],
        )

    def phase(self, outf, n_live, lvl, kind, pa, pb, nzm, vals, sr, si):
        self._lib.qk_phase(
            self._d(outf), n_live,
            self._l(lvl), self._l(kind), self._l(pa), self._l(pb),
            self._l(nzm), self._d(vals), lvl.shape[0], sr, si,
        )


def _cffi_cache_dir() -> str:
    env = os.environ.get("REPRO_QMPI_KERNEL_CACHE")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-qmpi")


def _load_cffi():
    """Load (or build once, under a lock) the cached C kernel module.

    The module name carries a hash of the C source, so editing the
    kernels invalidates stale builds; worker processes spawned after
    the parent's warm-up find the built artifact and only pay an
    import.  The file lock serializes concurrent cold builds (e.g.
    pool workers warming up before the parent ever went native).
    """
    from cffi import FFI

    tag = hashlib.sha1(_C_SOURCE.encode()).hexdigest()[:12]
    modname = f"_repro_qk_{tag}"
    cache = _cffi_cache_dir()
    os.makedirs(cache, exist_ok=True)

    def _find_built():
        for fn in os.listdir(cache):
            if fn.startswith(modname) and fn.endswith(".so"):
                return os.path.join(cache, fn)
        return None

    so = _find_built()
    if so is None:
        lock_path = os.path.join(cache, f"{modname}.lock")
        lock = open(lock_path, "w")
        try:
            try:
                import fcntl

                fcntl.flock(lock, fcntl.LOCK_EX)
            except ImportError:  # pragma: no cover - non-posix
                pass
            so = _find_built()
            if so is None:
                ffi = FFI()
                ffi.cdef(_C_DECLS)
                ffi.set_source(
                    modname,
                    _C_SOURCE,
                    extra_compile_args=["-O3", "-ffp-contract=off"],
                )
                so = ffi.compile(tmpdir=cache, verbose=False)
        finally:
            lock.close()
    spec = importlib.util.spec_from_file_location(modname, so)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return _CffiProvider(mod.ffi, mod.lib)


def _self_check(provider) -> str | None:
    """Verify a native provider bit-for-bit against the reference driver.

    Runs every opcode and both phase-part kinds on random data and
    compares raw float64 bits.  A provider that cannot reproduce the
    planar tree exactly (an over-eager optimizer, an FMA-contracting
    toolchain) is demoted to the numpy fallback rather than trusted.
    """
    rng = np.random.default_rng(20260808)
    n = 64
    chunk = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    ref = chunk.copy()
    codes = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
    arg0 = np.array([2, 1, 0b1, 0b1, 1, 0b10], dtype=np.int64)
    arg1 = np.array([0, 0, 2, 3, 0, 1], dtype=np.int64)
    mats = rng.standard_normal((6, 8))
    _drive_py(ref.view(np.float64), codes, arg0, arg1, mats)
    provider.drive(chunk.view(np.float64), codes, arg0, arg1, mats)
    if not np.array_equal(
        chunk.view(np.float64), ref.view(np.float64), equal_nan=True
    ):
        return "driver output is not bit-identical to the reference"
    chunk4 = (
        rng.standard_normal(n) + 1j * rng.standard_normal(n)
    ).astype(np.complex64)
    ref4 = chunk4.copy()
    mats4 = mats.astype(np.float32)
    _drive_py(ref4.view(np.float32), codes, arg0, arg1, mats4)
    provider.drive(chunk4.view(np.float32), codes, arg0, arg1, mats4)
    if not np.array_equal(
        chunk4.view(np.float32), ref4.view(np.float32), equal_nan=True
    ):
        return "float32 driver output is not bit-identical to the reference"
    n_live = 3
    lvl = np.array([0, 1, 2], dtype=np.int64)
    kind = np.array([1, 2, 1], dtype=np.int64)
    pa = np.array([0, 1, 2], dtype=np.int64)
    pb = np.array([0, 0, 0], dtype=np.int64)
    nzm = np.array([0b10, 0b1011, 0b01], dtype=np.int64)
    vals = rng.standard_normal(3 * 8)
    out = np.empty(1 << n_live, dtype=np.complex128)
    refp = np.empty(1 << n_live, dtype=np.complex128)
    _phase_py(refp.view(np.float64), n_live, lvl, kind, pa, pb, nzm, vals, 0.5, -0.25)
    provider.phase(out.view(np.float64), n_live, lvl, kind, pa, pb, nzm, vals, 0.5, -0.25)
    if not np.array_equal(out.view(np.float64), refp.view(np.float64)):
        return "phase fill is not bit-identical to the reference"
    return None


# (name, provider, compile_time, error) memoized per environment so
# monkeypatched tests re-resolve; the heavy artifacts (numba compile
# cache, the cffi .so) are cached on disk across processes anyway.
_PROVIDER_CACHE: dict[tuple, tuple] = {}


def _env_key() -> tuple:
    return (
        os.environ.get("REPRO_QMPI_DISABLE_JIT"),
        os.environ.get("REPRO_QMPI_KERNEL_PROVIDER"),
        os.environ.get("REPRO_QMPI_KERNEL_CACHE"),
    )


def _resolve_provider() -> tuple:
    key = _env_key()
    hit = _PROVIDER_CACHE.get(key)
    if hit is not None:
        return hit
    disabled = (key[0] or "").lower() in ("1", "true", "yes", "on")
    forced = key[1]
    name, provider, compile_time, error = None, None, 0.0, None
    if disabled:
        error = "disabled via REPRO_QMPI_DISABLE_JIT"
    else:
        attempts = []
        if forced in (None, "numba"):
            attempts.append("numba")
        if forced in (None, "cffi"):
            attempts.append("cffi")
        if not attempts:
            error = f"unknown REPRO_QMPI_KERNEL_PROVIDER {forced!r}"
        for cand in attempts:
            t0 = time.perf_counter()
            try:
                if cand == "numba":
                    import numba

                    provider = _NumbaProvider(numba)
                else:
                    provider = _load_cffi()
                # The self-check doubles as the warm-up compile for
                # numba (first call triggers nopython compilation).
                fail = _self_check(provider)
                if fail is not None:
                    raise RuntimeError(fail)
                name = cand
                compile_time = time.perf_counter() - t0
                error = None
                break
            except Exception as exc:
                provider = None
                error = f"{cand}: {type(exc).__name__}: {exc}"
    result = (name, provider, compile_time, error)
    _PROVIDER_CACHE[key] = result
    return result


def reset_provider_cache() -> None:
    """Forget resolved providers (tests flip env knobs and re-resolve)."""
    _PROVIDER_CACHE.clear()


def provider_name() -> str | None:
    """The native provider the current environment resolves to, if any."""
    return _resolve_provider()[0]


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class KernelDispatch:
    """Per-engine kernel selection, counters and native entry points.

    Modes: ``"numpy"`` never goes native; ``"jit"`` always dispatches
    native when a provider exists (and counts a numpy fallback when it
    doesn't); ``"auto"`` goes native only at or above the break-even
    size ``jit_min_amps``.  A backend built with ``kernels=None``
    (the default) reads ``REPRO_QMPI_KERNELS`` before settling on
    ``"auto"``, which is how the CI jit leg runs the whole tier-1
    suite natively without touching call sites.

    Every arm of every kernel — native or numpy — evaluates the same
    planar float64 expression tree (module docstring), so mode choice
    is observable in the counters and the wall clock, never in the
    amplitudes.
    """

    __slots__ = (
        "mode",
        "jit_min_amps",
        "counters",
        "_provider",
        "_resolved",
        "_error",
        "_csel_memo",
        "_codes1",
        "_arg0_1",
        "_arg1_1",
        "_mats1",
        "_mats1_f4",
    )

    def __init__(self, kernels: str | None = None, jit_min_amps: int | None = None):
        if kernels is None:
            kernels = os.environ.get("REPRO_QMPI_KERNELS") or "auto"
        if kernels not in _MODES:
            raise ValueError(
                f'kernels must be "auto", "numpy" or "jit", got {kernels!r}'
            )
        self.mode = kernels
        self.jit_min_amps = (
            JIT_MIN_AMPS_DEFAULT if jit_min_amps is None else int(jit_min_amps)
        )
        self.counters = {
            "jit_hits": 0,
            "numpy_fallbacks": 0,
            "csel_hits": 0,
            "compile_time": 0.0,
        }
        self._provider = None
        self._resolved = kernels == "numpy"  # numpy mode never resolves
        self._error = None
        self._csel_memo: dict[tuple, np.ndarray] = {}
        self._codes1 = np.empty(1, dtype=np.int64)
        self._arg0_1 = np.empty(1, dtype=np.int64)
        self._arg1_1 = np.empty(1, dtype=np.int64)
        self._mats1 = np.empty((1, 8), dtype=np.float64)
        self._mats1_f4 = np.empty((1, 8), dtype=np.float32)

    # -- selection ------------------------------------------------------
    def _ensure(self):
        if not self._resolved:
            name, provider, compile_time, error = _resolve_provider()
            self._provider = provider
            self._error = error
            self.counters["compile_time"] = compile_time
            self._resolved = True
        return self._provider

    def warmup(self) -> None:
        """Resolve (compile/load + self-check) the provider eagerly.

        Pool workers call this once per process before touching real
        chunks, so cold numba compilation or a cold cffi build never
        lands in the middle of a timed stretch.
        """
        if self.mode != "numpy":
            self._ensure()

    def native(self, n_amps: int) -> bool:
        """Would a kernel over ``n_amps`` amplitudes dispatch natively?"""
        if self.mode == "numpy":
            return False
        if self.mode == "auto" and n_amps < self.jit_min_amps:
            return False
        return self._ensure() is not None

    def info(self) -> dict:
        """Counters + provenance, mirroring ``cache_info()``."""
        provider = self._provider.name if self._provider is not None else None
        if not self._resolved and self.mode != "numpy":
            # Report what *would* resolve without forcing a compile.
            provider = provider_name()
        out = {"mode": self.mode, "provider": provider, "jit_min_amps": self.jit_min_amps}
        out.update(self.counters)
        out["provider_error"] = self._error
        return out

    def worker_args(self) -> tuple:
        """The picklable spec pool workers rebuild their dispatch from."""
        return (self.mode, self.jit_min_amps)

    # -- native entry points -------------------------------------------
    def _flat(self, chunk):
        """The planar float view matching the chunk's precision."""
        f = np.float32 if chunk.dtype == np.complex64 else np.float64
        return chunk.reshape(-1).view(f)

    def drive(self, chunk, codes, arg0, arg1, mats_f) -> None:
        """Walk one typed step block natively over ``chunk``.

        ``mats_f`` is the planar float view of the per-step 2x2 table;
        its precision must match the chunk's (the frozen-program build
        sites round the matrices to the engine dtype exactly once).
        """
        self._provider.drive(self._flat(chunk), codes, arg0, arg1, mats_f)
        self.counters["jit_hits"] += 1

    def _one(self, chunk, code, a0, a1, u00, u01, u10, u11) -> None:
        self._codes1[0] = code
        self._arg0_1[0] = a0
        self._arg1_1[0] = a1
        # The callers pre-round u/f to the chunk's precision, so filling
        # the float32 scratch from them is exact (no second rounding).
        m = self._mats1_f4 if chunk.dtype == np.complex64 else self._mats1
        m[0, 0] = u00.real
        m[0, 1] = u00.imag
        m[0, 2] = u01.real
        m[0, 3] = u01.imag
        m[0, 4] = u10.real
        m[0, 5] = u10.imag
        m[0, 6] = u11.real
        m[0, 7] = u11.imag
        self._provider.drive(
            self._flat(chunk), self._codes1, self._arg0_1, self._arg1_1, m
        )
        self.counters["jit_hits"] += 1

    # -- dispatched kernels --------------------------------------------
    def sq(self, chunk, u, b: int, diag: bool) -> None:
        """Local-axis single-qubit pass (the "sq"/"sf"/"sd" kernel)."""
        u = np.asarray(u, dtype=chunk.dtype)  # no-op for complex128
        if self.native(chunk.size):
            code = OP_SQ_DIAG if diag else OP_SQ_FULL
            self._one(chunk, code, b, 0, u[0, 0], u[0, 1], u[1, 0], u[1, 1])
            return
        self.counters["numpy_fallbacks"] += 1
        v = chunk.reshape(-1, 2, 1 << b)
        if diag:
            sq_diag_view(v, u)
        else:
            sq_full_view(v, u)

    def scale(self, chunk, f) -> None:
        """Whole-chunk scale (shard-axis diagonal / scalar csel entry)."""
        f = complex(f)
        if chunk.dtype == np.complex64:
            f = complex(np.complex64(f))  # round once; exact thereafter
        if f == 1.0:
            return
        if self.native(chunk.size):
            self._one(chunk, OP_SCALE, 0, 0, f, 0j, 0j, f)
            return
        self.counters["numpy_fallbacks"] += 1
        imul(chunk.reshape(-1), f)

    def cc(self, chunk, u, local_controls, t_bit: int, nl: int, diag: bool) -> None:
        """Locally-targeted controlled 2x2 (the "cc"/"cf"/"cd" kernel)."""
        u = np.asarray(u, dtype=chunk.dtype)  # no-op for complex128
        if self.native(chunk.size):
            lmask = 0
            for b in local_controls:
                lmask |= 1 << b
            code = OP_CC_DIAG if diag else OP_CC_FULL
            self._one(chunk, code, lmask, t_bit, u[0, 0], u[0, 1], u[1, 0], u[1, 1])
            return
        self.counters["numpy_fallbacks"] += 1
        view = chunk.reshape((-1,) + (2,) * nl)
        idx0 = [slice(None)] * (nl + 1)
        for b in local_controls:
            idx0[1 + nl - 1 - b] = 1
        idx1 = list(idx0)
        ax = 1 + nl - 1 - t_bit
        idx0[ax] = 0
        idx1[ax] = 1
        if diag:
            cc_diag_view(view, tuple(idx0), tuple(idx1), u)
        else:
            cc_full_view(view, tuple(idx0), tuple(idx1), u)

    def masked_scale(self, chunk, f, local_controls, nl: int) -> None:
        """Control-sliced scale (shard-axis-targeted "cc" diagonal)."""
        f = complex(f)
        if chunk.dtype == np.complex64:
            f = complex(np.complex64(f))  # round once; exact thereafter
        if f == 1.0:
            return
        if self.native(chunk.size):
            lmask = 0
            for b in local_controls:
                lmask |= 1 << b
            self._one(chunk, OP_MASK_SCALE, lmask, 0, f, 0j, 0j, f)
            return
        self.counters["numpy_fallbacks"] += 1
        view = chunk.reshape((-1,) + (2,) * nl)
        idx = [slice(None)] * (nl + 1)
        for b in local_controls:
            idx[1 + nl - 1 - b] = 1
        imul(view[tuple(idx)], f)

    def contract(self, chunk, u, bits, nl: int) -> bool:
        """Specialized window contraction ("ct"/"csel" sub-block matmul).

        Returns True when handled here: the strided window gather and
        scatter run through a precomputed index matrix (built once per
        layout with the same transpose+reshape ``np.tensordot``
        performs internally) around the very same BLAS ``np.dot`` —
        data movement is exact and the matmul operands are identical,
        so this path is bit-identical to
        :func:`repro.sim.parallel.contract_local` by construction.
        False sends the caller to ``contract_local`` (the numpy arm).
        """
        if not self.native(chunk.size):
            self.counters["numpy_fallbacks"] += 1
            return False
        k = len(bits)
        key = (chunk.size, tuple(bits), nl)
        idx = self._csel_memo.get(key)
        if idx is None:
            axes = [1 + nl - 1 - b for b in bits]
            grid = np.arange(chunk.size, dtype=np.intp).reshape((-1,) + (2,) * nl)
            order = tuple(axes) + tuple(
                ax for ax in range(grid.ndim) if ax not in axes
            )
            idx = np.ascontiguousarray(grid.transpose(order).reshape(1 << k, -1))
            self._csel_memo[key] = idx
        flat = chunk.reshape(-1)
        bt = flat[idx]
        # Cast u to the chunk's precision (a no-op for complex128) so
        # the matmul runs in the chunk dtype — the same cgemm/zgemm and
        # operands as contract_local's tensordot.
        t = np.dot(
            np.ascontiguousarray(u, dtype=chunk.dtype).reshape(1 << k, 1 << k), bt
        )
        flat[idx] = t
        self.counters["csel_hits"] += 1
        return True

    def phase_fill(self, scalar, n_live: int, enc) -> np.ndarray | None:
        """Materialize a doubling phase table natively, or None.

        ``enc`` is the part list ``(level, kind, pos_a, pos_b, vals,
        nz)`` in fold order (see :func:`repro.sim.diag.chunk_phase`).
        None sends the caller to the planar numpy doubling path.
        """
        if not enc or not self.native(1 << n_live):
            return None
        n = len(enc)
        lvl = np.empty(n, dtype=np.int64)
        kind = np.empty(n, dtype=np.int64)
        pa = np.empty(n, dtype=np.int64)
        pb = np.empty(n, dtype=np.int64)
        nzm = np.empty(n, dtype=np.int64)
        vals = np.zeros(8 * n, dtype=np.float64)
        for j, (p, kd, a, b, v, nz) in enumerate(enc):
            lvl[j] = p
            kind[j] = kd
            pa[j] = a
            pb[j] = b
            mask = 0
            for i in nz:
                mask |= 1 << i
                c = complex(v[i])
                vals[8 * j + 2 * i] = c.real
                vals[8 * j + 2 * i + 1] = c.imag
            nzm[j] = mask
        out = np.empty(1 << n_live, dtype=np.complex128)
        s = complex(scalar)
        self._provider.phase(
            out.view(np.float64), n_live, lvl, kind, pa, pb, nzm, vals, s.real, s.imag
        )
        self.counters["jit_hits"] += 1
        return out


#: Shared numpy-mode dispatch for callers without an engine-owned one
#: (direct :func:`repro.sim.parallel.apply_run` calls in tests).
DEFAULT_KERNELS = KernelDispatch("numpy")
