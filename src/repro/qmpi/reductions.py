"""Reversible reduction operations for QMPI collectives (§4.5).

A :class:`QuantumOp` updates an accumulator register from a source
register *reversibly* — QMPI_Reduce "only accepts reversible operations",
and the inverse is required for QMPI_Unreduce. Two operations ship:

* :data:`PARITY` — per-qubit XOR (the paper's QMPI_PARITY example),
  implemented with transversal CNOTs.
* :data:`SUM` — modular integer addition on little-endian registers,
  implemented with the Cuccaro ripple-carry adder (Toffoli-based), whose
  exact inverse is modular subtraction.
"""

from __future__ import annotations

from .qubit import Qureg, as_qureg

__all__ = ["QuantumOp", "PARITY", "SUM"]


class QuantumOp:
    """A named reversible accumulator update ``acc <- op(acc, src)``.

    ``apply``/``unapply`` receive the per-rank QmpiComm (for rank-checked
    gate access) and two equal-length registers. ``src`` is always
    preserved.
    """

    def __init__(self, name: str, apply_fn, unapply_fn):
        self.name = name
        self._apply = apply_fn
        self._unapply = unapply_fn

    def apply(self, qc, src: Qureg, acc: Qureg) -> None:
        src, acc = as_qureg(src), as_qureg(acc)
        if len(src) != len(acc):
            raise ValueError(f"{self.name}: register sizes differ")
        self._apply(qc, src, acc)

    def unapply(self, qc, src: Qureg, acc: Qureg) -> None:
        src, acc = as_qureg(src), as_qureg(acc)
        if len(src) != len(acc):
            raise ValueError(f"{self.name}: register sizes differ")
        self._unapply(qc, src, acc)

    def __repr__(self) -> str:
        return f"<QuantumOp {self.name}>"


def _parity_apply(qc, src: Qureg, acc: Qureg) -> None:
    for s, a in zip(src, acc):
        qc.backend.cnot(qc.rank, s, a)


#: Per-qubit XOR; self-inverse.
PARITY = QuantumOp("PARITY", _parity_apply, _parity_apply)


def _sum_apply(qc, src: Qureg, acc: Qureg) -> None:
    _cuccaro(qc, src, acc, inverse=False)


def _sum_unapply(qc, src: Qureg, acc: Qureg) -> None:
    _cuccaro(qc, src, acc, inverse=True)


def _cuccaro(qc, a: Qureg, b: Qureg, inverse: bool) -> None:
    """``b <- (b ± a) mod 2**n`` with one local ancilla.

    Same MAJ/UMA network as :mod:`repro.sim.arith`, expressed through the
    rank-checked backend so it is a legal *local* circuit (all qubits must
    be on the calling rank — reductions fan remote data in first).
    """
    n = len(a)
    if n == 0:
        return
    (anc,) = qc.backend.alloc(qc.rank, 1)
    carries = [anc] + list(a[:-1])
    rank = qc.rank
    be = qc.backend

    def maj(c, bq, aq):
        be.cnot(rank, aq, bq)
        be.cnot(rank, aq, c)
        be.toffoli(rank, c, bq, aq)

    def maj_inv(c, bq, aq):
        be.toffoli(rank, c, bq, aq)
        be.cnot(rank, aq, c)
        be.cnot(rank, aq, bq)

    def uma(c, bq, aq):
        be.toffoli(rank, c, bq, aq)
        be.cnot(rank, aq, c)
        be.cnot(rank, c, bq)

    def uma_inv(c, bq, aq):
        be.cnot(rank, c, bq)
        be.cnot(rank, aq, c)
        be.toffoli(rank, c, bq, aq)

    if not inverse:
        for i in range(n):
            maj(carries[i], b[i], a[i])
        for i in reversed(range(n)):
            uma(carries[i], b[i], a[i])
    else:
        for i in range(n):
            uma_inv(carries[i], b[i], a[i])
        for i in reversed(range(n)):
            maj_inv(carries[i], b[i], a[i])
    be.free(rank, anc)


#: Modular sum over little-endian registers; inverse = modular subtraction.
SUM = QuantumOp("SUM", _sum_apply, _sum_unapply)
