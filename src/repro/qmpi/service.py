"""QMPI over process transports: the parent-side quantum node service.

The paper's prototype keeps one shared state vector and has every rank
forward quantum operations to it (§6). With ``transport="inproc"`` that
forwarding is a method call on a shared object; with ``transport="mp"``
the ranks live in separate OS processes, so this module makes the
forwarding literal: the backend, the EPR rendezvous table, and the
resource ledger stay in the *parent* process as a
:class:`QmpiServiceHost`, and each rank process drives them through
:class:`BackendProxy` / :class:`EprProxy` over the transport's service
plane (:class:`repro.mpi.mp.RpcClient`).

Division of labor:

* **gates, measurement, allocation** — synchronous RPCs; the parent
  router executes them in arrival order, so per-rank program order is
  preserved exactly as the backend lock preserves it in-process.
* **EPR rendezvous** — ``iprepare`` registers in the parent's real
  :class:`~repro.qmpi.epr.EprService` and returns immediately; when the
  peer shows up, the match is pushed to both ranks as a ``notify`` frame
  and each rank runs its protocol continuation *locally* (CNOT, parity
  measurement, classical fixup bits — each step an RPC / fabric message
  of its own). Blocking ``prepare`` is ``iprepare().wait()`` with abort
  polling, mirroring ``EprService._await``.
* **resource accounting** — ledger scopes are keyed by thread identity,
  so each rank keeps a local :class:`~repro.qmpi.resource.Ledger` for
  row attribution and merges it into the parent's at teardown
  (``ledger_merge``); EPR pairs are recorded by the parent-side service
  at entanglement time, exactly once.

Nothing in :mod:`repro.sim` changes: the engines see the same
``apply_ops`` batches from the same single process as before.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Sequence

from ..mpi.errors import MpiAbort, TransportError
from ..mpi.runtime import run_spmd
from . import ops as _ops
from .backend import QuantumBackend
from .epr import EprService
from .ops import GateDef, Op
from .resource import Ledger

__all__ = ["QmpiServiceHost", "BackendProxy", "EprProxy", "execute_mp"]


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class QmpiServiceHost:
    """Parent-side RPC endpoint: backend + EPR service + ledger.

    ``handle`` runs on the transport's router thread, so every method
    must return promptly — nothing here blocks on another rank (EPR
    matching is continuation-based for exactly this reason).
    """

    #: Backend methods rank processes may invoke. Rank-scoped methods
    #: receive the rank explicitly from the proxy; the whitelist keeps
    #: parent-only surfaces (``close``, ``begin_shots``, ``reseed``,
    #: ``counts``) out of reach of rank code.
    BACKEND_METHODS = frozenset(
        {
            "alloc",
            "free",
            "apply_ops",
            "apply",
            "measure",
            "measure_and_release",
            "apply_pauli_if",
            "prob_one",
            "statevector",
            "owner",
            "owned_by",
            "transfer",
            "qubit_ids",
        }
    )

    def __init__(self, backend: QuantumBackend, epr: EprService, ledger: Ledger):
        self.backend = backend
        self.epr = epr
        self.ledger = ledger
        self._notify: Callable[[int, Any], None] | None = None

    def bind_notify(self, notify: Callable[[int, Any], None]) -> None:
        """Transport hook: receive the parent->rank push function."""
        self._notify = notify

    def handle(self, rank: int, method: str, *args):
        """Dispatch one rank RPC (router thread; must not block)."""
        if method == "backend":
            name, rest = args[0], args[1:]
            if name == "num_qubits":
                return self.backend.num_qubits
            if name not in self.BACKEND_METHODS:
                raise TransportError(f"backend method {name!r} not remotable")
            return getattr(self.backend, name)(*rest)
        if method == "epr_iprepare":
            token, qubit, peer, tag, context, direction = args
            notify = self._notify

            def on_match(rank=rank, token=token):
                if notify is not None:
                    notify(rank, ("epr", token))

            self.epr.iprepare(
                rank, qubit, peer, tag, context, direction, on_match=on_match
            )
            return None
        if method == "epr_consume":
            self.epr.consume(rank)
            return None
        if method == "epr_buffered":
            return self.epr.buffered(rank)
        if method == "ledger_merge":
            self._merge_ledger(*args)
            return None
        raise TransportError(f"unknown QMPI service RPC {method!r}")

    def _merge_ledger(self, totals: tuple, rows: list) -> None:
        from .resource import OpRow

        epr_pairs, bits, messages, _ = totals
        with self.ledger._lock:
            # EPR pairs were recorded parent-side at entanglement time;
            # rank ledgers only ever contribute classical traffic.
            self.ledger.epr_pairs += epr_pairs
            self.ledger.classical_bits += bits
            self.ledger.classical_messages += messages
            for name, row_epr, row_bits, calls in rows:
                row = self.ledger.rows.setdefault(name, OpRow(name))
                row.epr_pairs += row_epr
                row.classical_bits += row_bits
                row.calls += calls


# ----------------------------------------------------------------------
# child side: proxies
# ----------------------------------------------------------------------
class BackendProxy:
    """Rank-process stand-in for the parent's :class:`QuantumBackend`.

    Same call surface (the :data:`~repro.qmpi.ops.GATESET` shims are
    installed on this class too), every method one synchronous RPC.
    Large results — ``statevector`` above the transport's shm threshold —
    come back through the shared-memory data plane.
    """

    def __init__(self, rpc):
        self._rpc = rpc

    def _call(self, name, *args):
        return self._rpc.call("backend", name, *args)

    def alloc(self, rank, n=1):
        return self._call("alloc", rank, n)

    def free(self, rank, qubits):
        self._call("free", rank, list(qubits) if not isinstance(qubits, int) else qubits)

    def apply_ops(self, rank, ops):
        ops = tuple(ops)
        if ops:
            self._call("apply_ops", rank, ops)

    def apply(self, rank, u, *qubits):
        self._call("apply", rank, u, *qubits)

    def measure(self, rank, q):
        return self._call("measure", rank, q)

    def measure_and_release(self, rank, q):
        return self._call("measure_and_release", rank, q)

    def apply_pauli_if(self, rank, cond, pauli, q):
        self._call("apply_pauli_if", rank, cond, pauli, q)

    def prob_one(self, rank, q):
        return self._call("prob_one", rank, q)

    def statevector(self, qubits=None):
        return self._call("statevector", qubits)

    def owner(self, qubit):
        return self._call("owner", qubit)

    def owned_by(self, rank):
        return self._call("owned_by", rank)

    def transfer(self, qubit, new_rank):
        self._call("transfer", qubit, new_rank)

    def qubit_ids(self):
        return self._call("qubit_ids")

    @property
    def num_qubits(self):
        return self._call("num_qubits")


def _proxy_gate_shim(gd: GateDef):
    n_args = gd.n_qubits + gd.n_params

    def shim(self, rank, *args):
        if len(args) != n_args:
            raise TypeError(
                f"{gd.name}(rank, {gd.signature()}) takes {n_args} operands, "
                f"got {len(args)}"
            )
        self.apply_ops(rank, (Op(gd.name, args[: gd.n_qubits], args[gd.n_qubits :]),))

    shim.__name__ = gd.name
    shim.__qualname__ = f"BackendProxy.{gd.name}"
    shim.__doc__ = (
        f"``{gd.name}(rank, {gd.signature()})`` — forwarded to the parent "
        f"backend as a one-op RPC batch."
    )
    shim._gateset_shim = True
    return shim


def _install_proxy_shim(gd: GateDef) -> None:
    existing = getattr(BackendProxy, gd.name, None)
    if existing is not None and not getattr(existing, "_gateset_shim", False):
        raise ValueError(f"gate name {gd.name!r} would shadow BackendProxy.{gd.name}")
    setattr(BackendProxy, gd.name, _proxy_gate_shim(gd))


_ops.bind_gateset(_install_proxy_shim)


class MpEprRequest:
    """Child-side handle of one pending EPR rendezvous."""

    def __init__(self, proxy: "EprProxy", token: int):
        self._proxy = proxy
        self._token = token
        self._done = threading.Event()
        self._error: BaseException | None = None

    def wait(self) -> None:
        while not self._done.wait(timeout=0.05):
            abort = self._proxy.abort
            if abort is not None and abort.is_set():
                raise MpiAbort("job aborted while waiting for EPR rendezvous")
        if self._error is not None:
            raise self._error

    def test(self) -> bool:
        return self._done.is_set()


class EprProxy:
    """Rank-process stand-in for the parent's :class:`EprService`.

    ``iprepare`` registers the waiter locally *first*, then posts the
    rendezvous RPC — the match notification can arrive before the RPC
    reply (the peer may already be waiting), and the waiter must exist by
    then. Match continuations run on the RPC client's notify-executor
    thread in match order; the completion event fires only after the
    continuation finished, matching the in-process contract.
    """

    def __init__(self, rpc, abort: threading.Event | None = None):
        self._rpc = rpc
        self.abort = abort
        self._tokens = itertools.count()
        self._waiters: dict[int, tuple[MpEprRequest, Any]] = {}
        self._lock = threading.Lock()
        rpc.set_notify_handler(self._on_notify)

    def iprepare(
        self, rank, qubit, peer, tag=0, context=0, direction=0, on_match=None
    ) -> MpEprRequest:
        token = next(self._tokens)
        req = MpEprRequest(self, token)
        with self._lock:
            self._waiters[token] = (req, on_match)
        try:
            self._rpc.call("epr_iprepare", token, qubit, peer, tag, context, direction)
        except BaseException:
            with self._lock:
                self._waiters.pop(token, None)
            raise
        return req

    def prepare(self, rank, qubit, peer, tag=0, context=0, direction=0) -> None:
        self.iprepare(rank, qubit, peer, tag, context, direction).wait()

    def consume(self, rank) -> None:
        self._rpc.call("epr_consume")

    def buffered(self, rank) -> int:
        return self._rpc.call("epr_buffered")

    def _on_notify(self, message) -> None:
        kind, token = message
        if kind != "epr":
            return
        with self._lock:
            entry = self._waiters.pop(token, None)
        if entry is None:
            return
        req, callback = entry
        if callback is not None:
            try:
                callback()
            except BaseException as exc:  # noqa: BLE001 - surfaces at wait()
                req._error = exc
        req._done.set()


# ----------------------------------------------------------------------
# execution glue
# ----------------------------------------------------------------------
class _MpQmpiBody:
    """Picklable SPMD body: rebuild the QMPI endpoint from proxies.

    Instances cross the process boundary, so ``fn`` must itself be
    picklable (module-level); state is limited to plain fields.
    """

    def __init__(self, fn: Callable[..., Any], fusion):
        self.fn = fn
        self.fusion = fusion

    def __call__(self, comm, *args, **kwargs):
        from .api import QmpiComm  # runtime import: api imports us lazily

        rpc = comm.fabric.rpc
        backend = BackendProxy(rpc)
        epr = EprProxy(rpc, abort=comm.fabric.abort)
        ledger = Ledger()
        qc = QmpiComm(comm, backend, epr, ledger, fusion=self.fusion)
        try:
            return self.fn(qc, *args, **kwargs)
        finally:
            qc.flush_ops()
            rows = [
                (row.name, row.epr_pairs, row.classical_bits, row.calls)
                for row in ledger.rows.values()
            ]
            totals = (
                ledger.epr_pairs,
                ledger.classical_bits,
                ledger.classical_messages,
                None,
            )
            rpc.call("ledger_merge", totals, rows)


def execute_mp(
    backend: QuantumBackend,
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any],
    kwargs: dict | None,
    s_limit: int | None,
    timeout: float,
    fusion,
    transport,
) -> tuple[list, Ledger]:
    """Run ``fn`` SPMD over a process transport with a parent-held backend.

    The process-transport counterpart of ``repro.qmpi.api._execute``:
    same contract (results in rank order, shared ledger), but the rank
    endpoints talk to the backend through the service plane.
    """
    ledger = Ledger()
    epr = EprService(backend, ledger, s_limit=s_limit)
    host = QmpiServiceHost(backend, epr, ledger)
    results = run_spmd(
        n_ranks,
        _MpQmpiBody(fn, fusion),
        args,
        kwargs,
        timeout,
        transport=transport,
        service=host,
    )
    return results, ledger
