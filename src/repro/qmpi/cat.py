"""Cat-state preparation in constant quantum depth (Fig. 4, §7.1).

``|cat(n)> = (|0...0> + |1...1>)/sqrt(2)`` across ``n`` nodes is built by

1. establishing EPR pairs along the edges of a spanning tree of the
   nodes — the only quantum communication, constant rounds;
2. a local parity measurement on every internal node, merging its EPR
   halves into the growing GHZ state;
3. a classical prefix computation (MPI_Exscan for the chain of the paper;
   a gather+tree walk for general trees) telling each node whether to
   apply the Pauli-X fixup.

The result: every rank owns one qubit of the shared cat state. Quantum
time is 2E + D_M + D_F in SENDQ terms regardless of n (§7.1); classical
time is O(log n).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..mpi import reduce_ops

__all__ = ["cat_state_chain", "cat_state_tree", "uncat", "CatHandle"]


@dataclass
class CatHandle:
    """Per-rank record of a prepared cat state (needed for uncat)."""

    qubit: int
    root: int
    tag: int


def cat_state_chain(qc, qubit: int, tag: int = 0) -> CatHandle:
    """Prepare |cat(N)> with one qubit per rank, chained rank r — r+1.

    ``qubit`` must be a fresh |0> qubit on every rank; on return it is this
    rank's share of the cat state. This is the paper's Fig. 4 construction
    with the fixup parities computed by a classical exscan.
    """
    qc.flush_ops()
    rank, size = qc.rank, qc.size
    with qc.ledger.scope("cat_chain"):
        if size == 1:
            # Degenerate cat(1) = |+>.
            qc.backend.h(rank, qubit)
            return CatHandle(qubit, 0, tag)
        # EPR halves: 'qubit' doubles as the half toward the left neighbour
        # (or the root's share); 'right' is the half toward rank+1.
        right = None
        if rank < size - 1:
            if rank == 0:
                # Root: its cat qubit IS the left half of the first pair.
                qc.epr.prepare(rank, qubit, rank + 1, tag, qc.context, _cat_dir(rank))
            else:
                (right,) = qc.backend.alloc(rank, 1)
                qc.epr.prepare(rank, right, rank + 1, tag, qc.context, _cat_dir(rank))
        if rank > 0:
            qc.epr.prepare(rank, qubit, rank - 1, tag, qc.context, _cat_dir(rank - 1))
        # Internal nodes merge: CNOT(left half -> right half), measure the
        # right half. Outcome 1 means everything right of the cut needs X.
        # The merges act on disjoint qubits and commute, but they are run
        # in rank order so the simulator consumes measurement randomness
        # in one fixed global sequence: like rank-ordered allocation, this
        # is simulator scheduling, not protocol structure — the fixup is
        # outcome-independent and the modeled quantum time stays constant.
        m = 0
        for r in range(1, size - 1):
            if rank == r:
                qc.backend.cnot(rank, qubit, right)
                m = qc.backend.measure_and_release(rank, right)
                qc.epr.consume(rank)
            qc.barrier()
        # The kept half ('qubit') leaves the EPR buffer: it is cat data now.
        qc.epr.consume(rank)
        # Classical fixup: X on rank k iff XOR of merge outcomes at ranks
        # < k is 1 (exscan, O(log N) — Sanders & Träff).
        prefix = qc.comm.exscan(m, reduce_ops.BXOR)
        qc.ledger.record_classical(1)  # each rank contributes one bit
        qc.backend.apply_pauli_if(rank, 0 if prefix is None else prefix, "X", qubit)
        return CatHandle(qubit, 0, tag)


def _cat_dir(left_rank: int) -> int:
    # Distinct direction namespace for cat-edge EPR streams.
    return 10_000 + left_rank


def cat_state_tree(qc, qubit: int, graph: nx.Graph | None = None, root: int = 0, tag: int = 0) -> CatHandle:
    """Prepare |cat(N)> along a spanning tree of ``graph`` (default: a
    balanced binary tree over the ranks).

    Generalizes the chain: each internal node merges one EPR half per
    child. The fixup parity for node k is the XOR of merge outcomes on the
    path from the root to k, computed at the root (gather + DFS) and
    scattered back — O(log n) quantum depth is preserved since the fixup
    is purely classical.
    """
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope("cat_tree"):
        if size == 1:
            qc.backend.h(rank, qubit)
            return CatHandle(qubit, root, tag)
        if graph is None:
            # Binary-heap tree over ranks: spans 0..size-1, max degree 3,
            # so the EPR rounds (and hence quantum depth) stay constant.
            graph = nx.Graph()
            graph.add_nodes_from(range(size))
            graph.add_edges_from(((i - 1) // 2, i) for i in range(1, size))
        tree = nx.bfs_tree(graph, root)
        if tree.number_of_nodes() != size:
            raise ValueError("graph does not span all ranks")
        parent = {c: p for p, c in tree.edges()}
        children = {n: list(tree.successors(n)) for n in tree.nodes()}

        # EPR half toward the parent lives in 'qubit' (it becomes the cat
        # share); one extra half per child.
        child_halves: dict[int, int] = {}
        if rank != root:
            qc.epr.prepare(
                rank, qubit, parent[rank], tag, qc.context, _tree_dir(parent[rank], rank)
            )
        else:
            # Root's cat share starts as the half of its first child edge.
            pass
        my_children = children.get(rank, [])
        first_child_half_is_qubit = rank == root
        for i, ch in enumerate(my_children):
            if first_child_half_is_qubit and i == 0:
                half = qubit
            else:
                (half,) = qc.backend.alloc(rank, 1)
            child_halves[ch] = half
            qc.epr.prepare(rank, half, ch, tag, qc.context, _tree_dir(rank, ch))

        # Merge all halves into the share qubit; measure the rest.
        outcomes: dict[int, int] = {}
        for ch, half in child_halves.items():
            if half == qubit:
                continue
            qc.backend.cnot(rank, qubit, half)
            outcomes[ch] = qc.backend.measure_and_release(rank, half)
            qc.epr.consume(rank)
        # The kept half ('qubit') is cat data now; every other prepared
        # half was consumed by its merge measurement above.
        qc.epr.consume(rank)

        # Fixup: gather per-edge outcomes at root, DFS accumulating parity.
        all_outcomes = qc.comm.gather(outcomes, root=root)
        qc.ledger.record_classical(max(1, len(outcomes)))
        if rank == root:
            fix = [0] * size
            merged: dict[int, int] = {}
            for d in all_outcomes:
                merged.update(d)

            def dfs(node: int, acc: int) -> None:
                fix[node] = acc
                for ch in children.get(node, []):
                    # A merge outcome of 1 on edge (node, ch) flips the
                    # subtree rooted at ch.
                    dfs(ch, acc ^ merged.get(ch, 0))

            dfs(root, 0)
        else:
            fix = None
        myfix = qc.comm.scatter(fix, root=root)
        qc.ledger.record_classical(1)
        qc.backend.apply_pauli_if(rank, myfix, "X", qubit)
        return CatHandle(qubit, root, tag)


def _tree_dir(parent: int, child: int) -> int:
    return 20_000 + parent * 4096 + child


def uncat(qc, handle: CatHandle) -> None:
    """Disassemble a cat state, leaving |0...0>; root keeps nothing.

    Every non-root rank measures its share in the X basis (1 classical bit
    each, no EPR pairs); the root applies Z^(xor of outcomes) and measures
    its own share in the Z basis... — actually the root *keeps* its share
    collapsed to a |+>-like state only if untouched. For the collective
    use cases the root's share was already consumed; here we uncompute the
    full cat to |0> everywhere for symmetry with tests.
    """
    rank = qc.rank
    qc.flush_ops()
    with qc.ledger.scope("uncat"):
        if qc.size == 1:
            qc.backend.h(rank, handle.qubit)
            qc.backend.free(rank, handle.qubit)
            return
        if rank != handle.root:
            qc.backend.h(rank, handle.qubit)
            m = qc.backend.measure_and_release(rank, handle.qubit)
        else:
            m = 0
        total = qc.comm.reduce(m, reduce_ops.BXOR, root=handle.root)
        qc.ledger.record_classical(1)
        if rank == handle.root:
            qc.backend.apply_pauli_if(rank, total, "Z", handle.qubit)
            # Root share is now |+>; return it to |0>.
            qc.backend.h(rank, handle.qubit)
            qc.backend.free(rank, handle.qubit)
