"""Concurrent QMPI job execution: ``qmpi_submit`` / :class:`JobRunner`.

:func:`~repro.qmpi.api.qmpi_run` is synchronous — one virtual quantum
machine, run to completion. This module multiplexes many *independent*
programs (parameter sweeps, variational iterations, batched experiment
arms) over a pool of worker threads, each driving its own backend:

>>> from repro.qmpi import qmpi_submit
>>> futs = [qmpi_submit(prog, n_ranks=2, shots=256, args=(theta,))
...         for theta in grid]                          # doctest: +SKIP
>>> histograms = [f.counts() for f in futs]             # doctest: +SKIP

Scheduling model
----------------
* Every job gets its **own backend instance** — jobs share nothing
  quantum, so they run genuinely concurrently (each job still runs its
  program SPMD over ``n_ranks`` internal threads, exactly like
  ``qmpi_run``).
* Worker threads **recycle** backends between jobs when the spec matches
  (same name, ranks, options) and the previous job released all its
  qubits; otherwise the used backend is closed and a fresh one built.
  Prebuilt backend instances are never cached (the caller owns them).
* Reproducibility: job ``k`` of a runner with ``base_seed=s`` always
  sees the RNG stream ``SeedSequence(entropy=s, spawn_key=(k,))``,
  independent of scheduling order or which thread picks the job up.
  Re-running the same submission sequence reproduces every histogram.

:func:`qmpi_submit` uses a lazily created module-level default runner
(8 workers); pass ``runner=`` or use :class:`JobRunner` directly (it is
a context manager) to control pool size, base seed, and shutdown.
"""

from __future__ import annotations

import itertools
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from .api import _execute
from .backend import QuantumBackend, make_backend

__all__ = ["JobFuture", "JobRunner", "qmpi_submit", "default_runner"]


class JobFuture:
    """Handle to a submitted job.

    Thin wrapper over a :class:`concurrent.futures.Future` whose payload
    is ``(results, counts, ledger)``; exposes them with blocking
    accessors mirroring the ``qmpi_run`` world object.
    """

    def __init__(self, job_id: int, seed: int, future):
        #: Monotonic id of this job within its runner (also its seed key).
        self.job_id = job_id
        #: The derived RNG seed this job's backend was (re)seeded with.
        self.seed = seed
        self._future = future

    def done(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> list:
        """Block for the per-rank return values (like ``world.results``)."""
        return self._future.result(timeout)[0]

    def counts(self, timeout: float | None = None) -> Counter:
        """Block for the measurement histogram of a shot-batched job."""
        counts = self._future.result(timeout)[1]
        if counts is None:
            raise RuntimeError(
                "counts requires a shot-batched job: qmpi_submit(..., shots=N)"
            )
        return counts

    def ledger(self, timeout: float | None = None):
        """Block for the job's resource ledger."""
        return self._future.result(timeout)[2]

    def exception(self, timeout: float | None = None):
        """The exception raised by the job, if any (blocks until done)."""
        return self._future.exception(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"<JobFuture #{self.job_id} {state}>"


class JobRunner:
    """Thread pool running independent QMPI programs concurrently.

    Parameters
    ----------
    max_workers:
        Number of jobs in flight at once (each job additionally spawns
        its own ``n_ranks`` SPMD threads while it runs).
    base_seed:
        Entropy root for the per-job seed streams; two runners with the
        same ``base_seed`` and submission sequence produce identical
        per-job RNG streams regardless of thread scheduling.
    """

    def __init__(self, max_workers: int = 8, base_seed: int = 0):
        self.base_seed = int(base_seed)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="qmpi-job"
        )
        self._ids = itertools.count()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._owned: list[QuantumBackend] = []
        self._closed = False

    # ------------------------------------------------------------------
    def job_seed(self, job_id: int) -> int:
        """The deterministic RNG seed used for job ``job_id``."""
        ss = np.random.SeedSequence(entropy=self.base_seed, spawn_key=(job_id,))
        return int(ss.generate_state(1, dtype=np.uint64)[0])

    def submit(
        self,
        fn: Callable[..., Any],
        n_ranks: int = 1,
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        shots: int | None = None,
        s_limit: int | None = None,
        timeout: float = 120.0,
        backend: "str | type[QuantumBackend] | QuantumBackend" = "shared",
        fusion="auto",
        transport="inproc",
        **backend_kw,
    ) -> JobFuture:
        """Queue ``fn`` for execution; returns immediately.

        ``transport="mp"`` places the job's ranks in spawned OS
        processes (the backend stays worker-local behind a service
        endpoint); see :func:`repro.qmpi.api.qmpi_run`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("JobRunner has been shut down")
            job_id = next(self._ids)
        seed = self.job_seed(job_id)
        future = self._pool.submit(
            self._run_job,
            seed,
            fn,
            n_ranks,
            args,
            kwargs,
            shots,
            s_limit,
            timeout,
            backend,
            fusion,
            transport,
            backend_kw,
        )
        return JobFuture(job_id, seed, future)

    # ------------------------------------------------------------------
    def _cache_key(self, backend, n_ranks, shots, transport, backend_kw):
        # Only registry-name specs are recyclable; shots-mode engines are
        # kept separate from plain ones (an engine never leaves shots
        # mode once entered), and the *exact* shot count plus the
        # amplitude dtype are part of the key: a recycled backend
        # carries its schedule cache, and replaying a schedule compiled
        # for a different branch-axis state or precision would be a
        # layout mismatch. Transport is part of the key out of caution,
        # though the backend lives worker-local either way.
        if not isinstance(backend, str) or not isinstance(transport, str):
            return None
        try:
            key = (
                backend,
                n_ranks,
                int(shots) if shots is not None else None,
                str(backend_kw.get("dtype", "complex128")),
                transport,
                tuple(sorted(backend_kw.items())),
            )
            hash(key)
        except TypeError:  # unsortable or unhashable option value
            return None
        return key

    def _run_job(
        self,
        seed,
        fn,
        n_ranks,
        args,
        kwargs,
        shots,
        s_limit,
        timeout,
        backend_spec,
        fusion,
        transport,
        backend_kw,
    ):
        cache = getattr(self._local, "cache", None)
        if cache is None:
            cache = self._local.cache = {}
        key = self._cache_key(backend_spec, n_ranks, shots, transport, backend_kw)
        prebuilt = isinstance(backend_spec, QuantumBackend)
        be = cache.pop(key, None) if key is not None else None
        if be is not None:
            be.reseed(seed)
        elif prebuilt:
            be = backend_spec
            be.reseed(seed)
        else:
            be = make_backend(backend_spec, seed=seed, n_ranks=n_ranks, **backend_kw)
            with self._lock:
                self._owned.append(be)
        recycle = False
        try:
            if shots is not None:
                be.begin_shots(shots)
            results, ledger = _execute(
                be, n_ranks, fn, args, kwargs, s_limit, timeout, fusion, transport
            )
            counts = be.counts() if shots is not None else None
            recycle = key is not None and be.num_qubits == 0
            return results, counts, ledger
        finally:
            if recycle:
                cache[key] = be
            elif not prebuilt:
                with self._lock:
                    if be in self._owned:
                        self._owned.remove(be)
                be.close()

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Finish queued jobs (if ``wait``) and release all backends."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait)
        with self._lock:
            owned, self._owned = self._owned, []
        for be in owned:
            be.close()

    def __enter__(self) -> "JobRunner":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown()
        return False


# ----------------------------------------------------------------------
_default_runner: JobRunner | None = None
_default_lock = threading.Lock()


def default_runner() -> JobRunner:
    """The lazily created module-level runner ``qmpi_submit`` uses."""
    global _default_runner
    with _default_lock:
        if _default_runner is None or _default_runner._closed:
            _default_runner = JobRunner()
        return _default_runner


def qmpi_submit(
    fn: Callable[..., Any],
    n_ranks: int = 1,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    shots: int | None = None,
    s_limit: int | None = None,
    timeout: float = 120.0,
    backend: "str | type[QuantumBackend] | QuantumBackend" = "shared",
    fusion="auto",
    transport="inproc",
    runner: JobRunner | None = None,
    **backend_kw,
) -> JobFuture:
    """Submit ``fn(qcomm, *args, **kwargs)`` as a concurrent job.

    The asynchronous counterpart of :func:`~repro.qmpi.api.qmpi_run`:
    same program model and parameters (``shots=`` included), but the call
    returns a :class:`JobFuture` immediately and the program runs on the
    ``runner`` (default: a shared 8-worker module-level pool). Seeds are
    assigned per job by the runner — see :class:`JobRunner`. Backend
    options (``kernels=``, ``workers=``, ...) pass through ``backend_kw``
    and participate in the runner's backend-reuse key.
    """
    r = runner if runner is not None else default_runner()
    return r.submit(
        fn,
        n_ranks=n_ranks,
        args=args,
        kwargs=kwargs,
        shots=shots,
        s_limit=s_limit,
        timeout=timeout,
        backend=backend,
        fusion=fusion,
        transport=transport,
        **backend_kw,
    )
