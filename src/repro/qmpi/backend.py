"""Shared quantum backend with rank-0 semantics.

The paper's prototype (§6): "To ensure that the state vector faithfully
represents the quantum state of the distributed quantum computer at any
point throughout the computation, all ranks forward quantum operations to
rank 0, which then applies the operation to the state vector."

Here the forwarding is a mutex: all ranks call into one lock-protected
:class:`~repro.sim.statevector.StateVector`. On top of the raw engine the
backend enforces *locality*: a rank may only touch qubits it owns, so any
cross-node interaction must go through the EPR-based QMPI protocols —
exactly the discipline real distributed hardware imposes.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from ..sim.statevector import SimulationError, StateVector
from .qubit import Qureg

__all__ = ["SharedBackend", "LocalityError"]


class LocalityError(SimulationError):
    """A rank attempted to operate on a qubit it does not own."""


class SharedBackend:
    """Thread-safe global state vector with per-rank qubit ownership."""

    def __init__(self, seed=None, enforce_locality: bool = True):
        self._sv = StateVector(seed=seed)
        self._lock = threading.RLock()
        self._owner: dict[int, int] = {}
        self.enforce_locality = enforce_locality

    # ------------------------------------------------------------------
    # allocation & ownership
    # ------------------------------------------------------------------
    def alloc(self, rank: int, n: int = 1) -> Qureg:
        """Allocate ``n`` fresh |0> qubits owned by ``rank``."""
        with self._lock:
            ids = self._sv.alloc(n)
            for q in ids:
                self._owner[q] = rank
            return Qureg(ids)

    def free(self, rank: int, qubits: Sequence[int] | int) -> None:
        """Release qubits (must be disentangled |0>, as in QMPI_Free_qmem)."""
        if isinstance(qubits, int):
            qubits = [qubits]
        with self._lock:
            for q in qubits:
                self._check_owner(rank, q)
                self._sv.release(q)
                del self._owner[q]

    def owner(self, qubit: int) -> int:
        with self._lock:
            try:
                return self._owner[qubit]
            except KeyError:
                raise SimulationError(f"unknown qubit {qubit}") from None

    def owned_by(self, rank: int) -> Qureg:
        with self._lock:
            return Qureg(sorted(q for q, r in self._owner.items() if r == rank))

    def transfer(self, qubit: int, new_rank: int) -> None:
        """Move ownership (used by *_move teleportation protocols)."""
        with self._lock:
            if qubit not in self._owner:
                raise SimulationError(f"unknown qubit {qubit}")
            self._owner[qubit] = new_rank

    def _check_owner(self, rank: int, *qubits: int) -> None:
        if not self.enforce_locality:
            return
        for q in qubits:
            actual = self._owner.get(q)
            if actual is None:
                raise SimulationError(f"unknown qubit {q}")
            if actual != rank:
                raise LocalityError(
                    f"rank {rank} touched qubit {q} owned by rank {actual}; "
                    "remote interaction requires QMPI communication"
                )

    # ------------------------------------------------------------------
    # gates (all rank-checked and serialized)
    # ------------------------------------------------------------------
    def apply(self, rank: int, u: np.ndarray, *qubits: int) -> None:
        with self._lock:
            self._check_owner(rank, *qubits)
            self._sv.apply(u, *qubits)

    def h(self, rank: int, q: int) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.h(q)

    def x(self, rank: int, q: int) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.x(q)

    def y(self, rank: int, q: int) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.y(q)

    def z(self, rank: int, q: int) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.z(q)

    def s(self, rank: int, q: int) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.s(q)

    def sdg(self, rank: int, q: int) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.sdg(q)

    def t(self, rank: int, q: int) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.t(q)

    def rx(self, rank: int, q: int, theta: float) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.rx(q, theta)

    def ry(self, rank: int, q: int, theta: float) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.ry(q, theta)

    def rz(self, rank: int, q: int, theta: float) -> None:
        with self._lock:
            self._check_owner(rank, q)
            self._sv.rz(q, theta)

    def cnot(self, rank: int, c: int, t: int) -> None:
        with self._lock:
            self._check_owner(rank, c, t)
            self._sv.cnot(c, t)

    def cz(self, rank: int, c: int, t: int) -> None:
        with self._lock:
            self._check_owner(rank, c, t)
            self._sv.cz(c, t)

    def toffoli(self, rank: int, c1: int, c2: int, t: int) -> None:
        with self._lock:
            self._check_owner(rank, c1, c2, t)
            self._sv.toffoli(c1, c2, t)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def measure(self, rank: int, q: int) -> int:
        with self._lock:
            self._check_owner(rank, q)
            return self._sv.measure(q)

    def measure_and_release(self, rank: int, q: int) -> int:
        with self._lock:
            self._check_owner(rank, q)
            bit = self._sv.measure_and_release(q)
            del self._owner[q]
            return bit

    def prob_one(self, rank: int, q: int) -> float:
        with self._lock:
            self._check_owner(rank, q)
            return self._sv.prob_one(q)

    # ------------------------------------------------------------------
    # internal / diagnostic access (not rank-scoped)
    # ------------------------------------------------------------------
    def entangle_pair(self, qa: int, qb: int) -> None:
        """|00> -> (|00>+|11>)/sqrt(2); used by the EPR service only."""
        with self._lock:
            self._sv.h(qa)
            self._sv.cnot(qa, qb)

    def lock(self):
        """The global lock (context manager) for composite inspections."""
        return self._lock

    @property
    def num_qubits(self) -> int:
        with self._lock:
            return self._sv.num_qubits

    def statevector(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Global state for verification in tests (not part of QMPI)."""
        with self._lock:
            return self._sv.statevector(qubits)

    def qubit_ids(self) -> Qureg:
        with self._lock:
            return Qureg(self._sv.qubit_ids)

    def raw(self) -> StateVector:
        """The underlying engine, for white-box tests."""
        return self._sv
