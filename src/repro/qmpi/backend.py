"""Quantum backends: rank-checked facades over a simulation engine.

The paper's prototype (§6): "To ensure that the state vector faithfully
represents the quantum state of the distributed quantum computer at any
point throughout the computation, all ranks forward quantum operations to
rank 0, which then applies the operation to the state vector."

:class:`QuantumBackend` keeps that discipline — a mutex plus per-rank
qubit *ownership*, so any cross-node interaction must go through the
EPR-based QMPI protocols, exactly as real distributed hardware imposes —
but decouples it from how the amplitudes are stored:

* :class:`SharedBackend` reproduces the paper's rank-0 bottleneck with
  one monolithic :class:`~repro.sim.statevector.StateVector`;
* :class:`ShardedBackend` distributes the amplitudes over per-rank
  chunks (:class:`~repro.sim.sharded.ShardedStateVector`), the layout
  classical HPC simulators use to scale.

Both are drop-in interchangeable anywhere a backend is consumed; pick one
via :func:`make_backend` or the ``backend=`` argument of
:func:`repro.qmpi.api.qmpi_run`.
"""

from __future__ import annotations

import threading
import warnings
from collections import Counter
from typing import Sequence

import numpy as np

from ..sim import gates as _gates
from ..sim.cache import ScheduleCache
from ..sim.diag import DiagBatch
from ..sim.parallel import PARALLEL_MIN_CHUNK
from ..sim.schedule import DEFAULT_COST_MODEL, lower_flush
from ..sim.sharded import ShardedStateVector
from ..sim.shots import ShotBits
from ..sim.statevector import SimulationError, StateVector
from . import ops as _ops
from .ops import UNITARY, GateDef, Op
from .qubit import Qureg

__all__ = [
    "QuantumBackend",
    "SharedBackend",
    "ShardedBackend",
    "LocalityError",
    "BACKENDS",
    "make_backend",
    "register_backend",
]


class LocalityError(SimulationError):
    """A rank attempted to operate on a qubit it does not own."""


class QuantumBackend:
    """Thread-safe engine facade with per-rank qubit ownership.

    Subclasses supply the engine (anything with the
    :class:`~repro.sim.statevector.StateVector` surface); this base class
    owns the lock, the ownership table, and locality enforcement.

    All gates funnel through :meth:`apply_ops`, the single batched entry
    point. Named gate methods (``h(rank, q)``, ``cnot(rank, c, t)``,
    ``crz(rank, c, t, theta)``, ...) are generated from the
    :data:`~repro.qmpi.ops.GATESET` registry — one shim per gate, each
    emitting a one-op batch — so registering a new
    :class:`~repro.qmpi.ops.GateDef` extends every backend at once.
    """

    def __init__(self, engine, enforce_locality: bool = True, cache: str = "on"):
        if cache not in ("on", "off"):
            raise ValueError(f'cache must be "on" or "off", got {cache!r}')
        self._sv = engine
        self._lock = threading.RLock()
        self._owner: dict[int, int] = {}
        self.enforce_locality = enforce_locality
        #: Shot count when shot-batched mode is active (else ``None``).
        self.shots: int | None = None
        self._measure_log: list[tuple[int, object]] = []
        #: The flush-schedule cache (see :mod:`repro.sim.cache`), or
        #: ``None`` with ``cache="off"`` or an engine without the
        #: cache API (``layout_key``/``compile_batch``/``execute_segments``).
        self.schedule_cache: ScheduleCache | None = None
        if cache == "on" and all(
            hasattr(engine, m)
            for m in ("layout_key", "compile_batch", "execute_segments")
        ):
            self.schedule_cache = ScheduleCache()

    # ------------------------------------------------------------------
    # shot-batched mode
    # ------------------------------------------------------------------
    def begin_shots(self, shots: int) -> None:
        """Enter shot-batched mode: one run tracks ``shots`` trajectories.

        Delegates to the engine's ``begin_shots`` (see
        :mod:`repro.sim.shots`); measurements then return per-shot
        :class:`~repro.sim.shots.ShotBits` and are recorded for
        :meth:`counts`. Must be called before any measurement.
        """
        with self._lock:
            starter = getattr(self._sv, "begin_shots", None)
            if starter is None:
                raise SimulationError(
                    f"engine {type(self._sv).__name__} does not support "
                    "shot-batched execution (no begin_shots method)"
                )
            starter(shots)
            self.shots = int(shots)
            self._measure_log = []

    def reseed(self, seed) -> None:
        """Replace the engine's measurement RNG and clear the shot log.

        The job runner uses this hook to give every job its own
        reproducible RNG stream on a reused backend.
        """
        with self._lock:
            reseeder = getattr(self._sv, "reseed", None)
            if reseeder is not None:
                reseeder(seed)
            else:
                self._sv.rng = np.random.default_rng(seed)
            self._measure_log = []

    def counts(self) -> Counter:
        """Histogram of per-shot measurement bitstrings.

        One string per shot: every measurement recorded this run, stably
        ordered by measuring rank (program order within a rank), first
        measurement leftmost. Requires shot-batched mode.
        """
        with self._lock:
            if self.shots is None:
                raise SimulationError(
                    "counts() requires shot-batched mode; run with shots="
                )
            order = sorted(
                range(len(self._measure_log)),
                key=lambda i: self._measure_log[i][0],
            )
            cols = []
            for i in order:
                _, bits = self._measure_log[i]
                if isinstance(bits, ShotBits):
                    cols.append(bits.values)
                else:
                    cols.append(np.full(self.shots, int(bits), dtype=np.int64))
            if not cols:
                return Counter({"": self.shots})
            mat = np.stack(cols, axis=1)
            return Counter(
                "".join("1" if b else "0" for b in row) for row in mat
            )

    # ------------------------------------------------------------------
    # allocation & ownership
    # ------------------------------------------------------------------
    def alloc(self, rank: int, n: int = 1) -> Qureg:
        """Allocate ``n`` fresh |0> qubits owned by ``rank``."""
        with self._lock:
            ids = self._sv.alloc(n)
            for q in ids:
                self._owner[q] = rank
            return Qureg(ids)

    def free(self, rank: int, qubits: Sequence[int] | int) -> None:
        """Release qubits (must be disentangled |0>, as in QMPI_Free_qmem)."""
        if isinstance(qubits, int):
            qubits = [qubits]
        with self._lock:
            for q in qubits:
                self._check_owner(rank, q)
                self._sv.release(q)
                del self._owner[q]

    def owner(self, qubit: int) -> int:
        """The rank that currently owns ``qubit``."""
        with self._lock:
            try:
                return self._owner[qubit]
            except KeyError:
                raise SimulationError(f"unknown qubit {qubit}") from None

    def owned_by(self, rank: int) -> Qureg:
        """All qubits currently owned by ``rank`` (ascending ids)."""
        with self._lock:
            return Qureg(sorted(q for q, r in self._owner.items() if r == rank))

    def transfer(self, qubit: int, new_rank: int) -> None:
        """Move ownership (used by *_move teleportation protocols)."""
        with self._lock:
            if qubit not in self._owner:
                raise SimulationError(f"unknown qubit {qubit}")
            self._owner[qubit] = new_rank

    def _check_owner(self, rank: int, *qubits: int) -> None:
        if not self.enforce_locality:
            return
        for q in qubits:
            actual = self._owner.get(q)
            if actual is None:
                raise SimulationError(f"unknown qubit {q}")
            if actual != rank:
                raise LocalityError(
                    f"rank {rank} touched qubit {q} owned by rank {actual}; "
                    "remote interaction requires QMPI communication"
                )

    # ------------------------------------------------------------------
    # gates: one batched entry point (rank-checked and serialized)
    # ------------------------------------------------------------------
    def apply_ops(self, rank: int, ops) -> None:
        """Execute a batch of :class:`~repro.qmpi.ops.Op` records.

        This is the *only* gate path: ownership of every operand is
        checked and the whole batch is handed to the engine under one
        lock acquisition. The named convenience methods (``h``, ``x``,
        ..., one per :data:`~repro.qmpi.ops.GATESET` entry) are thin
        shims emitting one-op batches.

        Batches may contain :class:`~repro.qmpi.ops.DiagBatch` records —
        coalesced runs of diagonal ops (see
        :func:`repro.sim.diag.coalesce_diagonals`) — and
        :class:`~repro.qmpi.ops.ContractionPlan` records — fused
        small-op windows (see :func:`repro.sim.plan.plan_contractions`).
        Engines with their own ``apply_ops`` are expected to handle them
        (the shipped engines apply one precomputed phase vector per
        batch and one matmul per plan); the generic unroll for engines
        without ``apply_ops`` expands batches through
        ``DiagBatch.terms()`` and applies plans as plain unitaries.
        """
        ops = tuple(ops)
        if not ops:
            return
        with self._lock:
            for op in ops:
                self._check_owner(rank, *op.qubits)
            sv_apply_ops = getattr(self._sv, "apply_ops", None)
            if sv_apply_ops is not None:
                sv_apply_ops(ops)
            else:  # engines predating the op IR: unroll generically
                for op in ops:
                    if isinstance(op, DiagBatch):
                        for qs, table in op.terms():
                            self._sv.apply(np.diag(table), *qs)
                    elif op.n_controls:
                        self._sv.apply_controlled(
                            op.target_matrix(), list(op.controls), list(op.targets)
                        )
                    else:
                        self._sv.apply(op.target_matrix(), *op.targets)

    def apply_flush(
        self,
        rank: int,
        ops,
        *,
        diag_batching: bool = True,
        planning: bool = True,
        cost_model=None,
    ) -> None:
        """Execute a raw (pre-lowering) flush buffer, cached when possible.

        This is the flush-time entry point
        :meth:`repro.qmpi.stream.OpStream.flush` prefers over the
        lower-then-:meth:`apply_ops` sequence: ownership of every
        operand is checked once, and the lower + compile work is served
        from the backend's :class:`~repro.sim.cache.ScheduleCache` —
        structurally identical buffers (same gates and qubit pattern,
        any rotation angles) replay their compiled segment list with
        the parameters rebound instead of recompiling.  With
        ``cache="off"`` (or a cache bypass) the buffer is lowered and
        executed one-shot, through exactly the same numeric pipeline.
        """
        ops = tuple(ops)
        if not ops:
            return
        if cost_model is None:
            cost_model = DEFAULT_COST_MODEL
        with self._lock:
            for op in ops:
                self._check_owner(rank, *op.qubits)
            n = self._sv.num_qubits
            if self.schedule_cache is not None:
                self.schedule_cache.execute(
                    self._sv,
                    ops,
                    num_qubits=n,
                    diag_batching=diag_batching,
                    planning=planning,
                    cost_model=cost_model,
                )
                return
            lowered = tuple(
                lower_flush(
                    list(ops),
                    n,
                    diag_batching=diag_batching,
                    planning=planning,
                    cost_model=cost_model,
                )
            )
            sv_apply_ops = getattr(self._sv, "apply_ops", None)
            if sv_apply_ops is not None:
                sv_apply_ops(lowered)
            else:  # engines predating the op IR: unroll generically
                for op in lowered:
                    if isinstance(op, DiagBatch):
                        for qs, table in op.terms():
                            self._sv.apply(np.diag(table), *qs)
                    elif op.n_controls:
                        self._sv.apply_controlled(
                            op.target_matrix(), list(op.controls), list(op.targets)
                        )
                    else:
                        self._sv.apply(op.target_matrix(), *op.targets)

    def cache_info(self) -> dict | None:
        """Schedule-cache counters, or ``None`` when caching is off."""
        with self._lock:
            if self.schedule_cache is None:
                return None
            return self.schedule_cache.info()

    def kernel_info(self) -> dict | None:
        """Native-kernel dispatch counters, or ``None`` without dispatch.

        Engines without the kernel dispatch layer report ``None``.
        Mirrors :meth:`cache_info`: a snapshot dict with the resolved
        ``mode``/``provider``, jit hit / numpy fallback / csel counters,
        and the one-time provider compile time (see
        :meth:`repro.sim.kernels.KernelDispatch.info`).
        """
        with self._lock:
            kd = getattr(self._sv, "_kernels", None)
            if kd is None:
                return None
            return kd.info()

    def apply(self, rank: int, u: np.ndarray, *qubits: int) -> None:
        """Apply an explicit ``2^k x 2^k`` unitary to ``k`` owned qubits.

        Emitted as a one-op batch carrying a
        :data:`~repro.qmpi.ops.UNITARY` record.
        """
        self.apply_ops(
            rank, (Op(UNITARY, tuple(qubits), u=np.asarray(u, dtype=np.complex128)),)
        )

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def measure(self, rank: int, q: int) -> int:
        """Projective Z-basis measurement of an owned qubit (collapses)."""
        with self._lock:
            self._check_owner(rank, q)
            bit = self._sv.measure(q)
            if self.shots is not None:
                self._measure_log.append((rank, bit))
            return bit

    def measure_and_release(self, rank: int, q: int) -> int:
        """Measure an owned qubit, then free it. Returns the bit.

        Unlike :meth:`measure`, the outcome is *not* recorded in the
        shot-batched measurement log — this is the protocol-internal
        primitive (EPR parity bits, teleport corrections), and
        :meth:`counts` should reflect only user-level measurements.
        """
        with self._lock:
            self._check_owner(rank, q)
            bit = self._sv.measure_and_release(q)
            del self._owner[q]
            return bit

    def apply_pauli_if(self, rank: int, cond, pauli: str, q: int) -> None:
        """Apply X/Y/Z to an owned qubit where ``cond`` holds.

        ``cond`` is a classical bit (plain conditional) or per-shot
        measurement data (:class:`~repro.sim.shots.ShotBits`) — the
        vectorized replacement for ``if m: backend.x(...)`` fixups in
        the QMPI protocols. Engines without the conditional hook fall
        back to eager application, which requires a scalar condition.
        """
        with self._lock:
            self._check_owner(rank, q)
            applier = getattr(self._sv, "apply_pauli_if", None)
            if applier is not None:
                applier(cond, pauli, q)
            elif cond:
                self._sv.apply(_gates.PAULIS[pauli.upper()], q)

    def prob_one(self, rank: int, q: int) -> float:
        """Probability of measuring |1> on an owned qubit (no collapse)."""
        with self._lock:
            self._check_owner(rank, q)
            return self._sv.prob_one(q)

    # ------------------------------------------------------------------
    # internal / diagnostic access (not rank-scoped)
    # ------------------------------------------------------------------
    def entangle_pair(self, qa: int, qb: int) -> None:
        """|00> -> (|00>+|11>)/sqrt(2); used by the EPR service only."""
        with self._lock:
            self._sv.h(qa)
            self._sv.cnot(qa, qb)

    def lock(self):
        """The global lock (context manager) for composite inspections."""
        return self._lock

    @property
    def num_qubits(self) -> int:
        """Total number of allocated qubits across all ranks."""
        with self._lock:
            return self._sv.num_qubits

    def statevector(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Global state for verification in tests (not part of QMPI)."""
        with self._lock:
            return self._sv.statevector(qubits)

    def qubit_ids(self) -> Qureg:
        """Every allocated qubit id, in engine order."""
        with self._lock:
            return Qureg(self._sv.qubit_ids)

    def raw(self):
        """The underlying engine, for white-box tests."""
        return self._sv

    def close(self) -> None:
        """Release engine resources (worker pools, shared memory).

        A no-op for engines without a ``close`` method. Idempotent, and
        the shipped engines stay usable (serially) afterwards.
        """
        closer = getattr(self._sv, "close", None)
        if closer is not None:
            with self._lock:
                closer()


class SharedBackend(QuantumBackend):
    """The paper's §6 semantics: one monolithic rank-0-style state vector.

    ``kernels`` selects the native-kernel dispatch mode
    (``"auto"``/``"numpy"``/``"jit"``, default from
    ``REPRO_QMPI_KERNELS``); see :mod:`repro.sim.kernels`.
    ``dtype`` selects the amplitude precision (``"complex128"`` default
    / ``"complex64"`` for the half-footprint tier, default from
    ``REPRO_QMPI_DTYPE``).
    """

    def __init__(
        self,
        seed=None,
        enforce_locality: bool = True,
        cache: str = "on",
        kernels: str | None = None,
        dtype: str | None = None,
    ):
        super().__init__(
            StateVector(seed=seed, kernels=kernels, dtype=dtype),
            enforce_locality,
            cache=cache,
        )


class ShardedBackend(QuantumBackend):
    """Amplitudes split into per-rank chunks (chunk = simulation rank).

    Local-axis gates run as vectorized strided kernels on each flat chunk;
    high-axis gates exchange pair chunks over a private
    :class:`repro.mpi.Fabric`. See :mod:`repro.sim.sharded` for the layout.

    ``workers=N`` (default 0 = serial) enables the opt-in
    process-parallel chunk executor: communication-free op runs and
    coalesced diagonal phase-vector multiplies are mapped across the
    chunks by ``N`` persistent worker processes operating on
    shared-memory chunk buffers (see :mod:`repro.sim.parallel`). Call
    :meth:`~QuantumBackend.close` to shut the pool down deterministically;
    ``parallel_min_chunk`` tunes the smallest chunk size dispatched.

    ``kernels`` selects the native-kernel dispatch mode
    (``"auto"``/``"numpy"``/``"jit"``, default from
    ``REPRO_QMPI_KERNELS``); see :mod:`repro.sim.kernels`. Worker
    processes inherit the mode and warm the provider once per process
    (at pool spawn, outside any timed stretch).

    ``dtype`` selects the amplitude precision (``"complex128"`` default
    / ``"complex64"``, default from ``REPRO_QMPI_DTYPE``); ``spill``
    and ``spill_budget`` configure the out-of-core memory-mapped chunk
    store for registers past RAM (see
    :class:`~repro.sim.sharded.ShardedStateVector`).
    """

    def __init__(
        self,
        seed=None,
        enforce_locality: bool = True,
        n_shards: int = 4,
        workers: int = 0,
        parallel_min_chunk: int = PARALLEL_MIN_CHUNK,
        cache: str = "on",
        kernels: str | None = None,
        dtype: str | None = None,
        spill: str | None = None,
        spill_budget: int | None = None,
    ):
        super().__init__(
            ShardedStateVector(
                seed=seed,
                n_shards=n_shards,
                workers=workers,
                parallel_min_chunk=parallel_min_chunk,
                kernels=kernels,
                dtype=dtype,
                spill=spill,
                spill_budget=spill_budget,
            ),
            enforce_locality,
            cache=cache,
        )
        self.n_shards = n_shards
        self.workers = workers


# ----------------------------------------------------------------------
# GATESET-generated gate shims
# ----------------------------------------------------------------------
def _backend_gate_shim(gd: GateDef):
    n_args = gd.n_qubits + gd.n_params

    def shim(self, rank: int, *args):
        """Generated gate shim (docstring replaced per gate below)."""
        if len(args) != n_args:
            raise TypeError(
                f"{gd.name}(rank, {gd.signature()}) takes {n_args} operands, "
                f"got {len(args)}"
            )
        self.apply_ops(rank, (Op(gd.name, args[: gd.n_qubits], args[gd.n_qubits :]),))

    shim.__name__ = gd.name
    shim.__qualname__ = f"QuantumBackend.{gd.name}"
    shim.__doc__ = (
        f"``{gd.name}(rank, {gd.signature()})`` — rank-checked, emitted as a "
        f"one-op batch through :meth:`apply_ops`."
    )
    shim._gateset_shim = True
    return shim


def _install_backend_shim(gd: GateDef) -> None:
    existing = getattr(QuantumBackend, gd.name, None)
    if existing is not None and not getattr(existing, "_gateset_shim", False):
        raise ValueError(
            f"gate name {gd.name!r} would shadow QuantumBackend.{gd.name}"
        )
    setattr(QuantumBackend, gd.name, _backend_gate_shim(gd))


_ops.bind_gateset(_install_backend_shim)


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
#: Name -> backend class; extend with :func:`register_backend`.
BACKENDS: dict[str, type[QuantumBackend]] = {
    "shared": SharedBackend,
    "sharded": ShardedBackend,
}


def register_backend(name: str, cls: type[QuantumBackend]) -> None:
    """Register a backend class under ``name`` for :func:`make_backend`."""
    BACKENDS[name] = cls


def make_backend(
    spec: "str | type[QuantumBackend] | QuantumBackend" = "shared",
    *,
    seed=None,
    n_ranks: int = 1,
    **opts,
) -> QuantumBackend:
    """Resolve a backend spec into a ready instance.

    ``spec`` may be an existing :class:`QuantumBackend` instance (returned
    as-is — passing ``seed`` or options alongside one warns, since they
    cannot be applied retroactively), a backend class, or a registry name
    — ``"shared"``, ``"sharded"``, or ``"sharded:<n>"`` to pin the shard
    count. A plain ``"sharded"`` defaults ``n_shards`` to the smallest
    power of two >= ``n_ranks`` (chunk = rank, as in QCMPI).
    """
    if isinstance(spec, QuantumBackend):
        ignored = [] if seed is None else [f"seed={seed!r}"]
        ignored += [f"{k}={v!r}" for k, v in opts.items()]
        if ignored:
            warnings.warn(
                "make_backend received a prebuilt backend instance; "
                f"{', '.join(ignored)} cannot be applied retroactively and "
                "will be ignored — construct the instance with them, or "
                "pass a name/class spec instead (use backend.reseed(seed) "
                "to change the RNG of an existing backend)",
                UserWarning,
                stacklevel=2,
            )
        return spec
    if isinstance(spec, type):
        if issubclass(spec, ShardedBackend):
            opts.setdefault("n_shards", 1 << max(0, n_ranks - 1).bit_length())
        return spec(seed=seed, **opts)
    name, _, arg = str(spec).partition(":")
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {spec!r}; known: {sorted(BACKENDS)}"
        ) from None
    if issubclass(cls, ShardedBackend):
        if arg:
            opts.setdefault("n_shards", int(arg))
        else:
            opts.setdefault("n_shards", 1 << max(0, n_ranks - 1).bit_length())
    elif arg:
        raise ValueError(f"backend {name!r} takes no ':' argument, got {spec!r}")
    return cls(seed=seed, **opts)
