"""The QMPI programming interface.

:class:`QmpiComm` is the per-rank handle a distributed quantum program
uses: qubit memory management, local gates (rank-checked), EPR
preparation, all point-to-point and collective operations of Tables 2-3,
and access to the classical MPI communicator (§4.1: classical and quantum
communication are separate; classical data goes through MPI).

:func:`qmpi_run` is the ``mpiexec`` of this package: it builds the
quantum backend (shared or sharded, via ``backend=``), EPR service, and
resource ledger, then runs the SPMD function on N ranks.

Paper-style aliases (``QMPI_Send``, ``QMPI_Prepare_EPR``, ...) are
generated at the bottom for one-to-one correspondence with the C API in
the paper's listings.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Sequence

from ..mpi.comm import Communicator
from ..mpi.runtime import run_spmd
from .backend import QuantumBackend, make_backend
from .epr import EprRequest, EprService
from . import collectives as _coll
from . import ops as _ops
from . import p2p as _p2p
from .ops import GateDef, Op
from .qubit import Qureg, as_qureg
from .resource import Ledger
from .stream import OpStream

__all__ = ["QmpiComm", "qmpi_run", "QmpiWorld"]


class QmpiComm:
    """Per-rank endpoint of a QMPI world.

    Attributes
    ----------
    comm:
        The user's classical MPI communicator (use freely for classical
        data; QMPI protocol traffic travels on a private dup).
    backend:
        The quantum backend (rank-checked gate access; shared or sharded).
    epr:
        The EPR rendezvous service.
    ledger:
        Shared resource ledger (EPR pairs, classical bits).
    stream:
        This rank's :class:`~repro.qmpi.stream.OpStream`. Local gate
        calls append typed :class:`~repro.qmpi.ops.Op` records here; the
        buffer is fused, diagonal runs coalesce into
        :class:`~repro.qmpi.ops.DiagBatch` phase vectors, batches are
        dispatched through ``apply_ops``, and everything auto-flushes at
        every semantic boundary (measurement, ``prob_one``, EPR
        preparation, p2p/collective entry, barrier, qubit release,
        program exit).
    """

    def __init__(
        self,
        comm: Communicator,
        backend: QuantumBackend,
        epr: EprService,
        ledger: Ledger,
        fusion="auto",
    ):
        self.comm = comm
        self._pcomm = comm.dup()  # protocol traffic, isolated context
        self.backend = backend
        self.epr = epr
        self.ledger = ledger
        self.context = self._pcomm.context
        self.stream = OpStream(backend, comm.rank, fusion=fusion)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    # ------------------------------------------------------------------
    # memory (QMPI_Alloc_qmem / QMPI_Free_qmem)
    # ------------------------------------------------------------------
    def alloc_qmem(self, n: int = 1) -> Qureg:
        """Allocate ``n`` local |0> qubits."""
        return self.backend.alloc(self.rank, n)

    def free_qmem(self, qubits) -> None:
        """Free local qubits (must be disentangled |0>)."""
        self.flush_ops()
        self.backend.free(self.rank, list(as_qureg(qubits)))

    # ------------------------------------------------------------------
    # local gates & measurement (recorded on the op stream, §6)
    # ------------------------------------------------------------------
    # Named gate methods — h(q), cnot(c, t), crz(c, t, theta), ... — are
    # generated from the GATESET registry at the bottom of this module:
    # each appends one typed Op to self.stream instead of issuing an
    # eager backend call.

    def flush_ops(self) -> None:
        """Dispatch this rank's buffered gate stream (one apply_ops batch).

        Called automatically at every semantic boundary; manual calls are
        only needed before white-box backend inspection mid-program.
        """
        self.stream.flush()

    def measure(self, q: int) -> int:
        self.flush_ops()
        return self.backend.measure(self.rank, q)

    def measure_and_release(self, q: int) -> int:
        self.flush_ops()
        return self.backend.measure_and_release(self.rank, q)

    def prob_one(self, q: int) -> float:
        self.flush_ops()
        return self.backend.prob_one(self.rank, q)

    def statevector(self, qubits=None):
        """Global state for verification/debugging (not part of QMPI).

        Flushes this rank's stream first; other ranks flush their own
        at their boundaries — coordinate with :meth:`barrier` for a
        consistent global view mid-program.
        """
        self.flush_ops()
        return self.backend.statevector(qubits)

    # ------------------------------------------------------------------
    # classical protocol bits (ledger-counted)
    # ------------------------------------------------------------------
    # Convention: every transmitted bit increments the global totals
    # exactly once, on the *sending* side; the receiving side attributes
    # the same bits to its own operation row without touching totals, so
    # two-sided protocols (send/recv, unsend/unrecv) account their
    # Table 1-3 classical cost on both endpoints' rows.
    def send_bits(self, value: int, nbits: int, dest: int, tag: int = 0) -> None:
        """Send protocol fixup bits over the private classical channel."""
        self.ledger.record_classical(nbits)
        self._pcomm.send(value, dest, tag)

    def recv_bits(self, nbits: int, source: int, tag: int = 0) -> int:
        """Receive protocol fixup bits (row-attributed, not re-counted)."""
        value = self._pcomm.recv(source=source, tag=tag)
        self.ledger.record_classical_receipt(nbits)
        return value

    # ------------------------------------------------------------------
    # EPR (§4.3)
    # ------------------------------------------------------------------
    def prepare_epr(self, qubit: int, dest: int, tag: int = 0) -> None:
        """Blocking QMPI_Prepare_EPR (symmetric rendezvous)."""
        self.flush_ops()
        with self.ledger.scope("prepare_epr"):
            self.epr.prepare(self.rank, qubit, dest, tag, self.context, direction=0)

    def iprepare_epr(self, qubit: int, dest: int, tag: int = 0) -> EprRequest:
        """Non-blocking QMPI_Iprepare_EPR."""
        self.flush_ops()
        with self.ledger.scope("prepare_epr"):
            return self.epr.iprepare(self.rank, qubit, dest, tag, self.context, direction=0)

    def epr_buffered(self) -> int:
        """Number of EPR halves currently occupying this rank's buffer."""
        return self.epr.buffered(self.rank)

    # ------------------------------------------------------------------
    # point-to-point (Table 2) — see p2p module for semantics
    # ------------------------------------------------------------------
    def send(self, qubits, dest: int, tag: int = 0) -> None:
        _p2p.send(self, qubits, dest, tag)

    def recv(self, qubits, source: int, tag: int = 0) -> Qureg:
        return _p2p.recv(self, qubits, source, tag)

    def unsend(self, qubits, dest: int, tag: int = 0) -> None:
        _p2p.unsend(self, qubits, dest, tag)

    def unrecv(self, qubits, source: int, tag: int = 0) -> None:
        _p2p.unrecv(self, qubits, source, tag)

    def send_move(self, qubits, dest: int, tag: int = 0) -> None:
        _p2p.send_move(self, qubits, dest, tag)

    def recv_move(self, qubits, source: int, tag: int = 0) -> Qureg:
        return _p2p.recv_move(self, qubits, source, tag)

    def unsend_move(self, n_or_qubits, dest: int, tag: int = 0) -> Qureg:
        return _p2p.unsend_move(self, n_or_qubits, dest, tag)

    def unrecv_move(self, qubits, source: int, tag: int = 0) -> None:
        _p2p.unrecv_move(self, qubits, source, tag)

    def sendrecv(self, send_qubits, dest, recv_qubits, source, sendtag=0, recvtag=0):
        return _p2p.sendrecv(self, send_qubits, dest, recv_qubits, source, sendtag, recvtag)

    def unsendrecv(self, send_qubits, dest, recv_qubits, source, sendtag=0, recvtag=0):
        return _p2p.unsendrecv(self, send_qubits, dest, recv_qubits, source, sendtag, recvtag)

    def sendrecv_replace(self, qubits, dest, source, sendtag=0, recvtag=0):
        return _p2p.sendrecv_replace(self, qubits, dest, source, sendtag, recvtag)

    def unsendrecv_replace(self, qubits, dest, source, sendtag=0, recvtag=0):
        return _p2p.unsendrecv_replace(self, qubits, dest, source, sendtag, recvtag)

    # Buffered/synchronous/ready variants are semantically identical on
    # the eager in-process fabric; aliases keep Table 2 one-to-one.
    bsend = send
    ssend = send
    rsend = send
    mrecv = recv
    bunsend = unsend
    sunsend = unsend
    runsend = unsend
    munrecv = unrecv

    def cancel(self) -> None:
        """QMPI_Cancel: a no-op marker — Table 2 note (b): resources may
        already have been used."""

    # ------------------------------------------------------------------
    # collectives (Table 3) — see collectives module for semantics
    # ------------------------------------------------------------------
    def bcast(self, qubits, root=0, tag=0, algorithm="tree"):
        return _coll.bcast(self, qubits, root, tag, algorithm)

    def unbcast(self, handle):
        _coll.unbcast(self, handle)

    def gather(self, qubits, root=0, tag=0):
        return _coll.gather(self, qubits, root, tag)

    def ungather(self, handle):
        _coll.ungather(self, handle)

    def gatherv(self, qubits, counts, root=0, tag=0):
        return _coll.gatherv(self, qubits, counts, root, tag)

    def ungatherv(self, handle):
        _coll.ungatherv(self, handle)

    def gather_move(self, qubits, root=0, tag=0):
        return _coll.gather_move(self, qubits, root, tag)

    def scatter(self, qubits, recv_qubits, root=0, tag=0):
        return _coll.scatter(self, qubits, recv_qubits, root, tag)

    def unscatter(self, handle):
        _coll.unscatter(self, handle)

    def scatterv(self, qubits, counts, recv_qubits, root=0, tag=0):
        return _coll.scatterv(self, qubits, counts, recv_qubits, root, tag)

    def unscatterv(self, handle):
        _coll.unscatterv(self, handle)

    def scatter_move(self, qubits, recv_qubits, root=0, tag=0):
        return _coll.scatter_move(self, qubits, recv_qubits, root, tag)

    def allgather(self, qubits, tag=0, algorithm="tree"):
        return _coll.allgather(self, qubits, tag, algorithm)

    def unallgather(self, handle):
        _coll.unallgather(self, handle)

    def alltoall(self, qubits, tag=0):
        return _coll.alltoall(self, qubits, tag)

    def unalltoall(self, handle):
        _coll.unalltoall(self, handle)

    def alltoallv(self, qubits, send_counts, tag=0):
        return _coll.alltoallv(self, qubits, send_counts, tag)

    def unalltoallv(self, handle):
        _coll.unalltoallv(self, handle)

    def alltoall_move(self, qubits, tag=0):
        return _coll.alltoall_move(self, qubits, tag)

    def reduce(self, qubits, out=None, op=None, root=0, tag=0, schedule="linear"):
        from .reductions import PARITY

        return _coll.reduce(self, qubits, out, op or PARITY, root, tag, schedule)

    def unreduce(self, handle):
        _coll.unreduce(self, handle)

    def allreduce(self, qubits, op=None, tag=0, schedule="linear"):
        from .reductions import PARITY

        return _coll.allreduce(self, qubits, op or PARITY, tag, schedule)

    def unallreduce(self, handle):
        _coll.unallreduce(self, handle)

    def reduce_scatter_block(self, qubits, op=None, tag=0):
        from .reductions import PARITY

        return _coll.reduce_scatter_block(self, qubits, op or PARITY, tag)

    def unreduce_scatter_block(self, handles):
        _coll.unreduce_scatter_block(self, handles)

    def scan(self, qubits, out=None, op=None, tag=0):
        from .reductions import PARITY

        return _coll.scan(self, qubits, out, op or PARITY, tag)

    def exscan(self, qubits, out=None, op=None, tag=0):
        from .reductions import PARITY

        return _coll.exscan(self, qubits, out, op or PARITY, tag)

    def unscan(self, handle):
        _coll.unscan(self, handle)

    def unexscan(self, handle):
        _coll.unexscan(self, handle)

    def barrier(self) -> None:
        """Classical barrier across the QMPI world (flushes the stream)."""
        self.flush_ops()
        self._pcomm.barrier()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<QmpiComm rank={self.rank}/{self.size}>"


# ----------------------------------------------------------------------
# GATESET-generated gate methods (h, x, ..., swap, crz, cphase, ...)
# ----------------------------------------------------------------------
def _comm_gate_shim(gd: GateDef):
    n_args = gd.n_qubits + gd.n_params

    def shim(self: QmpiComm, *args):
        if len(args) != n_args:
            raise TypeError(
                f"{gd.name}({gd.signature()}) takes {n_args} operands, "
                f"got {len(args)}"
            )
        self.stream.append(Op(gd.name, args[: gd.n_qubits], args[gd.n_qubits :]))

    shim.__name__ = gd.name
    shim.__qualname__ = f"QmpiComm.{gd.name}"
    shim.__doc__ = (
        f"``{gd.name}({gd.signature()})`` — recorded on this rank's op "
        f"stream (fused/batched; applied no later than the next flush "
        f"boundary)."
    )
    shim._gateset_shim = True
    return shim


def _install_comm_shim(gd: GateDef) -> None:
    existing = getattr(QmpiComm, gd.name, None)
    if existing is not None and not getattr(existing, "_gateset_shim", False):
        raise ValueError(f"gate name {gd.name!r} would shadow QmpiComm.{gd.name}")
    setattr(QmpiComm, gd.name, _comm_gate_shim(gd))


_ops.bind_gateset(_install_comm_shim)


class QmpiWorld:
    """First-class result of a :func:`qmpi_run`.

    Indexing and iteration yield the per-rank return values
    (``world[rank]``, ``list(world)``, ``len(world)``); the
    :attr:`results` list, :attr:`backend`, and :attr:`ledger` attributes
    remain available for inspection as before. Runs started with
    ``shots=N`` expose the sampled measurement histogram as
    :attr:`counts`. The world is a context manager: ``with
    qmpi_run(...) as world:`` closes worker-enabled backends (pool
    processes, shared memory) on exit.
    """

    def __init__(
        self,
        results: list,
        backend: QuantumBackend,
        ledger: Ledger,
        shots: int | None = None,
    ):
        self.results = results
        self.backend = backend
        self.ledger = ledger
        #: Shot count of the run, or ``None`` for a single trajectory.
        self.shots = shots

    def __getitem__(self, rank: int):
        return self.results[rank]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def counts(self):
        """Per-shot measurement histogram (:class:`collections.Counter`).

        Keys are bitstrings of every measurement in the run, stably
        ordered by measuring rank (program order within a rank).
        Requires the run to have been started with ``shots=``.
        """
        if self.shots is None:
            raise RuntimeError(
                "counts requires a shot-batched run: qmpi_run(..., shots=N)"
            )
        return self.backend.counts()

    def close(self) -> None:
        """Release backend resources (worker pools, shared memory)."""
        self.backend.close()

    def __enter__(self) -> "QmpiWorld":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shots = f" shots={self.shots}" if self.shots is not None else ""
        return f"<QmpiWorld ranks={len(self.results)}{shots}>"


def _execute(
    backend: QuantumBackend,
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    s_limit: int | None = None,
    timeout: float = 120.0,
    fusion="auto",
    transport="inproc",
) -> tuple[list, Ledger]:
    """Run ``fn`` SPMD on a ready backend; shared by qmpi_run and jobs."""
    from ..mpi.transport import make_transport

    t = make_transport(transport)
    if not t.inprocess:
        # Process transports cannot share the backend object with the
        # ranks: the parent keeps it behind a service endpoint and the
        # ranks drive it through proxies (see repro.qmpi.service).
        from .service import execute_mp

        return execute_mp(
            backend, n_ranks, fn, args, kwargs, s_limit, timeout, fusion, t
        )
    ledger = Ledger()
    epr = EprService(backend, ledger, s_limit=s_limit)

    def wrapper(comm: Communicator, *a: Any, **k: Any) -> Any:
        epr.abort = comm.fabric.abort
        qc = QmpiComm(comm, backend, epr, ledger, fusion=fusion)
        try:
            return fn(qc, *a, **k)
        finally:
            qc.flush_ops()

    results = run_spmd(n_ranks, wrapper, args, kwargs, timeout, transport=t)
    return results, ledger


def qmpi_run(
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    s_limit: int | None = None,
    seed: int | None = 0,
    timeout: float = 120.0,
    backend: "str | type[QuantumBackend] | QuantumBackend" = "shared",
    backend_opts: dict | None = None,
    fusion="auto",
    shots: int | None = None,
    transport="inproc",
    **backend_kw,
) -> QmpiWorld:
    """Run ``fn(qcomm, *args, **kwargs)`` on ``n_ranks`` quantum ranks.

    Parameters
    ----------
    s_limit:
        Optional per-rank EPR buffer capacity (the SENDQ ``S`` parameter),
        enforced functionally: protocols that need more concurrent EPR
        halves raise :class:`~repro.qmpi.epr.EprBufferFull`.
    seed:
        Measurement RNG seed for reproducible runs. Ignored (along with
        backend options) when ``backend`` is a prebuilt instance, which
        keeps its own RNG and configuration; passing a non-default seed
        alongside a prebuilt instance warns.
    backend:
        Engine selection: ``"shared"`` (the paper's §6 rank-0 state
        vector), ``"sharded"`` / ``"sharded:<n>"`` (amplitudes chunked
        across simulation ranks), a backend class, or a prebuilt
        :class:`~repro.qmpi.backend.QuantumBackend` instance. Plain
        ``"sharded"`` sizes the chunk count to ``n_ranks`` (next power of
        two). See :func:`repro.qmpi.backend.make_backend`.
    backend_opts:
        Deprecated — pass backend constructor options as plain keyword
        arguments instead (see ``**backend_kw``). Still honored, with a
        :class:`DeprecationWarning`; explicit keywords win on conflict.
    fusion:
        Per-rank gate-stream fusion: ``"auto"`` (default) buffers,
        fuses, coalesces diagonal runs into
        :class:`~repro.qmpi.ops.DiagBatch` phase vectors, and fuses
        small-op runs into :class:`~repro.qmpi.ops.ContractionPlan`
        window unitaries; ``"noplan"`` skips only the contraction
        planning; ``"nodiag"`` fuses but skips diagonal batching and
        planning (the benchmark baseline); ``"off"`` forwards every
        gate eagerly as a one-op batch (the escape hatch — identical
        semantics, no batching). See
        :class:`~repro.qmpi.stream.OpStream`.
    shots:
        Sample ``N`` trajectories in *one* execution of the program:
        unitary segments run once, measurement-free circuits sample all
        outcomes from the final state, and mid-circuit measurements fork
        batched trajectories inside the engine (see
        :mod:`repro.sim.shots`). Measurement calls then return per-shot
        :class:`~repro.sim.shots.ShotBits` and the world exposes
        :attr:`QmpiWorld.counts`.
    transport:
        Rank placement (see :mod:`repro.mpi.transport`): ``"inproc"``
        (default) runs ranks as threads; ``"mp"`` spawns one OS process
        per rank — the backend stays in the calling process behind a
        service endpoint and the ranks drive it over RPC (the paper's
        §6 forwarding discipline made literal), so per-shot outcomes
        are identical between transports at equal seed. ``"mp"``
        requires ``fn`` and its arguments to be picklable (module-level
        function). Also accepts a
        :class:`~repro.mpi.transport.Transport` class or instance.
    **backend_kw:
        Backend constructor options as plain keywords, e.g.
        ``qmpi_run(..., backend="sharded", workers=2, n_shards=8)`` —
        ``n_shards``, ``workers``, ``parallel_min_chunk``,
        ``enforce_locality``, ``kernels``, ``dtype``, ``spill``,
        ``spill_budget``. ``workers=N`` enables the sharded engine's
        process-parallel chunk executor (close the backend when done:
        ``with qmpi_run(...) as world:`` does so automatically).
        ``kernels="auto"/"numpy"/"jit"`` selects the native-kernel
        dispatch mode (see :mod:`repro.sim.kernels`); results are
        bit-identical across modes. ``dtype="complex64"`` selects the
        half-footprint mixed-precision tier, and ``spill=`` backs
        sharded chunks with memory-mapped files past the
        ``spill_budget`` RAM budget (see
        :class:`~repro.sim.sharded.ShardedStateVector`).
    """
    if backend_opts is not None:
        warnings.warn(
            "backend_opts is deprecated; pass backend options as plain "
            "keyword arguments: qmpi_run(..., backend='sharded', "
            "workers=2, n_shards=8)",
            DeprecationWarning,
            stacklevel=2,
        )
        backend_kw = {**backend_opts, **backend_kw}
    if isinstance(backend, QuantumBackend) and seed == 0:
        # The default seed must not trigger the prebuilt-instance
        # warning in make_backend; only an explicit seed should.
        seed = None
    backend = make_backend(backend, seed=seed, n_ranks=n_ranks, **backend_kw)
    if shots is not None:
        backend.begin_shots(shots)
    results, ledger = _execute(
        backend, n_ranks, fn, args, kwargs, s_limit, timeout, fusion, transport
    )
    return QmpiWorld(results, backend, ledger, shots=shots)


# ----------------------------------------------------------------------
# Paper-style C API aliases (Listing 1 compatibility layer)
# ----------------------------------------------------------------------
def QMPI_Alloc_qmem(qc: QmpiComm, n: int) -> Qureg:
    return qc.alloc_qmem(n)


def QMPI_Free_qmem(qc: QmpiComm, qubits, n: int | None = None) -> None:
    qc.free_qmem(qubits)


def QMPI_Comm_rank(qc: QmpiComm) -> int:
    return qc.rank


def QMPI_Comm_size(qc: QmpiComm) -> int:
    return qc.size


def QMPI_Prepare_EPR(qc: QmpiComm, qubit: int, dest: int, tag: int = 0) -> None:
    qc.prepare_epr(qubit, dest, tag)


def QMPI_Send(qc: QmpiComm, qubits, dest: int, tag: int = 0) -> None:
    qc.send(qubits, dest, tag)


def QMPI_Recv(qc: QmpiComm, qubits, source: int, tag: int = 0) -> None:
    qc.recv(qubits, source, tag)


def QMPI_Unsend(qc: QmpiComm, qubits, dest: int, tag: int = 0) -> None:
    qc.unsend(qubits, dest, tag)


def QMPI_Unrecv(qc: QmpiComm, qubits, source: int, tag: int = 0) -> None:
    qc.unrecv(qubits, source, tag)


def QMPI_Send_move(qc: QmpiComm, qubits, dest: int, tag: int = 0) -> None:
    qc.send_move(qubits, dest, tag)


def QMPI_Recv_move(qc: QmpiComm, qubits, source: int, tag: int = 0) -> None:
    qc.recv_move(qubits, source, tag)


def Measure(qc: QmpiComm, qubit: int) -> int:
    return qc.measure(qubit)


def H(qc: QmpiComm, qubit: int) -> None:
    qc.h(qubit)


def X(qc: QmpiComm, qubit: int) -> None:
    qc.x(qubit)


def Z(qc: QmpiComm, qubit: int) -> None:
    qc.z(qubit)


def CNOT(qc: QmpiComm, control: int, target: int) -> None:
    qc.cnot(control, target)


def Rz(qc: QmpiComm, qubit: int, theta: float) -> None:
    qc.rz(qubit, theta)


def Rx(qc: QmpiComm, qubit: int, theta: float) -> None:
    qc.rx(qubit, theta)
