"""Per-rank operation stream: gate buffering, fusion, batched dispatch.

Each :class:`~repro.qmpi.api.QmpiComm` owns one :class:`OpStream`. Gate
calls append :class:`~repro.qmpi.ops.Op` records instead of hitting the
backend one at a time; the stream peephole-fuses as it records and hands
the backend whole batches through ``apply_ops`` at every semantic
boundary (measurement, ``prob_one``, EPR preparation, p2p/collective
entry, barrier, qubit release, program exit).

Fusion rules
------------
* **Single-qubit fusion** — an uncontrolled one-qubit op is merged into
  the most recent buffered one-qubit op on the same qubit (one 2x2
  matrix product) whenever it can be commuted back to it: every op in
  between either touches disjoint qubits or is, like the new op,
  diagonal in the Z basis. Products that collapse to the identity are
  dropped outright.
* **Diagonal coalescing** — diagonal ops (z, s, t, rz, cz, crz, cphase)
  commute with each other even on shared qubits, so runs of diagonal
  ops are transparent to the backward scan; long Rz chains on one qubit
  coalesce into a single diagonal regardless of interleaved diagonal
  traffic on other qubits.
* **Diagonal batching** — at flush time, maximal runs of diagonal ops
  collapse into one :class:`~repro.qmpi.ops.DiagBatch` record each
  (per-qubit / per-pair phase tables, see
  :func:`repro.sim.diag.coalesce_diagonals`), which the engines apply
  as a single precomputed phase-vector multiply.
* **Contraction planning** — after diagonal batching, contiguous runs
  of one-/two-qubit ops whose operands fit in a bounded window fuse
  into one :class:`~repro.qmpi.ops.ContractionPlan` each — a
  precontracted window unitary the engines apply as a single matmul
  per chunk (see :func:`repro.sim.plan.plan_contractions`). Planning
  is **size-aware** (:func:`repro.sim.schedule.lower_flush`): the cost
  model bypasses it below ``plan_min_qubits`` (the matmul cannot
  amortize on small registers) and widens windows from three to four
  qubits on large ones.

Fusion changes *nothing* semantically: the fused matrix product equals
the sequential application (plans never reorder ops), diagonal ops
commute so batching them is exact, and every measurement-like operation
flushes first. The escape hatch ``fusion="off"`` forwards each op
eagerly as a one-op batch, which is exactly the legacy per-gate path;
``fusion="noplan"`` keeps diagonal batching but skips contraction
planning (the PR 3 dispatch); ``fusion="nodiag"`` keeps only peephole
fusion (the PR 2 dispatch) — both retained as benchmark baselines.
"""

from __future__ import annotations

from ..sim.schedule import DEFAULT_COST_MODEL, CostModel, lower_flush
from .ops import UNITARY, Op

__all__ = ["OpStream", "FUSION_MODES"]

#: Every accepted ``fusion=`` mode string, strongest first.  ``True`` /
#: ``False`` are normalized to ``"on"`` / ``"off"``; anything else
#: raises ``ValueError`` at construction (a typo like ``"no_plan"``
#: must not silently degrade to the default pipeline).
FUSION_MODES = ("auto", "on", "noplan", "nodiag", "off")


class OpStream:
    """Records, fuses and batches the gate stream of one rank.

    Parameters
    ----------
    backend:
        The :class:`~repro.qmpi.backend.QuantumBackend` batches are
        dispatched to (via ``backend.apply_ops(rank, ops)``).
    rank:
        The owning rank (ownership is checked at flush time).
    fusion:
        ``"auto"``/``"on"``/``True`` — buffer, fuse, batch diagonals
        and plan contractions (default); ``"noplan"`` — everything but
        contraction planning; ``"nodiag"`` — buffer and fuse but skip
        diagonal batching and planning; ``"off"``/``False`` — forward
        each op immediately, unfused and unbatched.  Mode strings are
        validated against :data:`FUSION_MODES`; unknown values raise
        ``ValueError``.
    max_pending:
        Auto-flush threshold bounding buffer growth for long straight-
        line circuits.
    cost_model:
        The :class:`~repro.sim.schedule.CostModel` driving size-aware
        planning at flush time (``None`` — the default — uses
        :data:`~repro.sim.schedule.DEFAULT_COST_MODEL`): contraction
        planning is bypassed below ``plan_min_qubits`` and windows
        widen on large registers.
    """

    def __init__(
        self,
        backend,
        rank: int,
        fusion="auto",
        max_pending: int = 256,
        cost_model: CostModel | None = None,
    ):
        if fusion is True:
            fusion = "on"
        elif fusion is False:
            fusion = "off"
        if fusion not in FUSION_MODES:
            raise ValueError(
                f"fusion must be one of {FUSION_MODES}, got {fusion!r}"
            )
        self._backend = backend
        self._rank = rank
        self._cost_model = DEFAULT_COST_MODEL if cost_model is None else cost_model
        self._eager = fusion == "off"
        self._diag_batching = not self._eager and fusion != "nodiag"
        self._planning = self._diag_batching and fusion != "noplan"
        self._buf: list[Op] = []
        self._max_pending = max_pending

    @property
    def fusion(self) -> bool:
        """Whether this stream buffers and fuses (False = eager legacy path)."""
        return not self._eager

    @property
    def diag_batching(self) -> bool:
        """Whether flushes coalesce diagonal runs into ``DiagBatch`` records."""
        return self._diag_batching

    @property
    def planning(self) -> bool:
        """Whether flushes fuse small-op runs into ``ContractionPlan`` records."""
        return self._planning

    @property
    def pending(self) -> int:
        """Number of ops currently buffered."""
        return len(self._buf)

    # ------------------------------------------------------------------
    def append(self, op: Op) -> None:
        """Record one op (applying it immediately when fusion is off)."""
        if self._eager:
            self._backend.apply_ops(self._rank, (op,))
            return
        if op.is_single and self._try_fuse(op):
            return
        self._buf.append(op)
        if len(self._buf) >= self._max_pending:
            self.flush()

    def flush(self) -> None:
        """Dispatch everything buffered as one ``apply_ops`` batch.

        The buffer is lowered by the schedule compiler's stream-side
        pass (:func:`repro.sim.schedule.lower_flush`): maximal runs of
        diagonal ops coalesce into :class:`~repro.qmpi.ops.DiagBatch`
        records (unless ``fusion="nodiag"``), then contiguous small-op
        runs fuse into :class:`~repro.qmpi.ops.ContractionPlan` records
        (unless ``fusion="noplan"``) — **size-aware**: the cost model
        bypasses planning outright on small registers and widens
        windows on large ones. Backends exposing ``apply_flush`` take
        the raw buffer instead and serve the lowering + compilation
        from their schedule cache (see :mod:`repro.sim.cache`);
        backends without it (recording fakes, minimal test doubles)
        keep the legacy lower-then-``apply_ops`` path. On error (e.g. a
        locality violation) the buffered batch is discarded — partial
        replay would double-apply its prefix.
        """
        if self._buf:
            buf, self._buf = self._buf, []
            apply_flush = getattr(self._backend, "apply_flush", None)
            if apply_flush is not None:
                apply_flush(
                    self._rank,
                    tuple(buf),
                    diag_batching=self._diag_batching,
                    planning=self._planning,
                    cost_model=self._cost_model,
                )
                return
            buf = lower_flush(
                buf,
                self._backend.num_qubits,
                diag_batching=self._diag_batching,
                planning=self._planning,
                cost_model=self._cost_model,
            )
            self._backend.apply_ops(self._rank, tuple(buf))

    # ------------------------------------------------------------------
    def _try_fuse(self, op: Op) -> bool:
        """Merge a single-qubit ``op`` into the newest compatible buffered
        one-qubit op on the same qubit, commuting backwards over disjoint
        or mutually-diagonal ops. Returns True if merged (or annihilated)."""
        q = op.qubits[0]
        diag = op.is_diagonal
        for i in range(len(self._buf) - 1, -1, -1):
            prior = self._buf[i]
            if prior.is_single and prior.qubits[0] == q:
                m = op.target_matrix() @ prior.target_matrix()
                if (  # scalar identity check: the allclose of the hot path
                    abs(m[0, 1]) < 1e-14
                    and abs(m[1, 0]) < 1e-14
                    and abs(m[0, 0] - 1.0) < 1e-14
                    and abs(m[1, 1] - 1.0) < 1e-14
                ):
                    del self._buf[i]
                else:
                    self._buf[i] = Op(UNITARY, (q,), u=m)
                return True
            if q in prior.qubits and not (diag and prior.is_diagonal):
                return False
        return False
