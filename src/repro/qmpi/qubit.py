"""Qubit handles and registers.

``QMPI_Alloc_qmem(n)`` returns a pointer to ``n`` qubits in the paper's C
API; the Python equivalent is a :class:`Qureg` — an immutable sequence of
global simulator qubit ids owned by the allocating rank. Slicing a Qureg
yields a Qureg (pointer arithmetic, without the pointers).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["Qureg"]


class Qureg(tuple):
    """An ordered register of qubit ids.

    Behaves like a tuple of ints; slicing returns a Qureg so protocol code
    can pass sub-registers around. Single-qubit register contexts accept a
    bare int wherever a Qureg is expected (see :func:`as_qureg`).
    """

    def __new__(cls, ids: Iterable[int]):
        return super().__new__(cls, (int(q) for q in ids))

    def __getitem__(self, item):
        out = super().__getitem__(item)
        if isinstance(item, slice):
            return Qureg(out)
        return out

    def __add__(self, other):
        return Qureg(tuple(self) + tuple(other))

    def __repr__(self) -> str:
        return f"Qureg{tuple(self)!r}"


def as_qureg(q) -> Qureg:
    """Coerce an int, iterable, or Qureg into a Qureg."""
    if isinstance(q, Qureg):
        return q
    if isinstance(q, int):
        return Qureg((q,))
    return Qureg(q)
