"""Typed operation IR for the QMPI gate path.

Every local gate a program issues becomes an :class:`Op` record — gate
kind, qubit operands, rotation parameters — instead of an eager
per-gate backend call. Ops are the unit the whole pipeline speaks:

* :class:`~repro.qmpi.stream.OpStream` buffers and fuses them per rank;
* ``QuantumBackend.apply_ops(rank, ops)`` is the single batched entry
  point (the legacy ``h``/``x``/.../``toffoli`` methods are thin shims
  that emit one-op batches);
* the engines (``StateVector.apply_ops`` / ``ShardedStateVector.apply_ops``)
  execute a whole batch in one pass.

The :data:`GATESET` registry is the canonical description of every
named gate — operand signature, control count, target matrix, and
diagonality — replacing the per-gate method forest that used to live in
``QuantumBackend``. Registering a new :class:`GateDef` via
:func:`register_gate` automatically installs the matching convenience
method on ``QuantumBackend`` and ``QmpiComm`` (they subscribe through
:func:`bind_gateset`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

from ..sim import gates as G
from ..sim.diag import DiagBatch
from ..sim.plan import ContractionPlan
from ..sim.statevector import SimulationError

__all__ = [
    "Op",
    "GateDef",
    "DiagBatch",
    "ContractionPlan",
    "GATESET",
    "UNITARY",
    "register_gate",
    "bind_gateset",
]

#: Pseudo-gate name for an Op carrying an explicit unitary payload
#: (generic ``apply`` calls and fused single-qubit products).
UNITARY = "unitary"


@dataclass(frozen=True)
class GateDef:
    """Registry entry describing one named gate.

    ``qubit_args``/``param_args`` name the operands (used for generated
    method signatures and error messages); the first ``n_controls``
    qubit operands are control qubits, the rest are targets. ``const``
    or ``builder`` supplies the matrix *on the targets only* —
    ``Op.matrix()`` extends it with the controls. ``diagonal`` states
    whether the full operator (controls included) is diagonal in the
    computational basis, which is what the fusion and sharded-dispatch
    layers key on.
    """

    name: str
    qubit_args: tuple[str, ...]
    param_args: tuple[str, ...] = ()
    n_controls: int = 0
    const: np.ndarray | None = None
    builder: Callable[..., np.ndarray] | None = None
    diagonal: bool = False

    @property
    def n_qubits(self) -> int:
        """Number of qubit operands (controls included)."""
        return len(self.qubit_args)

    @property
    def n_params(self) -> int:
        """Number of rotation-parameter operands."""
        return len(self.param_args)

    def signature(self) -> str:
        """Human-readable operand list, e.g. ``"c, t, theta"``."""
        return ", ".join(self.qubit_args + self.param_args)

    def target_matrix(self, params: Sequence[float]) -> np.ndarray:
        """The unitary on the target qubits for the given parameters."""
        if self.builder is not None:
            return self.builder(*params)
        assert self.const is not None
        return self.const


@dataclass(frozen=True)
class Op:
    """One quantum operation: frozen, validated at construction.

    ``gate`` is a :data:`GATESET` name or :data:`UNITARY`; for the
    latter, ``u`` carries the explicit (target) matrix. ``qubits`` lists
    controls first (per the gate's :class:`GateDef`), then targets.
    """

    gate: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()
    #: Explicit target matrix, only for ``gate == UNITARY`` ops.
    u: np.ndarray | None = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if len(set(self.qubits)) != len(self.qubits):
            raise SimulationError(f"duplicate qubits in {self.qubits}")
        if self.gate == UNITARY:
            if self.u is None:
                raise ValueError("unitary ops require an explicit matrix")
            dim = 1 << len(self.qubits)
            mat = np.asarray(self.u, dtype=np.complex128)
            if mat.shape != (dim, dim):
                raise SimulationError(
                    f"matrix shape {mat.shape} does not match {len(self.qubits)} qubits"
                )
            object.__setattr__(self, "u", mat)
            return
        spec = GATESET.get(self.gate)
        if spec is None:
            raise ValueError(f"unknown gate {self.gate!r}; known: {sorted(GATESET)}")
        if len(self.qubits) != spec.n_qubits:
            raise ValueError(
                f"{self.gate}({spec.signature()}) takes {spec.n_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(self.params) != spec.n_params:
            raise ValueError(
                f"{self.gate}({spec.signature()}) takes {spec.n_params} parameters, "
                f"got {len(self.params)}"
            )

    def rebind(self, qubits=None, params=None) -> "Op":
        """A clone with replaced qubits/params, skipping re-validation.

        For trusted template rebinding (the schedule cache replay hot
        path): the template already passed ``__post_init__`` and the
        replacement fields are structurally identical — same arity,
        ints/floats from an already-validated payload — so the clone
        only swaps tuples.
        """
        clone = object.__new__(Op)
        object.__setattr__(clone, "gate", self.gate)
        object.__setattr__(
            clone, "qubits", self.qubits if qubits is None else tuple(qubits)
        )
        object.__setattr__(
            clone, "params", self.params if params is None else tuple(params)
        )
        object.__setattr__(clone, "u", self.u)
        return clone

    # -- structure -------------------------------------------------------
    @property
    def spec(self) -> GateDef | None:
        """The registry entry, or None for :data:`UNITARY` ops."""
        return GATESET.get(self.gate)

    @property
    def n_controls(self) -> int:
        """Number of control qubits (0 for :data:`UNITARY` ops)."""
        spec = self.spec
        return spec.n_controls if spec is not None else 0

    @property
    def controls(self) -> tuple[int, ...]:
        """The control qubits (a prefix of :attr:`qubits`; may be empty)."""
        return self.qubits[: self.n_controls]

    @property
    def targets(self) -> tuple[int, ...]:
        """The target qubits (everything after the controls)."""
        return self.qubits[self.n_controls :]

    # -- semantics -------------------------------------------------------
    def target_matrix(self) -> np.ndarray:
        """The unitary on the target qubits (controls excluded)."""
        if self.u is not None:
            return self.u
        return self.spec.target_matrix(self.params)  # type: ignore[union-attr]

    def matrix(self) -> np.ndarray:
        """The full unitary over :attr:`qubits`, controls included.

        Controls are the most significant axes; the result is
        ``2^k x 2^k`` for ``k = len(qubits)``.
        """
        m = self.target_matrix()
        nc = self.n_controls
        return G.controlled(m, nc) if nc else m

    @cached_property
    def is_diagonal(self) -> bool:
        """True iff the full operator is diagonal in the Z basis.

        Diagonal ops commute with each other, coalesce into
        :class:`DiagBatch` records at flush time, and never need chunk
        exchange on the sharded engine.
        """
        spec = self.spec
        if spec is not None:
            return spec.diagonal
        m = self.u
        if m.shape == (2, 2):  # the fused-single hot path
            return m[0, 1] == 0 and m[1, 0] == 0
        return bool(np.count_nonzero(m - np.diag(np.diagonal(m))) == 0)

    @property
    def is_single(self) -> bool:
        """An uncontrolled one-qubit op (the fusable kind)."""
        return len(self.qubits) == 1 and self.n_controls == 0


# ----------------------------------------------------------------------
# the canonical gate set
# ----------------------------------------------------------------------
GATESET: dict[str, GateDef] = {}

#: Shim installers (``QuantumBackend``, ``QmpiComm``) notified on every
#: registration; see :func:`bind_gateset`.
_BINDERS: list[Callable[[GateDef], None]] = []


def register_gate(gd: GateDef) -> None:
    """Add a gate to the registry and install its convenience methods.

    The name must be a valid identifier and must not shadow an existing
    non-gate attribute of a bound class (``measure``, ``barrier``,
    ``send``, ...) — a collision would silently replace protocol methods
    with a gate shim.
    """
    if gd.name == UNITARY:
        raise ValueError(f"{UNITARY!r} is reserved for explicit-matrix ops")
    if gd.name in GATESET:
        raise ValueError(f"gate {gd.name!r} already registered")
    if not gd.name.isidentifier():
        raise ValueError(f"gate name {gd.name!r} is not a valid identifier")
    GATESET[gd.name] = gd
    try:
        for binder in _BINDERS:
            binder(gd)
    except Exception:
        del GATESET[gd.name]
        raise


def bind_gateset(binder: Callable[[GateDef], None]) -> None:
    """Subscribe a shim installer to the gate registry.

    The installer is applied to every already-registered gate
    immediately and to each future :func:`register_gate`.
    """
    _BINDERS.append(binder)
    for gd in GATESET.values():
        binder(gd)


for _gd in [
    # single-qubit constants
    GateDef("h", ("q",), const=G.H),
    GateDef("x", ("q",), const=G.X),
    GateDef("y", ("q",), const=G.Y),
    GateDef("z", ("q",), const=G.Z, diagonal=True),
    GateDef("s", ("q",), const=G.S, diagonal=True),
    GateDef("sdg", ("q",), const=G.SDG, diagonal=True),
    GateDef("t", ("q",), const=G.T, diagonal=True),
    GateDef("tdg", ("q",), const=G.TDG, diagonal=True),
    # single-qubit rotations
    GateDef("rx", ("q",), ("theta",), builder=G.rx),
    GateDef("ry", ("q",), ("theta",), builder=G.ry),
    GateDef("rz", ("q",), ("theta",), builder=G.rz, diagonal=True),
    GateDef("phase", ("q",), ("lam",), builder=G.phase, diagonal=True),
    # two-qubit
    GateDef("swap", ("a", "b"), const=G.SWAP),
    GateDef("cnot", ("c", "t"), n_controls=1, const=G.X),
    GateDef("cz", ("c", "t"), n_controls=1, const=G.Z, diagonal=True),
    GateDef("crz", ("c", "t"), ("theta",), n_controls=1, builder=G.rz, diagonal=True),
    GateDef("cphase", ("c", "t"), ("lam",), n_controls=1, builder=G.phase, diagonal=True),
    # three-qubit
    GateDef("toffoli", ("c1", "c2", "t"), n_controls=2, const=G.X),
]:
    GATESET[_gd.name] = _gd
