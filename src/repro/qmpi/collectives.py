"""QMPI collective operations (§4.5, Table 3).

Copy-semantics collectives (bcast, gather, scatter, allgather, alltoall)
compose the fanout primitive; ``_move`` variants compose teleportation.
``reduce``/``scan`` use reversible :class:`~repro.qmpi.reductions.QuantumOp`
updates with the linear schedule of §4.6 (Table 1 resources: N-1 EPR pairs
and N-1 classical bits per qubit; the inverses cost zero EPR pairs) plus a
binomial-tree schedule exposing the memory/recompute tradeoff the paper
discusses.

Collectives whose inverse needs retained work qubits return a per-rank
*handle*; pass it to the matching ``un*`` function. This is the Python
shape of the paper's statement that scratch qubits "must be stored and
managed by the implementation until the inverse of the reduction is
applied".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mpi import reduce_ops
from . import p2p
from .cat import cat_state_chain
from .qubit import Qureg, as_qureg
from .reductions import PARITY, QuantumOp

__all__ = [
    "bcast",
    "unbcast",
    "gather",
    "ungather",
    "gatherv",
    "ungatherv",
    "scatter",
    "unscatter",
    "scatterv",
    "unscatterv",
    "allgather",
    "unallgather",
    "alltoall",
    "unalltoall",
    "alltoallv",
    "unalltoallv",
    "reduce",
    "unreduce",
    "allreduce",
    "unallreduce",
    "reduce_scatter_block",
    "unreduce_scatter_block",
    "scan",
    "unscan",
    "exscan",
    "unexscan",
    "gather_move",
    "scatter_move",
    "alltoall_move",
    "BcastHandle",
    "ReduceHandle",
    "ScanHandle",
    "GatherHandle",
    "AllgatherHandle",
]


# ----------------------------------------------------------------------
# broadcast
# ----------------------------------------------------------------------
@dataclass
class BcastHandle:
    """Per-rank record of a broadcast: enough to run unbcast."""

    qubits: Qureg
    root: int
    tag: int
    algorithm: str


def bcast(qc, qubits, root: int = 0, tag: int = 0, algorithm: str = "tree") -> BcastHandle:
    """Fan out the root's qubits so every rank holds an entangled copy.

    ``qubits``: on the root, the data; elsewhere fresh |0> targets.

    Algorithms:

    * ``"tree"`` — binomial tree of sends, runtime E*ceil(log2 N), S=1
      suffices (§7.1 first construction).
    * ``"cat"`` — chain cat state + one parity measurement at the root,
      constant quantum time 2E + D_M + D_F (§7.1 optimized construction,
      Fig. 4; requires S >= 2 on internal nodes).
    """
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope("bcast"):
        if size == 1:
            return BcastHandle(qubits, root, tag, algorithm)
        if algorithm == "tree":
            rel = (rank - root) % size
            mask = 1
            while mask < size:
                if rel < mask:
                    peer = rel + mask
                    if peer < size:
                        p2p.send(qc, qubits, (peer + root) % size, tag)
                elif rel < 2 * mask:
                    p2p.recv(qc, qubits, ((rel - mask) + root) % size, tag)
                mask <<= 1
        elif algorithm == "cat":
            for i, q in enumerate(qubits):
                _bcast_cat_one(qc, q, root, tag + i)
        else:
            raise ValueError(f"unknown bcast algorithm {algorithm!r}")
        return BcastHandle(qubits, root, tag, algorithm)


def _bcast_cat_one(qc, qubit: int, root: int, tag: int) -> None:
    rank = qc.rank
    if rank == root:
        (share,) = qc.backend.alloc(rank, 1)
        cat_state_chain(qc, share, tag)
        # Parity measurement between the data qubit and the root's cat
        # share extends the fanout to the data value (§7.1).
        qc.backend.cnot(rank, qubit, share)
        m = qc.backend.measure_and_release(rank, share)
    else:
        cat_state_chain(qc, qubit, tag)
        m = None
    m = qc.comm.bcast(m, root=root)
    qc.ledger.record_classical(1)
    if rank != root:
        qc.backend.apply_pauli_if(rank, m, "X", qubit)


def unbcast(qc, handle: BcastHandle) -> None:
    """Uncompute all copies created by a bcast.

    Algorithm-independent: each non-root measures its copies in the X
    basis (releasing them) and the XOR of outcomes drives a Z fixup at the
    root — N-1 classical bits per qubit, zero EPR pairs (Table 1 uncopy).
    """
    rank = qc.rank
    qc.flush_ops()
    with qc.ledger.scope("unbcast"):
        if qc.size == 1:
            return
        for q in handle.qubits:
            if rank != handle.root:
                qc.backend.h(rank, q)
                m = qc.backend.measure_and_release(rank, q)
                qc.ledger.record_classical(1)
            else:
                m = 0
            total = qc.comm.reduce(m, reduce_ops.BXOR, root=handle.root)
            if rank == handle.root:
                qc.backend.apply_pauli_if(rank, total, "Z", q)


# ----------------------------------------------------------------------
# gather / scatter (copy semantics)
# ----------------------------------------------------------------------
@dataclass
class GatherHandle:
    root: int
    tag: int
    #: On the root: rank -> received copy register. Elsewhere: own data.
    received: dict = field(default_factory=dict)
    sent: Qureg | None = None
    move: bool = False


def gather(qc, qubits, root: int = 0, tag: int = 0) -> tuple[Qureg | None, GatherHandle]:
    """Gather entangled copies of every rank's register at the root.

    Returns ``(result, handle)``: on the root, ``result`` is the
    concatenation over ranks (the root's own block is its original data);
    elsewhere ``result`` is None.
    """
    return _gather_impl(qc, qubits, root, tag, move=False, op="gather")


def gather_move(qc, qubits, root: int = 0, tag: int = 0) -> tuple[Qureg | None, GatherHandle]:
    """Gather with move semantics: qubits teleport to the root (e.g. to
    co-locate rotation targets with magic-state factories, §4.5)."""
    return _gather_impl(qc, qubits, root, tag, move=True, op="gather_move")


def _gather_impl(qc, qubits, root, tag, move, op):
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope(op):
        handle = GatherHandle(root=root, tag=tag, move=move)
        if rank == root:
            blocks: list[Qureg] = []
            for src in range(size):
                if src == root:
                    blocks.append(qubits)
                    continue
                target = qc.backend.alloc(rank, len(qubits))
                if move:
                    p2p.recv_move(qc, target, src, tag, _op=op)
                else:
                    p2p.recv(qc, target, src, tag, _op=op)
                handle.received[src] = target
                blocks.append(target)
            out = Qureg([q for blk in blocks for q in blk])
            return out, handle
        if move:
            p2p.send_move(qc, qubits, root, tag, _op=op)
        else:
            p2p.send(qc, qubits, root, tag, _op=op)
        handle.sent = qubits
        return None, handle


def ungather(qc, handle: GatherHandle) -> None:
    """Inverse of gather: root unreceives every copy, sources apply Z."""
    rank = qc.rank
    qc.flush_ops()
    with qc.ledger.scope("ungather"):
        if rank == handle.root:
            for src, reg in handle.received.items():
                if handle.move:
                    p2p.unrecv_move(qc, reg, src, handle.tag)
                else:
                    p2p.unrecv(qc, reg, src, handle.tag)
        elif handle.sent is not None:
            if handle.move:
                fresh = p2p.unsend_move(qc, len(handle.sent), handle.root, handle.tag)
                handle.sent = fresh
            else:
                p2p.unsend(qc, handle.sent, handle.root, handle.tag)


def gatherv(qc, qubits, counts: list[int], root: int = 0, tag: int = 0):
    """Gather with per-rank register sizes (``counts[r]`` qubits from r)."""
    qubits = as_qureg(qubits)
    if len(qubits) != counts[qc.rank]:
        raise ValueError("register size does not match counts[rank]")
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope("gatherv"):
        handle = GatherHandle(root=root, tag=tag, move=False)
        if rank == root:
            blocks = []
            for src in range(size):
                if src == root:
                    blocks.append(qubits)
                    continue
                target = qc.backend.alloc(rank, counts[src]) if counts[src] else Qureg(())
                if counts[src]:
                    p2p.recv(qc, target, src, tag, _op="gatherv")
                handle.received[src] = target
                blocks.append(target)
            return Qureg([q for blk in blocks for q in blk]), handle
        if len(qubits):
            p2p.send(qc, qubits, root, tag, _op="gatherv")
        handle.sent = qubits
        return None, handle


def ungatherv(qc, handle: GatherHandle) -> None:
    ungather(qc, handle)


@dataclass
class ScatterHandle:
    root: int
    tag: int
    move: bool
    #: root: list of per-destination source registers; non-root: received.
    kept: dict = field(default_factory=dict)
    received: Qureg | None = None


def scatter(qc, qubits, recv_qubits, root: int = 0, tag: int = 0) -> tuple[Qureg, "ScatterHandle"]:
    """Scatter blocks of the root's register as entangled copies.

    On the root ``qubits`` is the full register (``size`` equal blocks);
    ``recv_qubits`` is each rank's fresh |0> target block (the root's own
    block is returned as-is without communication).
    """
    return _scatter_impl(qc, qubits, recv_qubits, root, tag, move=False, op="scatter")


def scatter_move(qc, qubits, recv_qubits, root: int = 0, tag: int = 0):
    """Scatter with move semantics (teleport blocks out; §4.5's example of
    spreading rotation qubits across nodes for factory parallelism)."""
    return _scatter_impl(qc, qubits, recv_qubits, root, tag, move=True, op="scatter_move")


def _scatter_impl(qc, qubits, recv_qubits, root, tag, move, op):
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope(op):
        handle = ScatterHandle(root=root, tag=tag, move=move)
        if rank == root:
            qubits = as_qureg(qubits)
            if len(qubits) % size:
                raise ValueError("scatter register must split into equal blocks")
            blk = len(qubits) // size
            blocks = {dst: qubits[dst * blk : (dst + 1) * blk] for dst in range(size)}
            for dst in range(size):
                if dst == root:
                    continue
                if move:
                    p2p.send_move(qc, blocks[dst], dst, tag, _op=op)
                else:
                    p2p.send(qc, blocks[dst], dst, tag, _op=op)
                handle.kept[dst] = blocks[dst]
            handle.received = blocks[root]
            return blocks[root], handle
        recv_qubits = as_qureg(recv_qubits)
        if move:
            p2p.recv_move(qc, recv_qubits, root, tag, _op=op)
        else:
            p2p.recv(qc, recv_qubits, root, tag, _op=op)
        handle.received = recv_qubits
        return recv_qubits, handle


def unscatter(qc, handle: ScatterHandle) -> None:
    """Inverse of scatter: non-roots unreceive, root applies fixups."""
    rank = qc.rank
    qc.flush_ops()
    with qc.ledger.scope("unscatter"):
        if rank == handle.root:
            for dst, block in handle.kept.items():
                if handle.move:
                    p2p.unsend_move(qc, block, dst, handle.tag)
                else:
                    p2p.unsend(qc, block, dst, handle.tag)
        else:
            if handle.move:
                p2p.unrecv_move(qc, handle.received, handle.root, handle.tag)
            else:
                p2p.unrecv(qc, handle.received, handle.root, handle.tag)


def scatterv(qc, qubits, counts: list[int], recv_qubits, root: int = 0, tag: int = 0):
    """Scatter with per-rank block sizes."""
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope("scatterv"):
        handle = ScatterHandle(root=root, tag=tag, move=False)
        if rank == root:
            qubits = as_qureg(qubits)
            if len(qubits) != sum(counts):
                raise ValueError("scatterv register size != sum(counts)")
            off = 0
            blocks = {}
            for dst in range(size):
                blocks[dst] = qubits[off : off + counts[dst]]
                off += counts[dst]
            for dst in range(size):
                if dst == root or not counts[dst]:
                    continue
                p2p.send(qc, blocks[dst], dst, tag, _op="scatterv")
                handle.kept[dst] = blocks[dst]
            handle.received = blocks[root]
            return blocks[root], handle
        recv_qubits = as_qureg(recv_qubits)
        if len(recv_qubits):
            p2p.recv(qc, recv_qubits, root, tag, _op="scatterv")
        handle.received = recv_qubits
        return recv_qubits, handle


def unscatterv(qc, handle: ScatterHandle) -> None:
    unscatter(qc, handle)


# ----------------------------------------------------------------------
# allgather / alltoall
# ----------------------------------------------------------------------
@dataclass
class AllgatherHandle:
    tag: int
    bcast_handles: list = field(default_factory=list)


def allgather(qc, qubits, tag: int = 0, algorithm: str = "tree") -> tuple[Qureg, AllgatherHandle]:
    """Every rank ends with copies of every rank's register.

    Returns a register of ``size * len(qubits)`` qubits ordered by source
    rank (own block = own original data). Implemented as one bcast per
    source (Table 3: copy resources).
    """
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope("allgather"):
        handle = AllgatherHandle(tag=tag)
        blocks: list[Qureg] = []
        for src in range(size):
            if src == rank:
                block = qubits
            else:
                block = qc.backend.alloc(rank, len(qubits))
            h = bcast(qc, block, root=src, tag=tag + src, algorithm=algorithm)
            handle.bcast_handles.append(h)
            blocks.append(block)
        return Qureg([q for blk in blocks for q in blk]), handle


def unallgather(qc, handle: AllgatherHandle) -> None:
    qc.flush_ops()
    with qc.ledger.scope("unallgather"):
        for h in handle.bcast_handles:
            unbcast(qc, h)


@dataclass
class AlltoallHandle:
    tag: int
    move: bool
    #: per-source received blocks and per-destination sent blocks
    received: dict = field(default_factory=dict)
    sent: dict = field(default_factory=dict)


def alltoall(qc, qubits, tag: int = 0) -> tuple[Qureg, AlltoallHandle]:
    """Personalized exchange of entangled copies.

    ``qubits`` holds ``size`` equal blocks, block j destined for rank j.
    Returns blocks ordered by source rank; the diagonal block stays local.
    """
    return _alltoall_impl(qc, qubits, tag, move=False, op="alltoall")


def alltoall_move(qc, qubits, tag: int = 0) -> tuple[Qureg, AlltoallHandle]:
    """Personalized exchange with move semantics (Table 3 in-place note)."""
    return _alltoall_impl(qc, qubits, tag, move=True, op="alltoall_move")


def _alltoall_impl(qc, qubits, tag, move, op):
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    if len(qubits) % size:
        raise ValueError("alltoall register must split into equal blocks")
    blk = len(qubits) // size
    qc.flush_ops()
    with qc.ledger.scope(op):
        handle = AlltoallHandle(tag=tag, move=move)
        out_blocks: dict[int, Qureg] = {rank: qubits[rank * blk : (rank + 1) * blk]}
        # Post all sends non-blocking, then collect receives: the quantum
        # analogue of the classical eager exchange, deadlock-free.
        send_reqs = []
        for dst in range(size):
            if dst == rank:
                continue
            block = qubits[dst * blk : (dst + 1) * blk]
            handle.sent[dst] = block
            send_reqs.append(p2p.isend(qc, block, dst, tag, move=move, _op=op))
        for src in range(size):
            if src == rank:
                continue
            target = qc.backend.alloc(rank, blk)
            if move:
                p2p.recv_move(qc, target, src, tag, _op=op)
            else:
                p2p.recv(qc, target, src, tag, _op=op)
            handle.received[src] = target
            out_blocks[src] = target
        for req in send_reqs:
            req.wait()
        return Qureg([q for s in range(size) for q in out_blocks[s]]), handle


def unalltoall(qc, handle: AlltoallHandle) -> None:
    rank = qc.rank
    qc.flush_ops()
    with qc.ledger.scope("unalltoall"):
        for src, reg in handle.received.items():
            if handle.move:
                p2p.unrecv_move(qc, reg, src, handle.tag)
            else:
                p2p.unrecv(qc, reg, src, handle.tag)
        for dst, reg in handle.sent.items():
            if handle.move:
                fresh = p2p.unsend_move(qc, len(reg), dst, handle.tag)
                handle.sent[dst] = fresh
            else:
                p2p.unsend(qc, reg, dst, handle.tag)


def alltoallv(qc, qubits, send_counts: list[int], tag: int = 0):
    """Personalized exchange with per-destination counts (copy semantics).

    ``send_counts[j]`` qubits go to rank j; the matrix of counts is
    allgathered classically so receivers know their block sizes.
    """
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    if len(qubits) != sum(send_counts):
        raise ValueError("alltoallv register size != sum(send_counts)")
    qc.flush_ops()
    with qc.ledger.scope("alltoallv"):
        matrix = qc.comm.allgather(list(send_counts))
        handle = AlltoallHandle(tag=tag, move=False)
        off = 0
        my_block = None
        send_reqs = []
        for dst in range(size):
            block = qubits[off : off + send_counts[dst]]
            off += send_counts[dst]
            if dst == rank:
                my_block = block
                continue
            handle.sent[dst] = block
            if len(block):
                send_reqs.append(p2p.isend(qc, block, dst, tag, _op="alltoallv"))
        out_blocks = {rank: my_block}
        for src in range(size):
            if src == rank:
                continue
            cnt = matrix[src][rank]
            target = qc.backend.alloc(rank, cnt) if cnt else Qureg(())
            if cnt:
                p2p.recv(qc, target, src, tag, _op="alltoallv")
            handle.received[src] = target
            out_blocks[src] = target
        for req in send_reqs:
            req.wait()
        return Qureg([q for s in range(size) for q in out_blocks[s]]), handle


def unalltoallv(qc, handle: AlltoallHandle) -> None:
    unalltoall(qc, handle)


# ----------------------------------------------------------------------
# reduce / allreduce / reduce_scatter
# ----------------------------------------------------------------------
@dataclass
class ReduceHandle:
    root: int
    tag: int
    op: QuantumOp
    schedule: str
    out: Qureg | None
    #: root: rank -> retained fanned-in copy register (the §4.6 work
    #: qubits that make unreduce EPR-free).
    copies: dict = field(default_factory=dict)
    own: Qureg | None = None
    #: tree schedule: (peer, partial register) bookkeeping per rank.
    tree_log: list = field(default_factory=list)
    acc: Qureg | None = None


def reduce(
    qc,
    qubits,
    out=None,
    op: QuantumOp = PARITY,
    root: int = 0,
    tag: int = 0,
    schedule: str = "linear",
) -> tuple[Qureg | None, ReduceHandle]:
    """Reversible reduction of every rank's register into ``out`` at root.

    ``out``: fresh |0> register on the root (allocated when None).
    All input registers are preserved (copy semantics); the handle retains
    the fanned-in copies so :func:`unreduce` needs no EPR pairs (Table 1:
    reduce N-1 EPR / N-1 bits, unreduce 0 EPR / N-1 bits per qubit).
    """
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    qc.flush_ops()
    with qc.ledger.scope("reduce"):
        if schedule == "linear":
            handle = ReduceHandle(root, tag, op, schedule, None)
            if rank == root:
                if out is None:
                    out = qc.backend.alloc(rank, len(qubits))
                out = as_qureg(out)
                op.apply(qc, qubits, out)
                handle.own = qubits
                for src in range(size):
                    if src == root:
                        continue
                    copy = qc.backend.alloc(rank, len(qubits))
                    p2p.recv(qc, copy, src, tag, _op="reduce")
                    op.apply(qc, copy, out)
                    handle.copies[src] = copy
                handle.out = out
                return out, handle
            p2p.send(qc, qubits, root, tag, _op="reduce")
            handle.own = qubits
            return None, handle
        if schedule == "tree":
            return _reduce_tree(qc, qubits, out, op, root, tag)
        raise ValueError(f"unknown reduce schedule {schedule!r}")


def _reduce_tree(qc, qubits, out, op, root, tag):
    """Binomial-tree reduce: log-depth combining.

    Each participating rank accumulates into a local register, receiving
    partial results from peers. Intermediate partials are retained as work
    qubits (more memory than linear — §4.6's stated tradeoff), making the
    inverse EPR-free here too.
    """
    rank, size = qc.rank, qc.size
    rel = (rank - root) % size
    handle = ReduceHandle(root, tag, op, "tree", None)
    acc = qc.backend.alloc(rank, len(qubits))
    op.apply(qc, qubits, acc)
    handle.own = qubits
    handle.acc = acc
    mask = 1
    while mask < size:
        if rel & mask:
            dst = ((rel - mask) + root) % size
            p2p.send(qc, acc, dst, tag, _op="reduce")
            handle.tree_log.append(("sent", dst))
            break
        peer = rel + mask
        if peer < size:
            src = (peer + root) % size
            copy = qc.backend.alloc(rank, len(qubits))
            p2p.recv(qc, copy, src, tag, _op="reduce")
            op.apply(qc, copy, acc)
            handle.copies[src] = copy
            handle.tree_log.append(("recv", src))
        mask <<= 1
    if rank == root:
        handle.out = acc
        return acc, handle
    return None, handle


def unreduce(qc, handle: ReduceHandle) -> None:
    """Uncompute a reduction: zero EPR pairs, N-1 classical bits/qubit."""
    rank = qc.rank
    qc.flush_ops()
    with qc.ledger.scope("unreduce"):
        if handle.schedule == "linear":
            if rank == handle.root:
                for src, copy in handle.copies.items():
                    handle.op.unapply(qc, copy, handle.out)
                    p2p.unrecv(qc, copy, src, handle.tag)
                handle.op.unapply(qc, handle.own, handle.out)
                qc.backend.free(rank, handle.out)
            else:
                p2p.unsend(qc, handle.own, handle.root, handle.tag)
            return
        # tree schedule: unwind in reverse order of the combining log.
        for kind, peer in reversed(handle.tree_log):
            if kind == "recv":
                copy = handle.copies[peer]
                handle.op.unapply(qc, copy, handle.acc)
                p2p.unrecv(qc, copy, peer, handle.tag)
            else:
                p2p.unsend(qc, handle.acc, peer, handle.tag)
        handle.op.unapply(qc, handle.own, handle.acc)
        qc.backend.free(rank, handle.acc)


def allreduce(
    qc, qubits, op: QuantumOp = PARITY, tag: int = 0, schedule: str = "linear"
) -> tuple[Qureg, "AllreduceHandle"]:
    """Reduce to rank 0 then broadcast the result register (Table 3:
    reduce + copy). Every rank gets an entangled copy of the result."""
    qc.flush_ops()
    with qc.ledger.scope("allreduce"):
        res, rh = reduce(qc, qubits, None, op, 0, tag, schedule)
        if qc.rank == 0:
            reg = res
        else:
            reg = qc.backend.alloc(qc.rank, len(as_qureg(qubits)))
        bh = bcast(qc, reg, root=0, tag=tag + 1)
        return reg, AllreduceHandle(rh, bh)


@dataclass
class AllreduceHandle:
    reduce_handle: ReduceHandle
    bcast_handle: BcastHandle


def unallreduce(qc, handle: AllreduceHandle) -> None:
    qc.flush_ops()
    with qc.ledger.scope("unallreduce"):
        unbcast(qc, handle.bcast_handle)
        unreduce(qc, handle.reduce_handle)


def reduce_scatter_block(
    qc, qubits, op: QuantumOp = PARITY, tag: int = 0
) -> tuple[Qureg, list]:
    """Each rank contributes ``size`` blocks; rank j receives the reduction
    of everyone's block j (Table 3: reduce resources)."""
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    if len(qubits) % size:
        raise ValueError("reduce_scatter register must split into equal blocks")
    blk = len(qubits) // size
    qc.flush_ops()
    with qc.ledger.scope("reduce_scatter_block"):
        handles = []
        result: Qureg | None = None
        for dst in range(size):
            block = qubits[dst * blk : (dst + 1) * blk]
            res, h = reduce(qc, block, None, op, dst, tag + dst)
            handles.append(h)
            if dst == rank:
                result = res
        return result, handles


def unreduce_scatter_block(qc, handles: list) -> None:
    qc.flush_ops()
    with qc.ledger.scope("unreduce_scatter_block"):
        for h in reversed(handles):
            unreduce(qc, h)


# ----------------------------------------------------------------------
# scan / exscan
# ----------------------------------------------------------------------
@dataclass
class ScanHandle:
    tag: int
    op: QuantumOp
    inclusive: bool
    out: Qureg
    #: carry register fanned in from rank-1 (work qubits; None on rank 0)
    carry: Qureg | None
    #: this rank's own input register (needed for the unscan fixups)
    own: Qureg | None = None


def scan(
    qc, qubits, out=None, op: QuantumOp = PARITY, tag: int = 0
) -> tuple[Qureg, ScanHandle]:
    """Inclusive reversible prefix reduction (linear carry chain, §4.6).

    Rank r's ``out`` register ends as op-fold of ranks 0..r. Resources per
    qubit: N-1 EPR pairs, N-1 classical bits (Table 1 scan).
    """
    return _scan_impl(qc, qubits, out, op, tag, inclusive=True)


def exscan(
    qc, qubits, out=None, op: QuantumOp = PARITY, tag: int = 0
) -> tuple[Qureg, ScanHandle]:
    """Exclusive prefix reduction: rank r gets the fold of ranks 0..r-1
    (rank 0's out stays |0>)."""
    return _scan_impl(qc, qubits, out, op, tag, inclusive=False)


def _scan_impl(qc, qubits, out, op, tag, inclusive):
    qubits = as_qureg(qubits)
    rank, size = qc.rank, qc.size
    name = "scan" if inclusive else "exscan"
    qc.flush_ops()
    with qc.ledger.scope(name):
        if out is None:
            out = qc.backend.alloc(rank, len(qubits))
        out = as_qureg(out)
        carry: Qureg | None = None
        if rank > 0:
            carry = qc.backend.alloc(rank, len(qubits))
            p2p.recv(qc, carry, rank - 1, tag, _op=name)
            op.apply(qc, carry, out)
        if inclusive:
            op.apply(qc, qubits, out)
        if rank + 1 < size:
            # Forward the cumulative value: fan out a register that holds
            # carry ⊕ own. Compute it into the carry copy (reversible),
            # send, then restore so the handle retains the clean carry.
            if carry is not None:
                op.apply(qc, qubits, carry)
                p2p.send(qc, carry, rank + 1, tag, _op=name)
                op.unapply(qc, qubits, carry)
            else:
                p2p.send(qc, qubits, rank + 1, tag, _op=name)
        return out, ScanHandle(tag, op, inclusive, out, carry, own=qubits)


def unscan(qc, handle: ScanHandle) -> None:
    """Uncompute a scan/exscan: zero EPR pairs, N-1 bits per qubit.

    The unfanout chain runs from the *last* rank backwards: each rank
    uncomputes its out register locally, then unreceives its carry copy
    (which requires the downstream rank to have finished first — the
    classical fixup bits provide that ordering).
    """
    rank, size = qc.rank, qc.size
    name = "unscan" if handle.inclusive else "unexscan"
    qc.flush_ops()
    with qc.ledger.scope(name):
        if handle.inclusive:
            handle.op.unapply(qc, _own_of(qc, handle), handle.out)
        if handle.carry is not None:
            handle.op.unapply(qc, handle.carry, handle.out)
        qc.backend.free(rank, handle.out)
        # Unfanout the carry chain: the copy at rank r was fanned out by
        # rank r-1 from a register that was then restored; the value it
        # holds is entangled with ranks < r. X-basis measure + Z fixup at
        # the sender's side. Must run downstream-first.
        if rank + 1 < size:
            # Wait for downstream's unfanout fixup of the value we sent.
            _apply_downstream_fixup(qc, handle, rank)
        if handle.carry is not None:
            p2p.unrecv(qc, handle.carry, rank - 1, handle.tag)


def _own_of(qc, handle: ScanHandle) -> Qureg:
    if handle.own is None:  # pragma: no cover - defensive
        raise ValueError("scan handle is missing its input register")
    return handle.own


def _apply_downstream_fixup(qc, handle: ScanHandle, rank: int) -> None:
    # The register we fanned to rank+1 was 'carry ⊕ own' (or 'own' at rank
    # 0), temporarily materialized during scan. Its copy downstream is
    # being unreceived; the Z fixup lands on our registers: recompute the
    # combined register, unsend into it, then restore.
    if handle.carry is not None:
        handle.op.apply(qc, _own_of(qc, handle), handle.carry)
        p2p.unsend(qc, handle.carry, rank + 1, handle.tag)
        handle.op.unapply(qc, _own_of(qc, handle), handle.carry)
    else:
        p2p.unsend(qc, _own_of(qc, handle), rank + 1, handle.tag)


def unexscan(qc, handle: ScanHandle) -> None:
    unscan(qc, handle)
