"""QMPI datatypes (§4.2).

``QMPI_QUBIT`` is the only basic quantum datatype; composite layouts are
built by the programmer with ``QMPI_Type_*`` constructors, as in classical
MPI. A datatype here is a *layout*: given a base register, it selects the
qubit ids that make up one element of that type. This lets protocol code
send "one quantum integer" or "every other qubit" without the paper's
restriction against mixing classical and quantum data ever arising — the
type system is qubits all the way down.
"""

from __future__ import annotations

from dataclasses import dataclass

from .qubit import Qureg, as_qureg

__all__ = ["QubitType", "QMPI_QUBIT", "type_contiguous", "type_vector", "type_indexed"]


@dataclass(frozen=True)
class QubitType:
    """A qubit-selection layout.

    ``offsets`` are relative qubit indices into a base register; ``extent``
    is how far one element reaches (for striding multiple elements).
    """

    name: str
    offsets: tuple[int, ...]
    extent: int

    @property
    def size(self) -> int:
        """Number of qubits one element occupies."""
        return len(self.offsets)

    def extract(self, reg, index: int = 0) -> Qureg:
        """Qubit ids of the ``index``-th element within ``reg``."""
        reg = as_qureg(reg)
        base = index * self.extent
        ids = []
        for off in self.offsets:
            pos = base + off
            if pos >= len(reg):
                raise IndexError(
                    f"{self.name}: element {index} reaches qubit {pos} but the "
                    f"register has {len(reg)}"
                )
            ids.append(reg[pos])
        return Qureg(ids)

    def count_in(self, reg) -> int:
        """How many whole elements fit in ``reg``."""
        reg = as_qureg(reg)
        if self.extent == 0:
            return 0
        return (len(reg) - max(self.offsets) - 1) // self.extent + 1 if reg else 0


#: The basic single-qubit datatype.
QMPI_QUBIT = QubitType("QMPI_QUBIT", (0,), 1)


def type_contiguous(count: int, base: QubitType = QMPI_QUBIT, name: str | None = None) -> QubitType:
    """``count`` consecutive elements of ``base`` (QMPI_Type_contiguous).

    ``type_contiguous(8)`` is an 8-qubit register type — e.g. a quantum
    byte for arithmetic reductions.
    """
    if count < 1:
        raise ValueError("count must be positive")
    offsets = []
    for i in range(count):
        offsets.extend(i * base.extent + off for off in base.offsets)
    return QubitType(name or f"contig({count},{base.name})", tuple(offsets), count * base.extent)


def type_vector(count: int, blocklength: int, stride: int, base: QubitType = QMPI_QUBIT) -> QubitType:
    """``count`` blocks of ``blocklength`` elements, ``stride`` apart
    (QMPI_Type_vector)."""
    if count < 1 or blocklength < 1 or stride < blocklength:
        raise ValueError("invalid vector layout")
    offsets = []
    for b in range(count):
        for i in range(blocklength):
            pos = (b * stride + i) * base.extent
            offsets.extend(pos + off for off in base.offsets)
    extent = ((count - 1) * stride + blocklength) * base.extent
    return QubitType(f"vector({count},{blocklength},{stride})", tuple(offsets), extent)


def type_indexed(indices: list[int], base: QubitType = QMPI_QUBIT) -> QubitType:
    """Arbitrary element picks (QMPI_Type_indexed, block length 1)."""
    if not indices:
        raise ValueError("indices must be non-empty")
    if len(set(indices)) != len(indices):
        raise ValueError("indices must be unique")
    offsets = []
    for i in indices:
        offsets.extend(i * base.extent + off for off in base.offsets)
    return QubitType(f"indexed({len(indices)})", tuple(offsets), max(indices) * base.extent + base.extent)
