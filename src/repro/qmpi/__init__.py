"""QMPI — the quantum Message Passing Interface (the paper's contribution).

Layering:

* :mod:`~repro.qmpi.ops` — typed operation IR: :class:`Op` records and
  the canonical ``GATESET`` registry
* :mod:`~repro.qmpi.stream` — per-rank op streams: fusion + batched
  ``apply_ops`` dispatch
* :mod:`~repro.qmpi.backend` — quantum backends: shared (§6 semantics)
  and sharded (chunk-distributed amplitudes), behind one registry
* :mod:`~repro.qmpi.epr` — EPR pair establishment + S-limited buffers
* :mod:`~repro.qmpi.p2p` — copy/move sends and their inverses (Table 2)
* :mod:`~repro.qmpi.collectives` — Table 3 collectives incl. cat-state bcast
* :mod:`~repro.qmpi.reductions` — reversible reduction ops (PARITY, SUM)
* :mod:`~repro.qmpi.cat` — constant-depth cat states (Fig. 4)
* :mod:`~repro.qmpi.persistent` — §4.7 persistent requests
* :mod:`~repro.qmpi.api` — the QmpiComm facade and the qmpi_run launcher
* :mod:`~repro.qmpi.jobs` — concurrent job submission (qmpi_submit)
"""

from . import collectives, p2p
from .api import QmpiComm, QmpiWorld, qmpi_run
from .backend import (
    BACKENDS,
    LocalityError,
    QuantumBackend,
    SharedBackend,
    ShardedBackend,
    make_backend,
    register_backend,
)
from .cat import CatHandle, cat_state_chain, cat_state_tree, uncat
from .datatypes import QMPI_QUBIT, QubitType, type_contiguous, type_indexed, type_vector
from .epr import EprBufferFull, EprService
from .jobs import JobFuture, JobRunner, qmpi_submit
from .ops import GATESET, UNITARY, ContractionPlan, DiagBatch, GateDef, Op, register_gate
from .persistent import PersistentChannel
from .qubit import Qureg
from .reductions import PARITY, SUM, QuantumOp
from .resource import Ledger, LedgerSnapshot
from .stream import FUSION_MODES, OpStream
from ..sim.schedule import DEFAULT_COST_MODEL, CostModel
from ..sim.shots import ShotBits, ShotDivergenceError

__all__ = [
    "QmpiComm",
    "QmpiWorld",
    "qmpi_run",
    "qmpi_submit",
    "JobRunner",
    "JobFuture",
    "ShotBits",
    "ShotDivergenceError",
    "SharedBackend",
    "ShardedBackend",
    "QuantumBackend",
    "BACKENDS",
    "make_backend",
    "register_backend",
    "LocalityError",
    "Op",
    "GateDef",
    "DiagBatch",
    "ContractionPlan",
    "GATESET",
    "UNITARY",
    "register_gate",
    "OpStream",
    "FUSION_MODES",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "EprService",
    "EprBufferFull",
    "Qureg",
    "Ledger",
    "LedgerSnapshot",
    "PARITY",
    "SUM",
    "QuantumOp",
    "PersistentChannel",
    "QubitType",
    "QMPI_QUBIT",
    "type_contiguous",
    "type_vector",
    "type_indexed",
    "cat_state_chain",
    "cat_state_tree",
    "uncat",
    "CatHandle",
    "collectives",
    "p2p",
]
