"""EPR pair establishment: rendezvous matching and buffer accounting.

§4.3: "The basic building block and most time consuming part for all
quantum communication is the creation of EPR pairs between qubits on the
sending and receiving ranks."

Both endpoints call :meth:`EprService.prepare` with their fresh |0> qubit;
the second arrival entangles the two qubits under the backend lock (the
physical analogue: the interconnect heralds the pair). Matching keys
carry a *direction* for protocol-internal pairs, so two simultaneous
opposite-direction transfers between the same ranks never cross wires;
the public ``QMPI_Prepare_EPR`` uses symmetric (unordered) keys exactly
as in the paper's §6 example.

Buffer accounting implements the SENDQ ``S`` parameter functionally: each
completed ``prepare`` occupies one slot of the rank's EPR buffer until the
half-pair is consumed by a protocol. With ``s_limit`` set, exceeding the
buffer raises :class:`EprBufferFull` — making S-violating schedules fail
loudly in simulation, not just in the model.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..mpi.errors import MpiAbort
from .backend import QuantumBackend
from .resource import Ledger

__all__ = ["EprService", "EprRequest", "EprBufferFull", "EprKey"]


class EprBufferFull(RuntimeError):
    """A rank exceeded its EPR buffer capacity S."""


@dataclass(frozen=True)
class EprKey:
    """Matching key for one EPR rendezvous stream."""

    context: int
    lo: int
    hi: int
    tag: int
    #: 0 = symmetric (user-level Prepare_EPR); otherwise the source rank + 1
    #: of the directed protocol stream.
    direction: int = 0


@dataclass
class _Pending:
    rank: int
    qubit: int
    done: threading.Event = field(default_factory=threading.Event)
    #: Continuation run when the pair is established (see iprepare). The
    #: poster's ``done`` event is only set after the callback completes.
    callback: object = None


class EprRequest:
    """Handle for an asynchronous EPR preparation (QMPI_Iprepare_EPR)."""

    def __init__(self, service: "EprService", pending: _Pending):
        self._service = service
        self._pending = pending

    def wait(self) -> None:
        self._service._await(self._pending)

    def test(self) -> bool:
        return self._pending.done.is_set()


class EprService:
    """Shared rendezvous table for one QMPI world."""

    def __init__(
        self,
        backend: QuantumBackend,
        ledger: Ledger,
        s_limit: Optional[int] = None,
        abort: Optional[threading.Event] = None,
    ):
        self.backend = backend
        self.ledger = ledger
        self.s_limit = s_limit
        self.abort = abort or threading.Event()
        # RLock: match-time continuations may re-enter (e.g. consume()).
        self._cond = threading.Condition(threading.RLock())
        self._table: dict[EprKey, deque[_Pending]] = {}
        self._buffered: dict[int, int] = {}

    # ------------------------------------------------------------------
    # buffer accounting (the SENDQ S parameter, enforced functionally)
    # ------------------------------------------------------------------
    def buffered(self, rank: int) -> int:
        with self._cond:
            return self._buffered.get(rank, 0)

    def _reserve(self, rank: int) -> None:
        # caller holds self._cond
        n = self._buffered.get(rank, 0)
        if self.s_limit is not None and n >= self.s_limit:
            raise EprBufferFull(
                f"rank {rank}: EPR buffer full (S = {self.s_limit}); "
                "consume a pair before preparing another"
            )
        self._buffered[rank] = n + 1

    def consume(self, rank: int) -> None:
        """A protocol consumed one buffered EPR half on ``rank``."""
        with self._cond:
            n = self._buffered.get(rank, 0)
            if n <= 0:
                raise RuntimeError(f"rank {rank} consumed an EPR half it never had")
            self._buffered[rank] = n - 1

    # ------------------------------------------------------------------
    # rendezvous
    # ------------------------------------------------------------------
    def _key(self, rank: int, peer: int, tag: int, context: int, direction: int) -> EprKey:
        return EprKey(context, min(rank, peer), max(rank, peer), tag, direction)

    def iprepare(
        self,
        rank: int,
        qubit: int,
        peer: int,
        tag: int = 0,
        context: int = 0,
        direction: int = 0,
        on_match=None,
    ) -> EprRequest:
        """Request an EPR pair; returns immediately with a waitable handle.

        If the counterpart request is already posted, the pair is created
        before returning (zero-latency completion).

        ``on_match`` is a continuation executed as soon as the pair exists
        (inline if the peer already posted; on the peer's thread
        otherwise). This is what makes quantum ``isend`` truly
        non-blocking: the sender's local protocol steps (CNOT, parity
        measurement, classical fixup bit) ride along with the rendezvous,
        so head-to-head exchanges cannot deadlock. Since all local gates
        funnel through the shared rank-0-style backend anyway (§6), which
        thread executes them is unobservable.
        """
        if rank == peer:
            raise ValueError("cannot prepare an EPR pair with oneself")
        key = self._key(rank, peer, tag, context, direction)
        matched = None
        with self._cond:
            self._reserve(rank)
            queue = self._table.setdefault(key, deque())
            # Match the oldest pending entry posted by the peer.
            for i, entry in enumerate(queue):
                if entry.rank == peer:
                    del queue[i]
                    matched = entry
                    break
            mine = _Pending(rank, qubit, callback=on_match)
            if matched is None:
                queue.append(mine)
                return EprRequest(self, mine)
            self._entangle_pair(matched, mine)
        # Run continuations outside the table lock, oldest poster first;
        # completion events fire only after the continuations ran.
        for entry in (matched, mine):
            if entry.callback is not None:
                entry.callback()
            entry.done.set()
        return EprRequest(self, mine)

    def prepare(
        self,
        rank: int,
        qubit: int,
        peer: int,
        tag: int = 0,
        context: int = 0,
        direction: int = 0,
    ) -> None:
        """Blocking EPR preparation (QMPI_Prepare_EPR)."""
        self.iprepare(rank, qubit, peer, tag, context, direction).wait()

    def _entangle_pair(self, a: _Pending, b: _Pending) -> None:
        # caller holds self._cond; deterministic orientation: the lower
        # rank's qubit gets the Hadamard (irrelevant to the Bell state,
        # relevant to reproducibility).
        if a.rank < b.rank:
            qa, qb = a.qubit, b.qubit
        else:
            qa, qb = b.qubit, a.qubit
        self.backend.entangle_pair(qa, qb)
        self.ledger.record_epr(1)
        self._cond.notify_all()

    def _await(self, pending: _Pending) -> None:
        while not pending.done.wait(timeout=0.05):
            if self.abort.is_set():
                raise MpiAbort("job aborted while waiting for EPR rendezvous")
