"""Resource ledger: EPR pairs and classical bits.

Tables 1-3 of the paper state the cost of every QMPI operation in terms of
EPR pairs established and classical bits communicated. The ledger is the
measured counterpart: the EPR service and every protocol's classical sends
report here, and the table benches read deltas around single operations.

The ledger is shared by all ranks (thread-safe); per-operation attribution
uses named scopes so concurrent collectives aggregate into one row.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["Ledger", "LedgerSnapshot", "OpRow"]


@dataclass
class LedgerSnapshot:
    """Immutable view of ledger totals."""

    epr_pairs: int
    classical_bits: int
    classical_messages: int

    def delta(self, earlier: "LedgerSnapshot") -> "LedgerSnapshot":
        return LedgerSnapshot(
            self.epr_pairs - earlier.epr_pairs,
            self.classical_bits - earlier.classical_bits,
            self.classical_messages - earlier.classical_messages,
        )


@dataclass
class OpRow:
    """Accumulated resources attributed to one named operation."""

    name: str
    epr_pairs: int = 0
    classical_bits: int = 0
    calls: int = 0


@dataclass
class Ledger:
    """Thread-safe resource counters."""

    epr_pairs: int = 0
    classical_bits: int = 0
    classical_messages: int = 0
    rows: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _scopes: dict = field(default_factory=dict, repr=False)  # thread id -> op name

    # -- scoping ---------------------------------------------------------
    def push_scope(self, name: str) -> None:
        tid = threading.get_ident()
        with self._lock:
            self._scopes.setdefault(tid, []).append(name)
            row = self.rows.setdefault(name, OpRow(name))
            row.calls += 1

    def pop_scope(self) -> None:
        tid = threading.get_ident()
        with self._lock:
            self._scopes[tid].pop()

    def scope(self, name: str):
        """Context manager attributing resources to ``name`` on this thread."""
        ledger = self

        class _Scope:
            def __enter__(self):
                ledger.push_scope(name)
                return ledger

            def __exit__(self, *exc):
                ledger.pop_scope()
                return False

        return _Scope()

    def _current_rows(self) -> list[OpRow]:
        tid = threading.get_ident()
        names = self._scopes.get(tid) or []
        return [self.rows[n] for n in names]

    # -- recording --------------------------------------------------------
    def record_epr(self, n: int = 1) -> None:
        with self._lock:
            self.epr_pairs += n
            for row in self._current_rows():
                row.epr_pairs += n

    def record_classical(self, bits: int) -> None:
        """Count ``bits`` transmitted classical bits (sending side only:
        each bit increments the global totals exactly once)."""
        with self._lock:
            self.classical_bits += bits
            self.classical_messages += 1
            for row in self._current_rows():
                row.classical_bits += bits

    def record_classical_receipt(self, bits: int) -> None:
        """Attribute ``bits`` *received* classical bits to the current
        scope's rows without touching the global totals.

        Convention: bits are counted once, on the sending side
        (:meth:`record_classical`); the receiving operation still shows
        its Table 1-3 classical cost on its own row. Row sums may
        therefore exceed the global totals — a bit lands on both
        endpoints' rows but is transmitted once.
        """
        with self._lock:
            for row in self._current_rows():
                row.classical_bits += bits

    # -- reading ----------------------------------------------------------
    def snapshot(self) -> LedgerSnapshot:
        with self._lock:
            return LedgerSnapshot(self.epr_pairs, self.classical_bits, self.classical_messages)

    def row(self, name: str) -> OpRow:
        with self._lock:
            return self.rows.get(name, OpRow(name))

    def reset(self) -> None:
        with self._lock:
            self.epr_pairs = 0
            self.classical_bits = 0
            self.classical_messages = 0
            self.rows.clear()
