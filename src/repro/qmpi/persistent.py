"""Persistent communication requests (§4.7, the paper's future extension).

"All required EPR pairs can be prepared before starting communication and,
in particular, before the data to be sent is available. Point-to-point or
collective quantum communication can then be performed with purely
classical communication."

A :class:`PersistentChannel` pre-establishes a pool of EPR pairs between
two ranks. ``send``/``recv`` (copy semantics) and ``send_move``/
``recv_move`` then consume pooled halves: at transfer time the only
traffic is classical fixup bits — zero quantum communication depth. The
pool occupies the S-limited EPR buffer, so over-provisioning fails fast,
exactly the constraint §4.7 names ("possible only if sufficient qubits
are available to store the established EPR pairs").
"""

from __future__ import annotations

from collections import deque

from .qubit import Qureg

__all__ = ["PersistentChannel"]


class PersistentChannel:
    """A pre-entangled FIFO channel between ``rank`` and ``peer``.

    Both endpoints construct the channel collectively with the same
    ``slots`` and ``tag``; construction performs all EPR preparations
    (possibly overlapped with compute via ``eager=False`` + ``start()``).
    """

    def __init__(self, qc, peer: int, slots: int, tag: int = 0, eager: bool = True):
        self.qc = qc
        self.peer = peer
        self.tag = tag
        self._halves: deque[int] = deque()
        self._requests: list = []
        self._slots = slots
        if eager:
            self.start()
            self.wait()

    # -- pool management -------------------------------------------------
    def start(self) -> None:
        """Post all EPR preparations asynchronously (QMPI_Iprepare_EPR)."""
        qc = self.qc
        for i in range(self._slots):
            (q,) = qc.backend.alloc(qc.rank, 1)
            req = qc.epr.iprepare(
                qc.rank, q, self.peer, self.tag + i, qc.context, direction=30_000
            )
            self._halves.append(q)
            self._requests.append(req)

    def wait(self) -> None:
        """Block until the whole pool is entangled."""
        for req in self._requests:
            req.wait()
        self._requests.clear()

    @property
    def available(self) -> int:
        return len(self._halves)

    def _take(self) -> int:
        if not self._halves:
            raise RuntimeError("persistent channel exhausted; call refill()")
        return self._halves.popleft()

    def refill(self, slots: int) -> None:
        """Top the pool back up (quantum communication happens here, not
        at transfer time)."""
        self._slots = slots
        self.start()
        self.wait()

    # -- transfers (classical communication only) -------------------------
    def send(self, qubits) -> None:
        """Entangled-copy send using pooled pairs: only classical bits move."""
        qc = self.qc
        qubits = Qureg(qubits) if not isinstance(qubits, int) else Qureg((qubits,))
        qc.flush_ops()
        with qc.ledger.scope("persistent_send"):
            for q in qubits:
                e = self._take()
                qc.backend.cnot(qc.rank, q, e)
                m = qc.backend.measure_and_release(qc.rank, e)
                qc.epr.consume(qc.rank)
                qc.send_bits(m, 1, self.peer, self.tag)

    def recv(self, n: int = 1) -> Qureg:
        """Receive entangled copies into pooled halves; returns them."""
        qc = self.qc
        out = []
        qc.flush_ops()
        with qc.ledger.scope("persistent_recv"):
            for _ in range(n):
                q = self._take()
                m = qc.recv_bits(1, self.peer, self.tag)
                if m:
                    qc.backend.x(qc.rank, q)
                qc.epr.consume(qc.rank)
                out.append(q)
        return Qureg(out)

    def send_move(self, qubits) -> None:
        """Teleport using pooled pairs (2 classical bits per qubit)."""
        qc = self.qc
        qubits = Qureg(qubits) if not isinstance(qubits, int) else Qureg((qubits,))
        qc.flush_ops()
        with qc.ledger.scope("persistent_send_move"):
            for q in qubits:
                e = self._take()
                qc.backend.cnot(qc.rank, q, e)
                r = qc.backend.measure_and_release(qc.rank, e)
                qc.epr.consume(qc.rank)
                qc.backend.h(qc.rank, q)
                r |= 2 * qc.backend.measure_and_release(qc.rank, q)
                qc.send_bits(r, 2, self.peer, self.tag)

    def recv_move(self, n: int = 1) -> Qureg:
        """Receive teleported qubits into pooled halves."""
        qc = self.qc
        out = []
        qc.flush_ops()
        with qc.ledger.scope("persistent_recv_move"):
            for _ in range(n):
                q = self._take()
                r = qc.recv_bits(2, self.peer, self.tag)
                if r & 1:
                    qc.backend.x(qc.rank, q)
                if r & 2:
                    qc.backend.z(qc.rank, q)
                qc.epr.consume(qc.rank)
                out.append(q)
        return Qureg(out)

    def drain(self) -> None:
        """Release unused pooled halves (measuring them out)."""
        qc = self.qc
        while self._halves:
            q = self._halves.popleft()
            qc.backend.measure_and_release(qc.rank, q)
            qc.epr.consume(qc.rank)
