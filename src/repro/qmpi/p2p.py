"""QMPI point-to-point communication (§4.4, Table 2, Appendix A.1).

Two modes, both built on EPR pairs:

* **copy semantics** (``send``/``recv``) — fanout, Fig. 3(a): the qubit's
  value is exposed on both nodes as an entangled copy. Cost per qubit:
  1 EPR pair + 1 classical bit.
* **move semantics** (``send_move``/``recv_move``) — teleportation,
  Fig. 3(c) / Appendix A.1. Cost per qubit: 1 EPR pair + 2 classical bits.

Inverses: ``unsend``/``unrecv`` uncompute a fanned-out copy with *no* EPR
pair and one classical bit (Fig. 1(b): X-basis measurement + conditional
Z); ``unsend_move``/``unrecv_move`` teleport back (1 EPR pair + 2 bits).

Every function takes the per-rank :class:`~repro.qmpi.api.QmpiComm` as its
first argument; ``api.py`` binds them as methods. Registers (Qureg) are
processed qubit-by-qubit — resources scale with message size exactly as
Table 1 states ("per qubit in the message").
"""

from __future__ import annotations

from .qubit import Qureg, as_qureg

__all__ = [
    "send",
    "recv",
    "isend",
    "irecv",
    "QmpiRequest",
    "unsend",
    "unrecv",
    "send_move",
    "recv_move",
    "isend_move",
    "unsend_move",
    "unrecv_move",
    "sendrecv",
    "unsendrecv",
    "sendrecv_replace",
    "unsendrecv_replace",
]

# Directed stream ids for EPR matching (see epr.EprKey.direction).
def _dir(src_rank: int) -> int:
    return src_rank + 1


class QmpiRequest:
    """Completion handle for non-blocking QMPI operations.

    ``wait()`` guarantees the operation's quantum side effects have been
    applied (for isend: the fanout/teleport measurements happened and the
    classical fixup bits are in flight) and runs any deferred local
    finishers (for irecv: the Pauli fixups).
    """

    def __init__(self, epr_requests, finisher=None, value=None):
        self._epr_requests = list(epr_requests)
        self._finisher = finisher
        self._value = value
        self._done = False

    def wait(self):
        if not self._done:
            for req in self._epr_requests:
                req.wait()
            if self._finisher is not None:
                self._value = self._finisher()
            self._done = True
        return self._value

    def test(self) -> bool:
        if self._done:
            return True
        if all(r.test() for r in self._epr_requests):
            self.wait()
            return True
        return False


def isend(qc, qubits, dest: int, tag: int = 0, move: bool = False, _op: str | None = None) -> QmpiRequest:
    """Non-blocking copy (or move) send.

    The EPR half and a continuation carrying the rest of the protocol are
    posted to the rendezvous service; the transfer completes whenever the
    receiver shows up — no blocking, so head-to-head exchanges are safe.
    The caller must not touch the sent qubits again before ``wait()``.
    """
    qc.flush_ops()
    qubits = as_qureg(qubits)
    op = _op or ("isend_move" if move else "isend")
    reqs = []
    for q in qubits:
        e = qc.backend.alloc(qc.rank, 1)[0]

        def continuation(q=q, e=e):
            with qc.ledger.scope(op):
                qc.backend.cnot(qc.rank, q, e)
                m = qc.backend.measure_and_release(qc.rank, e)
                qc.epr.consume(qc.rank)
                if move:
                    qc.backend.h(qc.rank, q)
                    m |= 2 * qc.backend.measure_and_release(qc.rank, q)
                    qc.send_bits(m, 2, dest, tag)
                else:
                    qc.send_bits(m, 1, dest, tag)

        reqs.append(
            qc.epr.iprepare(
                qc.rank, e, dest, tag, qc.context, _dir(qc.rank), on_match=continuation
            )
        )
    return QmpiRequest(reqs)


def isend_move(qc, qubits, dest: int, tag: int = 0) -> QmpiRequest:
    """Non-blocking teleport send."""
    return isend(qc, qubits, dest, tag, move=True)


def irecv(qc, qubits, source: int, tag: int = 0, move: bool = False) -> QmpiRequest:
    """Non-blocking receive; ``wait()`` returns the register after fixups."""
    qc.flush_ops()
    qubits = as_qureg(qubits)
    op = "irecv_move" if move else "irecv"
    reqs = [
        qc.epr.iprepare(qc.rank, q, source, tag, qc.context, _dir(source))
        for q in qubits
    ]

    def finisher():
        with qc.ledger.scope(op):
            for q in qubits:
                if move:
                    r = qc.recv_bits(2, source, tag)
                    qc.backend.apply_pauli_if(qc.rank, r & 1, "X", q)
                    qc.backend.apply_pauli_if(qc.rank, r & 2, "Z", q)
                else:
                    m = qc.recv_bits(1, source, tag)
                    qc.backend.apply_pauli_if(qc.rank, m, "X", q)
                qc.epr.consume(qc.rank)
            return qubits

    return QmpiRequest(reqs, finisher=finisher)


# ----------------------------------------------------------------------
# copy semantics (fanout)
# ----------------------------------------------------------------------
def send(qc, qubits, dest: int, tag: int = 0, _op: str = "send") -> None:
    """Entangled-copy send (fanout) of one or more qubits to ``dest``.

    Fig. 3(a): per qubit, CNOT the data qubit onto the local EPR half,
    measure it (parity measurement), and ship the outcome; the receiver
    fixes its half with X if the parity was 1.
    """
    qc.flush_ops()  # stream boundary: buffered gates precede the protocol
    qubits = as_qureg(qubits)
    with qc.ledger.scope(_op):
        for q in qubits:
            e = qc.backend.alloc(qc.rank, 1)[0]
            qc.epr.prepare(qc.rank, e, dest, tag, qc.context, _dir(qc.rank))
            qc.backend.cnot(qc.rank, q, e)
            m = qc.backend.measure_and_release(qc.rank, e)
            qc.epr.consume(qc.rank)
            qc.send_bits(m, 1, dest, tag)


def recv(qc, qubits, source: int, tag: int = 0, _op: str = "recv") -> Qureg:
    """Receive an entangled copy into fresh |0> ``qubits``."""
    qc.flush_ops()  # stream boundary: buffered gates precede the protocol
    qubits = as_qureg(qubits)
    with qc.ledger.scope(_op):
        for q in qubits:
            qc.epr.prepare(qc.rank, q, source, tag, qc.context, _dir(source))
            m = qc.recv_bits(1, source, tag)
            qc.backend.apply_pauli_if(qc.rank, m, "X", q)
            qc.epr.consume(qc.rank)  # the half is now data, not buffer
    return qubits


def unrecv(qc, qubits, source: int, tag: int = 0, _op: str = "unrecv") -> None:
    """Uncompute a previously received copy (receiver side).

    Fig. 1(b): measure in the X basis; the *sender* must apply Z on
    outcome 1. No EPR pair needed — one classical bit per qubit. The copy
    qubits are measured out and released.
    """
    qc.flush_ops()  # stream boundary: buffered gates precede the protocol
    qubits = as_qureg(qubits)
    with qc.ledger.scope(_op):
        for q in qubits:
            qc.backend.h(qc.rank, q)
            m = qc.backend.measure_and_release(qc.rank, q)
            qc.send_bits(m, 1, source, tag)


def unsend(qc, qubits, dest: int, tag: int = 0, _op: str = "unsend") -> None:
    """Complete the uncopy on the original sender: conditional Z fixup."""
    qc.flush_ops()  # stream boundary: buffered gates precede the protocol
    qubits = as_qureg(qubits)
    with qc.ledger.scope(_op):
        for q in qubits:
            m = qc.recv_bits(1, dest, tag)
            qc.backend.apply_pauli_if(qc.rank, m, "Z", q)


# ----------------------------------------------------------------------
# move semantics (teleportation)
# ----------------------------------------------------------------------
def send_move(qc, qubits, dest: int, tag: int = 0, _op: str = "send_move") -> None:
    """Teleport qubits to ``dest`` (Appendix A.1 QMPI_Send_move).

    The local qubits are measured out and released; ownership of the state
    transfers to the receiver's target qubits.
    """
    qc.flush_ops()  # stream boundary: buffered gates precede the protocol
    qubits = as_qureg(qubits)
    with qc.ledger.scope(_op):
        for q in qubits:
            e = qc.backend.alloc(qc.rank, 1)[0]
            qc.epr.prepare(qc.rank, e, dest, tag, qc.context, _dir(qc.rank))
            qc.backend.cnot(qc.rank, q, e)
            r = qc.backend.measure_and_release(qc.rank, e)
            qc.epr.consume(qc.rank)
            qc.backend.h(qc.rank, q)
            r |= 2 * qc.backend.measure_and_release(qc.rank, q)
            qc.send_bits(r, 2, dest, tag)


def recv_move(qc, qubits, source: int, tag: int = 0, _op: str = "recv_move") -> Qureg:
    """Receive teleported qubits into fresh |0> targets (QMPI_Recv_move)."""
    qc.flush_ops()  # stream boundary: buffered gates precede the protocol
    qubits = as_qureg(qubits)
    with qc.ledger.scope(_op):
        for q in qubits:
            qc.epr.prepare(qc.rank, q, source, tag, qc.context, _dir(source))
            r = qc.recv_bits(2, source, tag)
            qc.backend.apply_pauli_if(qc.rank, r & 1, "X", q)
            qc.backend.apply_pauli_if(qc.rank, r & 2, "Z", q)
            qc.epr.consume(qc.rank)
    return qubits


def unrecv_move(qc, qubits, source: int, tag: int = 0) -> None:
    """Inverse of recv_move: teleport the qubits back to ``source``.

    Appendix A.1: once moved, sender and receiver roles are symmetric, so
    the inverse is a move in the opposite direction (1 EPR + 2 bits).
    """
    send_move(qc, qubits, source, tag, _op="unrecv_move")


def unsend_move(qc, n_or_qubits, dest: int, tag: int = 0) -> Qureg:
    """Inverse of send_move: receive the qubits back from ``dest``.

    ``n_or_qubits`` is either an int (fresh targets are allocated) or a
    Qureg of |0> target qubits.
    """
    if isinstance(n_or_qubits, int):
        qubits = qc.backend.alloc(qc.rank, n_or_qubits)
    else:
        qubits = as_qureg(n_or_qubits)
    return recv_move(qc, qubits, dest, tag, _op="unsend_move")


# ----------------------------------------------------------------------
# combined send+receive
# ----------------------------------------------------------------------
def sendrecv(
    qc,
    send_qubits,
    dest: int,
    recv_qubits,
    source: int,
    sendtag: int = 0,
    recvtag: int = 0,
) -> Qureg:
    """Exchange entangled copies with two peers (QMPI_Sendrecv).

    Deadlock-free like its MPI namesake: the send side is posted
    non-blocking, so mutual sendrecv pairs always make progress.
    """
    with qc.ledger.scope("sendrecv"):
        req = isend(qc, send_qubits, dest, sendtag, _op="sendrecv")
        out = recv(qc, recv_qubits, source, recvtag)
        req.wait()
        return out


def unsendrecv(
    qc,
    send_qubits,
    dest: int,
    recv_qubits,
    source: int,
    sendtag: int = 0,
    recvtag: int = 0,
) -> None:
    """Inverse of sendrecv: unrecv our copy, complete peer's uncopy."""
    with qc.ledger.scope("unsendrecv"):
        unrecv(qc, recv_qubits, source, recvtag)
        unsend(qc, send_qubits, dest, sendtag)


def sendrecv_replace(
    qc, qubits, dest: int, source: int, sendtag: int = 0, recvtag: int = 0
) -> Qureg:
    """Move our qubits to ``dest`` while receiving replacements from
    ``source`` (Table 2 note (a): sendrecv with move semantics).

    Returns the replacement register; the input register is consumed.
    """
    qubits = as_qureg(qubits)
    with qc.ledger.scope("sendrecv_replace"):
        fresh = qc.backend.alloc(qc.rank, len(qubits))
        req = isend(qc, qubits, dest, sendtag, move=True, _op="sendrecv_replace")
        recv_move(qc, fresh, source, recvtag)
        req.wait()
        return fresh


def unsendrecv_replace(
    qc, qubits, dest: int, source: int, sendtag: int = 0, recvtag: int = 0
) -> Qureg:
    """Inverse of sendrecv_replace (moves in the opposite directions)."""
    qubits = as_qureg(qubits)
    with qc.ledger.scope("unsendrecv_replace"):
        fresh = qc.backend.alloc(qc.rank, len(qubits))
        req = isend(qc, qubits, source, sendtag, move=True, _op="unsendrecv_replace")
        recv_move(qc, fresh, dest, recvtag)
        req.wait()
        return fresh
