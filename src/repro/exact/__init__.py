"""Dense exact references used by integration tests and benches."""

from .dense import fidelity, ghz_state, pauli_matrix, tfim_hamiltonian
from .evolution import evolution_operator, evolve

__all__ = [
    "pauli_matrix",
    "tfim_hamiltonian",
    "ghz_state",
    "fidelity",
    "evolve",
    "evolution_operator",
]
