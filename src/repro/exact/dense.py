"""Dense reference Hamiltonians and states (ground truth for tests)."""

from __future__ import annotations

import numpy as np

from ..sim import gates as G

__all__ = ["pauli_matrix", "tfim_hamiltonian", "ghz_state", "fidelity"]


def pauli_matrix(label: str, n_qubits: int) -> np.ndarray:
    """Dense matrix of e.g. ``"X0 Z2"`` with qubit 0 as the most
    significant factor (matching StateVector.statevector ordering)."""
    ops = {i: "I" for i in range(n_qubits)}
    for tok in label.split():
        ops[int(tok[1:])] = tok[0].upper()
    return G.kron_all(*[G.PAULIS[ops[i]] for i in range(n_qubits)])


def tfim_hamiltonian(
    n_spins: int, J: float, g: float, periodic: bool = True
) -> np.ndarray:
    """H = J * sum_<ij> Z_i Z_j - g * sum_i X_i (paper's §7.2 sign
    conventions with Gamma_i = g, J_ij = J), qubit 0 most significant."""
    dim = 2**n_spins
    H = np.zeros((dim, dim), dtype=np.complex128)
    pairs = [(i, i + 1) for i in range(n_spins - 1)]
    if periodic and n_spins > 2:
        pairs.append((n_spins - 1, 0))
    elif periodic and n_spins == 2:
        pairs = [(0, 1)]
    for i, j in pairs:
        H += J * pauli_matrix(f"Z{i} Z{j}", n_spins)
    for i in range(n_spins):
        H += -g * pauli_matrix(f"X{i}", n_spins)
    return H


def ghz_state(n_qubits: int) -> np.ndarray:
    """(|0...0> + |1...1>)/sqrt(2)."""
    v = np.zeros(2**n_qubits, dtype=np.complex128)
    v[0] = v[-1] = 1.0 / np.sqrt(2.0)
    return v


def fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """|<a|b>|^2 for normalized state vectors."""
    return float(abs(np.vdot(a, b)) ** 2)
