"""Exact time evolution references."""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

__all__ = ["evolve", "evolution_operator"]


def evolution_operator(h: np.ndarray, t: float) -> np.ndarray:
    """U(t) = exp(-i t H)."""
    return expm(-1j * t * np.asarray(h, dtype=np.complex128))


def evolve(h: np.ndarray, psi: np.ndarray, t: float) -> np.ndarray:
    """exp(-i t H) |psi>."""
    return evolution_operator(h, t) @ np.asarray(psi, dtype=np.complex128)
