"""SENDQ model parameters (§5).

Communication: S (EPR buffer qubits per node), E (EPR establishment time,
any node in at most one creation at a time), N (node count).
Local compute: D (delay; refined as in §5.1 into the dominant rotation
delay D_R with optional D_M / D_F for parity measurements and Pauli
fixups), Q (logical compute qubits per node = parallel compute elements).

All parameters are constant for a given program run, as the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SendqParams"]


@dataclass(frozen=True)
class SendqParams:
    """One configuration of the SENDQ machine model.

    Times are in arbitrary units (the paper uses logical clock cycles /
    seconds interchangeably; only ratios matter for the analyses).
    """

    N: int = 2
    #: EPR buffer capacity per node (logical qubits dedicated to EPR halves)
    S: int = 2
    #: time to establish one logical EPR pair with any other node
    E: float = 1.0
    #: logical compute qubits per node
    Q: int = 2
    #: delay of an arbitrary-angle rotation (incl. T gates) — the dominant
    #: local cost in fault-tolerant execution (§3, §5.1)
    D_R: float = 1.0
    #: delay of a local two-qubit parity measurement
    D_M: float = 0.0
    #: delay of a Pauli fixup (X or Z)
    D_F: float = 0.0
    #: delay of other Clifford gates (ignored by default, as in §5.1)
    D_C: float = 0.0

    def __post_init__(self):
        if self.N < 1:
            raise ValueError("N must be >= 1")
        if self.S < 0:
            raise ValueError("S must be >= 0")
        if self.Q < 0:
            raise ValueError("Q must be >= 0")
        for name in ("E", "D_R", "D_M", "D_F", "D_C"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def with_(self, **kwargs) -> "SendqParams":
        """Copy with some fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    @property
    def epr_bandwidth(self) -> float:
        """E^-1: EPR-pair injection bandwidth per node (§5.1)."""
        return 1.0 / self.E if self.E > 0 else float("inf")

    @property
    def total_qubits_per_node(self) -> int:
        """Q + S: the fixed per-node qubit budget (§5.1)."""
        return self.Q + self.S
