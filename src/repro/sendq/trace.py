"""Schedule traces: per-op timelines, makespan, utilization, text Gantt."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .params import SendqParams

__all__ = ["TraceEntry", "ScheduleTrace"]


@dataclass(frozen=True)
class TraceEntry:
    uid: int
    label: str
    kind: str
    nodes: tuple[int, ...]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleTrace:
    entries: list[TraceEntry]
    n_nodes: int
    params: "SendqParams"

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.entries), default=0.0)

    def end_of(self, label_prefix: str) -> float:
        """Latest end time among ops whose label starts with the prefix."""
        times = [e.end for e in self.entries if e.label.startswith(label_prefix)]
        if not times:
            raise KeyError(f"no ops labeled {label_prefix!r}")
        return max(times)

    def epr_pairs(self) -> int:
        return sum(1 for e in self.entries if e.kind == "epr")

    def node_busy_time(self, node: int, kinds: tuple[str, ...] = ("rot",)) -> float:
        """Total busy time of a node's rotation unit (or other kinds)."""
        return sum(
            e.duration for e in self.entries if node in e.nodes and e.kind in kinds
        )

    def utilization(self, node: int) -> float:
        """Rotation-unit utilization of ``node`` over the makespan."""
        total = self.makespan
        if total <= 0:
            return 0.0
        return self.node_busy_time(node) / total

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart, one row per node plus a classical row."""
        span = self.makespan or 1.0
        scale = width / span
        rows = []
        marks = {"epr": "=", "rot": "R", "local:clifford": "c",
                 "local:measure": "M", "local:fixup": "F", "classical": "."}
        for node in range(self.n_nodes):
            line = [" "] * width
            for e in self.entries:
                if node not in e.nodes:
                    continue
                a = min(width - 1, int(e.start * scale))
                b = min(width, max(a + 1, int(e.end * scale)))
                ch = marks.get(e.kind, "?")
                for i in range(a, b):
                    line[i] = ch
            rows.append(f"node {node:3d} |{''.join(line)}|")
        rows.append(f"t = 0 .. {span:g}   (= EPR, R rotation, M measure, F fixup)")
        return "\n".join(rows)

    def as_rows(self) -> list[dict]:
        """Plain-dict rows for printing/benchmark output."""
        return [
            {
                "uid": e.uid,
                "label": e.label,
                "kind": e.kind,
                "nodes": e.nodes,
                "start": e.start,
                "end": e.end,
            }
            for e in self.entries
        ]
