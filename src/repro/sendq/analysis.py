"""Closed-form SENDQ analyses — every formula in §5, §7 of the paper.

These are the paper's pencil-and-paper results; :mod:`repro.sendq.engine`
re-derives the same numbers by discrete-event simulation, and the test
suite checks they agree.
"""

from __future__ import annotations

import math

from .params import SendqParams

__all__ = [
    "bcast_tree_time",
    "bcast_tree_epr",
    "bcast_cat_time",
    "bcast_cat_epr",
    "parity_inplace_time",
    "parity_inplace_epr",
    "parity_outofplace_time",
    "parity_outofplace_epr",
    "parity_constdepth_time",
    "parity_constdepth_epr",
    "tfim_trotter_compute_delay",
    "tfim_step_delay",
    "tfim_step_delay_ring",
    "tfim_max_nodes",
    "tfim_min_nodes_for_s2",
    "table1",
]


# ----------------------------------------------------------------------
# §7.1 — optimizing QMPI_Bcast
# ----------------------------------------------------------------------
def bcast_tree_time(params: SendqParams) -> float:
    """Binomial-tree broadcast: ``E * ceil(log2 N)`` (S=1 suffices)."""
    return params.E * math.ceil(math.log2(params.N)) if params.N > 1 else 0.0


def bcast_tree_epr(n_nodes: int) -> int:
    """One EPR pair per receiving node."""
    return max(0, n_nodes - 1)


def bcast_cat_time(params: SendqParams) -> float:
    """Cat-state broadcast: ``2E + D_M + D_F`` — constant in N (§7.1).

    The 2E: spanning-tree EPR pairs are created in two rounds because each
    node can be part of only one EPR creation at a time (internal chain
    nodes have two incident edges). Requires S >= 2 on internal nodes.
    """
    if params.N <= 1:
        return 0.0
    rounds = 1 if params.N == 2 else 2
    return rounds * params.E + params.D_M + params.D_F


def bcast_cat_epr(n_nodes: int) -> int:
    """Spanning-tree edges: N-1 EPR pairs."""
    return max(0, n_nodes - 1)


# ----------------------------------------------------------------------
# §7.3 — three implementations of exp(-i t Z...Z) over k nodes (Fig. 6)
# ----------------------------------------------------------------------
def parity_inplace_time(k: int, params: SendqParams) -> float:
    """Fig. 6(a): binary-tree in-place parity, ``2E ceil(log2 k) + D_R``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return params.D_R
    return 2 * params.E * math.ceil(math.log2(k)) + params.D_R


def parity_inplace_epr(k: int) -> int:
    """2(k-1): a distributed CNOT per tree edge, down and back up."""
    return 2 * (k - 1) if k > 1 else 0


def parity_outofplace_time(k: int, params: SendqParams) -> float:
    """Fig. 6(b): serial distributed CNOTs into an ancilla, ``E k + D_R``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return params.D_R
    return params.E * k + params.D_R


def parity_outofplace_epr(k: int) -> int:
    """k EPR pairs; the uncompute is classical-only (Fig. 1(b))."""
    return k if k > 1 else 0


def parity_constdepth_time(k: int, params: SendqParams) -> float:
    """Fig. 6(c): cat-state fanout, ``2E + D_R`` — constant in k.

    Requires S >= 2 (two EPR halves per internal node simultaneously).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return params.D_R
    return 2 * params.E + params.D_R


def parity_constdepth_epr(k: int, aux_colocated: bool = False) -> int:
    """k EPR pairs with a dedicated ancilla node (Fig. 6(c)); k-1 when the
    ancilla lives on one of the involved nodes (the Fig. 7 convention)."""
    if k <= 1:
        return 0
    return (k - 1) if aux_colocated else k


# ----------------------------------------------------------------------
# §7.2 — transverse-field Ising model
# ----------------------------------------------------------------------
def tfim_trotter_compute_delay(n_spins: int, params: SendqParams) -> float:
    """``D_Trotter = 2 (n/N) D_R = 2 Q D_R``: rotations are serialized per
    node by the magic-state factory budget (§7.2)."""
    if n_spins % params.N:
        raise ValueError("paper's analysis assumes N divides n")
    return 2 * (n_spins // params.N) * params.D_R


def tfim_step_delay(n_spins: int, params: SendqParams) -> float:
    """Per-Trotter-step delay with an optimized communication schedule.

    ``max(D_Trotter, 2E)`` for S >= 2; ``max(D_Trotter, 2E + 2 D_R)`` for
    S = 1, because with a single buffer qubit the second EPR creation
    request must wait for the boundary rotation + unreceive to clear it.

    The paper's formula implicitly assumes the ring's EPR creations can
    run in two rounds, which requires an even node count (edge 2-coloring
    of the cycle). See :func:`tfim_step_delay_ring` for the odd-N
    refinement our event engine exposes.
    """
    d_t = tfim_trotter_compute_delay(n_spins, params)
    if params.N == 1:
        return d_t
    if params.S >= 2:
        return max(d_t, 2 * params.E)
    if params.S == 1:
        return max(d_t, 2 * params.E + 2 * params.D_R)
    raise ValueError("TFIM distribution requires S >= 1")


def tfim_step_delay_ring(n_spins: int, params: SendqParams) -> float:
    """Ring-topology refinement of :func:`tfim_step_delay`.

    An odd cycle has chromatic index 3, so the per-step EPR establishment
    takes 3 rounds instead of 2 — the discrete-event engine discovers this
    and the closed form must follow:

    * even N: identical to the paper's formula;
    * odd N, S >= 2: ``max(D_Trotter, 3E)`` (engine-validated);
    * odd N, S = 1: ``max(D_Trotter, 3E, 2E + 2 D_R)`` is a lower bound —
      greedy schedulers can even deadlock here (buffer starvation across
      steps); treat the event engine as ground truth for this corner.
    """
    if params.N <= 1 or params.N % 2 == 0:
        return tfim_step_delay(n_spins, params)
    d_t = tfim_trotter_compute_delay(n_spins, params)
    if params.S >= 2:
        return max(d_t, 3 * params.E)
    return max(d_t, 3 * params.E, 2 * params.E + 2 * params.D_R)


def tfim_max_nodes(n_spins: int, params: SendqParams) -> int:
    """Largest N keeping communication off the critical path (S >= 2):
    ``N <= E^-1 n D_R`` (§7.2)."""
    return int(math.floor(n_spins * params.D_R / params.E))


def tfim_min_nodes_for_s2(n_spins: int, q_per_node: int) -> int:
    """With S=1 but Q >= 2, reassigning one compute qubit as buffer
    recovers the S=2 regime at ``N >= ceil(n / (Q-1))`` nodes (§7.2)."""
    if q_per_node < 2:
        raise ValueError("requires Q >= 2")
    return math.ceil(n_spins / (q_per_node - 1))


# ----------------------------------------------------------------------
# Table 1 — resources per qubit for the four basic primitives
# ----------------------------------------------------------------------
def table1(n_nodes: int) -> dict[str, dict[str, int]]:
    """The paper's Table 1 as data: EPR pairs and classical bits per qubit
    for copy/move/reduce/scan and their inverses."""
    n = n_nodes
    return {
        "copy": {"epr": 1, "cbits": 1},
        "uncopy": {"epr": 0, "cbits": 1},
        "move": {"epr": 1, "cbits": 2},
        "unmove": {"epr": 1, "cbits": 2},
        "reduce": {"epr": n - 1, "cbits": n - 1},
        "unreduce": {"epr": 0, "cbits": n - 1},
        "scan": {"epr": n - 1, "cbits": n - 1},
        "unscan": {"epr": 0, "cbits": n - 1},
    }
