"""SENDQ program generators for the paper's analyses.

Each generator builds the op-DAG of one §7 workload; running it through
:func:`repro.sendq.engine.schedule` reproduces the closed-form delays of
:mod:`repro.sendq.analysis` — including the S=1 vs S>=2 separations, which
emerge from the buffer constraint rather than being hard-coded.
"""

from __future__ import annotations

from .program import Program

__all__ = [
    "bcast_tree_program",
    "bcast_cat_program",
    "parity_inplace_program",
    "parity_outofplace_program",
    "parity_constdepth_program",
    "tfim_step_program",
]


def _fanout(
    prog: Program,
    src: int,
    dst: int,
    src_ready: int | None,
    label: str,
    eager_epr: bool = False,
):
    """One entangled-copy transfer (Fig. 3(a)) as SENDQ ops.

    Returns the receiver's fixup op (its data-ready point). With
    ``eager_epr`` the EPR creation is requested before the source data is
    ready (§4.7 persistent-request style — needs buffer headroom); the
    default requests it at send time, the blocking-QMPI_Send schedule.
    """
    epr_deps = [] if (eager_epr or src_ready is None) else [src_ready]
    e = prog.epr(src, dst, deps=epr_deps, label=f"{label}:epr")
    deps = [e] if src_ready is None else [e, src_ready]
    m = prog.local(src, deps=deps, releases=[(e, src)], flavor="measure", label=f"{label}:pmeas")
    c = prog.classical(deps=[m], label=f"{label}:bit")
    f = prog.local(dst, deps=[c], releases=[(e, dst)], flavor="fixup", label=f"{label}:fix")
    return f


def bcast_tree_program(n_nodes: int, root: int = 0, eager_epr: bool = False) -> Program:
    """Binomial-tree broadcast (§7.1): expected makespan E*ceil(log2 N)
    (with D_M = D_F = 0); works with S = 1 (eager_epr=False).

    With ``eager_epr=True`` the EPR pairs are requested ahead of data
    (§4.7); this needs S >= 2 on interior tree nodes — with S = 1 the
    scheduler correctly reports buffer deadlock.
    """
    prog = Program(n_nodes)
    ready: dict[int, int | None] = {root: None}
    mask = 1
    rnd = 0
    while mask < n_nodes:
        for rel in range(mask):
            peer = rel + mask
            if peer >= n_nodes:
                continue
            src = (rel + root) % n_nodes
            dst = (peer + root) % n_nodes
            ready[dst] = _fanout(prog, src, dst, ready[src], f"r{rnd}:{src}->{dst}", eager_epr)
        mask <<= 1
        rnd += 1
    return prog


def bcast_cat_program(n_nodes: int, root: int = 0) -> Program:
    """Cat-state broadcast (Fig. 4): expected makespan 2E + D_M + D_F,
    independent of N; requires S >= 2 on internal chain nodes."""
    prog = Program(n_nodes)
    if n_nodes == 1:
        return prog
    edges = [prog.epr(i, i + 1, label=f"cat:epr({i},{i + 1})") for i in range(n_nodes - 1)]
    merges = []
    # Root folds the data qubit in with a parity measurement on its share.
    merges.append(
        prog.local(root, deps=[edges[0]], releases=[(edges[0], root)],
                   flavor="measure", label="cat:rootmeas")
    )
    for i in range(1, n_nodes - 1):
        merges.append(
            prog.local(
                i,
                deps=[edges[i - 1], edges[i]],
                releases=[(edges[i], i)],
                flavor="measure",
                label=f"cat:merge@{i}",
            )
        )
    exscan = prog.classical(deps=merges, label="cat:exscan")
    for i in range(1, n_nodes):
        prog.local(
            i,
            deps=[exscan],
            releases=[(edges[i - 1], i)],
            flavor="fixup",
            label=f"cat:fix@{i}",
        )
    return prog


def _distributed_cnot(prog: Program, ctrl: int, tgt: int, ctrl_ready, tgt_ready, label: str):
    """Control-fanout distributed CNOT: 1 EPR + 2 classical bits.

    Returns (ctrl_ready', tgt_ready'): the control is restored after the
    unfanout Z fixup; the target's data is updated after the local CNOT.
    The EPR pair is requested when the operation's inputs are ready
    (blocking-send semantics, matching the paper's Fig. 6 accounting —
    pre-establishing it instead is the §4.7 optimization).
    """
    e = prog.epr(
        ctrl,
        tgt,
        deps=[d for d in (ctrl_ready, tgt_ready) if d is not None],
        label=f"{label}:epr",
    )
    deps = [e] + ([ctrl_ready] if ctrl_ready is not None else [])
    m1 = prog.local(ctrl, deps=deps, releases=[(e, ctrl)], flavor="measure", label=f"{label}:pm")
    c1 = prog.classical(deps=[m1], label=f"{label}:b1")
    fx = prog.local(tgt, deps=[c1], flavor="fixup", label=f"{label}:xfix")
    deps2 = [fx] + ([tgt_ready] if tgt_ready is not None else [])
    cn = prog.local(tgt, deps=deps2, flavor="clifford", label=f"{label}:cnot")
    m2 = prog.local(tgt, deps=[cn], releases=[(e, tgt)], flavor="measure", label=f"{label}:um")
    c2 = prog.classical(deps=[m2], label=f"{label}:b2")
    zf = prog.local(ctrl, deps=[c2], flavor="fixup", label=f"{label}:zfix")
    return zf, cn


def parity_inplace_program(k: int, rotations: int = 1) -> Program:
    """Fig. 6(a): in-place binary-tree parity + Rz + uncompute.

    Expected: 2(k-1) EPR pairs, makespan 2E*ceil(log2 k) + D_R (with
    D_M = D_F = D_C = 0). Works with S = 1.
    """
    prog = Program(max(k, 1))
    ready: list = [None] * k
    # Downward tree: pair adjacent active nodes, parity accumulates into
    # the higher index; the survivor list halves each level, so depth is
    # ceil(log2 k) and k-1 distributed CNOTs run top-down.
    ladders = []
    active = list(range(k))
    lvl = 0
    while len(active) > 1:
        nxt = []
        for i in range(0, len(active) - 1, 2):
            lo, hi = active[i], active[i + 1]
            czf, ccn = _distributed_cnot(
                prog, lo, hi, ready[lo], ready[hi], f"dn{lvl}:{lo}->{hi}"
            )
            ready[lo], ready[hi] = czf, ccn
            ladders.append((lo, hi))
            nxt.append(hi)
        if len(active) % 2:
            nxt.append(active[-1])
        active = nxt
        lvl += 1
    top = active[0]
    rot = prog.rot(top, deps=[d for d in [ready[top]] if d is not None], label="rz")
    ready[top] = rot
    # Upward tree: uncompute in reverse order.
    for lo, hi in reversed(ladders):
        czf, ccn = _distributed_cnot(prog, lo, hi, ready[lo], ready[hi], f"up:{lo}->{hi}")
        ready[lo], ready[hi] = czf, ccn
    return prog


def parity_outofplace_program(k: int, aux_colocated: bool = False) -> Program:
    """Fig. 6(b): serial distributed CNOTs into an ancilla + Rz; the
    uncompute is classical-only.

    Expected: k EPR pairs (aux on its own node) and makespan E*k + D_R;
    works with S = 1.
    """
    n_nodes = k if aux_colocated else k + 1
    aux = n_nodes - 1
    prog = Program(n_nodes)
    last = None
    sources = range(k - 1) if aux_colocated else range(k)
    for i in sources:
        # Fanout q_i to the aux node, CNOT into the ancilla, unfanout.
        e = prog.epr(i, aux, deps=[last] if last is not None else [], label=f"oop{i}:epr")
        m1 = prog.local(i, deps=[e], releases=[(e, i)], flavor="measure", label=f"oop{i}:pm")
        c1 = prog.classical(deps=[m1], label=f"oop{i}:b1")
        fx = prog.local(aux, deps=[c1], flavor="fixup", label=f"oop{i}:xfix")
        cn = prog.local(aux, deps=[fx], flavor="clifford", label=f"oop{i}:cnot")
        m2 = prog.local(aux, deps=[cn], releases=[(e, aux)], flavor="measure", label=f"oop{i}:um")
        c2 = prog.classical(deps=[m2], label=f"oop{i}:b2")
        prog.local(i, deps=[c2], flavor="fixup", label=f"oop{i}:zfix")
        last = cn
    if aux_colocated:
        last = prog.local(aux, deps=[last] if last is not None else [], flavor="clifford", label="oop:own")
    rot = prog.rot(aux, deps=[last] if last is not None else [], label="rz")
    # Uncompute: H + measure the ancilla, broadcast the bit, Z everywhere.
    m = prog.local(aux, deps=[rot], flavor="measure", label="oop:unmeas")
    c = prog.classical(deps=[m], label="oop:bcastbit")
    for i in range(k):
        prog.local(i if aux_colocated or i < k else i, deps=[c], flavor="fixup", label=f"oop:zfix@{i}")
    return prog


def parity_constdepth_program(k: int, aux_colocated: bool = True) -> Program:
    """Fig. 6(c): constant-depth via a cat state.

    Expected: k-1 EPR pairs (ancilla colocated, the Fig. 7 convention; k
    with a dedicated ancilla node) and makespan 2E + D_R. Needs S >= 2.
    """
    m_nodes = k if aux_colocated else k + 1
    aux = m_nodes - 1
    prog = Program(m_nodes)
    if m_nodes == 1:
        prog.rot(0, label="rz")
        return prog
    edges = [prog.epr(i, i + 1, label=f"cd:epr({i},{i + 1})") for i in range(m_nodes - 1)]
    merges = []
    for i in range(1, m_nodes - 1):
        merges.append(
            prog.local(i, deps=[edges[i - 1], edges[i]], releases=[(edges[i], i)],
                       flavor="measure", label=f"cd:merge@{i}")
        )
    fixc = prog.classical(deps=merges, label="cd:exscan")
    fixes = []
    for i in range(1, m_nodes):
        fixes.append(
            prog.local(i, deps=[fixc], flavor="fixup", label=f"cd:fix@{i}")
        )
    # Every node CNOTs its data into its cat share (parallel Cliffords),
    # the shares are X-measured, and the collected parity drives the Rz.
    cnots = []
    for i in range(m_nodes if aux_colocated else m_nodes - 1):
        dep = [fixes[i - 1]] if i >= 1 else [edges[0]]
        cnots.append(prog.local(i, deps=dep, flavor="clifford", label=f"cd:cnot@{i}"))
    meas = []
    for i in range(m_nodes):
        dep = [cnots[i]] if i < len(cnots) else [fixes[i - 1]]
        rel = [(edges[i - 1], i)] if i >= 1 else [(edges[0], 0)]
        meas.append(prog.local(i, deps=dep, releases=rel, flavor="measure", label=f"cd:meas@{i}"))
    gather = prog.classical(deps=meas, label="cd:parity")
    prog.rot(aux, deps=[gather], label="rz")
    return prog


def tfim_step_program(n_spins: int, n_nodes: int, steps: int = 1) -> Program:
    """§7.2: `steps` first-order Trotter steps of the ring TFIM, distributed
    over ``n_nodes`` with n/N spins per node (Listing 1 structure).

    Per node and step: (Q-1) internal ZZ rotations + 1 boundary ZZ rotation
    on a received copy + Q Rx rotations = 2Q rotations (D_Trotter = 2Q D_R),
    plus one EPR pair per ring edge. The expected steady-state per-step
    delay is max(D_Trotter, 2E) for S >= 2 and max(D_Trotter, 2E + 2 D_R)
    for S = 1 — the engine recovers both from the buffer constraint.
    """
    if n_spins % n_nodes:
        raise ValueError("n_spins must be divisible by n_nodes")
    q = n_spins // n_nodes
    prog = Program(n_nodes)
    if n_nodes == 1:
        last = None
        for s in range(steps):
            for i in range(2 * q):
                last = prog.rot(0, deps=[last] if last is not None else [], label=f"s{s}:rot{i}")
        return prog
    # Per (edge, step): the EPR slot release op, gating the next step's EPR.
    prev_release: dict[int, tuple] = {e: (None, None) for e in range(n_nodes)}
    prev_rx_first: dict[int, int | None] = {r: None for r in range(n_nodes)}
    prev_step_done: dict[int, int | None] = {r: None for r in range(n_nodes)}
    for s in range(steps):
        releases: dict[int, tuple] = {}
        boundary_rot: dict[int, int] = {}
        for edge in range(n_nodes):
            snd = (edge + 1) % n_nodes  # sender fans out its spin 0
            rcv = edge  # receiver holds the copy and rotates
            deps = [d for d in prev_release[edge] if d is not None]
            e = prog.epr(rcv, snd, deps=deps, label=f"s{s}:e{edge}:epr")
            # Fanout: sender's parity measurement (needs its spin-0 state
            # from the previous step's Rx), 1 bit, receiver's X fixup.
            mdeps = [e] + ([prev_rx_first[snd]] if prev_rx_first[snd] is not None else [])
            m = prog.local(snd, deps=mdeps, releases=[(e, snd)], flavor="measure",
                           label=f"s{s}:e{edge}:pm")
            c = prog.classical(deps=[m], label=f"s{s}:e{edge}:b1")
            f = prog.local(rcv, deps=[c], flavor="fixup", label=f"s{s}:e{edge}:xfix")
            cn = prog.local(rcv, deps=[f], flavor="clifford", label=f"s{s}:e{edge}:cnot")
            rot = prog.rot(rcv, deps=[cn], label=f"s{s}:e{edge}:zzrot")
            boundary_rot[edge] = rot
            cn2 = prog.local(rcv, deps=[rot], flavor="clifford", label=f"s{s}:e{edge}:uncnot")
            um = prog.local(rcv, deps=[cn2], releases=[(e, rcv)], flavor="measure",
                            label=f"s{s}:e{edge}:um")
            c2 = prog.classical(deps=[um], label=f"s{s}:e{edge}:b2")
            zf = prog.local(snd, deps=[c2], flavor="fixup", label=f"s{s}:e{edge}:zfix")
            releases[edge] = (um, zf)
        for r in range(n_nodes):
            # Internal ZZ rotations then the transverse-field Rx sweep.
            # All follow this step's boundary rotation: the paper's
            # "optimized schedule" clears the EPR buffer first (the
            # boundary rotation gates the unreceive), then fills the
            # rotation unit with local work.
            deps0 = [boundary_rot[r]]
            if prev_step_done[r] is not None:
                deps0.append(prev_step_done[r])
            last = None
            for i in range(q - 1):
                d = deps0 if last is None else [last]
                last = prog.rot(r, deps=d, label=f"s{s}:n{r}:zz{i}")
            rx_first = None
            for i in range(q):
                d = list(deps0 if last is None else [last])
                if i == 0:
                    # spin 0's Rx must wait for its fanned-out copy on the
                    # left neighbour to be uncomputed (the Z fixup).
                    d.append(releases[(r - 1) % n_nodes][1])
                last = prog.rot(r, deps=d, label=f"s{s}:n{r}:rx{i}")
                if i == 0:
                    rx_first = last
            prev_rx_first[r] = rx_first
            prev_step_done[r] = last
        prev_release = releases
    return prog
