"""Discrete-event scheduler for SENDQ programs.

Resource-constrained ASAP (list) scheduling:

* each node has one **rotation unit** (rotations serialize, §7.2's
  T-factory assumption), one **EPR port** (at most one pair creation at a
  time, §5), and an **EPR buffer** of S slots;
* an ``epr`` op starts only when both endpoints' ports are free *and*
  both have a free buffer slot; slots are held until a dependent op
  explicitly releases them;
* local ops start when their node's relevant unit is free (Cliffords,
  measurements and fixups don't compete for the rotation unit — full
  transversal parallelism per §5.1);
* classical ops are instantaneous (the model ignores classical cost).

Programs that overcommit buffers (e.g. the cat-state broadcast with S=1)
fail with :class:`ScheduleDeadlock` naming the starved ops — the model
telling you the schedule is infeasible, not just slow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .params import SendqParams
from .program import Program
from .trace import ScheduleTrace, TraceEntry

__all__ = ["schedule", "ScheduleDeadlock"]


class ScheduleDeadlock(RuntimeError):
    """No runnable op although work remains (usually buffer starvation)."""


@dataclass
class _NodeState:
    rot_free: float = 0.0
    port_free: float = 0.0
    buffer_used: int = 0


def schedule(program: Program, params: SendqParams) -> ScheduleTrace:
    """Compute start/end times for every op; returns the full trace."""
    program.validate()
    if program.n_nodes > params.N:
        raise ValueError(
            f"program uses {program.n_nodes} nodes but params.N = {params.N}"
        )
    ops = program.ops
    n_deps = {op.uid: len(op.deps) for op in ops}
    dependents: dict[int, list[int]] = {op.uid: [] for op in ops}
    for op in ops:
        for d in op.deps:
            dependents[d].append(op.uid)

    nodes = [_NodeState() for _ in range(program.n_nodes)]
    # (epr_uid, node) -> True while the slot is held
    held: set[tuple[int, int]] = set()
    ready_at: dict[int, float] = {op.uid: 0.0 for op in ops if not op.deps}
    done_at: dict[int, float] = {}
    started: set[int] = set()
    entries: list[TraceEntry] = []
    # event heap of (time, kind_priority, uid) for completions
    events: list[tuple[float, int, int]] = []
    now = 0.0

    def try_start(uid: int) -> bool:
        """Start op uid at `now` if resources allow; return success."""
        op = ops[uid]
        dur = program.duration_of(op, params)
        if op.kind == "epr":
            a, b = op.nodes
            if nodes[a].port_free > now or nodes[b].port_free > now:
                return False
            if params.S - nodes[a].buffer_used < 1 or params.S - nodes[b].buffer_used < 1:
                return False
            nodes[a].port_free = now + dur
            nodes[b].port_free = now + dur
            nodes[a].buffer_used += 1
            nodes[b].buffer_used += 1
            held.add((uid, a))
            held.add((uid, b))
        elif op.kind == "rot":
            (a,) = op.nodes
            if nodes[a].rot_free > now:
                return False
            nodes[a].rot_free = now + dur
        # local:* and classical: no unit contention
        started.add(uid)
        entries.append(TraceEntry(uid, op.label, op.kind, op.nodes, now, now + dur))
        heapq.heappush(events, (now + dur, 1, uid))
        return True

    def next_resource_time(uid: int) -> float | None:
        """Earliest future time the op's *timed* resources free up, or
        None if it is blocked on buffer slots only."""
        op = ops[uid]
        if op.kind == "epr":
            a, b = op.nodes
            t = max(nodes[a].port_free, nodes[b].port_free)
            slots_ok = (
                params.S - nodes[a].buffer_used >= 1
                and params.S - nodes[b].buffer_used >= 1
            )
            if not slots_ok:
                return None  # must wait for a release event
            return t
        if op.kind == "rot":
            return nodes[op.nodes[0]].rot_free
        return now

    # Seed: classical/locals with no deps can start at 0.
    pending = set(ready_at)
    while pending or events:
        # 1. start everything that can start now (uid order = program order)
        progress = True
        while progress:
            progress = False
            for uid in sorted(pending):
                if ready_at[uid] <= now and try_start(uid):
                    pending.discard(uid)
                    progress = True
        if not events:
            if pending:
                # Nothing running, work remains: either a future resource
                # time exists (advance) or we are deadlocked.
                future = [
                    t
                    for t in (next_resource_time(u) for u in pending if ready_at[u] <= now)
                    if t is not None and t > now
                ]
                waiting_deps = [u for u in pending if ready_at[u] > now]
                if future:
                    now = min(future)
                    continue
                if waiting_deps:  # pragma: no cover - defensive
                    now = min(ready_at[u] for u in waiting_deps)
                    continue
                starved = [ops[u].label for u in sorted(pending)]
                raise ScheduleDeadlock(
                    f"no op can make progress at t={now}; starved: {starved} "
                    f"(buffer S={params.S} too small for this schedule?)"
                )
            break
        # 2. advance to the next completion; apply releases and dep counts
        t, _, uid = heapq.heappop(events)
        now = max(now, t)
        op = ops[uid]
        done_at[uid] = t
        for epr_uid, node in op.releases:
            key = (epr_uid, node)
            if key not in held:
                raise ScheduleDeadlock(
                    f"op {op.label} releases EPR slot {key} that is not held "
                    "(double release?)"
                )
            held.discard(key)
            nodes[node].buffer_used -= 1
        for dep_uid in dependents[uid]:
            n_deps[dep_uid] -= 1
            if n_deps[dep_uid] == 0:
                ready_at[dep_uid] = t
                pending.add(dep_uid)

    if len(done_at) != len(ops):  # pragma: no cover - defensive
        missing = [op.label for op in ops if op.uid not in done_at]
        raise ScheduleDeadlock(f"ops never ran: {missing}")
    return ScheduleTrace(entries=sorted(entries, key=lambda e: (e.start, e.uid)),
                         n_nodes=program.n_nodes, params=params)
