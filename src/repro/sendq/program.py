"""SENDQ programs: DAGs of timed operations over model resources.

An :class:`Op` is one of:

* ``epr(a, b)`` — establish an EPR pair between nodes a and b. Occupies
  both nodes' EPR ports for duration E (a node is "involved in at most one
  EPR pair creation at any point", §5) and acquires one buffer slot on
  each endpoint at start. The slots stay occupied until explicitly
  released by a later op (``releases``) — this is how the S constraint
  bites.
* ``rot(node)`` — an arbitrary-angle rotation, duration D_R, serialized
  per node on the single rotation unit (T-factory budget, §7.2).
* ``local(node)`` — Clifford/other local op, default duration D_C;
  ``measure``/``fixup`` flavors take D_M / D_F.
* ``classical()`` — classical communication/compute; free (§5's modeling
  choice), used purely for ordering.

Dependencies are explicit op-id lists. The builder API returns ids so
programs read like straight-line code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .params import SendqParams

__all__ = ["Op", "Program"]


@dataclass
class Op:
    uid: int
    kind: str  # 'epr' | 'rot' | 'local' | 'classical'
    #: nodes the op runs on: (a, b) for epr, (node,) otherwise, () classical
    nodes: tuple[int, ...]
    duration: float
    deps: tuple[int, ...] = ()
    #: buffer tokens released when this op completes: list of epr op uids
    #: whose slot on `token_node` is freed; entries are (epr_uid, node).
    releases: tuple[tuple[int, int], ...] = ()
    label: str = ""


class Program:
    """An op-DAG over ``n_nodes`` SENDQ nodes."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.ops: list[Op] = []

    # -- builders ---------------------------------------------------------
    def _add(self, op: Op) -> int:
        self.ops.append(op)
        return op.uid

    def _check_node(self, *nodes: int) -> None:
        for n in nodes:
            if not (0 <= n < self.n_nodes):
                raise ValueError(f"node {n} out of range (N={self.n_nodes})")

    def epr(self, a: int, b: int, deps: Iterable[int] = (), label: str = "") -> int:
        """EPR creation between nodes ``a`` and ``b``."""
        self._check_node(a, b)
        if a == b:
            raise ValueError("EPR endpoints must differ")
        return self._add(
            Op(len(self.ops), "epr", (a, b), -1.0, tuple(deps), (), label or f"epr({a},{b})")
        )

    def rot(self, node: int, deps: Iterable[int] = (), releases: Iterable = (), label: str = "") -> int:
        """Arbitrary rotation on ``node`` (duration D_R, serialized)."""
        self._check_node(node)
        return self._add(
            Op(
                len(self.ops),
                "rot",
                (node,),
                -1.0,
                tuple(deps),
                tuple(releases),
                label or f"rot@{node}",
            )
        )

    def local(
        self,
        node: int,
        deps: Iterable[int] = (),
        releases: Iterable = (),
        flavor: str = "clifford",
        label: str = "",
    ) -> int:
        """Local non-rotation op; ``flavor`` in clifford|measure|fixup."""
        self._check_node(node)
        if flavor not in ("clifford", "measure", "fixup"):
            raise ValueError(f"unknown local flavor {flavor!r}")
        return self._add(
            Op(
                len(self.ops),
                f"local:{flavor}",
                (node,),
                -1.0,
                tuple(deps),
                tuple(releases),
                label or f"{flavor}@{node}",
            )
        )

    def classical(self, deps: Iterable[int] = (), releases: Iterable = (), label: str = "") -> int:
        """Zero-cost classical step (ordering/fan-in point)."""
        return self._add(
            Op(len(self.ops), "classical", (), 0.0, tuple(deps), tuple(releases), label or "classical")
        )

    # -- utilities ---------------------------------------------------------
    def duration_of(self, op: Op, params: SendqParams) -> float:
        if op.kind == "epr":
            return params.E
        if op.kind == "rot":
            return params.D_R
        if op.kind == "local:clifford":
            return params.D_C
        if op.kind == "local:measure":
            return params.D_M
        if op.kind == "local:fixup":
            return params.D_F
        if op.kind == "classical":
            return 0.0
        raise ValueError(f"unknown op kind {op.kind}")  # pragma: no cover

    def epr_count(self) -> int:
        """Total EPR pairs the program establishes."""
        return sum(1 for op in self.ops if op.kind == "epr")

    def rotation_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == "rot")

    def validate(self) -> None:
        """Static checks: dep ids exist and precede; releases reference
        epr ops touching the right node."""
        seen = set()
        by_uid = {op.uid: op for op in self.ops}
        for op in self.ops:
            for d in op.deps:
                if d not in by_uid:
                    raise ValueError(f"op {op.uid} depends on unknown op {d}")
                if d >= op.uid:
                    raise ValueError(f"op {op.uid} depends on later op {d} (cycle)")
            for epr_uid, node in op.releases:
                tgt = by_uid.get(epr_uid)
                if tgt is None or tgt.kind != "epr":
                    raise ValueError(f"op {op.uid} releases non-EPR op {epr_uid}")
                if node not in tgt.nodes:
                    raise ValueError(
                        f"op {op.uid} releases EPR {epr_uid} slot on node {node}, "
                        f"but that pair spans {tgt.nodes}"
                    )
            seen.add(op.uid)

    def __len__(self) -> int:
        return len(self.ops)
