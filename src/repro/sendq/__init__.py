"""SENDQ — the paper's performance model for distributed quantum computing.

* :class:`~repro.sendq.params.SendqParams` — S, E, N, D (D_R/D_M/D_F), Q
* :mod:`~repro.sendq.analysis` — closed-form delays/EPR counts (§5, §7)
* :mod:`~repro.sendq.program` / :mod:`~repro.sendq.engine` — op-DAGs and a
  resource-constrained discrete-event scheduler that enforces the model's
  constraints (single EPR creation per node, S-limited buffers, serialized
  rotations)
* :mod:`~repro.sendq.programs` — generators for the §7 workloads
"""

from . import analysis, programs
from .engine import ScheduleDeadlock, schedule
from .params import SendqParams
from .program import Op, Program
from .trace import ScheduleTrace, TraceEntry

__all__ = [
    "SendqParams",
    "Program",
    "Op",
    "schedule",
    "ScheduleDeadlock",
    "ScheduleTrace",
    "TraceEntry",
    "analysis",
    "programs",
]
