"""STO-3G basis for hydrogen.

Each hydrogen carries one contracted s-function: three primitive
Gaussians fitted to a Slater 1s with exponent zeta = 1.24 (the standard
STO-3G hydrogen). Only s-functions appear for hydrogen systems, which is
why all molecular integrals have closed forms (see integrals.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .geometry import Molecule

__all__ = ["ContractedGaussian", "sto3g_hydrogen", "basis_for"]

# STO-3G expansion of a zeta=1 Slater 1s (Hehre, Stewart, Pople 1969).
_STO3G_ALPHA = np.array([2.227660584, 0.405771156, 0.109818036])
_STO3G_COEF = np.array([0.154328967, 0.535328142, 0.444634542])
_HYDROGEN_ZETA = 1.24


@dataclass(frozen=True)
class ContractedGaussian:
    """A normalized contracted s-type Gaussian: sum_i c_i g(alpha_i, r-A)."""

    center: tuple[float, float, float]
    alphas: tuple[float, ...]
    coeffs: tuple[float, ...]

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self.center, dtype=float),
            np.asarray(self.alphas, dtype=float),
            np.asarray(self.coeffs, dtype=float),
        )


def sto3g_hydrogen(center) -> ContractedGaussian:
    """The STO-3G 1s function on a hydrogen at ``center`` (Bohr).

    Exponents scale as zeta^2; contraction coefficients absorb each
    primitive's normalization ``(2 a / pi)^(3/4)``.
    """
    alphas = _STO3G_ALPHA * _HYDROGEN_ZETA**2
    norms = (2.0 * alphas / np.pi) ** 0.75
    coeffs = _STO3G_COEF * norms
    return ContractedGaussian(tuple(float(x) for x in center), tuple(alphas), tuple(coeffs))


def basis_for(molecule: Molecule) -> list[ContractedGaussian]:
    """One STO-3G s-function per atom (all atoms must be hydrogen)."""
    if not np.allclose(molecule.charges, 1.0):
        raise ValueError("only hydrogen systems are supported (s-functions only)")
    return [sto3g_hydrogen(c) for c in molecule.coords]
