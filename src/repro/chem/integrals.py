"""Molecular integrals over s-type Gaussians (closed forms).

For hydrogen-only systems every basis function is an s-Gaussian, so the
overlap, kinetic, nuclear-attraction, and electron-repulsion integrals
reduce to the textbook formulas (Szabo & Ostlund App. A), with the Boys
function ``F0(x) = (1/2) sqrt(pi/x) erf(sqrt(x))`` carrying the Coulomb
parts. Everything is vectorized over primitive pairs/quartets; the ERI
exploits the 8-fold permutation symmetry.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from .basis import ContractedGaussian
from .geometry import Molecule

__all__ = ["boys_f0", "overlap_matrix", "kinetic_matrix", "nuclear_matrix", "eri_tensor"]


def boys_f0(x: np.ndarray) -> np.ndarray:
    """Boys function of order zero, stable at x -> 0 (series limit 1)."""
    x = np.asarray(x, dtype=float)
    out = np.ones_like(x)
    small = x < 1e-12
    xs = np.where(small, 1.0, x)  # avoid 0-division; overwritten below
    out = 0.5 * np.sqrt(np.pi / xs) * erf(np.sqrt(xs))
    return np.where(small, 1.0 - x / 3.0, out)


def _pairs(basis: list[ContractedGaussian]):
    """Flatten primitive data: centers (n,3), alphas/coeffs per function."""
    centers = np.array([b.center for b in basis])
    alphas = [np.asarray(b.alphas) for b in basis]
    coeffs = [np.asarray(b.coeffs) for b in basis]
    return centers, alphas, coeffs


def overlap_matrix(basis: list[ContractedGaussian]) -> np.ndarray:
    """Contracted overlap matrix S."""
    centers, alphas, coeffs = _pairs(basis)
    n = len(basis)
    S = np.empty((n, n))
    for i in range(n):
        for j in range(i, n):
            a = alphas[i][:, None]
            b = alphas[j][None, :]
            c = coeffs[i][:, None] * coeffs[j][None, :]
            p = a + b
            r2 = float(np.sum((centers[i] - centers[j]) ** 2))
            prim = (np.pi / p) ** 1.5 * np.exp(-a * b / p * r2)
            S[i, j] = S[j, i] = float(np.sum(c * prim))
    return S


def kinetic_matrix(basis: list[ContractedGaussian]) -> np.ndarray:
    """Contracted kinetic-energy matrix T."""
    centers, alphas, coeffs = _pairs(basis)
    n = len(basis)
    T = np.empty((n, n))
    for i in range(n):
        for j in range(i, n):
            a = alphas[i][:, None]
            b = alphas[j][None, :]
            c = coeffs[i][:, None] * coeffs[j][None, :]
            p = a + b
            mu = a * b / p
            r2 = float(np.sum((centers[i] - centers[j]) ** 2))
            s = (np.pi / p) ** 1.5 * np.exp(-mu * r2)
            prim = mu * (3.0 - 2.0 * mu * r2) * s
            T[i, j] = T[j, i] = float(np.sum(c * prim))
    return T


def nuclear_matrix(basis: list[ContractedGaussian], molecule: Molecule) -> np.ndarray:
    """Nuclear-attraction matrix V (negative definite contributions)."""
    centers, alphas, coeffs = _pairs(basis)
    n = len(basis)
    V = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            a = alphas[i][:, None]
            b = alphas[j][None, :]
            c = coeffs[i][:, None] * coeffs[j][None, :]
            p = a + b
            r2 = float(np.sum((centers[i] - centers[j]) ** 2))
            pref = (2.0 * np.pi / p) * np.exp(-a * b / p * r2)
            # Gaussian product center, broadcast over primitives.
            P = (a[..., None] * centers[i] + b[..., None] * centers[j]) / p[..., None]
            val = 0.0
            for zc, rc in zip(molecule.charges, molecule.coords):
                pc2 = np.sum((P - rc) ** 2, axis=-1)
                val += -zc * np.sum(c * pref * boys_f0(p * pc2))
            V[i, j] = V[j, i] = float(val)
    return V


def eri_tensor(basis: list[ContractedGaussian]) -> np.ndarray:
    """Two-electron repulsion integrals (ij|kl) in chemists' notation.

    Computes the unique set under 8-fold symmetry, vectorized over the
    primitive quartet grid of each contracted quartet.
    """
    centers, alphas, coeffs = _pairs(basis)
    n = len(basis)
    eri = np.zeros((n, n, n, n))

    # Precompute per-pair primitive data: p = a+b, K = exp(-ab/p r2), P.
    pair_p: dict[tuple[int, int], np.ndarray] = {}
    pair_K: dict[tuple[int, int], np.ndarray] = {}
    pair_P: dict[tuple[int, int], np.ndarray] = {}
    pair_c: dict[tuple[int, int], np.ndarray] = {}
    for i in range(n):
        for j in range(i, n):
            a = alphas[i][:, None]
            b = alphas[j][None, :]
            p = a + b
            r2 = float(np.sum((centers[i] - centers[j]) ** 2))
            K = np.exp(-a * b / p * r2)
            P = (a[..., None] * centers[i] + b[..., None] * centers[j]) / p[..., None]
            c = coeffs[i][:, None] * coeffs[j][None, :]
            pair_p[(i, j)] = p.ravel()
            pair_K[(i, j)] = K.ravel()
            pair_P[(i, j)] = P.reshape(-1, 3)
            pair_c[(i, j)] = c.ravel()

    def key(i, j):
        return (i, j) if i <= j else (j, i)

    for i in range(n):
        for j in range(i + 1):
            ij = i * (i + 1) // 2 + j
            for k in range(n):
                for l in range(k + 1):
                    kl = k * (k + 1) // 2 + l
                    if ij < kl:
                        continue
                    p = pair_p[key(i, j)][:, None]
                    q = pair_p[key(k, l)][None, :]
                    Kp = pair_K[key(i, j)][:, None]
                    Kq = pair_K[key(k, l)][None, :]
                    cp = pair_c[key(i, j)][:, None]
                    cq = pair_c[key(k, l)][None, :]
                    P = pair_P[key(i, j)][:, None, :]
                    Q = pair_P[key(k, l)][None, :, :]
                    pq2 = np.sum((P - Q) ** 2, axis=-1)
                    pref = 2.0 * np.pi**2.5 / (p * q * np.sqrt(p + q))
                    val = float(
                        np.sum(cp * cq * pref * Kp * Kq * boys_f0(p * q / (p + q) * pq2))
                    )
                    for a_, b_ in ((i, j), (j, i)):
                        for c_, d_ in ((k, l), (l, k)):
                            eri[a_, b_, c_, d_] = val
                            eri[c_, d_, a_, b_] = val
    return eri
