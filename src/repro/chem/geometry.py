"""Molecular geometries for the paper's chemistry workloads.

The paper's Fig. 5/7 use a hydrogen ring with 32 atoms in STO-3G; the
builders here produce rings and chains of hydrogens at arbitrary size so
tests can use small instances and the benches the full 32-atom ring.
Coordinates are in Bohr (atomic units) throughout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hydrogen_ring", "hydrogen_chain", "h2", "ANGSTROM_TO_BOHR", "Molecule"]

ANGSTROM_TO_BOHR = 1.8897259886


class Molecule:
    """Nuclei only (basis attached separately): charges and positions."""

    def __init__(self, charges, coords, n_electrons: int | None = None):
        self.charges = np.asarray(charges, dtype=float)
        self.coords = np.asarray(coords, dtype=float).reshape(len(self.charges), 3)
        self.n_electrons = int(n_electrons if n_electrons is not None else self.charges.sum())
        if self.n_electrons < 0:
            raise ValueError("negative electron count")

    @property
    def n_atoms(self) -> int:
        return len(self.charges)

    def nuclear_repulsion(self) -> float:
        """Pairwise Coulomb repulsion of the nuclei."""
        e = 0.0
        for i in range(self.n_atoms):
            for j in range(i + 1, self.n_atoms):
                r = np.linalg.norm(self.coords[i] - self.coords[j])
                e += self.charges[i] * self.charges[j] / r
        return e

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Molecule {self.n_atoms} atoms, {self.n_electrons} electrons>"


def hydrogen_ring(n_atoms: int, bond_length: float = 1.8) -> Molecule:
    """``n_atoms`` hydrogens equally spaced on a circle.

    ``bond_length`` is the nearest-neighbour separation in Bohr (paper
    default ~0.95 Å ≈ 1.8 a0 is a typical choice for H-ring benchmarks).
    """
    if n_atoms < 2:
        raise ValueError("a ring needs at least 2 atoms")
    # chord = 2 R sin(pi/n)  =>  R = chord / (2 sin(pi/n))
    radius = bond_length / (2.0 * np.sin(np.pi / n_atoms))
    angles = 2.0 * np.pi * np.arange(n_atoms) / n_atoms
    coords = np.stack(
        [radius * np.cos(angles), radius * np.sin(angles), np.zeros(n_atoms)], axis=1
    )
    return Molecule(np.ones(n_atoms), coords)


def hydrogen_chain(n_atoms: int, bond_length: float = 1.8) -> Molecule:
    """Linear chain of hydrogens along x."""
    if n_atoms < 1:
        raise ValueError("need at least one atom")
    coords = np.zeros((n_atoms, 3))
    coords[:, 0] = bond_length * np.arange(n_atoms)
    return Molecule(np.ones(n_atoms), coords)


def h2(bond_length: float = 1.4) -> Molecule:
    """The H2 molecule (default 1.4 a0 ~ the Szabo–Ostlund reference)."""
    return hydrogen_chain(2, bond_length)
