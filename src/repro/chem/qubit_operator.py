"""Pauli-string algebra with bitmask term encoding.

A Pauli string is stored as an ``(x_mask, z_mask)`` pair of Python ints:
qubit i carries X if only bit i of x is set, Z if only z, Y if both.
Coefficients are stored relative to the *Hermitian* string

    P(x, z) = i^{popcount(x & z)} X^x Z^z

so Hermitian operators have real coefficients. Multiplication tracks
phases through popcounts only — no matrices until ``to_matrix`` (tests).

This mirrors OpenFermion's QubitOperator at the API level but is
independent and sized for 64-qubit Hamiltonians (one machine word per
mask; Python ints beyond that).
"""

from __future__ import annotations

import numpy as np

__all__ = ["QubitOperator", "pauli_label", "string_support", "string_weight"]


def _phase_mul(x1: int, z1: int, x2: int, z2: int) -> complex:
    """Phase f such that P1 * P2 = f * P(x1^x2, z1^z2)."""
    c1 = (x1 & z1).bit_count()
    c2 = (x2 & z2).bit_count()
    c12 = ((x1 ^ x2) & (z1 ^ z2)).bit_count()
    swaps = (z1 & x2).bit_count()
    k = (c1 + c2 - c12) % 4
    return (1j**k) * ((-1) ** (swaps % 2))


def string_support(x: int, z: int) -> int:
    """Bitmask of qubits the string acts on."""
    return x | z


def string_weight(x: int, z: int) -> int:
    """Number of non-identity tensor factors."""
    return (x | z).bit_count()


def pauli_label(x: int, z: int) -> str:
    """Human-readable label like ``X0 Z2 Y5`` (empty = identity)."""
    parts = []
    m = x | z
    i = 0
    while m:
        if m & 1:
            xi, zi = (x >> i) & 1, (z >> i) & 1
            parts.append(("X" if not zi else "Y" if xi else "Z") + str(i))
        m >>= 1
        i += 1
    return " ".join(parts)


class QubitOperator:
    """A complex linear combination of Pauli strings."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict | None = None):
        self.terms: dict[tuple[int, int], complex] = dict(terms or {})

    # -- constructors ------------------------------------------------------
    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "QubitOperator":
        return cls({(0, 0): coeff})

    @classmethod
    def zero(cls) -> "QubitOperator":
        return cls({})

    @classmethod
    def from_label(cls, label: str, coeff: complex = 1.0) -> "QubitOperator":
        """Parse ``"X0 Y3 Z5"`` (empty string = identity)."""
        x = z = 0
        for tok in label.split():
            p, idx = tok[0].upper(), int(tok[1:])
            if p == "X":
                x |= 1 << idx
            elif p == "Z":
                z |= 1 << idx
            elif p == "Y":
                x |= 1 << idx
                z |= 1 << idx
            else:
                raise ValueError(f"bad Pauli token {tok!r}")
        return cls({(x, z): coeff})

    @classmethod
    def from_masks(cls, x: int, z: int, coeff: complex = 1.0) -> "QubitOperator":
        return cls({(x, z): coeff})

    # -- algebra -----------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, (int, float, complex)):
            other = QubitOperator.identity(other)
        out = dict(self.terms)
        for k, v in other.terms.items():
            out[k] = out.get(k, 0.0) + v
        return QubitOperator(out)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (other * -1.0 if isinstance(other, QubitOperator) else -other)

    def __mul__(self, other):
        if isinstance(other, (int, float, complex)):
            return QubitOperator({k: v * other for k, v in self.terms.items()})
        out: dict[tuple[int, int], complex] = {}
        for (x1, z1), c1 in self.terms.items():
            for (x2, z2), c2 in other.terms.items():
                key = (x1 ^ x2, z1 ^ z2)
                out[key] = out.get(key, 0.0) + c1 * c2 * _phase_mul(x1, z1, x2, z2)
        return QubitOperator(out)

    def __rmul__(self, other):
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def __neg__(self):
        return self * -1.0

    # -- maintenance ---------------------------------------------------------
    def simplify(self, tol: float = 1e-12) -> "QubitOperator":
        """Drop terms with |coeff| <= tol."""
        return QubitOperator({k: v for k, v in self.terms.items() if abs(v) > tol})

    def n_terms(self, tol: float = 1e-12) -> int:
        return sum(1 for v in self.terms.values() if abs(v) > tol)

    def is_hermitian(self, tol: float = 1e-10) -> bool:
        return all(abs(v.imag if isinstance(v, complex) else 0.0) < tol
                   for v in self.simplify(tol).terms.values())

    def support_weights(self, tol: float = 1e-12) -> list[int]:
        """Weights of all non-identity surviving strings (Fig. 5 data)."""
        return [
            string_weight(x, z)
            for (x, z), v in self.terms.items()
            if abs(v) > tol and (x | z)
        ]

    def constant(self) -> complex:
        return self.terms.get((0, 0), 0.0)

    # -- dense (tests only) ----------------------------------------------
    def to_matrix(self, n_qubits: int) -> np.ndarray:
        """Dense matrix with qubit 0 as the LEAST significant bit."""
        from ..sim import gates as G

        dim = 2**n_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for (x, z), coeff in self.terms.items():
            if (x | z) >> n_qubits:
                raise ValueError("term touches qubits beyond n_qubits")
            mats = []
            for i in range(n_qubits - 1, -1, -1):  # qubit n-1 leftmost
                xi, zi = (x >> i) & 1, (z >> i) & 1
                mats.append(
                    G.I2 if not (xi or zi) else G.X if not zi else G.Y if xi else G.Z
                )
            out += coeff * G.kron_all(*mats)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        items = sorted(self.terms.items(), key=lambda kv: -abs(kv[1]))[:6]
        body = " + ".join(f"{v:.4g}·[{pauli_label(x, z) or 'I'}]" for (x, z), v in items)
        more = "" if len(self.terms) <= 6 else f" + ... ({len(self.terms)} terms)"
        return f"QubitOperator({body}{more})"
