"""Vectorized majorana bitmasks for large-system support analysis.

For up to 64 spin orbitals (the paper's H32 ring), a Pauli string's x/z
masks fit one machine word each. Per mode j we precompute the masks of the
majorana pair (c_j, d_j) under JW or BK; products of majoranas then reduce
to XORs and supports to ``bitwise_count`` — the whole Fig. 5/7 pipeline
runs as a handful of NumPy array passes over millions of terms, no
symbolic algebra (guide rule: vectorize, never loop over amplitudes).

The per-term Pauli-string expansion rule (validated against the symbolic
transform in the tests):

* ``a†_p a_q + h.c.`` (p != q) -> 2 strings: ``c_p d_q`` and ``c_q d_p``
  (the cc/dd parts cancel since distinct majoranas anticommute);
* ``a†_p a_p``                 -> 1 non-identity string: ``c_p d_p``;
* 4 distinct modes             -> 8 strings: majorana choices with an
  even number of d's;
* one shared mode m            -> 4 strings: {1, Z̃_m} x {c_u d_v, c_v d_u};
* two shared modes             -> 3 strings: Z̃_m, Z̃_u, Z̃_m Z̃_u,

with ``Z̃_m = i c_m d_m`` the encoded number-operator string.
"""

from __future__ import annotations

import numpy as np

from .bravyi_kitaev import bk_sets

__all__ = ["MajoranaMasks", "EVEN_D_PATTERNS"]

#: The 8 majorana choice patterns (0=c, 1=d) with an even number of d's.
EVEN_D_PATTERNS: tuple[tuple[int, int, int, int], ...] = tuple(
    (a, b, c, d)
    for a in (0, 1)
    for b in (0, 1)
    for c in (0, 1)
    for d in (0, 1)
    if (a + b + c + d) % 2 == 0
)


class MajoranaMasks:
    """Per-mode (c_j, d_j) x/z masks for one encoding on n modes."""

    def __init__(self, n_modes: int, encoding: str):
        if n_modes > 64:
            raise ValueError("mask fast path supports at most 64 modes")
        encoding = encoding.lower()
        if encoding not in ("jw", "bk"):
            raise ValueError(f"unknown encoding {encoding!r} (use 'jw' or 'bk')")
        self.n_modes = n_modes
        self.encoding = encoding
        cx = np.zeros(n_modes, dtype=np.uint64)
        cz = np.zeros(n_modes, dtype=np.uint64)
        dx = np.zeros(n_modes, dtype=np.uint64)
        dz = np.zeros(n_modes, dtype=np.uint64)
        for j in range(n_modes):
            if encoding == "jw":
                low = (1 << j) - 1
                cx[j] = 1 << j
                cz[j] = low
                dx[j] = 1 << j
                dz[j] = low | (1 << j)
            else:
                U, F, P, R = bk_sets(j, n_modes)
                um = _mask(U) | (1 << j)
                cx[j] = um
                cz[j] = _mask(P)
                dx[j] = um
                dz[j] = _mask(R) | (1 << j)
        self.cx, self.cz, self.dx, self.dz = cx, cz, dx, dz

    # -- mask combinators (all vectorized over index arrays) ---------------
    def pair_xz(self, kind_a: int, a: np.ndarray, kind_b: int, b: np.ndarray):
        """x/z masks of the product (majorana kind_a on a) * (kind_b on b)."""
        xa = (self.dx if kind_a else self.cx)[a]
        za = (self.dz if kind_a else self.cz)[a]
        xb = (self.dx if kind_b else self.cx)[b]
        zb = (self.dz if kind_b else self.cz)[b]
        return xa ^ xb, za ^ zb

    def pair_support(self, kind_a: int, a: np.ndarray, kind_b: int, b: np.ndarray) -> np.ndarray:
        x, z = self.pair_xz(kind_a, a, kind_b, b)
        return x | z

    def number_xz(self, m: np.ndarray):
        """x/z masks of Z̃_m = i c_m d_m (the encoded number-op string)."""
        return self.cx[m] ^ self.dx[m], self.cz[m] ^ self.dz[m]

    def quad_support(self, pattern, p, q, r, s) -> np.ndarray:
        """Support of the 4-majorana product with the given c/d pattern."""
        x = np.zeros(len(p), dtype=np.uint64)
        z = np.zeros(len(p), dtype=np.uint64)
        for kind, idx in zip(pattern, (p, q, r, s)):
            x ^= (self.dx if kind else self.cx)[idx]
            z ^= (self.dz if kind else self.cz)[idx]
        return x | z

    def weight(self, support: np.ndarray) -> np.ndarray:
        return np.bitwise_count(support)


def _mask(indices) -> int:
    m = 0
    for i in indices:
        m |= 1 << i
    return m
