"""Qubit-to-node placements for distributed Hamiltonian simulation.

Fig. 7 fixes "the spin-orbitals ... to a specific node for the full
duration"; the placement determines how many nodes each Pauli string
touches and hence its EPR cost. Placements are represented as one uint64
bitmask per node (which spin orbitals it hosts).
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_placement", "round_robin_placement", "nodes_touched"]


def block_placement(n_qubits: int, n_nodes: int) -> np.ndarray:
    """Contiguous equal blocks: node k hosts qubits [k*w, (k+1)*w)."""
    if n_qubits % n_nodes:
        raise ValueError("n_nodes must divide n_qubits for block placement")
    w = n_qubits // n_nodes
    masks = np.zeros(n_nodes, dtype=np.uint64)
    for k in range(n_nodes):
        m = 0
        for q in range(k * w, (k + 1) * w):
            m |= 1 << q
        masks[k] = m
    return masks


def round_robin_placement(n_qubits: int, n_nodes: int) -> np.ndarray:
    """Strided placement: qubit q lives on node q mod N."""
    masks = np.zeros(n_nodes, dtype=np.uint64)
    for q in range(n_qubits):
        masks[q % n_nodes] |= np.uint64(1 << (q))
    return masks


def nodes_touched(supports: np.ndarray, node_masks: np.ndarray) -> np.ndarray:
    """For each support mask, the number of distinct nodes it spans."""
    supports = np.asarray(supports, dtype=np.uint64)
    m = np.zeros(len(supports), dtype=np.int64)
    for mask in node_masks:
        m += (supports & mask) != 0
    return m
