"""Bravyi–Kitaev transform via the Fenwick-tree construction.

Each qubit stores the parity of a subtree of modes; occupation and parity
are then both O(log n) look-ups, so every transformed ladder operator
touches O(log n) qubits — the concentration at low weights the paper's
Fig. 5 shows against Jordan–Wigner.

Set definitions follow Seeley, Richard & Love (J. Chem. Phys. 137, 224109):

* update set ``U(j)`` — ancestors of j in the Fenwick tree,
* flip set ``F(j)`` — children of j,
* parity set ``P(j)`` — disjoint subtrees covering modes ``< j``,
* remainder set ``R(j) = P(j) \\ F(j)``.

Majoranas: ``c_j = X_{U(j)} X_j Z_{P(j)}``, ``d_j = X_{U(j)} Y_j Z_{R(j)}``.
"""

from __future__ import annotations

from functools import lru_cache

from .fermion import FermionOperator
from .qubit_operator import QubitOperator

__all__ = [
    "FenwickTree",
    "bk_sets",
    "bk_majoranas",
    "bk_annihilation",
    "bk_creation",
    "bravyi_kitaev",
]


class FenwickTree:
    """The BK binary tree over ``n`` modes (root = n-1)."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one mode")
        self.n = n
        self.parent = [-1] * n
        self.children: list[list[int]] = [[] for _ in range(n)]

        def build(left: int, right: int) -> None:
            if left >= right:
                return
            mid = (left + right) >> 1
            self.parent[mid] = right
            self.children[right].append(mid)
            build(left, mid)
            build(mid + 1, right)

        build(0, n - 1)
        for c in self.children:
            c.sort()

    def ancestors(self, j: int) -> list[int]:
        out = []
        p = self.parent[j]
        while p != -1:
            out.append(p)
            p = self.parent[p]
        return out

    def parity_set(self, j: int) -> list[int]:
        """Disjoint subtree roots covering exactly the modes < j.

        Children of j (all < j) plus, while climbing to the root, every
        smaller child of each ancestor. Each node is the maximum of its
        subtree in this construction, so ``c < j`` iff subtree(c) ⊂ [0, j).
        """
        out = [c for c in self.children[j] if c < j]
        node = j
        p = self.parent[node]
        while p != -1:
            out.extend(c for c in self.children[p] if c < j and c < node)
            node = p
            p = self.parent[p]
        return sorted(set(out))


@lru_cache(maxsize=None)
def _tree(n: int) -> FenwickTree:
    return FenwickTree(n)


def bk_sets(j: int, n: int) -> tuple[list[int], list[int], list[int], list[int]]:
    """(U, F, P, R) index sets for mode j of an n-mode register."""
    t = _tree(n)
    U = t.ancestors(j)
    F = list(t.children[j])
    P = t.parity_set(j)
    R = sorted(set(P) - set(F))
    return U, F, P, R


def _mask(indices) -> int:
    m = 0
    for i in indices:
        m |= 1 << i
    return m


def bk_majoranas(j: int, n: int) -> tuple[QubitOperator, QubitOperator]:
    """Majorana pair (c_j, d_j) under BK on n modes."""
    U, F, P, R = bk_sets(j, n)
    x_c = _mask(U) | (1 << j)
    z_c = _mask(P)
    c = QubitOperator.from_masks(x_c, z_c)
    x_d = _mask(U) | (1 << j)
    z_d = _mask(R) | (1 << j)  # Y on j => both masks set at j
    d = QubitOperator.from_masks(x_d, z_d)
    return c, d


def bk_annihilation(j: int, n: int) -> QubitOperator:
    c, d = bk_majoranas(j, n)
    return (c + d * 1j) * 0.5


def bk_creation(j: int, n: int) -> QubitOperator:
    c, d = bk_majoranas(j, n)
    return (c - d * 1j) * 0.5


def bravyi_kitaev(op: FermionOperator, n_modes: int | None = None, tol: float = 1e-12) -> QubitOperator:
    """Transform a fermionic operator on ``n_modes`` (default: inferred)."""
    n = n_modes or op.n_modes()
    out = QubitOperator.zero()
    for factors, coeff in op.terms.items():
        term = QubitOperator.identity(coeff)
        for mode, dag in factors:
            term = term * (bk_creation(mode, n) if dag else bk_annihilation(mode, n))
        out = out + term
    return out.simplify(tol)
