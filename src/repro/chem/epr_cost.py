"""Fig. 7 — EPR pairs per first-order Trotter step.

Each Hamiltonian term exponential ``exp(-i t Z...Z)`` (after basis
rotations) spans some set of nodes m under a fixed placement; its EPR
cost depends on the circuit:

* **in-place** (Fig. 6(a)): per-node local parities are free; the
  distributed CNOT tree across the m nodes costs 2(m-1) EPR pairs
  (down + up).
* **constant-depth** (Fig. 6(c), Fig. 7 convention): a cat state across
  the m nodes with the rotation ancilla on one of them costs m-1 EPR
  pairs (spanning-tree edges).

Summing over every Pauli string of the encoded Hamiltonian gives the
figure's four series (JW/BK x in-place/const-depth) as a function of N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mo_integrals import MolecularHamiltonian
from .placement import block_placement, nodes_touched, round_robin_placement
from .weights import iter_support_masks

__all__ = ["trotter_step_epr", "epr_sweep", "TrotterEprResult"]


@dataclass
class TrotterEprResult:
    encoding: str
    method: str
    n_nodes: int
    epr_pairs: int
    n_strings: int


def _method_cost(m: np.ndarray, method: str) -> np.ndarray:
    spanned = np.maximum(m - 1, 0)
    if method == "inplace":
        return 2 * spanned
    if method == "constdepth":
        return spanned
    raise ValueError(f"unknown method {method!r} (use 'inplace' or 'constdepth')")


def trotter_step_epr(
    ham: MolecularHamiltonian,
    encoding: str,
    n_nodes: int,
    method: str,
    placement: str = "block",
    tol: float = 1e-10,
) -> TrotterEprResult:
    """Total EPR pairs to apply every Hamiltonian term once (one
    first-order Trotter step) under the given encoding/circuit/placement."""
    n_so = ham.n_spin_orbitals
    if placement == "block":
        node_masks = block_placement(n_so, n_nodes)
    elif placement == "round_robin":
        node_masks = round_robin_placement(n_so, n_nodes)
    else:
        raise ValueError(f"unknown placement {placement!r}")
    total = 0
    n_strings = 0
    for batch in iter_support_masks(ham, encoding, tol):
        m = nodes_touched(batch.masks, node_masks)
        total += int(_method_cost(m, method).sum())
        n_strings += len(batch.masks)
    return TrotterEprResult(encoding, method, n_nodes, total, n_strings)


def epr_sweep(
    ham: MolecularHamiltonian,
    node_counts=(1, 2, 4, 8, 16, 32, 64),
    encodings=("bk", "jw"),
    methods=("inplace", "constdepth"),
    placement: str = "block",
    tol: float = 1e-10,
) -> list[TrotterEprResult]:
    """The full Fig. 7 grid: EPR pairs vs node count for each series."""
    out = []
    for enc in encodings:
        for meth in methods:
            for n in node_counts:
                if ham.n_spin_orbitals % n:
                    continue
                out.append(trotter_step_epr(ham, enc, n, meth, placement, tol))
    return out
