"""Jordan–Wigner transform (1928): a_j -> (X_j + i Y_j)/2 · Z_{j-1}...Z_0.

The Z string carries the fermionic antisymmetry; its length is what makes
JW terms act on up to all qubits (the paper's Fig. 5 heavy tail).
"""

from __future__ import annotations

from .fermion import FermionOperator
from .qubit_operator import QubitOperator

__all__ = ["jw_annihilation", "jw_creation", "jw_majoranas", "jordan_wigner"]


def jw_majoranas(j: int) -> tuple[QubitOperator, QubitOperator]:
    """Majorana pair for mode j: c_j = Z_{<j} X_j, d_j = Z_{<j} Y_j."""
    low = (1 << j) - 1
    c = QubitOperator.from_masks(1 << j, low)
    d = QubitOperator.from_masks(1 << j, low | (1 << j))
    return c, d


def jw_annihilation(j: int) -> QubitOperator:
    """a_j = (c_j + i d_j) / 2."""
    c, d = jw_majoranas(j)
    return (c + d * 1j) * 0.5


def jw_creation(j: int) -> QubitOperator:
    """a†_j = (c_j - i d_j) / 2."""
    c, d = jw_majoranas(j)
    return (c - d * 1j) * 0.5


def jordan_wigner(op: FermionOperator, tol: float = 1e-12) -> QubitOperator:
    """Transform a fermionic operator, simplifying as it accumulates."""
    out = QubitOperator.zero()
    for factors, coeff in op.terms.items():
        term = QubitOperator.identity(coeff)
        for mode, dag in factors:
            term = term * (jw_creation(mode) if dag else jw_annihilation(mode))
        out = out + term
    return out.simplify(tol)
