"""AO -> MO transforms and the molecular Hamiltonian container.

``MolecularHamiltonian`` is the second-quantized Hamiltonian

    H = E_nn + sum_pq h_pq a†_p a_q
             + 1/2 sum_pqrs <pq|rs> a†_p a†_q a_r a_s   (physicists')

over *spin orbitals* (even index = alpha, odd = beta of spatial p//2).
Spatial tensors are stored (n^2 / n^4); spin structure is applied
analytically where needed so the 64-spin-orbital ring never materializes
a 64^4 tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scf import RHFResult

__all__ = ["MolecularHamiltonian", "build_hamiltonian"]


@dataclass
class MolecularHamiltonian:
    """MO-basis Hamiltonian data.

    ``hcore``: (n, n) spatial one-body integrals h_pq.
    ``eri_chem``: (n, n, n, n) spatial (pq|rs), chemists' notation.
    ``constant``: nuclear repulsion.
    """

    hcore: np.ndarray
    eri_chem: np.ndarray
    constant: float

    @property
    def n_spatial(self) -> int:
        return self.hcore.shape[0]

    @property
    def n_spin_orbitals(self) -> int:
        return 2 * self.n_spatial

    # -- spin-orbital accessors (sparse/symbolic consumers) ---------------
    def one_body_so(self, p: int, q: int) -> float:
        """h_pq over spin orbitals (zero across spin)."""
        if p % 2 != q % 2:
            return 0.0
        return float(self.hcore[p // 2, q // 2])

    def two_body_so(self, p: int, q: int, r: int, s: int) -> float:
        """<pq|rs> physicists' over spin orbitals.

        <pq|rs> = (pr|qs)_chem * delta(sp_p, sp_r) * delta(sp_q, sp_s).
        """
        if p % 2 != r % 2 or q % 2 != s % 2:
            return 0.0
        return float(self.eri_chem[p // 2, r // 2, q // 2, s // 2])

    def to_fermion_terms(self, threshold: float = 1e-12):
        """Yield ((indices, daggers), coeff) for every nonzero term —
        symbolic-scale only (use the vectorized paths for big systems).

        H = sum h_pq a†p aq + 1/2 sum <pq|rs> a†p a†q a_s a_r
        (physicists' notation; note the reversed annihilator order).
        """
        n = self.n_spin_orbitals
        for p in range(n):
            for q in range(n):
                c = self.one_body_so(p, q)
                if abs(c) > threshold:
                    yield ((p, 1), (q, 0)), c
        for p in range(n):
            for q in range(n):
                for r in range(n):
                    for s in range(n):
                        c = 0.5 * self.two_body_so(p, q, r, s)
                        if abs(c) > threshold:
                            yield ((p, 1), (q, 1), (s, 0), (r, 0)), c


def build_hamiltonian(rhf: RHFResult) -> MolecularHamiltonian:
    """Transform the converged RHF AO integrals into the MO basis."""
    C = rhf.mo_coeff
    hcore_mo = C.T @ rhf.hcore @ C
    # Four-index transform, O(n^5) via staged einsums.
    eri = rhf.eri
    eri = np.einsum("pi,pqrs->iqrs", C, eri, optimize=True)
    eri = np.einsum("qj,iqrs->ijrs", C, eri, optimize=True)
    eri = np.einsum("rk,ijrs->ijks", C, eri, optimize=True)
    eri = np.einsum("sl,ijks->ijkl", C, eri, optimize=True)
    return MolecularHamiltonian(hcore_mo, eri, rhf.nuclear_repulsion)
