"""Fig. 5 — per-term qubit counts of the encoded molecular Hamiltonian.

For every term of the second-quantized Hamiltonian (Eq. (1) form after
the encoding), compute how many qubits the resulting Pauli strings act
on, and histogram the counts for Jordan–Wigner vs Bravyi–Kitaev.

Term-counting convention (documented in DESIGN.md §4): one-body terms are
unique pairs p <= q expanded over spin; two-body terms are the unique
chemist integrals (pq|rs) under 8-fold permutation symmetry expanded over
the 4 spin channels; each is expanded into its distinct Pauli strings via
the majorana rules of :mod:`majorana_masks` (validated symbolically).
Strings are deduplicated within a term group, not globally — the support
distribution (the figure's content) is exact, the absolute multiplicity
convention differs slightly from a globally-deduplicated QubitOperator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .majorana_masks import EVEN_D_PATTERNS, MajoranaMasks
from .mo_integrals import MolecularHamiltonian

__all__ = ["support_histogram", "iter_support_masks", "SupportBatch"]


@dataclass
class SupportBatch:
    """A batch of Pauli-string support masks (uint64 array)."""

    masks: np.ndarray
    origin: str  # 'one_body' | 'two_body:<case>'


def _unique_quadruples(eri: np.ndarray, tol: float):
    """Unique (p,q,r,s) under 8-fold symmetry with |(pq|rs)| > tol."""
    n = eri.shape[0]
    p_, q_ = np.tril_indices(n)  # p >= q
    pair_idx = np.arange(len(p_))
    # pairs of pairs with ij >= kl
    a_, b_ = np.tril_indices(len(pair_idx))
    P = p_[a_]
    Q = q_[a_]
    R = p_[b_]
    S = q_[b_]
    vals = eri[P, Q, R, S]
    keep = np.abs(vals) > tol
    return P[keep], Q[keep], R[keep], S[keep]


def iter_support_masks(
    ham: MolecularHamiltonian, encoding: str, tol: float = 1e-10
):
    """Yield :class:`SupportBatch` for every term group of ``ham``."""
    n_sp = ham.n_spatial
    n_so = ham.n_spin_orbitals
    mm = MajoranaMasks(n_so, encoding)

    # ---- one-body: pairs p <= q over both spins -------------------------
    pu, qu = np.triu_indices(n_sp)
    vals = ham.hcore[pu, qu]
    keep = np.abs(vals) > tol
    pu, qu = pu[keep], qu[keep]
    for spin in (0, 1):
        P = (2 * pu + spin).astype(np.int64)
        Q = (2 * qu + spin).astype(np.int64)
        diag = P == Q
        if np.any(diag):
            yield SupportBatch(
                mm.pair_support(0, P[diag], 1, Q[diag]), "one_body:number"
            )
        off = ~diag
        if np.any(off):
            # a†p aq + h.c. = (i/2)(c_p d_q + c_q d_p): the cc/dd parts
            # cancel because distinct majoranas anticommute.
            yield SupportBatch(mm.pair_support(0, P[off], 1, Q[off]), "one_body:cd")
            yield SupportBatch(mm.pair_support(0, Q[off], 1, P[off]), "one_body:dc")

    # ---- two-body: unique chemist integrals x 4 spin channels -----------
    p, q, r, s = _unique_quadruples(ham.eri_chem, tol)
    for sigma in (0, 1):
        for tau in (0, 1):
            # a†_{p sigma} a†_{r tau} a_{s tau} a_{q sigma}
            Pc = (2 * p + sigma).astype(np.int64)
            Rc = (2 * r + tau).astype(np.int64)
            Sa = (2 * s + tau).astype(np.int64)
            Qa = (2 * q + sigma).astype(np.int64)
            valid = (Pc != Rc) & (Sa != Qa)
            Pc, Rc, Sa, Qa = Pc[valid], Rc[valid], Sa[valid], Qa[valid]
            if len(Pc) == 0:
                continue
            in_ann_P = (Pc == Sa) | (Pc == Qa)
            in_ann_R = (Rc == Sa) | (Rc == Qa)
            ncommon = in_ann_P.astype(int) + in_ann_R.astype(int)

            # case 0: four distinct modes -> 8 even-d strings
            c0 = ncommon == 0
            if np.any(c0):
                for pattern in EVEN_D_PATTERNS:
                    yield SupportBatch(
                        mm.quad_support(pattern, Pc[c0], Rc[c0], Sa[c0], Qa[c0]),
                        "two_body:distinct",
                    )
            # case 1: one shared mode m; hopping on (u, v). The hopping
            # expands into the cross pairs c_u d_v / c_v d_u (see the
            # one-body comment), each alone and dressed with Z̃_m.
            c1 = ncommon == 1
            if np.any(c1):
                P1, R1, S1, Q1 = Pc[c1], Rc[c1], Sa[c1], Qa[c1]
                m = np.where(in_ann_P[c1], P1, R1)
                u = np.where(in_ann_P[c1], R1, P1)  # the unshared creation
                v = np.where((S1 != m), S1, Q1)  # the unshared annihilation
                zx, zz = mm.number_xz(m)
                for a, b in ((u, v), (v, u)):
                    x, z = mm.pair_xz(0, a, 1, b)
                    yield SupportBatch(x | z, "two_body:hopZ0")
                    yield SupportBatch((x ^ zx) | (z ^ zz), "two_body:hopZ1")
            # case 2: both shared -> number-number
            c2 = ncommon == 2
            if np.any(c2):
                m1, m2 = Pc[c2], Rc[c2]
                x1, z1 = mm.number_xz(m1)
                x2, z2 = mm.number_xz(m2)
                yield SupportBatch(x1 | z1, "two_body:nn")
                yield SupportBatch(x2 | z2, "two_body:nn")
                yield SupportBatch((x1 ^ x2) | (z1 ^ z2), "two_body:nn")


def support_histogram(
    ham: MolecularHamiltonian, encoding: str, tol: float = 1e-10
) -> np.ndarray:
    """Histogram of Pauli-string weights: index w = number of strings
    acting on exactly w qubits (Fig. 5's series for one encoding)."""
    n_so = ham.n_spin_orbitals
    counts = np.zeros(n_so + 1, dtype=np.int64)
    for batch in iter_support_masks(ham, encoding, tol):
        w = np.bitwise_count(batch.masks)
        counts += np.bincount(w.astype(np.int64), minlength=n_so + 1)
    return counts
