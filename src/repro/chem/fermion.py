"""Symbolic fermionic operators (creation/annihilation algebra).

Terms are tuples of ``(mode_index, dagger)`` factors with complex
coefficients. Enough algebra for building molecular Hamiltonians at
test scale and validating the JW/BK transforms; the large-system paths
never materialize these (see majorana_masks.py / weights.py).
"""

from __future__ import annotations

__all__ = ["FermionOperator"]


class FermionOperator:
    """Linear combination of products of fermionic ladder operators."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict | None = None):
        self.terms: dict[tuple[tuple[int, int], ...], complex] = dict(terms or {})

    @classmethod
    def zero(cls) -> "FermionOperator":
        return cls({})

    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "FermionOperator":
        return cls({(): coeff})

    @classmethod
    def term(cls, factors, coeff: complex = 1.0) -> "FermionOperator":
        """``factors``: sequence of (mode, dagger) with dagger in {0, 1}."""
        t = tuple((int(m), int(d)) for m, d in factors)
        for _, d in t:
            if d not in (0, 1):
                raise ValueError("dagger flag must be 0 or 1")
        return cls({t: coeff})

    @classmethod
    def creation(cls, mode: int) -> "FermionOperator":
        return cls.term([(mode, 1)])

    @classmethod
    def annihilation(cls, mode: int) -> "FermionOperator":
        return cls.term([(mode, 0)])

    # -- algebra -----------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, (int, float, complex)):
            other = FermionOperator.identity(other)
        out = dict(self.terms)
        for k, v in other.terms.items():
            out[k] = out.get(k, 0.0) + v
        return FermionOperator(out)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (other * -1.0 if isinstance(other, FermionOperator) else -other)

    def __mul__(self, other):
        if isinstance(other, (int, float, complex)):
            return FermionOperator({k: v * other for k, v in self.terms.items()})
        out: dict[tuple, complex] = {}
        for t1, c1 in self.terms.items():
            for t2, c2 in other.terms.items():
                key = t1 + t2
                out[key] = out.get(key, 0.0) + c1 * c2
        return FermionOperator(out)

    def __rmul__(self, other):
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def hermitian_conjugate(self) -> "FermionOperator":
        out: dict[tuple, complex] = {}
        for t, c in self.terms.items():
            key = tuple((m, 1 - d) for m, d in reversed(t))
            out[key] = out.get(key, 0.0) + c.conjugate() if isinstance(c, complex) else c
        return FermionOperator(out)

    def simplify(self, tol: float = 1e-12) -> "FermionOperator":
        return FermionOperator({k: v for k, v in self.terms.items() if abs(v) > tol})

    def n_modes(self) -> int:
        """1 + highest mode index appearing (0 for the identity)."""
        m = -1
        for t in self.terms:
            for mode, _ in t:
                m = max(m, mode)
        return m + 1

    def __repr__(self) -> str:  # pragma: no cover
        def fmt(t):
            return "".join(f"a{'†' if d else ''}_{m} " for m, d in t) or "1"

        items = list(self.terms.items())[:6]
        body = " + ".join(f"{v:.4g}·{fmt(t)}" for t, v in items)
        more = "" if len(self.terms) <= 6 else f" + ... ({len(self.terms)} terms)"
        return f"FermionOperator({body}{more})"
