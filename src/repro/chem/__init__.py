"""Quantum-chemistry substrate for the paper's §7.3 workloads.

Pipeline: geometry -> STO-3G basis -> analytic integrals -> RHF ->
MO-basis second-quantized Hamiltonian -> JW/BK encodings -> Pauli-term
statistics (Fig. 5) and distributed EPR costs (Fig. 7), plus symbolic
operators and Trotter circuits for small-system validation.
"""

from .basis import ContractedGaussian, basis_for, sto3g_hydrogen
from .bravyi_kitaev import FenwickTree, bk_sets, bravyi_kitaev
from .epr_cost import TrotterEprResult, epr_sweep, trotter_step_epr
from .fermion import FermionOperator
from .geometry import Molecule, h2, hydrogen_chain, hydrogen_ring
from .integrals import boys_f0, eri_tensor, kinetic_matrix, nuclear_matrix, overlap_matrix
from .jordan_wigner import jordan_wigner
from .majorana_masks import MajoranaMasks
from .mo_integrals import MolecularHamiltonian, build_hamiltonian
from .placement import block_placement, nodes_touched, round_robin_placement
from .qubit_operator import QubitOperator, pauli_label, string_weight
from .scf import RHFResult, run_rhf
from .trotter import qubit_hamiltonian, trotter_evolve, trotter_step
from .weights import support_histogram

__all__ = [
    "Molecule",
    "hydrogen_ring",
    "hydrogen_chain",
    "h2",
    "basis_for",
    "sto3g_hydrogen",
    "ContractedGaussian",
    "overlap_matrix",
    "kinetic_matrix",
    "nuclear_matrix",
    "eri_tensor",
    "boys_f0",
    "run_rhf",
    "RHFResult",
    "MolecularHamiltonian",
    "build_hamiltonian",
    "FermionOperator",
    "QubitOperator",
    "pauli_label",
    "string_weight",
    "jordan_wigner",
    "bravyi_kitaev",
    "bk_sets",
    "FenwickTree",
    "MajoranaMasks",
    "support_histogram",
    "block_placement",
    "round_robin_placement",
    "nodes_touched",
    "trotter_step_epr",
    "epr_sweep",
    "TrotterEprResult",
    "qubit_hamiltonian",
    "trotter_step",
    "trotter_evolve",
]
