"""Trotterized time evolution of encoded Hamiltonians on the simulator.

Builds the circuits of Eq. (1): each Pauli string exponential is a basis
change + CNOT parity ladder + Rz + uncompute, as in Fig. 6. Used for
small-molecule integration tests (Trotter vs exact ``expm``) and as the
quantum payload of the distributed chemistry example.
"""

from __future__ import annotations

from ..sim.pauli import rotate_pauli_string
from ..sim.statevector import StateVector
from .fermion import FermionOperator
from .bravyi_kitaev import bravyi_kitaev
from .jordan_wigner import jordan_wigner
from .mo_integrals import MolecularHamiltonian
from .qubit_operator import QubitOperator

__all__ = ["qubit_hamiltonian", "trotter_step", "trotter_evolve", "mapping_of"]


def qubit_hamiltonian(
    ham: MolecularHamiltonian, encoding: str = "jw", tol: float = 1e-10
) -> QubitOperator:
    """Full symbolic encoded Hamiltonian (small systems only: O(n^4) terms)."""
    fop = FermionOperator.zero()
    for factors, coeff in ham.to_fermion_terms(tol):
        fop = fop + FermionOperator.term(factors, coeff)
    fop = fop + FermionOperator.identity(ham.constant)
    encoding = encoding.lower()
    if encoding == "jw":
        return jordan_wigner(fop, tol)
    if encoding == "bk":
        return bravyi_kitaev(fop, ham.n_spin_orbitals, tol)
    raise ValueError(f"unknown encoding {encoding!r}")


def mapping_of(x: int, z: int, qubits: list[int]) -> dict[int, str]:
    """Convert term masks to a {simulator qubit: pauli} mapping."""
    out = {}
    i = 0
    m = x | z
    while m:
        if m & 1:
            xi, zi = (x >> i) & 1, (z >> i) & 1
            out[qubits[i]] = "X" if not zi else "Y" if xi else "Z"
        m >>= 1
        i += 1
    return out


def trotter_step(
    sv: StateVector, qubits: list[int], op: QubitOperator, t: float, tol: float = 1e-12
) -> None:
    """Apply one first-order Trotter step of exp(-i t H).

    Terms are applied in a deterministic (sorted-mask) order so results
    are reproducible across runs.
    """
    for (x, z), coeff in sorted(op.terms.items()):
        if abs(coeff) <= tol:
            continue
        if x == 0 and z == 0:
            continue  # global phase only
        c = complex(coeff)
        if abs(c.imag) > 1e-9:
            raise ValueError("Hamiltonian must be Hermitian (real string coeffs)")
        rotate_pauli_string(sv, mapping_of(x, z, qubits), 2.0 * c.real * t)


def trotter_evolve(
    sv: StateVector,
    qubits: list[int],
    op: QubitOperator,
    t: float,
    n_steps: int,
) -> None:
    """n_steps first-order Trotter steps covering total time t."""
    dt = t / n_steps
    for _ in range(n_steps):
        trotter_step(sv, qubits, op, dt)
