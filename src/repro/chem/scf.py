"""Restricted Hartree–Fock with DIIS.

Produces the molecular-orbital coefficients that define the second-
quantized Hamiltonian the paper's Fig. 5/7 analyses start from (the role
PySCF played for the authors). Closed-shell only — the hydrogen-ring
workloads have even electron counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basis import basis_for
from .geometry import Molecule
from .integrals import eri_tensor, kinetic_matrix, nuclear_matrix, overlap_matrix

__all__ = ["RHFResult", "run_rhf"]


@dataclass
class RHFResult:
    """Converged RHF data (all AO-basis tensors retained for transforms)."""

    energy: float  # total (electronic + nuclear)
    electronic_energy: float
    nuclear_repulsion: float
    mo_coeff: np.ndarray  # (nao, nmo)
    mo_energies: np.ndarray
    density: np.ndarray
    hcore: np.ndarray
    overlap: np.ndarray
    eri: np.ndarray  # chemists' (ij|kl)
    n_occupied: int
    converged: bool
    iterations: int


def run_rhf(
    molecule: Molecule,
    max_iter: int = 200,
    conv_tol: float = 1e-10,
    diis_depth: int = 8,
) -> RHFResult:
    """Solve restricted Hartree–Fock in STO-3G for a hydrogen system."""
    if molecule.n_electrons % 2:
        raise ValueError("RHF requires an even electron count")
    nocc = molecule.n_electrons // 2
    basis = basis_for(molecule)
    S = overlap_matrix(basis)
    T = kinetic_matrix(basis)
    V = nuclear_matrix(basis, molecule)
    eri = eri_tensor(basis)
    hcore = T + V
    e_nuc = molecule.nuclear_repulsion()

    # Symmetric (Löwdin) orthogonalization.
    s_val, s_vec = np.linalg.eigh(S)
    if np.min(s_val) < 1e-10:
        raise np.linalg.LinAlgError("overlap matrix is (near-)singular")
    X = s_vec @ np.diag(s_val**-0.5) @ s_vec.T

    def fock(dm: np.ndarray) -> np.ndarray:
        # F = h + 2 J - K, chemists' notation: J_ij = (ij|kl) D_lk
        J = np.einsum("ijkl,lk->ij", eri, dm, optimize=True)
        K = np.einsum("ikjl,lk->ij", eri, dm, optimize=True)
        return hcore + 2.0 * J - K

    def density(C: np.ndarray) -> np.ndarray:
        Cocc = C[:, :nocc]
        return Cocc @ Cocc.T

    # Core-Hamiltonian guess.
    e, C = np.linalg.eigh(X.T @ hcore @ X)
    C = X @ C
    dm = density(C)

    fock_hist: list[np.ndarray] = []
    err_hist: list[np.ndarray] = []
    energy = 0.0
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        F = fock(dm)
        # DIIS error: FDS - SDF in the orthonormal basis.
        err = X.T @ (F @ dm @ S - S @ dm @ F) @ X
        fock_hist.append(F)
        err_hist.append(err)
        if len(fock_hist) > diis_depth:
            fock_hist.pop(0)
            err_hist.pop(0)
        if len(fock_hist) > 1:
            F = _diis_extrapolate(fock_hist, err_hist)
        e_orb, C = np.linalg.eigh(X.T @ F @ X)
        C = X @ C
        new_dm = density(C)
        e_elec = float(np.sum(new_dm * (hcore + fock(new_dm))))
        delta = abs(e_elec - energy)
        rms = float(np.sqrt(np.mean((new_dm - dm) ** 2)))
        energy, dm = e_elec, new_dm
        if delta < conv_tol and rms < np.sqrt(conv_tol):
            converged = True
            break

    F = fock(dm)
    e_orb, C = np.linalg.eigh(X.T @ F @ X)
    C = X @ C
    return RHFResult(
        energy=energy + e_nuc,
        electronic_energy=energy,
        nuclear_repulsion=e_nuc,
        mo_coeff=C,
        mo_energies=e_orb,
        density=dm,
        hcore=hcore,
        overlap=S,
        eri=eri,
        n_occupied=nocc,
        converged=converged,
        iterations=it,
    )


def _diis_extrapolate(focks: list[np.ndarray], errs: list[np.ndarray]) -> np.ndarray:
    """Pulay DIIS: solve for the error-minimizing Fock combination."""
    m = len(focks)
    B = np.empty((m + 1, m + 1))
    B[-1, :] = -1.0
    B[:, -1] = -1.0
    B[-1, -1] = 0.0
    for i in range(m):
        for j in range(m):
            B[i, j] = float(np.sum(errs[i] * errs[j]))
    rhs = np.zeros(m + 1)
    rhs[-1] = -1.0
    try:
        coef = np.linalg.solve(B, rhs)[:m]
    except np.linalg.LinAlgError:  # fall back to plain iteration
        return focks[-1]
    return sum(c * f for c, f in zip(coef, focks))
