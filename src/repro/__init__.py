"""repro — Distributed Quantum Computing with QMPI (SC 2021), reproduced.

Subpackages
-----------
``repro.qmpi``
    The paper's contribution: the quantum Message Passing Interface —
    EPR establishment, copy/move point-to-point with inverses, all
    collectives of Tables 2-3, reversible reductions, persistent
    requests, and the resource ledger.
``repro.sendq``
    The SENDQ performance model: parameters (S, E, N, D, Q), the closed
    forms of §5/§7, and a discrete-event scheduler that validates them.
``repro.mpi``
    In-process classical MPI substrate (threads as ranks).
``repro.sim``
    Full state-vector simulator with the §6 prototype's architecture.
``repro.chem``
    STO-3G/RHF/Jordan-Wigner/Bravyi-Kitaev chemistry substrate for the
    Figs. 5 and 7 workloads.
``repro.apps``
    Distributed applications: teleportation, cat states, the Fig. 6
    parity circuits, and the Listing-1 TFIM program.
``repro.exact``
    Dense references (exp(-iHt), Pauli matrices) for validation.

Entry point: :func:`repro.qmpi.qmpi_run`.
"""

__version__ = "1.0.0"

__all__ = ["qmpi", "sendq", "mpi", "sim", "chem", "apps", "exact", "__version__"]
