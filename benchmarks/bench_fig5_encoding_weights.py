"""Fig. 5 — qubits per Hamiltonian term: Jordan-Wigner vs Bravyi-Kitaev.

Histogram of the number of qubits each encoded Hamiltonian term acts on,
for a hydrogen ring in STO-3G. Default ring: 12 atoms (seconds);
``REPRO_RING_ATOMS=32`` reproduces the paper's 64-qubit system.

Expected shape (must match the paper): JW has a heavy tail reaching the
full register width (64 for H32), BK concentrates at O(log n) weights.
"""

import numpy as np
import pytest

from repro.chem import support_histogram


@pytest.mark.parametrize("encoding", ["jw", "bk"])
def test_fig5_histogram(benchmark, ring_hamiltonian, encoding):
    counts = benchmark(lambda: support_histogram(ring_hamiltonian, encoding))
    n_so = ring_hamiltonian.n_spin_orbitals
    total = int(counts.sum())
    maxw = max(i for i, c in enumerate(counts) if c)
    mean = float(sum(i * c for i, c in enumerate(counts)) / total)
    benchmark.extra_info["total_terms"] = total
    benchmark.extra_info["max_weight"] = maxw
    benchmark.extra_info["mean_weight"] = round(mean, 2)
    print(f"\nFig. 5 [{encoding.upper()}] — ring with {n_so} spin orbitals, "
          f"{total} Pauli strings, max weight {maxw}, mean {mean:.2f}")
    peak = counts.max()
    for w, c in enumerate(counts):
        if c:
            bar = "#" * max(1, int(40 * np.log10(c + 1) / np.log10(peak + 1)))
            print(f"  {w:3d} | {bar} {c}")
    if encoding == "jw":
        assert maxw == n_so  # JW reaches the full register
    else:
        assert maxw < n_so  # BK strictly narrower (O(log n))


def test_fig5_shape_comparison(benchmark, ring_hamiltonian):
    jw, bk = benchmark(
        lambda: (
            support_histogram(ring_hamiltonian, "jw"),
            support_histogram(ring_hamiltonian, "bk"),
        )
    )
    assert jw.sum() == bk.sum()  # identical term-count convention
    jw_max = max(i for i, c in enumerate(jw) if c)
    bk_max = max(i for i, c in enumerate(bk) if c)
    n_so = ring_hamiltonian.n_spin_orbitals
    print(f"\nFig. 5 shape: JW max weight {jw_max} (= {n_so}), "
          f"BK max weight {bk_max} (≈ O(log n))")
    assert jw_max == n_so
    assert bk_max <= 3 * int(np.ceil(np.log2(n_so))) + 4
