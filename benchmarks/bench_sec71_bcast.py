"""§7.1 — optimizing QMPI_Bcast: binomial tree vs cat state.

Prints the runtime series the paper derives (E*ceil(log2 N) vs
2E + D_M + D_F), validates both against the event engine, and runs both
algorithms functionally with identical results and EPR budgets.
"""

import pytest

from repro.qmpi import qmpi_run
from repro.sendq import SendqParams, analysis, programs, schedule

NS = (2, 4, 8, 16, 32, 64)


def test_sec71_series(benchmark):
    def run():
        rows = []
        for n in NS:
            p = SendqParams(N=n, S=2, E=1.0, D_M=0.05, D_F=0.05)
            rows.append((n, analysis.bcast_tree_time(p), analysis.bcast_cat_time(p)))
        return rows

    rows = benchmark(run)
    print("\n§7.1 — broadcast runtime (E=1, D_M=D_F=0.05):")
    print(f"{'N':>4} {'tree':>8} {'cat':>8}")
    for n, t_tree, t_cat in rows:
        print(f"{n:>4} {t_tree:>8.2f} {t_cat:>8.2f}")
    # the crossover: cat wins for all N >= 8 here
    assert all(t_cat < t_tree for n, t_tree, t_cat in rows if n >= 8)


@pytest.mark.parametrize("n", [8, 32])
def test_sec71_engine_agrees(benchmark, n):
    # The paper's E*ceil(log2 N) tree formula neglects measurement/fixup
    # delays; validate it under that assumption (D_M = D_F = 0). The cat
    # formula carries them explicitly, so the cat check keeps them.
    p_tree = SendqParams(N=n, S=2, E=1.0)
    p_cat = SendqParams(N=n, S=2, E=1.0, D_M=0.05, D_F=0.05)

    def run():
        return (
            schedule(programs.bcast_tree_program(n), p_tree).makespan,
            schedule(programs.bcast_cat_program(n), p_cat).makespan,
        )

    t_tree, t_cat = benchmark(run)
    assert t_tree == pytest.approx(analysis.bcast_tree_time(p_tree))
    assert t_cat == pytest.approx(analysis.bcast_cat_time(p_cat))
    print(f"\n§7.1 engine N={n}: tree={t_tree:.2f}, cat={t_cat:.2f} (= formulas)")


def test_sec71_functional_equivalence(benchmark):
    def prog(qc, algorithm):
        q = qc.alloc_qmem(1)
        if qc.rank == 0:
            qc.ry(q[0], 0.8)
        qc.bcast(q, root=0, algorithm=algorithm)
        return round(qc.prob_one(q[0]), 9)

    def run():
        out = {}
        for algorithm in ("tree", "cat"):
            w = qmpi_run(5, prog, args=(algorithm,), seed=1)
            out[algorithm] = (w.results, w.ledger.snapshot().epr_pairs)
        return out

    out = benchmark(run)
    assert out["tree"][0] == out["cat"][0]
    assert out["tree"][1] == out["cat"][1] == 4
    print(f"\n§7.1 functional: both algorithms give P(1)={out['tree'][0][0]} "
          f"on every rank with 4 EPR pairs")
