"""Execution-schedule overhead + wide-window sweeps -> BENCH_schedule.json.

Two phases, both through the full op-stream path (``OpStream`` ->
``apply_ops``), guarding the two size-aware planning decisions of
:class:`repro.sim.schedule.CostModel`:

Small phase — planner-overhead sweep at <= 12 qubits, where the cost
model *bypasses* contraction planning outright.  ``fusion="auto"``
(scheduled) vs ``fusion="noplan"`` (no planner at all): the speedup
column must stay ~1.0 — the whole point of the bypass is that small
registers pay no planning overhead (the PR 4 planner cost 7-12% here).

Wide phase — the 16-20 qubit sweep of the BENCH_plan.json kernels,
``fusion="nodiag"`` (per-op) vs ``fusion="auto"``; at >= 18 qubits the
cost model widens plan windows to 4 qubits (one 16x16 contraction per
window), so these rows must match or beat the committed 3-qubit-window
BENCH_plan.json ratios.

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_schedule.py --quick

or full (committed baseline)::

    PYTHONPATH=src python benchmarks/bench_schedule.py

See docs/benchmarks.md for the BENCH_schedule.json schema.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.qmpi import Op, OpStream, SharedBackend, ShardedBackend  # noqa: E402

SMALL_QUBITS = [8, 10, 12]
WIDE_QUICK_QUBITS = [16]
WIDE_FULL_QUBITS = [16, 20]
RAND_DEPTH_PER_QUBIT = 12
BRICK_LAYERS = 4


def _rand2q_ops(qubits, seed=5):
    """Random two-qubit-dense circuit on nearby pairs (deterministic)."""
    rng = np.random.default_rng(seed)
    n = len(qubits)
    ops = []
    for _ in range(RAND_DEPTH_PER_QUBIT * n):
        i = int(rng.integers(0, n - 1))
        a, b = qubits[i], qubits[i + 1]
        roll = rng.random()
        if roll < 0.35:
            ops.append(Op("cnot", (a, b)))
        elif roll < 0.55:
            ops.append(Op("swap", (a, b)))
        elif roll < 0.8:
            ops.append(Op("crz", (a, b), (float(rng.random()),)))
        else:
            ops.append(Op("ry", (b,), (float(rng.random()),)))
    return ops


def _brickwork_ops(qubits, seed=9):
    """Brickwork entangler: ry+cnot+crz+cnot blocks on even/odd pairs."""
    rng = np.random.default_rng(seed)
    n = len(qubits)
    ops = []
    for layer in range(BRICK_LAYERS):
        for i in range(layer % 2, n - 1, 2):
            a, b = qubits[i], qubits[i + 1]
            ops.append(Op("ry", (a,), (float(rng.random()),)))
            ops.append(Op("cnot", (a, b)))
            ops.append(Op("crz", (a, b), (0.21,)))
            ops.append(Op("cnot", (a, b)))
    return ops


KERNELS = {"rand2q": _rand2q_ops, "brickwork": _brickwork_ops}


def _time_ops(make_backend, ops_builder, n_qubits, fusion, min_time, min_reps):
    """Gates/second replaying a fixed op list through the stream path."""
    be = make_backend()
    qubits = tuple(be.alloc(0, n_qubits))
    ops = ops_builder(qubits)
    stream = OpStream(be, 0, fusion=fusion, max_pending=1 << 20)

    def one_pass():
        for op in ops:
            stream.append(op)
        stream.flush()

    one_pass()  # warm-up
    best = float("inf")
    elapsed = 0.0
    reps = 0
    while elapsed < min_time or reps < min_reps:
        t0 = time.perf_counter()
        one_pass()
        dt = time.perf_counter() - t0
        best = min(best, dt / len(ops))
        elapsed += dt
        reps += 1
    return 1.0 / best


def run_phase(qubit_counts, baseline_fusion, n_shards, min_time, min_reps,
              base_key, fused_key):
    rows = []
    for n_qubits in qubit_counts:
        for name, builder in KERNELS.items():
            for label, factory in (
                ("shared", lambda: SharedBackend(seed=0)),
                ("sharded", lambda: ShardedBackend(seed=0, n_shards=n_shards)),
            ):
                base = _time_ops(
                    factory, builder, n_qubits, baseline_fusion, min_time, min_reps
                )
                fused = _time_ops(
                    factory, builder, n_qubits, "auto", min_time, min_reps
                )
                row = {
                    "kernel": name,
                    "n_qubits": n_qubits,
                    "backend": label,
                    base_key: round(base, 1),
                    fused_key: round(fused, 1),
                    "speedup": round(fused / base, 3),
                }
                rows.append(row)
                print(
                    f"{name:<10} n={n_qubits:>2} {label:<8} "
                    f"{baseline_fusion:<7} {base:>10.0f}  auto {fused:>10.0f} "
                    f"gates/s  x{row['speedup']}"
                )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small sizes, short passes (CI)")
    ap.add_argument("--n-shards", type=int, default=4, help="sharded engine chunk count")
    ap.add_argument("--out", default="BENCH_schedule.json", help="output JSON path")
    args = ap.parse_args(argv)

    min_time, min_reps = (0.05, 3) if args.quick else (0.4, 4)
    print("# small phase: scheduled (auto, planning bypassed) vs noplan")
    small = run_phase(
        SMALL_QUBITS, "noplan", args.n_shards, min_time, min_reps,
        "noplan_gates_per_s", "scheduled_gates_per_s",
    )
    print("# wide phase: per-op (nodiag) vs scheduled (auto, wide windows)")
    wide = run_phase(
        WIDE_QUICK_QUBITS if args.quick else WIDE_FULL_QUBITS,
        "nodiag", args.n_shards, min_time, min_reps,
        "unfused_gates_per_s", "fused_gates_per_s",
    )
    payload = {
        "quick": args.quick,
        "n_shards": args.n_shards,
        "cpu_count": os.cpu_count() or 1,
        "rand_depth_per_qubit": RAND_DEPTH_PER_QUBIT,
        "brick_layers": BRICK_LAYERS,
        "small": small,
        "wide": wide,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
