"""Figs. 1-3 — circuit identities and teleportation.

Fig. 1(a): CNOT from CZ + Hadamards; Fig. 1(b): measured reset via
deferred measurement; Fig. 2: fanout parallelizes controlled gates;
Fig. 3: fanout + unfanout = teleportation (1 EPR pair, 2 classical bits).
"""

import math

import numpy as np
import pytest

from repro.apps.teleport import run_teleport_demo
from repro.qmpi import qmpi_run
from repro.sim import StateVector
from repro.sim import gates as G


def test_fig1a_cnot_equals_h_cz_h(benchmark):
    def build():
        ih = np.kron(G.I2, G.H)
        return ih @ G.CZ @ ih

    m = benchmark(build)
    assert np.allclose(m, G.CX)
    print("\nFig. 1(a): CNOT = (1 (x) H) CZ (1 (x) H) ✓")


def test_fig1b_measured_reset(benchmark):
    """Resetting a fanned-out |0>-destined target with H + measure + Z is
    equivalent to the uncomputing CNOT."""

    def run():
        # Reference: fanout then uncompute with CNOT.
        sv = StateVector(2, seed=0)
        sv.ry(0, 0.9)
        sv.cnot(0, 1)
        sv.cnot(0, 1)
        ref = sv.statevector()
        # Measured variant: H + measure + conditional Z on the source.
        out = []
        for seed in range(4):
            sv2 = StateVector(2, seed=seed)
            sv2.ry(0, 0.9)
            sv2.cnot(0, 1)
            sv2.h(1)
            if sv2.measure(1):
                sv2.z(0)
            sv2.postselect(1, 0) if False else None
            out.append(sv2.prob_one(0))
        return ref, out

    ref, probs = benchmark(run)
    for p in probs:
        assert p == pytest.approx(math.sin(0.45) ** 2, abs=1e-9)
    print("\nFig. 1(b): measured reset preserves the source state ✓")


def test_fig2_fanout_parallel_controls(benchmark):
    """Fanout the control, apply U1/U2 controlled on different copies,
    unfanout: equals both gates controlled on the original."""

    def run():
        sv = StateVector(3, seed=0)
        sv.ry(0, 1.1)  # control superposition
        sv.ry(1, 0.3)
        sv.ry(2, -0.7)
        ref = sv.copy()
        # reference: both gates controlled on qubit 0
        ref.apply_controlled(G.rx(0.5), [0], [1])
        ref.apply_controlled(G.rz(0.8), [0], [2])
        # fanout version
        (aux,) = sv.alloc(1)
        sv.cnot(0, aux)
        sv.apply_controlled(G.rx(0.5), [0], [1])
        sv.apply_controlled(G.rz(0.8), [aux], [2])
        sv.cnot(0, aux)
        sv.release(aux)
        return ref.statevector(), sv.statevector()

    a, b = benchmark(run)
    assert np.allclose(a, b, atol=1e-10)
    print("\nFig. 2: fanned-out control applies gates in parallel ✓")


def test_fig3_teleportation(benchmark):
    p1, snap = benchmark(lambda: run_teleport_demo(theta=1.234, phi=0.5))
    assert p1 == pytest.approx(math.sin(0.617) ** 2, abs=1e-9)
    assert (snap.epr_pairs, snap.classical_bits) == (1, 2)
    print(f"\nFig. 3: teleportation = fanout + unfanout; 1 EPR pair, "
          f"2 classical bits (measured: {snap.epr_pairs}, {snap.classical_bits}) ✓")


def test_fig3_fanout_unfanout_identity(benchmark):
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.ry(q[0], 0.7)
            qc.send(q, 1)   # Fanout(1 -> 2)
            qc.unsend(q, 1)  # Unfanout(2 -> 1)
            return qc.prob_one(q[0])
        t = qc.alloc_qmem(1)
        qc.recv(t, 0)
        qc.unrecv(t, 0)
        return None

    world = benchmark(lambda: qmpi_run(2, prog, seed=0))
    assert world.results[0] == pytest.approx(math.sin(0.35) ** 2, abs=1e-9)
    print("\nFig. 3(a,b): fanout then unfanout restores the original ✓")
