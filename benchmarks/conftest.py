"""Shared fixtures for the benchmark harness.

Ring size for the chemistry figures defaults to 12 atoms so the whole
suite stays fast; set ``REPRO_RING_ATOMS=32`` to regenerate the paper's
exact H32 system (adds ~10 s for integrals + RHF).
"""

import os

import pytest


def ring_atoms() -> int:
    return int(os.environ.get("REPRO_RING_ATOMS", "12"))


@pytest.fixture(scope="session")
def ring_hamiltonian():
    from repro.chem import build_hamiltonian, hydrogen_ring, run_rhf

    n = ring_atoms()
    rhf = run_rhf(hydrogen_ring(n, 1.8))
    return build_hamiltonian(rhf)
