"""Native jit kernels vs the planar numpy fallback -> BENCH_kernels.json.

Two sections, both recording ``speedup = numpy_time / jit_time`` (the
modes are bit-identical, so the ratio is pure dispatch economics):

Micro section (``kernels`` rows) — each dispatched kernel family timed
in isolation on engine-shaped arrays: the strided single-qubit pass
(``sq``), the locally-controlled pass (``cc``), the csel/ct sub-block
contraction (``csel``), and the diagonal phase-table materializer
(``diag``), at 12-20 qubits, both on one monolithic array (``shared``)
and on a 4-chunk sharded layout (``sharded``).  These calibrate the
``jit_min_amps`` break-even in :data:`repro.sim.schedule.CostModel` and
show where the single-pass native driver beats one numpy ufunc sweep
per step.

Replay section (``replay`` rows) — the end-to-end acceptance row: a
parameter-sweep circuit replayed through the schedule cache's frozen
programs (PR 8) with ``kernels="jit"`` vs ``kernels="numpy"``, timing
only warm passes.  On the sharded engine the frozen steps collapse
into typed opcode blocks walked by one native call per chunk; on the
shared engine only the diag materializer dispatches (dense steps are
already BLAS), so its ratio hovers near 1 by design.  The sweep runs
``fusion="noplan"``: with the default cost model, 16q+ layers lower
into contraction plans whose BLAS matmuls are mode-identical, and the
row exists to measure the kernel driver, not zgemm.  The PR 9
acceptance bar is >= 2x on a sharded frozen-replay row at 16q+.

The ratios are host-SIMD-dependent (how well numpy's ufuncs vectorize
vs one -O3 scalar loop), so the CI bench-gate compares this file at a
wider tolerance than the default.

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick

or full (committed baseline)::

    PYTHONPATH=src python benchmarks/bench_kernels.py

See docs/benchmarks.md for the BENCH_kernels.json schema.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.qmpi import Op, OpStream, SharedBackend, ShardedBackend  # noqa: E402
from repro.sim.diag import chunk_phase  # noqa: E402
from repro.sim.kernels import KernelDispatch, provider_name  # noqa: E402
from repro.sim.parallel import contract_local  # noqa: E402

QUBITS_FULL = [12, 16, 20]
QUBITS_QUICK = [12, 16]
N_SHARDS = 4


def _rand_state(rng, n):
    psi = rng.standard_normal(1 << n) + 1j * rng.standard_normal(1 << n)
    psi /= np.linalg.norm(psi)
    return psi


def _rand_unitary(rng, dim):
    m = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(m)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def _chunks(psi, backend):
    """The engine-shaped view: one flat array, or 4 sharded chunks."""
    if backend == "shared":
        return [psi], int(np.log2(psi.size))
    return list(psi.reshape(N_SHARDS, -1)), int(np.log2(psi.size // N_SHARDS))


def _best(fn, min_reps, min_time):
    fn()  # warm-up (jit: ensures the provider is resolved and compiled)
    best = float("inf")
    elapsed = 0.0
    reps = 0
    while reps < min_reps or elapsed < min_time:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        elapsed += dt
        reps += 1
    return best


def _micro_ops(rng, n_qubits, backend):
    """Per-family closures applying one kernel over every chunk."""
    psi = _rand_state(rng, n_qubits)
    chunks, nl = _chunks(psi, backend)
    u2 = _rand_unitary(rng, 2)
    u4 = _rand_unitary(rng, 4)
    b = nl // 2
    controls = (0, nl - 1)
    t_bit = nl // 2
    ct_bits = (1, nl - 2)
    # diag workload: a coalesced batch touching every local axis (an rz
    # layer + a few crz couplings), so the materialized table spans the
    # chunk — capped under chunk_phase's 24-part angle-path threshold,
    # which is mode-identical by design and would measure nothing
    singles = [
        (ax, np.exp(1j * rng.uniform(-np.pi, np.pi, 2))) for ax in range(nl)
    ]
    pairs = [
        ((ax, ax + 1), np.exp(1j * rng.uniform(-np.pi, np.pi, 4)))
        for ax in range(0, min(nl - 1, 6), 2)
    ]

    def sq(kd):
        for c in chunks:
            kd.sq(c, u2, b, diag=False)

    def cc(kd):
        for c in chunks:
            kd.cc(c, u2, controls, t_bit, nl, diag=False)

    def csel(kd):
        for c in chunks:
            if not kd.contract(c, u4, ct_bits, nl):
                contract_local(c, u4, ct_bits, nl)

    def diag(kd):
        for ci in range(len(chunks)):
            chunk_phase(singles, pairs, nl, ci, kernels=kd)

    return {"sq": sq, "cc": cc, "csel": csel, "diag": diag}


def run_micro_section(sizes, min_reps, min_time):
    rows = []
    jit = KernelDispatch("jit")
    ref = KernelDispatch("numpy")
    jit.warmup()
    for n_qubits in sizes:
        for backend in ("shared", "sharded"):
            rng = np.random.default_rng((7, n_qubits))
            fams = _micro_ops(rng, n_qubits, backend)
            for family, fn in fams.items():
                if family == "csel" and backend == "shared":
                    continue  # csel/ct is the sharded engine's kernel
                t_np = _best(lambda: fn(ref), min_reps, min_time)
                t_jit = _best(lambda: fn(jit), min_reps, min_time)
                row = {
                    "kernel": family,
                    "n_qubits": n_qubits,
                    "backend": backend,
                    "numpy_ms": round(t_np * 1e3, 4),
                    "jit_ms": round(t_jit * 1e3, 4),
                    "speedup": round(t_np / t_jit, 3),
                }
                rows.append(row)
                print(
                    f"{family:<6} n={n_qubits:>2} {backend:<8} "
                    f"numpy {t_np*1e3:>9.3f}ms  jit {t_jit*1e3:>9.3f}ms  "
                    f"x{row['speedup']}"
                )
    return rows


def _sweep_shape(n_qubits):
    """Mixed layers: sq/cc kernel passes + a diag-coalescible layer."""
    shape = []
    for _ in range(2):
        shape.extend(("ry", (q,), 1) for q in range(n_qubits))
        shape.extend(("cnot", (q, q + 1), 0) for q in range(n_qubits - 1))
        shape.extend(("rz", (q,), 1) for q in range(n_qubits))
        shape.extend(("crz", (q, q + 1), 1) for q in range(0, n_qubits - 1, 2))
    return shape


def _materialize(shape, qubits, angles):
    it = iter(angles)
    return [
        Op(gate, tuple(qubits[i] for i in qs),
           tuple(next(it) for _ in range(n_params)))
        for gate, qs, n_params in shape
    ]


def _time_warm_replay(factory, shape, n_qubits, kernels, min_reps, min_time):
    """Best warm-pass seconds: pass 1 compiles + freezes, the rest replay."""
    be = factory(kernels)
    try:
        qubits = tuple(be.alloc(0, n_qubits))
        rng = np.random.default_rng(13)
        n_params = sum(p for _, _, p in shape)
        # noplan: at 16q+ the default cost model routes these layers
        # into contraction plans whose BLAS matmuls are identical in
        # both modes — this row must keep measuring the kernel driver.
        stream = OpStream(be, 0, fusion="noplan", max_pending=1 << 20)

        def one_pass():
            angles = tuple(float(a) for a in rng.uniform(-np.pi, np.pi, n_params))
            for op in _materialize(shape, qubits, angles):
                stream.append(op)
            stream.flush()

        one_pass()  # cold: compile, freeze, and (jit) warm the provider
        return _best(one_pass, min_reps, min_time)
    finally:
        be.close()


def run_replay_section(sizes, min_reps, min_time):
    rows = []
    for n_qubits in sizes:
        shape = _sweep_shape(n_qubits)
        for backend, factory in (
            ("shared", lambda k: SharedBackend(seed=0, cache="on", kernels=k)),
            (
                "sharded",
                lambda k: ShardedBackend(
                    seed=0, n_shards=N_SHARDS, cache="on", kernels=k
                ),
            ),
        ):
            t_np = _time_warm_replay(
                factory, shape, n_qubits, "numpy", min_reps, min_time
            )
            t_jit = _time_warm_replay(
                factory, shape, n_qubits, "jit", min_reps, min_time
            )
            row = {
                "kernel": "frozen_replay",
                "n_qubits": n_qubits,
                "backend": backend,
                "numpy_ms": round(t_np * 1e3, 4),
                "jit_ms": round(t_jit * 1e3, 4),
                "speedup": round(t_np / t_jit, 3),
            }
            rows.append(row)
            print(
                f"frozen n={n_qubits:>2} {backend:<8} "
                f"numpy {t_np*1e3:>9.3f}ms  jit {t_jit*1e3:>9.3f}ms  "
                f"x{row['speedup']}"
            )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="short passes (CI)")
    ap.add_argument("--out", default="BENCH_kernels.json", help="output JSON path")
    args = ap.parse_args(argv)

    provider = provider_name()
    if provider is None:
        print(
            "ERROR: no native kernel provider resolves (need numba or a C "
            "toolchain for cffi); a jit-vs-numpy benchmark cannot run",
            file=sys.stderr,
        )
        return 1
    print(f"# provider: {provider}")

    sizes = QUBITS_QUICK if args.quick else QUBITS_FULL
    min_reps, min_time = (3, 0.05) if args.quick else (6, 0.25)

    print("# micro section: per-kernel jit vs planar numpy")
    micro = run_micro_section(sizes, min_reps, min_time)
    print("# replay section: frozen schedule replay, warm passes")
    replay = run_replay_section(sizes, min_reps, min_time)

    payload = {
        "quick": args.quick,
        "provider": provider,
        "n_shards": N_SHARDS,
        "cpu_count": os.cpu_count() or 1,
        "kernels": micro,
        "replay": replay,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    bar = [
        r for r in replay
        if r["backend"] == "sharded" and r["n_qubits"] >= 16 and r["speedup"] >= 2.0
    ]
    if not bar:
        print("WARNING: no sharded frozen-replay row at 16q+ reached the 2x bar")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
