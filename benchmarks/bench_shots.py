"""Shot batching + concurrent jobs throughput -> BENCH_shots.json.

Two phases guarding the ISSUE 6 execution model:

Batching phase — the same program sampled N times, two ways: a loop of
independent single-shot ``qmpi_run`` calls (the only option before shot
batching) vs one ``qmpi_run(..., shots=N)`` pass.  The batched pass runs
the state evolution *once* and vectorizes sampling, so its shots/second
column should beat the loop by orders of magnitude on measure-at-the-end
circuits, and still win on mid-circuit-measurement programs (teleport),
where trajectories fork into branch groups instead of re-running.

Jobs phase — J independent shot-batched programs, run back-to-back vs
submitted together through :func:`repro.qmpi.jobs.qmpi_submit` on a
:class:`~repro.qmpi.jobs.JobRunner` pool; the concurrent column measures
end-to-end wall-clock speedup of multiplexing jobs over worker threads.

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_shots.py --quick

or full (committed baseline)::

    PYTHONPATH=src python benchmarks/bench_shots.py

See docs/benchmarks.md for the BENCH_shots.json schema.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.qmpi import JobRunner, qmpi_run  # noqa: E402


def ghz(qc, n):
    q = qc.alloc_qmem(n)
    qc.h(q[0])
    for i in range(n - 1):
        qc.cnot(q[i], q[i + 1])
    return [qc.measure(x) for x in q]


def teleport(qc, theta):
    if qc.rank == 0:
        q = qc.alloc_qmem(1)
        qc.ry(q[0], theta)
        qc.send_move(q, 1)
        return None
    t = qc.alloc_qmem(1)
    qc.recv_move(t, 0)
    return qc.measure(t[0])


KERNELS = {
    # name -> (fn, args, n_ranks)
    "ghz": (ghz, None, 1),  # args filled with the qubit count
    "teleport": (teleport, (1.1,), 2),
}


def bench_batching(n_qubits, shots, loop_iters):
    rows = []
    for name, (fn, args, n_ranks) in KERNELS.items():
        args = (n_qubits,) if args is None else args
        # looped single-shot reference (extrapolated to `shots`)
        t0 = time.perf_counter()
        for s in range(loop_iters):
            qmpi_run(n_ranks, fn, args=args, seed=s).close()
        looped = loop_iters / (time.perf_counter() - t0)
        # one batched pass
        t0 = time.perf_counter()
        w = qmpi_run(n_ranks, fn, args=args, seed=0, shots=shots)
        w.counts
        w.close()
        batched = shots / (time.perf_counter() - t0)
        row = {
            "kernel": name,
            "n_qubits": n_qubits if name == "ghz" else 1,
            "n_ranks": n_ranks,
            "shots": shots,
            "looped_shots_per_s": round(looped, 1),
            "batched_shots_per_s": round(batched, 1),
            "speedup": round(batched / looped, 1),
        }
        rows.append(row)
        print(
            f"{name:<10} ranks={n_ranks} shots={shots:>5} "
            f"looped {looped:>8.1f}/s  batched {batched:>10.1f}/s "
            f"x{row['speedup']}"
        )
    return rows


def bench_jobs(n_qubits, n_jobs, shots, max_workers):
    rows = []
    for name, (fn, args, n_ranks) in KERNELS.items():
        args = (n_qubits,) if args is None else args
        t0 = time.perf_counter()
        with JobRunner(max_workers=1, base_seed=0) as runner:
            for _ in range(n_jobs):
                runner.submit(fn, n_ranks=n_ranks, args=args, shots=shots).counts()
        serial = n_jobs / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        with JobRunner(max_workers=max_workers, base_seed=0) as runner:
            futures = [
                runner.submit(fn, n_ranks=n_ranks, args=args, shots=shots)
                for _ in range(n_jobs)
            ]
            for f in futures:
                f.counts()
        concurrent = n_jobs / (time.perf_counter() - t0)
        row = {
            "kernel": name,
            "n_ranks": n_ranks,
            "n_jobs": n_jobs,
            "shots": shots,
            "max_workers": max_workers,
            "serial_jobs_per_s": round(serial, 2),
            "concurrent_jobs_per_s": round(concurrent, 2),
            "speedup": round(concurrent / serial, 2),
        }
        rows.append(row)
        print(
            f"{name:<10} jobs={n_jobs} shots={shots:>5} "
            f"serial {serial:>7.2f}/s  concurrent {concurrent:>7.2f}/s "
            f"x{row['speedup']}"
        )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small sizes, short passes (CI)")
    ap.add_argument("--out", default="BENCH_shots.json", help="output JSON path")
    ap.add_argument("--max-workers", type=int, default=8, help="job pool size")
    args = ap.parse_args(argv)

    if args.quick:
        n_qubits, shots, loop_iters, n_jobs = 10, 512, 20, 8
    else:
        n_qubits, shots, loop_iters, n_jobs = 16, 4096, 100, 16

    print("# batching phase: looped single-shot runs vs one shots=N pass")
    batching = bench_batching(n_qubits, shots, loop_iters)
    print("# jobs phase: back-to-back jobs vs concurrent qmpi_submit")
    jobs = bench_jobs(n_qubits, n_jobs, shots, args.max_workers)

    payload = {
        "quick": args.quick,
        "cpu_count": os.cpu_count() or 1,
        "n_qubits": n_qubits,
        "shots": shots,
        "loop_iters": loop_iters,
        "batching": batching,
        "jobs": jobs,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
