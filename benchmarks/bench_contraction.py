"""Contraction-plan fusion + DP diagonal materializer -> BENCH_plan.json.

Plan phase — two-qubit-dense sweeps through the full op-stream path
(``OpStream`` -> ``apply_ops``), comparing per-op dispatch
(``fusion="nodiag"``: peephole fusion only, every two-qubit gate hits
the engine individually) against contraction planning
(``fusion="auto"``: bounded qubit windows fuse into one precontracted
4x4/8x8 unitary each, one matmul per chunk per plan):

* ``rand2q``    — a random two-qubit-dense circuit: mixed
  cnot/swap/crz/ry on randomly drawn nearby pairs (the multi-window
  planner keeps one window per interaction cluster);
* ``brickwork`` — alternating layers of ry+cnot+crz+cnot blocks on
  even/odd pairs (each block fuses into one 4x4, windows stay open
  across the interleaved disjoint pairs).

Workers phase — the run-level pool dispatch on planned batches: a
pre-lowered brickwork batch (plans forced open) applied with
``workers=0`` vs ``workers=2``, recording ``cpu_count`` next to the
ratio (single-core hosts can only show overhead; the CI multi-core
remeasure job regenerates these rows and
``tools/fold_workers_ci.py`` folds them back in).

Diag phase — the ``qft_ladder`` kernel of ``bench_diag_batching.py``
(all ``n(n-1)/2`` distinct cphase pairs, the worst case for phase-table
materialization), re-measured here because the doubling/DP materializer
(:func:`repro.sim.diag.chunk_phase`) is what lifts the sharded row: a
table whose highest live bit is ``P`` now costs ``2^(P+1)`` updates
instead of a full-size pass.

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_contraction.py --quick

or full (12-20 qubits)::

    PYTHONPATH=src python benchmarks/bench_contraction.py

See docs/benchmarks.md for the BENCH_plan.json schema.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.qmpi import Op, OpStream, SharedBackend, ShardedBackend  # noqa: E402
from repro.sim import CostModel, ShardedStateVector, lower_flush  # noqa: E402

QUICK_QUBITS = [10, 12]
FULL_QUBITS = [12, 16, 20]
WORKER_QUICK_QUBITS = [12]
WORKER_FULL_QUBITS = [16, 20]
RAND_DEPTH_PER_QUBIT = 12
BRICK_LAYERS = 4


def _rand2q_ops(qubits, seed=5):
    """Random two-qubit-dense circuit on nearby pairs (deterministic)."""
    rng = np.random.default_rng(seed)
    n = len(qubits)
    ops = []
    for _ in range(RAND_DEPTH_PER_QUBIT * n):
        i = int(rng.integers(0, n - 1))
        a, b = qubits[i], qubits[i + 1]
        roll = rng.random()
        if roll < 0.35:
            ops.append(Op("cnot", (a, b)))
        elif roll < 0.55:
            ops.append(Op("swap", (a, b)))
        elif roll < 0.8:
            ops.append(Op("crz", (a, b), (float(rng.random()),)))
        else:
            ops.append(Op("ry", (b,), (float(rng.random()),)))
    return ops


def _brickwork_ops(qubits, seed=9):
    """Brickwork entangler: ry+cnot+crz+cnot blocks on even/odd pairs."""
    rng = np.random.default_rng(seed)
    n = len(qubits)
    ops = []
    for layer in range(BRICK_LAYERS):
        for i in range(layer % 2, n - 1, 2):
            a, b = qubits[i], qubits[i + 1]
            ops.append(Op("ry", (a,), (float(rng.random()),)))
            ops.append(Op("cnot", (a, b)))
            ops.append(Op("crz", (a, b), (0.21,)))
            ops.append(Op("cnot", (a, b)))
    return ops


def _qft_ladder_ops(qubits, seed=None):
    """The QFT controlled-phase ladder: all distinct cphase pairs."""
    n = len(qubits)
    return [
        Op("cphase", (qubits[j], qubits[i]), (math.pi / (1 << (j - i)),))
        for i in range(n)
        for j in range(i + 1, n)
    ]


PLAN_KERNELS = {"rand2q": _rand2q_ops, "brickwork": _brickwork_ops}
DIAG_KERNELS = {"qft_ladder": _qft_ladder_ops}


def _time_ops(make_backend, ops_builder, n_qubits, fusion, min_time, min_reps):
    """Gates/second replaying a fixed op list through the stream path."""
    be = make_backend()
    qubits = tuple(be.alloc(0, n_qubits))
    ops = ops_builder(qubits)
    stream = OpStream(be, 0, fusion=fusion, max_pending=1 << 20)

    def one_pass():
        for op in ops:
            stream.append(op)
        stream.flush()

    one_pass()  # warm-up
    best = float("inf")
    elapsed = 0.0
    reps = 0
    while elapsed < min_time or reps < min_reps:
        t0 = time.perf_counter()
        one_pass()
        dt = time.perf_counter() - t0
        best = min(best, dt / len(ops))
        elapsed += dt
        reps += 1
    return 1.0 / best


def run_phase(kernels, quick, n_shards, min_time, min_reps):
    qubit_counts = QUICK_QUBITS if quick else FULL_QUBITS
    rows = []
    for n_qubits in qubit_counts:
        for name, builder in kernels.items():
            for label, factory in (
                ("shared", lambda: SharedBackend(seed=0)),
                ("sharded", lambda: ShardedBackend(seed=0, n_shards=n_shards)),
            ):
                unfused = _time_ops(
                    factory, builder, n_qubits, "nodiag", min_time, min_reps
                )
                fused = _time_ops(
                    factory, builder, n_qubits, "auto", min_time, min_reps
                )
                row = {
                    "kernel": name,
                    "n_qubits": n_qubits,
                    "backend": label,
                    "unfused_gates_per_s": round(unfused, 1),
                    "fused_gates_per_s": round(fused, 1),
                    "speedup": round(fused / unfused, 3),
                }
                rows.append(row)
                print(
                    f"{name:<10} n={n_qubits:>2} {label:<8} "
                    f"per-op {unfused:>10.0f}  fused {fused:>10.0f} gates/s  "
                    f"x{row['speedup']}"
                )
    return rows


# ----------------------------------------------------------------------
# workers phase: planned runs through the chunk pool, serial vs workers
# ----------------------------------------------------------------------
def _time_worker_plan_run(n_qubits, n_shards, workers, min_time, min_reps):
    """Gates/second applying a pre-lowered brickwork batch to the engine.

    The batch is lowered once (plans included, windows forced open) so
    the measurement isolates the engine's stretch execution — serial
    chunk loop vs run-level pool dispatch of the same segment list.
    """
    sv = ShardedStateVector(
        n_qubits, seed=0, n_shards=n_shards, workers=workers, parallel_min_chunk=1
    )
    try:
        local = [q for q in sv.qubit_ids if sv._bit(q) < sv.n_local]
        ops = lower_flush(
            _brickwork_ops(tuple(local)), n_qubits,
            cost_model=CostModel(plan_min_qubits=0),
        )
        n_gates = sum(getattr(o, "n_ops", 1) for o in ops)
        sv.apply_ops(ops)  # warm-up (spawns the pool once)
        best = float("inf")
        elapsed = 0.0
        reps = 0
        while elapsed < min_time or reps < min_reps:
            t0 = time.perf_counter()
            sv.apply_ops(ops)
            dt = time.perf_counter() - t0
            best = min(best, dt / n_gates)
            elapsed += dt
            reps += 1
        return 1.0 / best
    finally:
        sv.close()


def run_workers(quick: bool, n_shards: int, min_time: float, min_reps: int) -> list:
    qubit_counts = WORKER_QUICK_QUBITS if quick else WORKER_FULL_QUBITS
    cpus = os.cpu_count() or 1
    rows = []
    for n_qubits in qubit_counts:
        w0 = _time_worker_plan_run(n_qubits, n_shards, 0, min_time, min_reps)
        w2 = _time_worker_plan_run(n_qubits, n_shards, 2, min_time, min_reps)
        row = {
            "kernel": "brickwork_plan_run",
            "n_qubits": n_qubits,
            "workers0_gates_per_s": round(w0, 1),
            "workers2_gates_per_s": round(w2, 1),
            "speedup": round(w2 / w0, 3),
            "cpu_count": cpus,
        }
        rows.append(row)
        print(
            f"brickwork_plan_run n={n_qubits:>2}  workers=0 {w0:>10.0f}  "
            f"workers=2 {w2:>10.0f} gates/s  x{row['speedup']} (cpus={cpus})"
        )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small sizes, short passes (CI)")
    ap.add_argument("--n-shards", type=int, default=4, help="sharded engine chunk count")
    ap.add_argument("--out", default="BENCH_plan.json", help="output JSON path")
    ap.add_argument(
        "--skip-workers", action="store_true",
        help="skip the worker-pool phase (e.g. sandboxes without shm)",
    )
    ap.add_argument(
        "--only-workers", action="store_true",
        help="run only the worker-pool phase (the CI multi-core remeasure "
        "job writes it to BENCH_workers_plan_ci.json)",
    )
    args = ap.parse_args(argv)
    if args.skip_workers and args.only_workers:
        ap.error("--skip-workers and --only-workers are mutually exclusive")

    min_time, min_reps = (0.05, 3) if args.quick else (0.4, 4)
    if args.only_workers:
        plan_rows, diag_rows = [], []
    else:
        plan_rows = run_phase(PLAN_KERNELS, args.quick, args.n_shards, min_time, min_reps)
        diag_rows = run_phase(DIAG_KERNELS, args.quick, args.n_shards, min_time, min_reps)
    workers_rows = (
        [] if args.skip_workers
        else run_workers(args.quick, args.n_shards, min_time, min_reps)
    )
    payload = {
        "quick": args.quick,
        "n_shards": args.n_shards,
        "cpu_count": os.cpu_count() or 1,
        "rand_depth_per_qubit": RAND_DEPTH_PER_QUBIT,
        "brick_layers": BRICK_LAYERS,
        "plan": plan_rows,
        "diag": diag_rows,
        "workers": workers_rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
