"""Table 1 — resources per qubit for the four basic primitives + inverses.

Regenerates the table's EPR-pair and classical-bit counts from the live
resource ledger and benchmarks each primitive end to end (including the
full state-vector simulation underneath).
"""

import pytest

from repro.qmpi import PARITY, qmpi_run
from repro.sendq.analysis import table1

N_REDUCE = 4


def _copy_roundtrip():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.h(q[0])
            qc.send(q, 1)
            qc.unsend(q, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv(t, 0)
            qc.unrecv(t, 0)
        qc.barrier()

    return qmpi_run(2, prog, seed=0)


def _move_roundtrip():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.h(q[0])
            qc.send_move(q, 1)
            qc.unsend_move(1, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv_move(t, 0)
            qc.unrecv_move(t, 0)
        qc.barrier()

    return qmpi_run(2, prog, seed=0)


def _reduce_roundtrip():
    def prog(qc):
        q = qc.alloc_qmem(1)
        if qc.rank % 2:
            qc.x(q[0])
        _, h = qc.reduce(q, op=PARITY, root=0)
        qc.unreduce(h)
        qc.barrier()

    return qmpi_run(N_REDUCE, prog, seed=0, timeout=60)


def _scan_roundtrip():
    def prog(qc):
        q = qc.alloc_qmem(1)
        if qc.rank % 2:
            qc.x(q[0])
        _, h = qc.scan(q, op=PARITY)
        qc.unscan(h)
        qc.barrier()

    return qmpi_run(N_REDUCE, prog, seed=0, timeout=60)


@pytest.mark.parametrize(
    "name,runner,fwd,inv",
    [
        ("copy", _copy_roundtrip, "copy", "uncopy"),
        ("move", _move_roundtrip, "move", "unmove"),
        ("reduce", _reduce_roundtrip, "reduce", "unreduce"),
        ("scan", _scan_roundtrip, "scan", "unscan"),
    ],
)
def test_table1(benchmark, name, runner, fwd, inv):
    world = benchmark(runner)
    snap = world.ledger.snapshot()
    n = 2 if name in ("copy", "move") else N_REDUCE
    ref = table1(n)
    expect_epr = ref[fwd]["epr"] + ref[inv]["epr"]
    expect_bits = ref[fwd]["cbits"] + ref[inv]["cbits"]
    assert (snap.epr_pairs, snap.classical_bits) == (expect_epr, expect_bits)
    benchmark.extra_info["epr_pairs (op+inverse)"] = snap.epr_pairs
    benchmark.extra_info["classical_bits (op+inverse)"] = snap.classical_bits
    print(
        f"\nTable 1 [{name} + {inv}] N={n}: measured EPR={snap.epr_pairs} "
        f"bits={snap.classical_bits}  |  paper: EPR={expect_epr} bits={expect_bits}"
    )
