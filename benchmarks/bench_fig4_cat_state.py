"""Fig. 4 — cat states in constant quantum depth.

Functional: the chain construction yields |cat(n)> with fidelity 1 and
n-1 EPR pairs. Model: the SENDQ makespan is 2E + D_M + D_F independent
of n (the paper's headline), vs E*ceil(log2 n) for the tree broadcast.
"""

import pytest

from repro.apps.ghz import run_ghz_fidelity
from repro.sendq import SendqParams, analysis, programs, schedule


@pytest.mark.parametrize("n", [2, 4, 6])
def test_cat_state_functional(benchmark, n):
    fid = benchmark(lambda: run_ghz_fidelity(n, "chain", seed=3))
    assert fid == pytest.approx(1.0, abs=1e-9)
    print(f"\nFig. 4 (functional): |cat({n})> fidelity = {fid:.9f}, "
          f"EPR pairs = {n - 1}")


def test_cat_constant_quantum_depth(benchmark):
    params = [SendqParams(N=n, S=2, E=1.0, D_M=0.2, D_F=0.1) for n in (4, 8, 16, 32, 64)]

    def run():
        return [schedule(programs.bcast_cat_program(p.N), p).makespan for p in params]

    spans = benchmark(run)
    print("\nFig. 4 (SENDQ): cat-state preparation time vs n:")
    print(f"{'n':>6} {'cat (2E+D_M+D_F)':>18} {'tree (E log2 n)':>16}")
    for p, s in zip(params, spans):
        assert s == pytest.approx(analysis.bcast_cat_time(p))
        print(f"{p.N:>6} {s:>18.2f} {analysis.bcast_tree_time(p):>16.2f}")
    assert len(set(spans)) == 1  # constant in n — the figure's point
