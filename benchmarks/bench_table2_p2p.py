"""Table 2 — point-to-point primitives and their resource classes."""

import pytest

from repro.qmpi import qmpi_run

COPY = ("send", "bsend", "ssend", "rsend")


@pytest.mark.parametrize("variant", COPY)
def test_send_variants_copy_class(benchmark, variant):
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            getattr(qc, variant)(q, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv(t, 0)
        qc.barrier()

    world = benchmark(lambda: qmpi_run(2, prog, seed=0))
    snap = world.ledger.snapshot()
    assert (snap.epr_pairs, snap.classical_bits) == (1, 1)
    print(f"\nTable 2 [QMPI_{variant.capitalize()}]: copy class -> 1 EPR, 1 bit ✓")


def test_sendrecv(benchmark):
    def prog(qc):
        sq = qc.alloc_qmem(1)
        rq = qc.alloc_qmem(1)
        qc.sendrecv(sq, 1 - qc.rank, rq, 1 - qc.rank)
        qc.barrier()

    world = benchmark(lambda: qmpi_run(2, prog, seed=0))
    snap = world.ledger.snapshot()
    assert (snap.epr_pairs, snap.classical_bits) == (2, 2)
    print("\nTable 2 [QMPI_Sendrecv]: copy class x2 -> 2 EPR, 2 bits ✓")


def test_sendrecv_replace_move_class(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.sendrecv_replace(q, 1 - qc.rank, 1 - qc.rank)
        qc.barrier()

    world = benchmark(lambda: qmpi_run(2, prog, seed=0))
    snap = world.ledger.snapshot()
    assert (snap.epr_pairs, snap.classical_bits) == (2, 4)
    print("\nTable 2 [QMPI_Sendrecv_replace]: move class x2 -> 2 EPR, 4 bits ✓")


def test_move_pair(benchmark):
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.send_move(q, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv_move(t, 0)
        qc.barrier()

    world = benchmark(lambda: qmpi_run(2, prog, seed=0))
    snap = world.ledger.snapshot()
    assert (snap.epr_pairs, snap.classical_bits) == (1, 2)
    print("\nTable 2 [QMPI_Send_move/Recv_move]: move class -> 1 EPR, 2 bits ✓")
