"""Rank-scaling of the transport fabrics -> BENCH_fabric.json.

The same QMPI kernels run over both registered transports (see
:mod:`repro.mpi.transport`): ``inproc`` places ranks as threads sharing
the in-memory fabric, ``mp`` spawns one OS process per rank with a pipe
control plane and a shared-memory data plane, forwarding every backend
call to the parent over the service plane (the paper's §6 "all ranks
drive one shared simulator" made literal).

Three kernels scale over 1/2/4 ranks:

* ``teleport`` — one qubit moved rank 0 -> last rank (2+ ranks only),
  protocol-latency bound: two classical bits and one EPR pair per shot
  batch, the worst case for a process-hopping control plane;
* ``cat-bcast`` — the §7.1 constant-depth cat-state broadcast plus a
  correlated readout on every rank;
* ``tfim`` — the §7.2 transverse-field Ising Trotter evolution on the
  sharded backend, compute bound: many forwarded gate batches, so it
  measures service-plane throughput rather than latency.

Every mp row records ``mp_vs_inproc`` — mp wall time over inproc wall
time for the identical kernel row, i.e. the process-fabric overhead
multiplier (values > 1 mean mp is slower). The ratio is informational:
it tracks host scheduling and pickling costs, not algorithmic quality,
so CI never gates on it (see tools/bench_compare.py).

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_fabric.py --quick

or full (committed baseline)::

    PYTHONPATH=src python benchmarks/bench_fabric.py

See docs/benchmarks.md for the BENCH_fabric.json schema.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.tfim import tfim_program  # noqa: E402
from repro.qmpi import qmpi_run  # noqa: E402

RANK_COUNTS = (1, 2, 4)
TRANSPORTS = ("inproc", "mp")


def _ordered_alloc(qc, n=1):
    """Allocate ``n`` qubits per rank in rank order (deterministic ids)."""
    out = None
    for r in range(qc.size):
        if qc.rank == r:
            out = qc.alloc_qmem(n)
        qc.barrier()
    return out


def teleport_kernel(qc, theta):
    (q,) = _ordered_alloc(qc, 1)
    last = qc.size - 1
    if qc.rank == 0:
        qc.h(q)
        qc.rz(q, theta)
        qc.send_move([q], dest=last, tag=1)
        return None
    if qc.rank == last:
        (dst,) = qc.recv_move([q], source=0, tag=1)
        return qc.measure(dst)
    qc.free_qmem([q])
    return None


def cat_bcast_kernel(qc):
    (q,) = _ordered_alloc(qc, 1)
    if qc.rank == 0:
        qc.h(q)
    qc.bcast([q], root=0, algorithm="cat")
    qc.barrier()  # protocol measurements precede the readout
    return qc.measure(q)


def tfim_kernel(qc, spins, trotter):
    return tfim_program(qc, 1.0, 0.7, 0.5, spins, trotter)


def _run(kernel, n_ranks, transport, cfg):
    fn, args, backend, shots = kernel
    t0 = time.perf_counter()
    with qmpi_run(
        n_ranks, fn, args=args, seed=cfg["seed"], shots=shots,
        backend=backend, transport=transport, timeout=300.0,
    ) as world:
        counts = world.counts if shots else None
    return time.perf_counter() - t0, counts


def bench_fabric(cfg):
    kernels = {
        # name -> (fn, args, backend, shots)
        "teleport": (teleport_kernel, (0.7,), "shared", cfg["shots"]),
        "cat-bcast": (cat_bcast_kernel, (), "shared", cfg["shots"]),
        "tfim": (
            tfim_kernel, (cfg["spins"], cfg["trotter"]), "sharded", None,
        ),
    }
    rows = []
    for name, kernel in kernels.items():
        for n_ranks in RANK_COUNTS:
            if name == "teleport" and n_ranks < 2:
                continue  # nothing to move on a single rank
            walls, histograms = {}, {}
            for transport in TRANSPORTS:
                walls[transport], histograms[transport] = _run(
                    kernel, n_ranks, transport, cfg
                )
            if kernel[3]:  # shots set: equal seed must mean equal outcomes
                assert histograms["mp"] == histograms["inproc"], (
                    f"{name}@{n_ranks}: transports disagree at equal seed"
                )
            for transport in TRANSPORTS:
                row = {
                    "kernel": name,
                    "n_ranks": n_ranks,
                    "backend": kernel[2],
                    "transport": transport,
                    "shots": kernel[3] or 0,
                    "wall_s": round(walls[transport], 4),
                }
                if transport == "mp":
                    row["mp_vs_inproc"] = round(
                        walls["mp"] / walls["inproc"], 2
                    )
                rows.append(row)
            print(
                f"{name:<10} ranks={n_ranks} backend={kernel[2]:<8} "
                f"inproc {walls['inproc']:>7.3f}s  mp {walls['mp']:>7.3f}s "
                f"x{walls['mp'] / walls['inproc']:.2f}"
            )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small sizes, short passes (CI)")
    ap.add_argument("--out", default="BENCH_fabric.json", help="output JSON path")
    args = ap.parse_args(argv)

    if args.quick:
        cfg = {"seed": 42, "shots": 64, "spins": 2, "trotter": 1}
    else:
        cfg = {"seed": 42, "shots": 256, "spins": 2, "trotter": 4}

    print("# fabric phase: identical kernels over inproc vs mp transports")
    rows = bench_fabric(cfg)

    payload = {
        "quick": args.quick,
        "cpu_count": os.cpu_count() or 1,
        "shots": cfg["shots"],
        "fabric": rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
