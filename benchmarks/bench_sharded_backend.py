"""Shared vs. sharded engine gate throughput -> BENCH_sharded.json,
plus fused vs. unfused op-stream dispatch -> BENCH_fusion.json.

Engine phase — times the two simulation engines on the kernels that
dominate QMPI workloads and records gates/second so the perf trajectory
is tracked from this PR onward:

* ``h_sweep``      — one H per qubit (mixes local strided kernels and
                     high-axis pair-chunk exchanges on the sharded engine)
* ``rz_sweep``     — one Rz per qubit (diagonal: the sharded engine never
                     communicates, the shared engine still pays the full
                     tensordot + moveaxis)
* ``cnot_ladder``  — CNOT(i, i+1) down the register (two-qubit mixed axes)

Fusion phase — runs op-stream kernels through the full backend path
(``OpStream`` -> ``apply_ops`` batches) with fusion on vs. off
(``fusion="off"`` = the legacy eager per-gate dispatch):

* ``sq_sweep``     — 4 layers of Rx on every qubit (fuses to one 2x2
                     per qubit)
* ``rz_sweep``     — 4 layers of Rz (diagonal coalescing)
* ``chigh_cnot``   — CNOTs into a high-axis target (exercises the
                     pair-exchange controlled path + batching; fusion
                     cannot merge these)

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_sharded_backend.py --quick

or full (8-20 qubits)::

    PYTHONPATH=src python benchmarks/bench_sharded_backend.py

BENCH_sharded.json schema: ``{"quick": bool, "n_shards": int, "results":
[{"kernel", "n_qubits", "shared_gates_per_s", "sharded_gates_per_s",
"speedup"}]}``. BENCH_fusion.json rows additionally carry
``sharded_unfused/fused_gates_per_s``, ``fused_speedup`` (sharded
fused over unfused) and ``sharded_fused_vs_shared``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.qmpi import Op, OpStream, SharedBackend, ShardedBackend  # noqa: E402
from repro.sim import ShardedStateVector, StateVector  # noqa: E402

QUICK_QUBITS = [8, 10, 12]
FULL_QUBITS = [8, 12, 16, 20]


def _kernel_h_sweep(sv, n):
    for q in range(n):
        sv.h(q)
    return n


def _kernel_rz_sweep(sv, n):
    for q in range(n):
        sv.rz(q, 0.137)
    return n


def _kernel_cnot_ladder(sv, n):
    for q in range(n - 1):
        sv.cnot(q, q + 1)
    return n - 1


KERNELS = {
    "h_sweep": _kernel_h_sweep,
    "rz_sweep": _kernel_rz_sweep,
    "cnot_ladder": _kernel_cnot_ladder,
}


def _time_kernel(make_engine, kernel, n_qubits, min_time: float, min_reps: int):
    """Gates/second for ``kernel`` on a fresh engine (best-of-passes)."""
    sv = make_engine(n_qubits)
    kernel(sv, n_qubits)  # warm-up (also JITs numpy's dispatch caches)
    best = float("inf")
    elapsed = 0.0
    reps = 0
    while elapsed < min_time or reps < min_reps:
        t0 = time.perf_counter()
        gates = kernel(sv, n_qubits)
        dt = time.perf_counter() - t0
        best = min(best, dt / gates)
        elapsed += dt
        reps += 1
    return 1.0 / best


# ----------------------------------------------------------------------
# fusion phase: the OpStream -> apply_ops path, fused vs. unfused
# ----------------------------------------------------------------------
FUSION_DEPTH = 4


def _fusion_kernel_sq_sweep(stream, qubits):
    for d in range(FUSION_DEPTH):
        theta = 0.1 + 0.05 * d
        for q in qubits:
            stream.append(Op("rx", (q,), (theta,)))
    stream.flush()
    return FUSION_DEPTH * len(qubits)


def _fusion_kernel_rz_sweep(stream, qubits):
    for d in range(FUSION_DEPTH):
        theta = 0.07 + 0.03 * d
        for q in qubits:
            stream.append(Op("rz", (q,), (theta,)))
    stream.flush()
    return FUSION_DEPTH * len(qubits)


def _fusion_kernel_chigh_cnot(stream, qubits):
    # qubits[0] is the first-allocated qubit = the top (shard) axis.
    for _ in range(2):
        for q in qubits[1:]:
            stream.append(Op("cnot", (q, qubits[0])))
    stream.flush()
    return 2 * (len(qubits) - 1)


FUSION_KERNELS = {
    "sq_sweep": _fusion_kernel_sq_sweep,
    "rz_sweep": _fusion_kernel_rz_sweep,
    "chigh_cnot": _fusion_kernel_chigh_cnot,
}


def _time_fusion_kernel(make_backend, kernel, n_qubits, fusion, min_time, min_reps):
    """Gates/second for an op-stream kernel through the backend path."""
    be = make_backend()
    qubits = tuple(be.alloc(0, n_qubits))
    stream = OpStream(be, 0, fusion=fusion)
    kernel(stream, qubits)  # warm-up
    best = float("inf")
    elapsed = 0.0
    reps = 0
    while elapsed < min_time or reps < min_reps:
        t0 = time.perf_counter()
        gates = kernel(stream, qubits)
        dt = time.perf_counter() - t0
        best = min(best, dt / gates)
        elapsed += dt
        reps += 1
    return 1.0 / best


def run_fusion(quick: bool, n_shards: int, min_time: float, min_reps: int) -> dict:
    qubit_counts = QUICK_QUBITS if quick else FULL_QUBITS
    results = []
    for n_qubits in qubit_counts:
        for name, kernel in FUSION_KERNELS.items():
            cols = {}
            for label, factory in (
                ("shared", lambda: SharedBackend(seed=0)),
                ("sharded", lambda: ShardedBackend(seed=0, n_shards=n_shards)),
            ):
                for fusion in ("off", "auto"):
                    key = f"{label}_{'fused' if fusion == 'auto' else 'unfused'}"
                    cols[key] = _time_fusion_kernel(
                        factory, kernel, n_qubits, fusion, min_time, min_reps
                    )
            row = {
                "kernel": name,
                "n_qubits": n_qubits,
                **{k: round(v, 1) for k, v in cols.items()},
                "fused_speedup": round(
                    cols["sharded_fused"] / cols["sharded_unfused"], 3
                ),
                "sharded_fused_vs_shared": round(
                    cols["sharded_fused"] / cols["shared_unfused"], 3
                ),
            }
            results.append(row)
            print(
                f"{name:<12} n={n_qubits:>2}  sharded unfused "
                f"{cols['sharded_unfused']:>12.0f}  fused "
                f"{cols['sharded_fused']:>12.0f} gates/s  "
                f"x{row['fused_speedup']} (vs shared x{row['sharded_fused_vs_shared']})"
            )
    return {
        "quick": quick,
        "n_shards": n_shards,
        "depth": FUSION_DEPTH,
        "qubit_counts": qubit_counts,
        "results": results,
    }


def run(quick: bool, n_shards: int, min_time: float, min_reps: int) -> dict:
    qubit_counts = QUICK_QUBITS if quick else FULL_QUBITS
    results = []
    for n_qubits in qubit_counts:
        for name, kernel in KERNELS.items():
            shared = _time_kernel(
                lambda n: StateVector(n, seed=0), kernel, n_qubits, min_time, min_reps
            )
            sharded = _time_kernel(
                lambda n: ShardedStateVector(n, seed=0, n_shards=n_shards),
                kernel,
                n_qubits,
                min_time,
                min_reps,
            )
            row = {
                "kernel": name,
                "n_qubits": n_qubits,
                "shared_gates_per_s": round(shared, 1),
                "sharded_gates_per_s": round(sharded, 1),
                "speedup": round(sharded / shared, 3),
            }
            results.append(row)
            print(
                f"{name:<12} n={n_qubits:>2}  shared {shared:>12.0f} gates/s  "
                f"sharded {sharded:>12.0f} gates/s  x{row['speedup']}"
            )
    return {
        "quick": quick,
        "n_shards": n_shards,
        "qubit_counts": qubit_counts,
        "results": results,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small sizes, short passes (CI)")
    ap.add_argument("--n-shards", type=int, default=4, help="sharded engine chunk count")
    ap.add_argument("--out", default="BENCH_sharded.json", help="output JSON path")
    ap.add_argument(
        "--fusion-out",
        default="BENCH_fusion.json",
        help="fused-vs-unfused output JSON path ('' skips the fusion phase)",
    )
    args = ap.parse_args(argv)

    min_time, min_reps = (0.05, 3) if args.quick else (0.5, 5)
    payload = run(args.quick, args.n_shards, min_time, min_reps)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.fusion_out:
        payload = run_fusion(args.quick, args.n_shards, min_time, min_reps)
        Path(args.fusion_out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.fusion_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
