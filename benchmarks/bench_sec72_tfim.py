"""§7.2 — TFIM per-Trotter-step delay and the S=1 penalty.

Regenerates the section's analysis table: D_Trotter = 2(n/N)D_R, the
step delay max(D_T, 2E) for S >= 2 vs max(D_T, 2E + 2D_R) for S = 1,
the event engine's agreement with both, and the node-count guidance
N <= E^-1 n D_R. Also runs the distributed Listing-1 program and reports
its measured EPR budget.
"""

import pytest

from repro.apps.tfim import tfim_program
from repro.qmpi import qmpi_run
from repro.sendq import SendqParams, analysis, programs, schedule


def _per_step(n_spins, n_nodes, S, E, D_R, steps=5):
    p = SendqParams(N=n_nodes, S=S, E=E, D_R=D_R)
    t1 = schedule(programs.tfim_step_program(n_spins, n_nodes, steps - 1), p).makespan
    t2 = schedule(programs.tfim_step_program(n_spins, n_nodes, steps), p).makespan
    return t2 - t1


def test_sec72_delay_table(benchmark):
    n_spins, E, D_R = 16, 4.0, 1.0

    def run():
        rows = []
        for n_nodes in (2, 4, 8, 16):
            d_t = analysis.tfim_trotter_compute_delay(
                n_spins, SendqParams(N=n_nodes, D_R=D_R)
            )
            f2 = analysis.tfim_step_delay(n_spins, SendqParams(N=n_nodes, S=2, E=E, D_R=D_R))
            f1 = analysis.tfim_step_delay(n_spins, SendqParams(N=n_nodes, S=1, E=E, D_R=D_R))
            e2 = _per_step(n_spins, n_nodes, 2, E, D_R)
            e1 = _per_step(n_spins, n_nodes, 1, E, D_R)
            rows.append((n_nodes, d_t, f2, e2, f1, e1))
        return rows

    rows = benchmark(run)
    print(f"\n§7.2 — TFIM n={n_spins}, E={E}, D_R={D_R}:")
    print(f"{'N':>4} {'D_Trotter':>10} {'S=2 form':>9} {'S=2 eng':>8} "
          f"{'S=1 form':>9} {'S=1 eng':>8}")
    for n_nodes, d_t, f2, e2, f1, e1 in rows:
        print(f"{n_nodes:>4} {d_t:>10.1f} {f2:>9.1f} {e2:>8.1f} {f1:>9.1f} {e1:>8.1f}")
        assert e2 == pytest.approx(f2)
        assert e1 == pytest.approx(f1)
    # the S=1 penalty appears exactly when communication-bound
    assert rows[-1][5] > rows[-1][3]


def test_sec72_node_count_guidance(benchmark):
    def run():
        return [
            (E, analysis.tfim_max_nodes(64, SendqParams(E=E, D_R=1.0)))
            for E in (0.5, 1.0, 2.0, 8.0, 64.0)
        ]

    rows = benchmark(run)
    print("\n§7.2 — max nodes with communication hidden (n=64, D_R=1):")
    for E, nmax in rows:
        print(f"  E={E:>5}: N <= {nmax}")
    assert rows[0][1] > rows[-1][1]
    print(f"  S=1 escape hatch: N >= ceil(n/(Q-1)) = "
          f"{analysis.tfim_min_nodes_for_s2(64, 5)} for Q=5")


def test_sec72_listing1_epr_budget(benchmark):
    # the distributed program's measured budget: N boundary terms/step
    n_ranks, steps = 3, 2

    def run():
        return qmpi_run(
            n_ranks, tfim_program, args=(0.5, 0.5, 0.1, 1, steps), seed=0, timeout=120
        )

    world = benchmark(run)
    snap = world.ledger.snapshot()
    assert snap.epr_pairs == n_ranks * steps
    print(f"\n§7.2 Listing 1 ({n_ranks} ranks, {steps} Trotter steps): "
          f"{snap.epr_pairs} EPR pairs, {snap.classical_bits} classical bits")
