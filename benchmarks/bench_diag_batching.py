"""Diagonal phase-vector batching + parallel chunk executor -> BENCH_diag.json.

Coalescing phase — diagonal-heavy sweeps through the full op-stream
path (``OpStream`` -> ``apply_ops``), comparing the PR 2 dispatch
(``fusion="nodiag"``: peephole fusion, no ``DiagBatch``) against the
coalesced path (``fusion="auto"``: runs collapse into per-chunk phase
vectors):

* ``qft_ladder`` — the QFT controlled-phase ladder: all ``n(n-1)/2``
  distinct cphase pairs, one pass (worst case for table merging —
  every pair is distinct);
* ``tfim_zz``    — 8 Trotter layers of the TFIM ZZ chain (crz ladder)
  plus an Rz sweep per layer (repeated pairs merge into one table).

Workers phase — the opt-in process-parallel chunk executor
(``ShardedStateVector(workers=N)``): a communication-free Rx sweep over
every local axis, executed as one ``apply_ops`` run, with ``workers=0``
(serial) vs ``workers=2`` (persistent pool + shared-memory chunks).
``cpu_count`` is recorded next to the numbers: on a single-core host
the pool can only add IPC overhead, so the speedup column is only
meaningful where ``cpu_count >= 2``.

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_diag_batching.py --quick

or full (12-20 qubits)::

    PYTHONPATH=src python benchmarks/bench_diag_batching.py

See docs/benchmarks.md for the BENCH_diag.json schema.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.qmpi import Op, OpStream, SharedBackend, ShardedBackend  # noqa: E402
from repro.sim import ShardedStateVector  # noqa: E402

QUICK_QUBITS = [10, 12]
FULL_QUBITS = [12, 16, 20]
WORKER_QUICK_QUBITS = [12]
WORKER_FULL_QUBITS = [16, 20]
TFIM_LAYERS = 8
RUN_DEPTH = 4


# ----------------------------------------------------------------------
# coalescing phase: diagonal sweeps, PR 2 dispatch vs DiagBatch
# ----------------------------------------------------------------------
def _kernel_qft_ladder(stream, qubits):
    n = len(qubits)
    for i in range(n):
        for j in range(i + 1, n):
            stream.append(
                Op("cphase", (qubits[j], qubits[i]), (math.pi / (1 << (j - i)),))
            )
    stream.flush()
    return n * (n - 1) // 2


def _kernel_tfim_zz(stream, qubits):
    n = len(qubits)
    for _ in range(TFIM_LAYERS):
        for i in range(n - 1):
            stream.append(Op("crz", (qubits[i], qubits[i + 1]), (0.31,)))
        for q in qubits:
            stream.append(Op("rz", (q,), (0.17,)))
    stream.flush()
    return TFIM_LAYERS * (2 * n - 1)


COALESCE_KERNELS = {
    "qft_ladder": _kernel_qft_ladder,
    "tfim_zz": _kernel_tfim_zz,
}


def _time_stream_kernel(make_backend, kernel, n_qubits, fusion, min_time, min_reps):
    """Gates/second for an op-stream kernel through the backend path."""
    be = make_backend()
    qubits = tuple(be.alloc(0, n_qubits))
    stream = OpStream(be, 0, fusion=fusion, max_pending=1 << 20)
    kernel(stream, qubits)  # warm-up
    best = float("inf")
    elapsed = 0.0
    reps = 0
    while elapsed < min_time or reps < min_reps:
        t0 = time.perf_counter()
        gates = kernel(stream, qubits)
        dt = time.perf_counter() - t0
        best = min(best, dt / gates)
        elapsed += dt
        reps += 1
    return 1.0 / best


def run_coalescing(quick: bool, n_shards: int, min_time: float, min_reps: int) -> list:
    qubit_counts = QUICK_QUBITS if quick else FULL_QUBITS
    rows = []
    for n_qubits in qubit_counts:
        for name, kernel in COALESCE_KERNELS.items():
            for label, factory in (
                ("shared", lambda: SharedBackend(seed=0)),
                ("sharded", lambda: ShardedBackend(seed=0, n_shards=n_shards)),
            ):
                pr2 = _time_stream_kernel(
                    factory, kernel, n_qubits, "nodiag", min_time, min_reps
                )
                coalesced = _time_stream_kernel(
                    factory, kernel, n_qubits, "auto", min_time, min_reps
                )
                row = {
                    "kernel": name,
                    "n_qubits": n_qubits,
                    "backend": label,
                    "pr2_gates_per_s": round(pr2, 1),
                    "coalesced_gates_per_s": round(coalesced, 1),
                    "speedup": round(coalesced / pr2, 3),
                }
                rows.append(row)
                print(
                    f"{name:<10} n={n_qubits:>2} {label:<8} "
                    f"pr2 {pr2:>10.0f}  coalesced {coalesced:>10.0f} gates/s  "
                    f"x{row['speedup']}"
                )
    return rows


# ----------------------------------------------------------------------
# workers phase: communication-free sweeps, serial vs chunk pool
# ----------------------------------------------------------------------
def _worker_sweep_ops(sv: ShardedStateVector):
    """Rx layers over every chunk-local axis: one communication-free run."""
    nl = sv.n_local
    local = [q for q in sv.qubit_ids if sv._bit(q) < nl]
    ops = []
    for d in range(RUN_DEPTH):
        theta = 0.1 + 0.05 * d
        ops.extend(Op("rx", (q,), (theta,)) for q in local)
    return ops


def _time_worker_sweep(n_qubits, n_shards, workers, min_time, min_reps):
    sv = ShardedStateVector(
        n_qubits, seed=0, n_shards=n_shards, workers=workers, parallel_min_chunk=1
    )
    try:
        ops = _worker_sweep_ops(sv)
        sv.apply_ops(ops)  # warm-up (spawns the pool once)
        best = float("inf")
        elapsed = 0.0
        reps = 0
        while elapsed < min_time or reps < min_reps:
            t0 = time.perf_counter()
            sv.apply_ops(ops)
            dt = time.perf_counter() - t0
            best = min(best, dt / len(ops))
            elapsed += dt
            reps += 1
        return 1.0 / best
    finally:
        sv.close()


def run_workers(quick: bool, n_shards: int, min_time: float, min_reps: int) -> list:
    qubit_counts = WORKER_QUICK_QUBITS if quick else WORKER_FULL_QUBITS
    cpus = os.cpu_count() or 1
    rows = []
    for n_qubits in qubit_counts:
        w0 = _time_worker_sweep(n_qubits, n_shards, 0, min_time, min_reps)
        w2 = _time_worker_sweep(n_qubits, n_shards, 2, min_time, min_reps)
        row = {
            "kernel": "rx_local_sweep",
            "n_qubits": n_qubits,
            "workers0_gates_per_s": round(w0, 1),
            "workers2_gates_per_s": round(w2, 1),
            "speedup": round(w2 / w0, 3),
            "cpu_count": cpus,
        }
        rows.append(row)
        print(
            f"rx_local_sweep n={n_qubits:>2}  workers=0 {w0:>10.0f}  "
            f"workers=2 {w2:>10.0f} gates/s  x{row['speedup']} "
            f"(cpus={cpus})"
        )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small sizes, short passes (CI)")
    ap.add_argument("--n-shards", type=int, default=4, help="sharded engine chunk count")
    ap.add_argument("--out", default="BENCH_diag.json", help="output JSON path")
    ap.add_argument(
        "--skip-workers", action="store_true",
        help="skip the worker-pool phase (e.g. sandboxes without shm)",
    )
    ap.add_argument(
        "--only-workers", action="store_true",
        help="run only the worker-pool phase (the CI multi-core remeasure "
        "job writes it to BENCH_workers_ci.json)",
    )
    args = ap.parse_args(argv)
    if args.skip_workers and args.only_workers:
        ap.error("--skip-workers and --only-workers are mutually exclusive")

    min_time, min_reps = (0.05, 3) if args.quick else (0.5, 5)
    coalescing = (
        [] if args.only_workers
        else run_coalescing(args.quick, args.n_shards, min_time, min_reps)
    )
    workers = (
        [] if args.skip_workers
        else run_workers(args.quick, args.n_shards, min_time, min_reps)
    )
    payload = {
        "quick": args.quick,
        "n_shards": args.n_shards,
        "cpu_count": os.cpu_count() or 1,
        "tfim_layers": TFIM_LAYERS,
        "run_depth": RUN_DEPTH,
        "coalescing": coalescing,
        "workers": workers,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
