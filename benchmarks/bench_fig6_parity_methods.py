"""Fig. 6 — three implementations of exp(-i t Z...Z) over k nodes.

For each method we report the SENDQ runtime and EPR-pair count across k
(the columns the paper's analysis derives), validate the event engine
against the closed forms, and run the k=4 circuits functionally on the
simulator through QMPI.
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.apps.parity import (
    rotate_parity_constdepth,
    rotate_parity_inplace,
    rotate_parity_outofplace,
)
from repro.exact import pauli_matrix
from repro.qmpi import qmpi_run
from repro.sendq import SendqParams, analysis, programs, schedule
from repro.sim import StateVector

KS = (2, 4, 8, 16, 32, 64)


def test_fig6_sendq_series(benchmark):
    p_base = SendqParams(E=1.0, D_R=0.5, S=2)

    def run():
        rows = []
        for k in KS:
            p = p_base.with_(N=k + 1)
            rows.append(
                (
                    k,
                    analysis.parity_inplace_time(k, p),
                    analysis.parity_inplace_epr(k),
                    analysis.parity_outofplace_time(k, p),
                    analysis.parity_outofplace_epr(k),
                    analysis.parity_constdepth_time(k, p),
                    analysis.parity_constdepth_epr(k, aux_colocated=True),
                )
            )
        return rows

    rows = benchmark(run)
    print("\nFig. 6 (SENDQ, E=1, D_R=0.5):")
    print(f"{'k':>4} | {'in-place t':>10} {'EPR':>5} | {'out-of-place t':>14} "
          f"{'EPR':>5} | {'const-depth t':>13} {'EPR':>5}")
    for k, ta, ea, tb, eb, tc, ec in rows:
        print(f"{k:>4} | {ta:>10.1f} {ea:>5} | {tb:>14.1f} {eb:>5} | {tc:>13.1f} {ec:>5}")
    # Paper's conclusions: const-depth is O(1) in time; in-place uses 2x EPR.
    assert rows[-1][5] == rows[0][5]  # constant time
    assert all(r[2] == 2 * (r[0] - 1) for r in rows)


@pytest.mark.parametrize("k", [4, 8])
def test_fig6_engine_matches_formulas(benchmark, k):
    p = SendqParams(N=k + 1, S=2, E=1.0, D_R=0.5)

    def run():
        return (
            schedule(programs.parity_inplace_program(k), p).makespan,
            schedule(programs.parity_outofplace_program(k), p).makespan,
            schedule(programs.parity_constdepth_program(k, aux_colocated=True), p).makespan,
        )

    ta, tb, tc = benchmark(run)
    assert ta == pytest.approx(analysis.parity_inplace_time(k, p))
    assert tb == pytest.approx(analysis.parity_outofplace_time(k, p))
    assert tc == pytest.approx(analysis.parity_constdepth_time(k, p))
    print(f"\nFig. 6 engine check k={k}: in-place {ta}, out-of-place {tb}, "
          f"const-depth {tc} (all = closed forms)")


def _prog(qc, method, theta):
    q = qc.alloc_qmem(1)
    qc.h(q[0])
    if method == "a":
        rotate_parity_inplace(qc, q[0], theta)
    elif method == "b":
        rotate_parity_outofplace(qc, q[0], theta)
    else:
        rotate_parity_constdepth(qc, q[0], theta)
    qc.barrier()
    return q[0]


@pytest.mark.parametrize("method,label", [("a", "in-place"), ("b", "out-of-place"), ("c", "const-depth")])
def test_fig6_functional(benchmark, method, label):
    k, t = 4, 0.45
    sv = StateVector(k, seed=0)
    for i in range(k):
        sv.h(i)
    ref = sv.statevector()
    expect = expm(-1j * t * pauli_matrix(" ".join(f"Z{i}" for i in range(k)), k)) @ ref

    world = benchmark(lambda: qmpi_run(k, _prog, args=(method, 2 * t), seed=5))
    vec = world.backend.statevector(list(world.results))
    fid = abs(np.vdot(expect, vec)) ** 2
    snap = world.ledger.snapshot()
    assert fid > 1 - 1e-9
    print(f"\nFig. 6({method}) [{label}] k={k}: fidelity={fid:.9f}, "
          f"EPR={snap.epr_pairs}, classical bits={snap.classical_bits}")
