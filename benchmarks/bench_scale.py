"""Past-20-qubit scale: dtype tiers and the spill tier -> BENCH_scale.json.

One ``scale`` row per ``(n_qubits, dtype, tier)`` configuration: a
layered sweep circuit (h / cnot-chain / rz / crz couplings, ~3.5n
gates) runs once on a 4-shard :class:`ShardedStateVector` and records
gates/second next to the peak RSS the register cost.

Every configuration runs in its **own subprocess** so the RSS
high-water mark is attributable: ``peak_rss_bytes`` is the process
high-water (``ru_maxrss``) minus the resident size sampled right
before the register is allocated — interpreter + numpy overhead is
subtracted out, what remains is the state plus the engine's transient
copies.  The absolute high-water and the pre-alloc baseline are kept
alongside (``peak_rss_abs_bytes``, ``baseline_rss_bytes``).

Tiers:

* ``ram`` — both dtypes at every grid size.  The ``complex64`` row
  carries ``speedup`` (c128 wall / c64 wall, gated by the CI bench
  compare) and ``rss_c64_over_c128`` (the PR acceptance bar: <= 0.55
  at equal qubit count — half the bytes plus halved transients).
* ``spill`` — an out-of-core row: ``spill_budget`` is set to half the
  state size, forcing the chunks onto memory-mapped files, and the
  row must still complete the full circuit (``mmapped`` is asserted).
  ``peak_rss_bytes`` is INFO here — resident mapped pages are the
  page cache's call, not the engine's.

The full grid is 22q/24q (+ a 24q spill row); ``--quick`` measures
only 22q (+ a 22q spill row) so the CI bench-gate matches the 22q
rows of the committed baseline and skips the rest.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scale.py --quick
    PYTHONPATH=src python benchmarks/bench_scale.py

See docs/benchmarks.md for the BENCH_scale.json schema.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

QUBITS_FULL = [22, 24]
QUBITS_QUICK = [22]
N_SHARDS = 4


def _rss_now_bytes() -> int:
    """Current resident set size, from /proc (Linux) with a ru fallback."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-procfs host
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _rss_peak_bytes() -> int:
    """Process high-water RSS (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _sweep(sv, n):
    gates = 0
    for q in range(n):
        sv.h(q)
    gates += n
    for q in range(n - 1):
        sv.cnot(q, q + 1)
    gates += n - 1
    for q in range(n):
        sv.rz(q, 0.3 + 0.01 * q)
    gates += n
    for q in range(0, n - 1, 2):
        sv.crz(q, q + 1, 0.7)
    gates += (n - 1 + 1) // 2
    return gates


def run_one(spec: dict) -> dict:
    """One configuration, in-process: called inside the child."""
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.sim import ShardedStateVector

    n = spec["n_qubits"]
    dtype = spec["dtype"]
    tier = spec["tier"]
    state_bytes = (1 << n) * (8 if dtype == "complex64" else 16)
    kw = {}
    if tier == "spill":
        kw["spill"] = "auto"
        kw["spill_budget"] = state_bytes // 2

    baseline = _rss_now_bytes()
    sv = ShardedStateVector(n, seed=1, n_shards=N_SHARDS, dtype=dtype, **kw)
    mmapped = bool(getattr(sv, "_mmapped", False))
    t0 = time.perf_counter()
    gates = _sweep(sv, n)
    wall = time.perf_counter() - t0
    norm = float(sv.norm())
    sv.close()
    peak_abs = _rss_peak_bytes()

    return {
        "n_qubits": n,
        "backend": "sharded",
        "dtype": dtype,
        "tier": tier,
        "gates": gates,
        "wall_s": round(wall, 4),
        "gates_per_s": round(gates / wall, 2),
        "state_bytes": state_bytes,
        "spill_budget_bytes": kw.get("spill_budget"),
        "mmapped": mmapped,
        "norm": round(norm, 6),
        "baseline_rss_bytes": baseline,
        "peak_rss_abs_bytes": peak_abs,
        "peak_rss_bytes": max(0, peak_abs - baseline),
    }


def _spawn(spec: dict) -> dict:
    """Run one configuration in a fresh interpreter for a clean RSS."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--one", json.dumps(spec)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="22q subset (CI)")
    ap.add_argument("--out", default="BENCH_scale.json", help="output JSON path")
    ap.add_argument("--one", help="internal: run one JSON spec and print the row")
    args = ap.parse_args(argv)

    if args.one:
        print(json.dumps(run_one(json.loads(args.one))))
        return 0

    sizes = QUBITS_QUICK if args.quick else QUBITS_FULL
    spill_at = sizes[-1]
    rows = []
    for n in sizes:
        by_dtype = {}
        for dtype in ("complex128", "complex64"):
            row = _spawn({"n_qubits": n, "dtype": dtype, "tier": "ram"})
            by_dtype[dtype] = row
            rows.append(row)
            print(
                f"ram   n={n} {dtype:<10} {row['gates_per_s']:>8.2f} gates/s  "
                f"peak {row['peak_rss_bytes'] / 2**20:>8.1f} MiB"
            )
        c64, c128 = by_dtype["complex64"], by_dtype["complex128"]
        c64["speedup"] = round(c128["wall_s"] / c64["wall_s"], 3)
        c64["rss_c64_over_c128"] = round(
            c64["peak_rss_bytes"] / max(1, c128["peak_rss_bytes"]), 3
        )
        print(
            f"      n={n} c64 speedup x{c64['speedup']}  "
            f"rss ratio {c64['rss_c64_over_c128']}"
        )
    spill = _spawn({"n_qubits": spill_at, "dtype": "complex64", "tier": "spill"})
    rows.append(spill)
    print(
        f"spill n={spill_at} complex64  {spill['gates_per_s']:>8.2f} gates/s  "
        f"budget {spill['spill_budget_bytes'] / 2**20:.0f} MiB  "
        f"mmapped={spill['mmapped']}"
    )
    if not spill["mmapped"]:
        print("ERROR: spill row never left the RAM tier", file=sys.stderr)
        return 1

    payload = {
        "quick": args.quick,
        "n_shards": N_SHARDS,
        "cpu_count": os.cpu_count() or 1,
        "scale": rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    bar = [
        r for r in rows
        if r["tier"] == "ram" and r.get("rss_c64_over_c128", 1.0) <= 0.55
    ]
    if not bar:
        print("WARNING: no row met the 0.55x complex64 peak-RSS bar")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
