"""§6 — prototype microbenchmarks: the EPR example and simulator throughput."""

import pytest

from repro.qmpi import qmpi_run
from repro.sim import StateVector


def test_sec6_epr_example(benchmark):
    """The paper's §6 listing: two ranks share an EPR pair and agree."""

    def prog(qc):
        qubit = qc.alloc_qmem(1)
        dest = 1 if qc.rank == 0 else 0
        qc.prepare_epr(qubit[0], dest, 0)
        return qc.measure(qubit[0])

    world = benchmark(lambda: qmpi_run(2, prog, seed=0))
    assert world.results[0] == world.results[1]
    print(f"\n§6 example: both ranks measured {world.results[0]} "
          f"({world.ledger.epr_pairs} EPR pair)")


@pytest.mark.parametrize("n_qubits", [10, 16, 20])
def test_gate_throughput(benchmark, n_qubits):
    """Single-qubit gate application cost vs register size (the engine's
    2^n scaling, relevant for sizing distributed test programs)."""
    sv = StateVector(n_qubits, seed=0)

    def run():
        for q in range(n_qubits):
            sv.h(q)

    benchmark(run)
    assert sv.norm() == pytest.approx(1.0)


def test_cnot_ladder_throughput(benchmark):
    sv = StateVector(16, seed=0)
    sv.h(0)

    def run():
        for i in range(15):
            sv.cnot(i, i + 1)

    benchmark(run)
    assert sv.norm() == pytest.approx(1.0)


def test_distributed_overhead(benchmark):
    """QMPI round-trip overhead: teleport one qubit between two ranks,
    including thread spawn, rendezvous, and classical fixups."""

    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.send_move(q, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv_move(t, 0)
        return True

    world = benchmark(lambda: qmpi_run(2, prog, seed=0))
    assert all(world.results)
