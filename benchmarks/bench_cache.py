"""Schedule-cache cold vs warm replay -> BENCH_cache.json.

Two phases, both on parameter-sweep workloads (the cache's target: the
same circuit *shape* replayed with fresh angles every pass):

Flush phase — per-flush rate on the small-register sweep of
BENCH_schedule.json (<= 12 qubits), with contraction planning forced
on (``CostModel(plan_min_qubits=0)``).  The BENCH_schedule "small"
rows show why the default cost model *bypasses* the planner there:
re-planning every flush eats the planned schedule's win (~1.0x).  The
cache changes that economics — ``cache="off"`` re-plans every flush
while ``cache="on"`` replays the compiled segment list with a rebound
payload, so the planner runs once per circuit shape.  The acceptance
bar for this PR is warm >= 1.3x cold on these rows.

Sweep phase — end-to-end TFIM-Trotter parameter sweeps through the
three execution surfaces: plain statevector sweeps (``trotter``), one
shot-batched world whose program sweeps internally
(``trotter_shots``), and a stream of ``qmpi_submit`` jobs recycled
onto one worker so the per-spec backend carries its cache across jobs
(``trotter_jobs``).  These run the *default* deployment config (no
forced planning) and include all non-compile work — program dispatch,
measurement, job plumbing — so the ratios are heavily diluted: shared
rows stay clearly > 1.0, the sharded row hovers ~1.0 (execution
dominates its flush cost at this size).  Their role in the bench-gate
is regression protection, not a speedup floor.

Every row records ``speedup = warm / cold`` — the ratio gated (30%
tolerance) by tools/bench_compare.py in CI.

Run standalone (CI quick mode)::

    PYTHONPATH=src python benchmarks/bench_cache.py --quick

or full (committed baseline)::

    PYTHONPATH=src python benchmarks/bench_cache.py

See docs/benchmarks.md for the BENCH_cache.json schema.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # script run without PYTHONPATH/install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.qmpi import (  # noqa: E402
    JobRunner,
    Op,
    OpStream,
    SharedBackend,
    ShardedBackend,
)
from repro.sim.schedule import CostModel  # noqa: E402

#: Flush-phase lowering config: planning forced on at every register
#: size — the configuration the cache makes affordable (see module
#: docstring).
PLAN_CM = CostModel(plan_min_qubits=0)

FLUSH_QUBITS = [6, 8, 10, 12]
SWEEP_QUBITS = 8
TROTTER_STEPS = 3
SHOTS = 64
N_JOBS_QUICK, N_JOBS_FULL = 8, 24


def _layer_shape(n_qubits):
    """Rotation + entangler layers (survives peephole fusion: no two
    adjacent single-qubit gates share a qubit), with symbolic angles."""
    shape = []
    for _ in range(3):
        shape.extend(("ry", (q,), 1) for q in range(n_qubits))
        shape.extend(("cnot", (q, q + 1), 0) for q in range(n_qubits - 1))
        shape.extend(("crz", (q, q + 1), 1) for q in range(0, n_qubits - 1, 2))
    return shape


def _trotter_shape(n_qubits):
    """First-order TFIM Trotter step: rx field layer + crz coupling layer."""
    shape = []
    for _ in range(TROTTER_STEPS):
        shape.extend(("rx", (q,), 1) for q in range(n_qubits))
        shape.extend(("crz", (q, q + 1), 1) for q in range(n_qubits - 1))
    return shape


def _materialize(shape, qubits, angles):
    it = iter(angles)
    return [
        Op(gate, tuple(qubits[i] for i in qs),
           tuple(next(it) for _ in range(n_params)))
        for gate, qs, n_params in shape
    ]


def _angle_sets(shape, n_sets, seed=11):
    rng = np.random.default_rng(seed)
    n_params = sum(p for _, _, p in shape)
    return [tuple(float(a) for a in rng.uniform(-np.pi, np.pi, n_params))
            for _ in range(n_sets)]


def _time_flushes(factory, shape, n_qubits, cache, min_time, min_reps):
    """Best per-flush seconds, sweeping fresh angles every flush."""
    be = factory(cache)
    try:
        qubits = tuple(be.alloc(0, n_qubits))
        angle_sets = _angle_sets(shape, 16)
        stream = OpStream(
            be, 0, fusion="auto", max_pending=1 << 20, cost_model=PLAN_CM
        )

        def one_pass(k):
            for op in _materialize(shape, qubits, angle_sets[k % len(angle_sets)]):
                stream.append(op)
            stream.flush()

        one_pass(0)  # warm-up: compiles and caches the shape
        best = float("inf")
        elapsed = 0.0
        reps = 0
        while elapsed < min_time or reps < min_reps:
            t0 = time.perf_counter()
            one_pass(reps + 1)
            dt = time.perf_counter() - t0
            best = min(best, dt)
            elapsed += dt
            reps += 1
        return best
    finally:
        be.close()


def run_flush_phase(n_shards, min_time, min_reps):
    rows = []
    shapes = {n: _layer_shape(n) for n in FLUSH_QUBITS}
    for n_qubits in FLUSH_QUBITS:
        for label, factory in (
            ("shared", lambda c: SharedBackend(seed=0, cache=c)),
            ("sharded", lambda c: ShardedBackend(seed=0, n_shards=n_shards, cache=c)),
        ):
            shape = shapes[n_qubits]
            cold = _time_flushes(factory, shape, n_qubits, "off", min_time, min_reps)
            warm = _time_flushes(factory, shape, n_qubits, "on", min_time, min_reps)
            row = {
                "kernel": "layers",
                "n_qubits": n_qubits,
                "backend": label,
                "cold_flushes_per_s": round(1.0 / cold, 1),
                "warm_flushes_per_s": round(1.0 / warm, 1),
                "speedup": round(cold / warm, 3),
            }
            rows.append(row)
            print(
                f"layers     n={n_qubits:>2} {label:<8} cold {1/cold:>8.0f}  "
                f"warm {1/warm:>8.0f} flushes/s  x{row['speedup']}"
            )
    return rows


def _sweep_prog(qc, shape, n_qubits, angle_sets):
    """Rank-0 program: apply every angle set, flushing per set."""
    q = qc.alloc_qmem(n_qubits)
    for angles in angle_sets:
        for op in _materialize(shape, q, angles):
            getattr(qc, op.gate)(*op.qubits, *op.params)
        qc.flush_ops()
    return [qc.measure(x) for x in q[:2]]


def _time_backend_sweep(factory, shape, n_qubits, angle_sets, cache, reps):
    best = float("inf")
    for _ in range(reps):
        be = factory(cache)
        try:
            qubits = tuple(be.alloc(0, n_qubits))
            stream = OpStream(be, 0, fusion="auto", max_pending=1 << 20)
            t0 = time.perf_counter()
            for angles in angle_sets:
                for op in _materialize(shape, qubits, angles):
                    stream.append(op)
                stream.flush()
            best = min(best, time.perf_counter() - t0)
        finally:
            be.close()
    return best


def _time_shots_sweep(shape, n_qubits, angle_sets, cache, reps):
    from repro.qmpi import qmpi_run

    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        qmpi_run(
            1,
            _sweep_prog,
            args=(shape, n_qubits, angle_sets),
            seed=0,
            shots=SHOTS,
            cache=cache,
        )
        best = min(best, time.perf_counter() - t0)
    return best


def _job_prog(qc, shape, n_qubits, angles):
    q = qc.alloc_qmem(n_qubits)
    for op in _materialize(shape, q, angles):
        getattr(qc, op.gate)(*op.qubits, *op.params)
    return [qc.measure_and_release(x) for x in q]


def _time_jobs_sweep(shape, n_qubits, angle_sets, cache, reps):
    """One-worker job stream: the recycled backend carries the cache."""
    best = float("inf")
    for _ in range(reps):
        with JobRunner(max_workers=1, base_seed=0) as runner:
            t0 = time.perf_counter()
            futures = [
                runner.submit(
                    _job_prog,
                    args=(shape, n_qubits, angles),
                    cache=cache,
                )
                for angles in angle_sets
            ]
            for f in futures:
                f.result()
            best = min(best, time.perf_counter() - t0)
    return best


def run_sweep_phase(n_jobs, reps):
    shape = _trotter_shape(SWEEP_QUBITS)
    angle_sets = _angle_sets(shape, n_jobs, seed=23)
    rows = []

    def row(kernel, backend, cold, warm):
        r = {
            "kernel": kernel,
            "n_qubits": SWEEP_QUBITS,
            "backend": backend,
            "cold_s": round(cold, 4),
            "warm_s": round(warm, 4),
            "speedup": round(cold / warm, 3),
        }
        rows.append(r)
        print(
            f"{kernel:<14} n={SWEEP_QUBITS:>2} {backend:<8} "
            f"cold {cold:>7.3f}s  warm {warm:>7.3f}s  x{r['speedup']}"
        )

    for backend, factory in (
        ("shared", lambda c: SharedBackend(seed=0, cache=c)),
        ("sharded", lambda c: ShardedBackend(seed=0, cache=c)),
    ):
        cold = _time_backend_sweep(factory, shape, SWEEP_QUBITS, angle_sets, "off", reps)
        warm = _time_backend_sweep(factory, shape, SWEEP_QUBITS, angle_sets, "on", reps)
        row("trotter", backend, cold, warm)

    cold = _time_shots_sweep(shape, SWEEP_QUBITS, angle_sets, "off", reps)
    warm = _time_shots_sweep(shape, SWEEP_QUBITS, angle_sets, "on", reps)
    row("trotter_shots", "shared", cold, warm)

    cold = _time_jobs_sweep(shape, SWEEP_QUBITS, angle_sets, "off", reps)
    warm = _time_jobs_sweep(shape, SWEEP_QUBITS, angle_sets, "on", reps)
    row("trotter_jobs", "shared", cold, warm)
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="short passes (CI)")
    ap.add_argument("--n-shards", type=int, default=4, help="sharded engine chunk count")
    ap.add_argument("--out", default="BENCH_cache.json", help="output JSON path")
    args = ap.parse_args(argv)

    min_time, min_reps = (0.15, 6) if args.quick else (0.4, 8)
    sweep_reps = 2 if args.quick else 4
    n_jobs = N_JOBS_QUICK if args.quick else N_JOBS_FULL

    print("# flush phase: warm (cache=on) vs cold (cache=off) per-flush rate")
    flush = run_flush_phase(args.n_shards, min_time, min_reps)
    print("# sweep phase: trotter parameter sweeps (plain / shots / jobs)")
    sweep = run_sweep_phase(n_jobs, sweep_reps)

    payload = {
        "quick": args.quick,
        "n_shards": args.n_shards,
        "cpu_count": os.cpu_count() or 1,
        "trotter_steps": TROTTER_STEPS,
        "shots": SHOTS,
        "n_jobs": n_jobs,
        "flush": flush,
        "sweep": sweep,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    floor = [r for r in flush if r["speedup"] < 1.3]
    if floor:
        print(f"WARNING: {len(floor)} flush row(s) below the 1.3x acceptance bar")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
