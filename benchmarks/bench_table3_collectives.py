"""Table 3 — collectives and their resource classes (N = 3 ranks)."""


from repro.qmpi import PARITY, qmpi_run

N = 3


def _run(prog, timeout=90.0):
    return qmpi_run(N, prog, seed=0, timeout=timeout)


def test_bcast(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.bcast(q, root=0)
        qc.barrier()

    w = benchmark(lambda: _run(prog))
    assert w.ledger.snapshot().epr_pairs == N - 1
    print(f"\nTable 3 [QMPI_Bcast]: copy class -> {N-1} EPR ✓")


def test_gather_and_move(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.gather(q, root=0)
        qc.barrier()

    w = benchmark(lambda: _run(prog))
    assert w.ledger.snapshot().epr_pairs == N - 1
    print(f"\nTable 3 [QMPI_Gather]: copy class -> {N-1} EPR ✓")

    def prog_move(qc):
        q = qc.alloc_qmem(1)
        qc.gather_move(q, root=0)
        qc.barrier()

    w = _run(prog_move)
    s = w.ledger.snapshot()
    assert (s.epr_pairs, s.classical_bits) == (N - 1, 2 * (N - 1))
    print(f"Table 3 [QMPI_Gather_move]: move class -> {N-1} EPR, {2*(N-1)} bits ✓")


def test_scatter(benchmark):
    def prog(qc):
        if qc.rank == 0:
            reg = qc.alloc_qmem(N)
            qc.scatter(reg, None, root=0)
        else:
            t = qc.alloc_qmem(1)
            qc.scatter(None, t, root=0)
        qc.barrier()

    w = benchmark(lambda: _run(prog))
    assert w.ledger.snapshot().epr_pairs == N - 1
    print(f"\nTable 3 [QMPI_Scatter]: copy class -> {N-1} EPR ✓")


def test_allgather(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.allgather(q)
        qc.barrier()

    w = benchmark(lambda: _run(prog))
    assert w.ledger.snapshot().epr_pairs == N * (N - 1)
    print(f"\nTable 3 [QMPI_Allgather]: copy class per source -> {N*(N-1)} EPR ✓")


def test_alltoall_copy_and_move(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(N)
        qc.alltoall(q)
        qc.barrier()

    w = benchmark(lambda: _run(prog))
    assert w.ledger.snapshot().epr_pairs == N * (N - 1)
    print(f"\nTable 3 [QMPI_Alltoall]: copy class -> {N*(N-1)} EPR ✓")

    def prog_move(qc):
        q = qc.alloc_qmem(N)
        qc.alltoall_move(q)
        qc.barrier()

    w = _run(prog_move)
    s = w.ledger.snapshot()
    assert (s.epr_pairs, s.classical_bits) == (N * (N - 1), 2 * N * (N - 1))
    print(f"Table 3 [QMPI_Alltoall_move]: move class -> {N*(N-1)} EPR, "
          f"{2*N*(N-1)} bits ✓")


def test_reduce_and_allreduce(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(1)
        _, h = qc.reduce(q, op=PARITY, root=0)
        qc.unreduce(h)
        qc.barrier()

    w = benchmark(lambda: _run(prog))
    s = w.ledger.snapshot()
    assert (s.epr_pairs, s.classical_bits) == (N - 1, 2 * (N - 1))
    print(f"\nTable 3 [QMPI_Reduce+Unreduce]: reduce class -> {N-1} EPR, "
          f"{2*(N-1)} bits ✓")

    def prog_all(qc):
        q = qc.alloc_qmem(1)
        qc.allreduce(q, op=PARITY)
        qc.barrier()

    w = _run(prog_all)
    assert w.ledger.snapshot().epr_pairs == 2 * (N - 1)
    print(f"Table 3 [QMPI_Allreduce]: reduce + copy -> {2*(N-1)} EPR ✓")


def test_scan_exscan(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(1)
        _, h = qc.scan(q, op=PARITY)
        qc.unscan(h)
        qc.barrier()

    w = benchmark(lambda: _run(prog))
    s = w.ledger.snapshot()
    assert (s.epr_pairs, s.classical_bits) == (N - 1, 2 * (N - 1))
    print(f"\nTable 3 [QMPI_Scan+Unscan]: scan class -> {N-1} EPR, "
          f"{2*(N-1)} bits ✓")


def test_reduce_scatter_block(benchmark):
    def prog(qc):
        q = qc.alloc_qmem(N)
        _, hs = qc.reduce_scatter_block(q, op=PARITY)
        qc.unreduce_scatter_block(hs)
        qc.barrier()

    w = benchmark(lambda: _run(prog, timeout=120.0))
    assert w.ledger.snapshot().epr_pairs == N * (N - 1)
    print(f"\nTable 3 [QMPI_Reduce_scatter_block]: reduce class per block -> "
          f"{N*(N-1)} EPR ✓")
