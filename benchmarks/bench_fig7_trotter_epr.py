"""Fig. 7 — EPR pairs per first-order Trotter step vs node count.

The four series of the paper: {Bravyi-Kitaev, Jordan-Wigner} x {in-place,
const-depth}, for a hydrogen ring in STO-3G with spin orbitals fixed
blockwise to nodes. Default ring: 12 atoms; REPRO_RING_ATOMS=32 gives the
paper's exact workload (H32, 64 qubits, node counts 1..64, EPR counts
around 1e7 at N=64 — same order as the paper's y-axis).

Shape requirements (validated below, matching the published figure):
* zero communication at N=1, growth with N;
* const-depth needs exactly half the EPR pairs of in-place;
* BK is cheaper than JW once the register is spread over many nodes,
  while at coarse granularity the two are comparable (crossover).
"""


from repro.chem import epr_sweep


def _node_counts(n_so):
    return tuple(n for n in (1, 2, 4, 8, 16, 32, 64) if n_so % n == 0)


def test_fig7_sweep(benchmark, ring_hamiltonian):
    nodes = _node_counts(ring_hamiltonian.n_spin_orbitals)
    rows = benchmark(lambda: epr_sweep(ring_hamiltonian, node_counts=nodes))
    series = {}
    for r in rows:
        series.setdefault((r.encoding, r.method), {})[r.n_nodes] = r.epr_pairs
    print(f"\nFig. 7 — EPR pairs per Trotter step "
          f"({ring_hamiltonian.n_spin_orbitals} spin orbitals, block placement):")
    print("series".ljust(18) + "".join(f"{n:>12d}" for n in nodes))
    for (enc, meth), vals in sorted(series.items()):
        label = f"{enc.upper()} ({'in-place' if meth == 'inplace' else 'const.-depth'})"
        print(label.ljust(18) + "".join(f"{vals[n]:>12,d}" for n in nodes))
        benchmark.extra_info[label] = vals[max(nodes)]

    for enc in ("bk", "jw"):
        inp = series[(enc, "inplace")]
        cst = series[(enc, "constdepth")]
        assert inp[1] == 0 and cst[1] == 0
        for n in nodes[1:]:
            assert inp[n] == 2 * cst[n]  # factor-2 between the circuits
            assert inp[n] > 0
        # monotone growth with node count
        vals = [inp[n] for n in nodes]
        assert all(a <= b for a, b in zip(vals, vals[1:]))
    # JW's wide strings dominate at the finest granularity
    finest = nodes[-1]
    if finest >= 16:
        assert series[("jw", "inplace")][finest] > series[("bk", "inplace")][finest]
