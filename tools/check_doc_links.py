#!/usr/bin/env python
"""Check that internal links in README.md and docs/ resolve.

Scans markdown files for inline links, keeps the internal ones
(relative paths and ``#anchors``), and verifies that the target file
exists and — for markdown targets with an anchor — that a heading with
the matching GitHub-style slug exists. External (``http(s)://``,
``mailto:``) links are ignored: CI must not depend on the network.

Usage::

    python tools/check_doc_links.py [root]

Exits 1 listing every broken link, 0 when all resolve.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(md_path: Path) -> set[str]:
    return {_slug(h) for h in _HEADING.findall(md_path.read_text())}


def doc_files(root: Path) -> list[Path]:
    """The markdown set the checker covers: README.md plus docs/."""
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_links(root: Path) -> list[str]:
    """Return a list of human-readable problems (empty = all good)."""
    problems = []
    for md in doc_files(root):
        for target in _LINK.findall(md.read_text()):
            if target.startswith(_EXTERNAL):
                continue
            path_part, _, anchor = target.partition("#")
            base = md.parent / path_part if path_part else md
            base = base.resolve()
            if not base.exists():
                problems.append(f"{md.relative_to(root)}: broken link -> {target}")
                continue
            if anchor and base.suffix == ".md":
                if anchor not in _anchors(base):
                    problems.append(
                        f"{md.relative_to(root)}: missing anchor -> {target}"
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    problems = check_links(root)
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken doc link(s)", file=sys.stderr)
        return 1
    checked = ", ".join(str(f.relative_to(root)) for f in doc_files(root))
    print(f"doc links OK ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
