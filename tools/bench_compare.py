#!/usr/bin/env python
"""Compare fresh benchmark runs against the committed BENCH_*.json baselines.

The committed files record *speedup ratios* (fused/unfused,
coalesced/pr2, sharded/shared...) from full runs; CI re-runs the same
benchmarks in ``--quick`` mode and this tool fails (exit 1) if any
ratio **regresses** by more than the tolerance (default 30%) against
the committed baseline for the same ``(kernel, n_qubits, backend, ...)``
row.  Ratios are what make quick-vs-full comparison meaningful: both
dispatch paths run on the same host in the same process, so the ratio
is far more stable than absolute gates/second.

Rules:

* rows are matched on their identity keys; rows present on only one
  side (quick mode measures fewer sizes than full) are reported as
  ``skip`` and never gate;
* whole sections present on only one side — or malformed ones — are
  reported as a single section-level ``skip`` with the reason, never a
  traceback (an unreadable crash in the blocking gate hides the diff);
* an unreadable/unparsable file fails the pair with a message (the
  bench step upstream did not produce what the gate was told to check);
* *improvements* never fail, only regressions beyond tolerance do;
* machine-dependent phases are excluded: the ``workers`` rows of
  BENCH_diag.json compare real processes against real cores, so their
  ratio is a property of the host's ``cpu_count``, not of the code
  (see docs/benchmarks.md).

Usage::

    python tools/bench_compare.py \\
        --baseline BENCH_plan.json --fresh fresh/BENCH_plan.json \\
        [--tolerance 0.30]

Repeat ``--baseline``/``--fresh`` pairs to gate several files at once;
a table of every compared row is always printed.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: Fields that identify a row (whichever subset is present is the key).
KEY_FIELDS = ("kernel", "n_qubits", "backend", "n_ranks", "transport",
              "dtype", "tier")

#: Ratio columns gated per benchmark row, by column name.
RATIO_FIELDS = ("speedup", "fused_speedup", "sharded_fused_vs_shared")

#: Ratio columns printed for matched rows but never gated: the mp/inproc
#: wall ratio of BENCH_fabric.json measures process spawn + pickling
#: against the host scheduler, not algorithmic quality; the peak-RSS
#: column of BENCH_scale.json measures the host allocator + page cache,
#: so it is reported for inspection but never drives the gate.
INFO_FIELDS = ("mp_vs_inproc", "peak_rss_bytes")

#: list-of-rows sections to compare, per file; anything else (scalars,
#: machine-dependent phases like the "workers" sections of
#: BENCH_diag/BENCH_plan — those accumulate cpu_count-keyed history via
#: tools/fold_workers_ci.py instead) is ignored.
SECTIONS = (
    "plan",
    "diag",
    "coalescing",
    "results",
    "small",
    "wide",
    "fabric",
    "flush",
    "sweep",
    "kernels",
    "replay",
    "scale",
)


def _section_rows(payload: dict, section: str):
    """The section's row list, or ``None`` when absent/malformed.

    Returns ``(rows, problem)``: ``problem`` is a human-readable string
    when the section is present but not a list of dict rows (a corrupt
    or hand-edited BENCH file) — the caller reports it instead of
    crashing mid-table.
    """
    rows = payload.get(section)
    if rows is None:
        return None, None
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        return None, f"section {section!r} is not a list of row objects"
    return rows, None


def _key(section: str, row: dict) -> tuple:
    return (section,) + tuple(
        (f, row[f]) for f in KEY_FIELDS if f in row
    )


def compare(baseline: dict, fresh: dict, tolerance: float):
    """Yield ``(key, field, base, new, verdict)`` for every gated ratio.

    A section present on only one side — a committed file carrying rows
    the fresh (quick) run produced no section for at all, or a fresh
    run measuring something not yet committed — yields a single
    section-level ``skip`` verdict naming the missing side and the row
    count, instead of one cryptic row per orphan.  Malformed sections
    are likewise reported as skips, never tracebacks: the gate's
    output must stay a readable diff whatever the inputs.
    """
    for section in SECTIONS:
        b_rows, b_problem = _section_rows(baseline, section)
        f_rows, f_problem = _section_rows(fresh, section)
        if b_problem or f_problem:
            where = "baseline" if b_problem else "fresh"
            problem = b_problem or f_problem
            yield (section,), "-", None, None, f"skip (malformed {where}: {problem})"
            continue
        if b_rows is None and f_rows is None:
            continue
        if b_rows is None or f_rows is None:
            missing = "fresh" if f_rows is None else "baseline"
            n = len(b_rows if f_rows is None else f_rows)
            yield (
                (section,), "-", None, None,
                f"skip (section missing from {missing}; {n} row(s) not gated)",
            )
            continue
        base_map = {_key(section, r): r for r in b_rows}
        fresh_map = {_key(section, r): r for r in f_rows}
        for key in sorted(set(base_map) | set(fresh_map), key=repr):
            b, f = base_map.get(key), fresh_map.get(key)
            if b is None or f is None:
                yield key, "-", None, None, "skip (no counterpart)"
                continue
            for field in RATIO_FIELDS:
                if field not in b or field not in f:
                    continue
                base_v, new_v = float(b[field]), float(f[field])
                if base_v <= 0:
                    verdict = "skip"
                elif new_v < base_v * (1.0 - tolerance):
                    verdict = "FAIL"
                else:
                    verdict = "ok"
                yield key, field, base_v, new_v, verdict
            for field in INFO_FIELDS:
                if field in b and field in f:
                    yield key, field, float(b[field]), float(f[field]), "info"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", action="append", required=True,
                    help="committed baseline JSON (repeatable)")
    ap.add_argument("--fresh", action="append", required=True,
                    help="freshly measured JSON, paired with --baseline")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional regression (default 0.30)")
    args = ap.parse_args(argv)
    if len(args.baseline) != len(args.fresh):
        ap.error("--baseline and --fresh must be paired")

    failures = 0
    width = 64
    print(f"{'row':<{width}} {'field':<12} {'base':>8} {'fresh':>8}  verdict")
    print("-" * (width + 40))
    for base_path, fresh_path in zip(args.baseline, args.fresh):
        print(f"# {base_path} vs {fresh_path}")
        try:
            baseline = json.loads(Path(base_path).read_text())
            fresh = json.loads(Path(fresh_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"  FAIL: cannot load pair: {exc}")
            failures += 1
            continue
        for key, field, base_v, new_v, verdict in compare(
            baseline, fresh, args.tolerance
        ):
            label = "/".join(str(v) for _, v in key[1:]) or key[0]
            label = f"{key[0]}:{label}"
            if field == "-":  # section-level or row-level skip
                print(f"{label:<{width}} {'-':<12} {'-':>8} {'-':>8}  {verdict}")
                continue
            failures += verdict == "FAIL"
            print(
                f"{label:<{width}} {field:<12} {base_v:>8.3f} {new_v:>8.3f}  {verdict}"
            )
    if failures:
        print(
            f"\n{failures} gate failure(s): ratios regressed more than "
            f"{args.tolerance:.0%} vs the committed baselines, or files "
            "the gate was pointed at could not be loaded"
        )
        return 1
    print("\nall compared ratios within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
