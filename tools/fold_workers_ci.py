#!/usr/bin/env python
"""Fold CI multi-core workers measurements into the committed baselines.

The ``workers`` CI job remeasures the parallel chunk executor on the
multi-core GitHub runners and uploads ``BENCH_workers_ci.json`` /
``BENCH_workers_plan_ci.json`` artifacts (the committed baselines were
measured wherever the full benches last ran — possibly a single-core
container, where the pool can only show overhead).  This tool merges
those artifacts' ``workers`` rows back into the committed
``BENCH_diag.json`` / ``BENCH_plan.json``:

* rows are keyed on ``(kernel, n_qubits, cpu_count)`` — a multi-core
  measurement never *overwrites* a single-core row (or vice versa), it
  sits next to it as a new ``cpu_count``-keyed row, so the committed
  file records the speedup *per core count*;
* a matching key is replaced with the fresher measurement;
* rows are kept sorted for stable diffs.

Usage::

    python tools/fold_workers_ci.py --baseline BENCH_diag.json \\
        --ci BENCH_workers_ci.json [--ci another.json ...]

The machine-dependent ``workers`` sections stay excluded from the
bench-gate ratio comparison (see tools/bench_compare.py); this tool is
how their history accumulates in-repo instead.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: Fields identifying one workers row (cpu_count included: measurements
#: from hosts with different core counts coexist).
KEY_FIELDS = ("kernel", "n_qubits", "cpu_count")


def _key(row: dict) -> tuple:
    return tuple(row.get(f) for f in KEY_FIELDS)


def fold(baseline: dict, ci_payloads) -> tuple[dict, int, int]:
    """Merge CI workers rows into ``baseline``; returns (payload, replaced, added)."""
    rows = {_key(r): r for r in baseline.get("workers", ())}
    replaced = added = 0
    for payload in ci_payloads:
        for row in payload.get("workers", ()):
            k = _key(row)
            if k in rows:
                replaced += 1
            else:
                added += 1
            rows[k] = row
    baseline["workers"] = [rows[k] for k in sorted(rows, key=repr)]
    return baseline, replaced, added


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json to fold rows into (rewritten in place)")
    ap.add_argument("--ci", action="append", required=True,
                    help="CI workers artifact JSON (repeatable)")
    args = ap.parse_args(argv)

    base_path = Path(args.baseline)
    baseline = json.loads(base_path.read_text())
    ci_payloads = [json.loads(Path(p).read_text()) for p in args.ci]
    baseline, replaced, added = fold(baseline, ci_payloads)
    base_path.write_text(json.dumps(baseline, indent=2) + "\n")
    for row in baseline["workers"]:
        print(
            f"{row['kernel']:<20} n={row['n_qubits']:>2} "
            f"cpus={row.get('cpu_count', '?'):>2}  x{row['speedup']}"
        )
    print(f"{base_path}: {replaced} row(s) replaced, {added} added")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
