#!/usr/bin/env python
"""§7.1 — optimizing QMPI_Bcast, functionally and in the SENDQ model.

Runs both broadcast algorithms (binomial tree vs constant-depth cat
state) on the simulator, confirms they create identical entangled copies
with identical EPR budgets, then compares their SENDQ runtimes across
node counts — the cat state wins beyond a handful of nodes because its
quantum time is a constant 2E + D_M + D_F. Run:

    python examples/collective_optimization.py
"""


from repro.qmpi import qmpi_run
from repro.sendq import SendqParams, analysis, programs, schedule


def bcast_program(qc, algorithm):
    q = qc.alloc_qmem(1)
    if qc.rank == 0:
        qc.ry(q[0], 0.8)
    handle = qc.bcast(q, root=0, algorithm=algorithm)
    p = qc.prob_one(q[0])
    qc.unbcast(handle)
    return round(p, 9)


def main():
    print("=== Functional check: both algorithms broadcast the same state ===")
    for algorithm in ("tree", "cat"):
        world = qmpi_run(5, bcast_program, args=(algorithm,), seed=1)
        snap = world.ledger.snapshot()
        print(f"  {algorithm:4s}: per-rank P(1) = {world.results}  "
              f"EPR = {snap.epr_pairs} (N-1 = 4)")
        assert len(set(world.results)) == 1
        assert snap.epr_pairs == 4

    print("\n=== SENDQ: runtime vs node count (E=1, D_M=D_F=0.05) ===")
    print(f"{'N':>5} {'tree: E*ceil(log2 N)':>22} {'cat: 2E+D_M+D_F':>18}")
    for n in (2, 4, 8, 16, 32, 64, 128):
        p = SendqParams(N=n, S=2, E=1.0, D_M=0.05, D_F=0.05)
        t_tree = analysis.bcast_tree_time(p)
        t_cat = analysis.bcast_cat_time(p)
        print(f"{n:>5} {t_tree:>22.2f} {t_cat:>18.2f}")

    print("\n=== Event-engine validation (N=16) ===")
    p = SendqParams(N=16, S=2, E=1.0, D_M=0.05, D_F=0.05)
    tr_tree = schedule(programs.bcast_tree_program(16), p)
    tr_cat = schedule(programs.bcast_cat_program(16), p)
    print(f"  tree: engine={tr_tree.makespan:.2f}  formula={analysis.bcast_tree_time(p):.2f}")
    print(f"  cat : engine={tr_cat.makespan:.2f}  formula={analysis.bcast_cat_time(p):.2f}")
    print("\nCat-state schedule (Gantt):")
    print(tr_cat.gantt(width=60))


if __name__ == "__main__":
    main()
