#!/usr/bin/env python
"""§4.7 — persistent requests: pre-established EPR pools.

A PersistentChannel stockpiles EPR pairs before any data exists; the
transfers themselves then need only classical bits ("zero quantum
communication depth"). The ledger proves it: all EPR pairs are created
during setup, none during the timed transfer phase. Run:

    python examples/persistent_channels.py
"""

from repro.qmpi import PersistentChannel, qmpi_run


def program(qc, n_messages):
    peer = 1 - qc.rank
    # Phase 1: set up the pool (this is where ALL quantum communication
    # happens; in a real machine it overlaps with preceding computation).
    channel = PersistentChannel(qc, peer, slots=n_messages, tag=7)
    qc.barrier()
    setup = qc.ledger.snapshot()

    # Phase 2: stream messages — classical bits only.
    if qc.rank == 0:
        for i in range(n_messages):
            q = qc.alloc_qmem(1)
            qc.ry(q[0], 0.1 * (i + 1))
            channel.send_move(q)
        out = None
    else:
        probs = []
        for i in range(n_messages):
            (q,) = channel.recv_move(1)
            probs.append(round(qc.prob_one(q), 6))
        out = probs
    qc.barrier()
    stream = qc.ledger.snapshot().delta(setup)
    return out, (stream.epr_pairs, stream.classical_bits)


def main():
    n_messages = 4
    world = qmpi_run(2, program, args=(n_messages,), seed=0)
    probs, _ = world.results[1]
    _, (epr_during_stream, bits) = world.results[0]
    print(f"teleported {n_messages} states; receiver P(1) per message: {probs}")
    print(f"EPR pairs created during streaming: {epr_during_stream} (all were "
          f"pre-established)")
    print(f"classical bits during streaming: {bits} (2 per teleported qubit)")
    total = world.ledger.snapshot()
    print(f"total EPR pairs overall: {total.epr_pairs} (= pool size {n_messages})")


if __name__ == "__main__":
    main()
