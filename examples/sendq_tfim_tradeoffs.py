#!/usr/bin/env python
"""§7.2 — using SENDQ to choose node counts and buffer sizes for TFIM.

Reproduces the paper's analysis: the per-Trotter-step delay is
max(D_Trotter, 2E) with S >= 2 buffers but max(D_Trotter, 2E + 2 D_R)
with S = 1, so a single EPR buffer qubit costs real time once the
computation is communication-bound — and the discrete-event engine
recovers both closed forms from the buffer constraint alone. Run:

    python examples/sendq_tfim_tradeoffs.py
"""

from repro.sendq import SendqParams, analysis, programs, schedule


def engine_per_step(n_spins, n_nodes, S, E, D_R, steps=5):
    p = SendqParams(N=n_nodes, S=S, E=E, D_R=D_R)
    t1 = schedule(programs.tfim_step_program(n_spins, n_nodes, steps - 1), p).makespan
    t2 = schedule(programs.tfim_step_program(n_spins, n_nodes, steps), p).makespan
    return t2 - t1


def main():
    n_spins, E, D_R = 16, 4.0, 1.0
    print(f"TFIM ring: n = {n_spins} spins, E = {E}, D_R = {D_R}")
    print(f"{'N':>4} {'D_Trotter':>10} {'S=2 formula':>12} {'S=2 engine':>11} "
          f"{'S=1 formula':>12} {'S=1 engine':>11}")
    for n_nodes in (2, 4, 8, 16):
        d_t = analysis.tfim_trotter_compute_delay(n_spins, SendqParams(N=n_nodes, D_R=D_R))
        f2 = analysis.tfim_step_delay(n_spins, SendqParams(N=n_nodes, S=2, E=E, D_R=D_R))
        f1 = analysis.tfim_step_delay(n_spins, SendqParams(N=n_nodes, S=1, E=E, D_R=D_R))
        e2 = engine_per_step(n_spins, n_nodes, 2, E, D_R)
        e1 = engine_per_step(n_spins, n_nodes, 1, E, D_R)
        print(f"{n_nodes:>4} {d_t:>10.1f} {f2:>12.1f} {e2:>11.1f} {f1:>12.1f} {e1:>11.1f}")

    print("\nNode-count guidance (communication off the critical path, S>=2):")
    p = SendqParams(E=E, D_R=D_R)
    print(f"  N <= E^-1 * n * D_R = {analysis.tfim_max_nodes(n_spins, p)}")
    print("\nWith S = 1 but Q >= 2, repurposing one compute qubit as buffer")
    print(f"  recovers S=2 behaviour at N >= ceil(n/(Q-1)) = "
          f"{analysis.tfim_min_nodes_for_s2(n_spins, 3)} nodes (for Q = 3).")

    print("\nTakeaway (the paper's §7.2 conclusion): smaller S means longer")
    print("runtimes even with an optimized communication schedule.")


if __name__ == "__main__":
    main()
