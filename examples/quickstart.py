#!/usr/bin/env python
"""Quickstart — the paper's §6 example, in Python.

Two quantum ranks each allocate one qubit and call QMPI_Prepare_EPR with
the other rank; measuring both halves of the shared EPR pair always gives
the same outcome. Run:

    python examples/quickstart.py [--backend shared|sharded] [--workers N]

``--backend`` picks the simulation engine (README: "Simulation
backends"): ``shared`` is the paper's rank-0 state vector, ``sharded``
chunks the amplitudes across simulation ranks. ``--workers N`` (sharded
only) adds the opt-in process-parallel chunk executor — N persistent
worker processes updating the chunks through shared memory; it needs N
real CPU cores to pay off and is a no-op for a workload this small, but
exercises the full path end to end.
"""

import argparse

from repro.qmpi import qmpi_run


def main_program(qc):
    qubit = qc.alloc_qmem(1)  # QMPI_Alloc_qmem(1)
    rank = qc.rank
    dest = 1 if rank == 0 else 0
    # prepare EPR pair between rank and dest
    qc.prepare_epr(qubit[0], dest, 0)
    # measure the local qubit
    res = qc.measure(qubit[0])
    print(f"{rank}: {res}")
    return res


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", default="shared", choices=["shared", "sharded"],
                    help="simulation engine (see README: Simulation backends)")
    ap.add_argument("--workers", type=int, default=0, metavar="N",
                    help="chunk worker processes for the sharded engine "
                         "(0 = serial; needs N real cores to pay off)")
    args = ap.parse_args()
    if args.workers and args.backend != "sharded":
        ap.error("--workers requires --backend sharded")
    backend_opts = {"workers": args.workers} if args.workers else None
    for trial in range(4):
        world = qmpi_run(2, main_program, seed=trial, backend=args.backend,
                         backend_opts=backend_opts)
        a, b = world.results
        assert a == b, "EPR halves must agree!"
        print(f"trial {trial}: both ranks measured {a}  "
              f"(EPR pairs used: {world.ledger.epr_pairs})")
        world.backend.close()
    print("\nAs the paper puts it: 'Both ranks observe the same value when "
          "measuring their share of the EPR pair.'")


if __name__ == "__main__":
    main()
