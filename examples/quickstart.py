#!/usr/bin/env python
"""Quickstart — the paper's §6 example, in Python.

Two quantum ranks each allocate one qubit and call QMPI_Prepare_EPR with
the other rank; measuring both halves of the shared EPR pair always gives
the same outcome. Run:

    python examples/quickstart.py [--backend shared|sharded]
"""

import argparse

from repro.qmpi import qmpi_run


def main_program(qc):
    qubit = qc.alloc_qmem(1)  # QMPI_Alloc_qmem(1)
    rank = qc.rank
    dest = 1 if rank == 0 else 0
    # prepare EPR pair between rank and dest
    qc.prepare_epr(qubit[0], dest, 0)
    # measure the local qubit
    res = qc.measure(qubit[0])
    print(f"{rank}: {res}")
    return res


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", default="shared", choices=["shared", "sharded"],
                    help="simulation engine (see README: Simulation backends)")
    args = ap.parse_args()
    for trial in range(4):
        world = qmpi_run(2, main_program, seed=trial, backend=args.backend)
        a, b = world.results
        assert a == b, "EPR halves must agree!"
        print(f"trial {trial}: both ranks measured {a}  "
              f"(EPR pairs used: {world.ledger.epr_pairs})")
    print("\nAs the paper puts it: 'Both ranks observe the same value when "
          "measuring their share of the EPR pair.'")


if __name__ == "__main__":
    main()
