#!/usr/bin/env python
"""Figs. 5 & 7 — fermionic encodings for a hydrogen ring (§7.3).

Builds the STO-3G Hamiltonian of a hydrogen ring from scratch (analytic
integrals + RHF), encodes it with Jordan-Wigner and Bravyi-Kitaev, and
prints (a) the per-term qubit-count histogram (Fig. 5) and (b) the EPR
pairs needed per first-order Trotter step as a function of node count
(Fig. 7). Run:

    python examples/chemistry_encodings.py [n_atoms]

Default is a 12-atom ring (a few seconds); 32 reproduces the paper's
system exactly.
"""

import sys

from repro.chem import (
    build_hamiltonian,
    epr_sweep,
    hydrogen_ring,
    run_rhf,
    support_histogram,
)


def text_histogram(counts, width: int = 48) -> str:
    import math

    peak = max((c for c in counts if c), default=1)
    lines = []
    for w, c in enumerate(counts):
        if not c:
            continue
        bar = "#" * max(1, int(width * math.log10(c + 1) / math.log10(peak + 1)))
        lines.append(f"  {w:3d} | {bar} {c}")
    return "\n".join(lines)


def main():
    n_atoms = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    print(f"Hydrogen ring, {n_atoms} atoms, STO-3G ({2 * n_atoms} spin orbitals)")
    mol = hydrogen_ring(n_atoms, 1.8)
    rhf = run_rhf(mol)
    print(f"RHF energy: {rhf.energy:.6f} Ha (converged={rhf.converged})")
    ham = build_hamiltonian(rhf)

    print("\n=== Fig. 5: qubits per Hamiltonian term ===")
    for enc in ("jw", "bk"):
        counts = support_histogram(ham, enc)
        total = counts.sum()
        maxw = max(i for i, c in enumerate(counts) if c)
        print(f"\n{enc.upper()}: {total} Pauli strings, max weight {maxw}")
        print(text_histogram(counts))

    print("\n=== Fig. 7: EPR pairs per first-order Trotter step ===")
    nodes = [n for n in (1, 2, 4, 8, 16, 32, 64) if (2 * n_atoms) % n == 0]
    rows = epr_sweep(ham, node_counts=nodes)
    series = {}
    for r in rows:
        series.setdefault((r.encoding, r.method), {})[r.n_nodes] = r.epr_pairs
    print("series".ljust(20) + "".join(f"{n:>12d}" for n in nodes))
    for (enc, meth), vals in sorted(series.items()):
        label = f"{enc.upper()} ({'in-place' if meth == 'inplace' else 'const-depth'})"
        print(label.ljust(20) + "".join(f"{vals.get(n, 0):>12,d}" for n in nodes))
    print("\nShape checks (as in the paper): const-depth uses half the EPR "
          "pairs of in-place; JW overtakes BK as node granularity refines.")


if __name__ == "__main__":
    main()
