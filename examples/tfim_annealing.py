#!/usr/bin/env python
"""Listing 1 — distributed TFIM time evolution with an annealing schedule.

Four spins on two quantum ranks anneal from the transverse-field ground
state |+...+> (g=1, J=0) to a classical antiferromagnetic Ising model
(g=0, J=1). With J > 0 the ZZ coupling is antiferromagnetic, so a slow
anneal should end in a Néel-ordered bitstring (0101 or 1010 around the
ring). Run:

    python examples/tfim_annealing.py
"""

from collections import Counter

from repro.apps.tfim import run_annealing


def main():
    n_ranks, spins_per_rank = 2, 2
    shots = 12
    counts: Counter = Counter()
    for seed in range(shots):
        outcomes, ledger = run_annealing(
            n_ranks=n_ranks,
            num_local_spins=spins_per_rank,
            num_annealing_steps=24,
            num_trotter=2,
            time=0.9,
            seed=seed,
        )
        counts["".join(map(str, outcomes))] += 1
    print(f"{shots} annealing runs on {n_ranks} ranks x {spins_per_rank} spins:")
    for bits, c in counts.most_common():
        neel = " <- Neel ordered" if bits in ("0101", "1010") else ""
        print(f"  {bits}: {c}{neel}")
    neel_frac = (counts["0101"] + counts["1010"]) / shots
    print(f"\nNeel fraction: {neel_frac:.2f} (a slow anneal drives this toward 1)")
    print(f"EPR pairs for the last run: {ledger.epr_pairs}, "
          f"classical bits: {ledger.classical_bits}")


if __name__ == "__main__":
    main()
