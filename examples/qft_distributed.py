#!/usr/bin/env python
"""Diagonal-heavy QFT: the op-stream's phase-vector batching at work.

Each rank runs the quantum Fourier transform on its own register —
a circuit that is almost entirely *diagonal* controlled phases, the
best case for the stream's diagonal batching: every H flushes a run of
cphase ops that coalesce into one ``DiagBatch`` and apply as a single
per-chunk phase-vector multiply (zero chunk communication on the
sharded engine). Run:

    python examples/qft_distributed.py [--backend shared|sharded]
                                       [--qubits N] [--workers W]

The script QFTs |value> per rank, checks the state against the DFT
column analytically, and prints the stream/batching statistics.
"""

import argparse

import numpy as np

from repro.qmpi import DiagBatch, make_backend, qmpi_run
from repro.apps.qft import dft_column, qft_program
from repro.sim import lower_flush


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", default="sharded", choices=["shared", "sharded"])
    ap.add_argument("--qubits", type=int, default=6, help="qubits per rank")
    ap.add_argument("--ranks", type=int, default=2, help="quantum ranks")
    ap.add_argument("--workers", type=int, default=0, metavar="W",
                    help="chunk worker processes (sharded only)")
    args = ap.parse_args()
    if args.workers and args.backend != "sharded":
        ap.error("--workers requires --backend sharded")
    backend_opts = {"workers": args.workers} if args.workers else None

    # Prebuild the backend so one spy counts what all ranks dispatch.
    backend = make_backend(args.backend, seed=0, n_ranks=args.ranks,
                           **(backend_opts or {}))
    batches = []
    n_total = args.ranks * args.qubits
    orig = backend.apply_flush

    def spy(rank, ops, **kw):
        # apply_flush lowers (or cache-replays) internally; re-run the
        # same lowering here to record what each flush dispatched.
        ops = tuple(ops)
        batches.append(tuple(lower_flush(
            list(ops), n_total,
            **{k: v for k, v in kw.items() if v is not None},
        )))
        return orig(rank, ops, **kw)

    backend.apply_flush = spy
    world = qmpi_run(args.ranks, qft_program, args=(args.qubits, 3), backend=backend)
    backend.apply_flush = orig

    values = [(3 + r) % (1 << args.qubits) for r in range(args.ranks)]
    qft_gates = args.qubits * (args.qubits + 1) // 2 + args.qubits // 2
    issued = sum(qft_gates + bin(x).count("1") for x in values)
    n_ops = sum(len(b) for b in batches)
    n_diag = sum(1 for b in batches for op in b if isinstance(op, DiagBatch))
    # The ranks never communicate, so the global state is the product of
    # the per-rank DFT columns (in qubit-allocation order).
    order = [qb for q in world.results for qb in q]
    expected = np.array([1.0])
    for x in values:
        expected = np.kron(expected, dft_column(args.qubits, x))
    vec = world.backend.statevector(order)
    err = float(np.max(np.abs(vec - expected)))
    inputs = ", ".join(f"|{x}>" for x in values)
    print(f"{args.ranks} ranks QFT'd {inputs} on '{args.backend}': "
          f"{issued} issued gates -> {n_ops} dispatched ops "
          f"({n_diag} DiagBatch)")
    print(f"global state vs DFT columns: max |amp error| = {err:.2e}")
    assert err < 1e-9, "QFT output does not match the DFT columns"
    assert n_diag > 0, "expected coalesced DiagBatch dispatch"
    world.backend.close()
    print("\nEvery cphase ladder coalesced into a single phase-vector "
          "multiply — no per-gate dispatch, no chunk exchange.")


if __name__ == "__main__":
    main()
