"""The docs layer stays linked: README/docs internal links must resolve.

Runs the same checker the CI docs job uses (tools/check_doc_links.py),
so a broken relative link or stale anchor fails tier-1 locally too.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", ROOT / "tools" / "check_doc_links.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_docs_exist_and_are_covered():
    checker = _load_checker()
    covered = {p.name for p in checker.doc_files(ROOT)}
    assert "README.md" in covered
    assert "architecture.md" in covered
    assert "benchmarks.md" in covered


def test_internal_links_resolve():
    checker = _load_checker()
    problems = checker.check_links(ROOT)
    assert not problems, "\n".join(problems)


def test_checker_catches_breakage(tmp_path):
    checker = _load_checker()
    (tmp_path / "README.md").write_text("see [docs](docs/missing.md)\n")
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "a.md").write_text(
        "# Title\n[ok](../README.md)\n[bad](a.md#no-such-heading)\n"
    )
    problems = checker.check_links(tmp_path)
    assert len(problems) == 2
    assert any("missing.md" in p for p in problems)
    assert any("no-such-heading" in p for p in problems)
