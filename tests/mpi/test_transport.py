"""Transport registry + cross-transport fabric semantics.

Every rank function here is module-level: the mp transport pickles it
into spawned processes, so closures would fail by construction. Tests
that exercise matching semantics run against every registered transport
— the registry is the parametrization source, so a third transport
would be picked up automatically.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    InprocTransport,
    MpiAbort,
    RankFailure,
    RecvTimeout,
    Status,
    Transport,
    TRANSPORTS,
    TransportError,
    make_transport,
    register_transport,
    run_spmd,
)
from repro.mpi.fabric import Mailbox
from repro.mpi.mp import MpTransport


def _all_transports():
    make_transport("inproc")  # force builtin registration
    return sorted(TRANSPORTS)


@pytest.fixture(params=_all_transports())
def transport(request):
    return request.param


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_builtins():
    make_transport("inproc")
    assert TRANSPORTS["inproc"] is InprocTransport
    assert TRANSPORTS["mp"] is MpTransport


def test_make_transport_resolves_names_classes_instances():
    assert isinstance(make_transport("inproc"), InprocTransport)
    assert isinstance(make_transport(MpTransport), MpTransport)
    inst = MpTransport(shm_min_bytes=0)
    assert make_transport(inst) is inst


def test_make_transport_rejects_opts_on_instance():
    with pytest.raises(ValueError, match="prebuilt"):
        make_transport(MpTransport(), shm_min_bytes=0)


def test_make_transport_unknown_name_lists_known():
    with pytest.raises(ValueError, match="inproc") as ei:
        make_transport("smoke-signals")
    assert "mp" in str(ei.value)


def test_register_transport_custom():
    class Echo(Transport):
        name = "echo-test"

        def run_spmd(self, n_ranks, fn, args=(), kwargs=None, timeout=120.0, service=None):
            return ["echo"] * n_ranks

    register_transport(Echo.name, Echo)
    try:
        assert run_spmd(3, None, transport="echo-test") == ["echo"] * 3
    finally:
        del TRANSPORTS["echo-test"]


def test_transport_flags():
    assert InprocTransport.inprocess is True
    assert MpTransport.inprocess is False


# ----------------------------------------------------------------------
# basic SPMD semantics across transports
# ----------------------------------------------------------------------
def _allreduce_rank(comm):
    return comm.allreduce(comm.rank)


def test_run_spmd_basic(transport):
    assert run_spmd(4, _allreduce_rank, timeout=30, transport=transport) == [6] * 4


def _ring_rank(comm, n):
    arr = np.arange(n, dtype=np.float64) + comm.rank
    comm.send(arr, dest=(comm.rank + 1) % comm.size, tag=7)
    got = comm.recv(source=(comm.rank - 1) % comm.size, tag=7)
    assert got.shape == (n,) and got.dtype == np.float64
    return float(got[0])


def test_numpy_payload_roundtrip(transport):
    # Large enough to cross the mp shm threshold (1 << 14 bytes).
    out = run_spmd(3, _ring_rank, args=(5000,), timeout=30, transport=transport)
    assert out == [2.0, 0.0, 1.0]


def _ring_small(comm):
    arr = np.array([comm.rank], dtype=np.int64)
    comm.send(arr, dest=(comm.rank + 1) % comm.size, tag=1)
    return int(comm.recv(source=(comm.rank - 1) % comm.size, tag=1)[0])


def test_mp_forced_shm_data_plane():
    # shm_min_bytes=0 pushes even tiny arrays through the shm codec.
    out = run_spmd(3, _ring_small, timeout=30, transport="mp", shm_min_bytes=0)
    assert out == [2, 0, 1]


def _split_rank(comm):
    sub = comm.split(color=comm.rank % 2, key=comm.rank)
    return (sub.rank, sub.size, sub.allgather(comm.rank))


def test_split_and_new_context(transport):
    out = run_spmd(4, _split_rank, timeout=30, transport=transport)
    assert out[0] == (0, 2, [0, 2])
    assert out[1] == (0, 2, [1, 3])
    assert out[2] == (1, 2, [0, 2])
    assert out[3] == (1, 2, [1, 3])


# ----------------------------------------------------------------------
# wildcard matching order (satellite: ANY_SOURCE / ANY_TAG interleavings)
# ----------------------------------------------------------------------
def _any_source_rank(comm):
    if comm.rank == 1:
        comm.send("from-1", dest=0, tag=4)
        comm.send("go", dest=2, tag=0)
    elif comm.rank == 2:
        comm.recv(source=1, tag=0)  # sequence the arrivals: 1 before 2
        comm.send("from-2", dest=0, tag=4)
    else:
        st1, st2 = Status(), Status()
        a = comm.recv(source=ANY_SOURCE, tag=4, status=st1)
        b = comm.recv(source=ANY_SOURCE, tag=4, status=st2)
        return (a, st1.source, b, st2.source)
    return None


def test_any_source_matches_arrival_order(transport):
    out = run_spmd(3, _any_source_rank, timeout=30, transport=transport)
    # Rank 2 only sends after rank 1's message went out, so a wildcard
    # receiver must see rank 1's message first on every transport.
    assert out[0] == ("from-1", 1, "from-2", 2)


def _any_tag_rank(comm):
    if comm.rank == 1:
        comm.send("first", dest=0, tag=5)
        comm.send("second", dest=0, tag=9)
    else:
        st1, st2 = Status(), Status()
        a = comm.recv(source=1, tag=ANY_TAG, status=st1)
        b = comm.recv(source=1, tag=ANY_TAG, status=st2)
        return (a, st1.tag, b, st2.tag)
    return None


def test_any_tag_non_overtaking(transport):
    out = run_spmd(2, _any_tag_rank, timeout=30, transport=transport)
    # Non-overtaking per (source): same-source messages match in send
    # order under an ANY_TAG wildcard.
    assert out[0] == ("first", 5, "second", 9)


def _specific_beats_wildcard_rank(comm):
    if comm.rank == 1:
        comm.send("tagged-3", dest=0, tag=3)
        comm.send("tagged-8", dest=0, tag=8)
    else:
        late = comm.recv(source=1, tag=8)  # skips over the tag-3 message
        early = comm.recv(source=1, tag=ANY_TAG)
        return (late, early)
    return None


def test_specific_tag_skips_earlier_nonmatching(transport):
    out = run_spmd(2, _specific_beats_wildcard_rank, timeout=30, transport=transport)
    assert out[0] == ("tagged-8", "tagged-3")


# ----------------------------------------------------------------------
# recv timeout (satellite: the Mailbox.collect deadline fix)
# ----------------------------------------------------------------------
def test_mailbox_collect_deadline_unit():
    box = Mailbox()
    abort = threading.Event()
    t0 = time.monotonic()
    with pytest.raises(RecvTimeout):
        box.collect(context=0, source=ANY_SOURCE, tag=ANY_TAG, abort=abort, timeout=0.2)
    elapsed = time.monotonic() - t0
    assert 0.15 <= elapsed < 2.0


def _timeout_rank(comm):
    if comm.rank == 0:
        try:
            comm.recv(source=1, tag=42, timeout=0.3)
        except RecvTimeout:
            comm.send("timed-out", dest=1, tag=0)
            return True
        return False
    comm.recv(source=0, tag=0)
    return True


def test_recv_timeout_raises(transport):
    assert run_spmd(2, _timeout_rank, timeout=30, transport=transport) == [True, True]


def _timeout_with_traffic_rank(comm):
    if comm.rank == 0:
        t0 = time.monotonic()
        try:
            comm.recv(source=1, tag=42, timeout=0.5)
        except RecvTimeout:
            elapsed = time.monotonic() - t0
            comm.send("done", dest=1, tag=99)
            return elapsed
        return -1.0
    # Stream non-matching messages faster than the timeout: the deadline
    # must not restart on every arrival (the pre-fix behavior waited
    # `timeout` after the *last* message instead of the call).
    while not comm.iprobe(source=0, tag=99):
        comm.send("noise", dest=0, tag=7)
        time.sleep(0.05)
    comm.recv(source=0, tag=99)
    return 0.0


def test_recv_timeout_not_extended_by_stray_traffic(transport):
    out = run_spmd(2, _timeout_with_traffic_rank, timeout=30, transport=transport)
    assert 0.4 <= out[0] < 3.0


# ----------------------------------------------------------------------
# abort propagation & failure surfacing
# ----------------------------------------------------------------------
def _abort_while_blocked_rank(comm):
    if comm.rank == 1:
        raise ValueError("boom on 1")
    comm.recv(source=1, tag=0)  # never sent; must wake via abort
    return True


def test_abort_wakes_blocked_recv(transport):
    with pytest.raises(RankFailure) as ei:
        run_spmd(3, _abort_while_blocked_rank, timeout=30, transport=transport)
    # Only the root cause is reported; aborted bystanders are secondary.
    assert set(ei.value.failures) == {1}
    assert isinstance(ei.value.failures[1], ValueError)


def _deadlock_rank(comm):
    if comm.rank == 0:
        comm.recv(source=1, tag=0)  # never sent
    return True


def test_deadlock_watchdog(transport):
    with pytest.raises(DeadlockError):
        run_spmd(2, _deadlock_rank, timeout=2.0, transport=transport)


def _dead_rank(comm):
    if comm.rank == 1:
        os._exit(3)  # die without reporting anything
    comm.recv(source=1, tag=5)
    return True


def test_dead_rank_surfaces_as_transport_error():
    with pytest.raises(RankFailure) as ei:
        run_spmd(2, _dead_rank, timeout=30, transport="mp")
    failure = ei.value.failures[1]
    assert isinstance(failure, TransportError)
    assert "exit code 3" in str(failure)


def test_mp_rejects_unpicklable_fn():
    with pytest.raises(TransportError, match="picklable"):
        run_spmd(2, lambda comm: comm.rank, transport="mp")


def test_error_types_are_mpi_errors():
    from repro.mpi import MpiError

    assert issubclass(RecvTimeout, MpiError)
    assert issubclass(TransportError, MpiError)
    assert issubclass(MpiAbort, MpiError)
