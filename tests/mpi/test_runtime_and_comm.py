"""SPMD runtime (failure/deadlock handling) and communicator management."""

import pytest

from repro.mpi import DeadlockError, RankFailure, reduce_ops, run_spmd


def test_return_values_in_rank_order():
    assert run_spmd(5, lambda comm: comm.rank * 2, timeout=20) == [0, 2, 4, 6, 8]


def test_exception_propagates_as_rank_failure():
    def prog(comm):
        if comm.rank == 2:
            raise ValueError("boom on 2")
        comm.barrier()  # others block until abort
        return True

    with pytest.raises(RankFailure) as ei:
        run_spmd(4, prog, timeout=20)
    assert 2 in ei.value.failures
    assert isinstance(ei.value.failures[2], ValueError)


def test_deadlock_watchdog():
    def prog(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=0)  # never sent
        return True

    with pytest.raises(DeadlockError):
        run_spmd(2, prog, timeout=1.0)


def test_split_isolates_traffic():
    def prog(comm):
        sub = comm.split(color=comm.rank % 2)
        # Messages in the sub-communicator never leak into the parent.
        sub.send(comm.rank, (sub.rank + 1) % sub.size, tag=4)
        got = sub.recv(tag=4)
        assert got % 2 == comm.rank % 2
        assert not comm.iprobe()
        return (sub.rank, sub.size)

    out = run_spmd(4, prog, timeout=20)
    assert out == [(0, 2), (0, 2), (1, 2), (1, 2)]


def test_split_with_undefined_color():
    def prog(comm):
        sub = comm.split(color=None if comm.rank == 0 else 7)
        if comm.rank == 0:
            assert sub is None
            return -1
        return sub.allgather(comm.rank)

    out = run_spmd(3, prog, timeout=20)
    assert out[0] == -1
    assert out[1] == out[2] == [1, 2]


def test_split_key_ordering():
    def prog(comm):
        sub = comm.split(color=0, key=-comm.rank)  # reversed order
        return sub.allgather(comm.rank)

    out = run_spmd(4, prog, timeout=20)
    assert out[0] == [3, 2, 1, 0]


def test_dup_has_fresh_context():
    def prog(comm):
        d = comm.dup()
        assert d.context != comm.context
        assert (d.rank, d.size) == (comm.rank, comm.size)
        d.send("x", d.rank, tag=0) if False else None
        # traffic isolation
        comm.send("parent", (comm.rank + 1) % comm.size, tag=8)
        assert not d.iprobe()
        got = comm.recv(tag=8)
        return got

    out = run_spmd(3, prog, timeout=20)
    assert out == ["parent"] * 3


def test_nonblocking_requests():
    from repro.mpi import waitall

    def prog(comm):
        n = comm.size
        reqs = [comm.irecv(source=(comm.rank + 1) % n, tag=2)]
        reqs.append(comm.isend(comm.rank, (comm.rank - 1) % n, tag=2))
        vals = waitall(reqs)
        return vals[0]

    out = run_spmd(4, prog, timeout=20)
    assert out == [(r + 1) % 4 for r in range(4)]


def test_request_test_nonblocking():
    def prog(comm):
        if comm.rank == 0:
            req = comm.irecv(source=1, tag=6)
            done, _ = req.test()
            # may or may not have arrived yet; eventually completes
            val = req.wait()
            return val
        comm.send(99, 0, tag=6)
        return None

    assert run_spmd(2, prog, timeout=20)[0] == 99


def test_single_rank_world():
    def prog(comm):
        assert comm.size == 1 and comm.rank == 0
        assert comm.allreduce(5, reduce_ops.SUM) == 5
        assert comm.bcast("z", 0) == "z"
        comm.barrier()
        return True

    assert run_spmd(1, prog, timeout=20) == [True]
