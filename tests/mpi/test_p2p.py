"""Point-to-point semantics of the classical MPI substrate."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, Status, run_spmd


def test_ring_send_recv():
    def prog(comm):
        r, n = comm.rank, comm.size
        comm.send(f"hello-{r}", (r + 1) % n, tag=3)
        return comm.recv(source=(r - 1) % n, tag=3)

    out = run_spmd(4, prog, timeout=20)
    assert out == [f"hello-{(r - 1) % 4}" for r in range(4)]


def test_tag_matching_out_of_order():
    def prog(comm):
        if comm.rank == 0:
            comm.send("a", 1, tag=1)
            comm.send("b", 1, tag=2)
            return None
        # receive tag 2 first although tag 1 arrived first
        b = comm.recv(source=0, tag=2)
        a = comm.recv(source=0, tag=1)
        return (a, b)

    out = run_spmd(2, prog, timeout=20)
    assert out[1] == ("a", "b")


def test_non_overtaking_same_tag():
    def prog(comm):
        if comm.rank == 0:
            for i in range(10):
                comm.send(i, 1, tag=5)
            return None
        return [comm.recv(source=0, tag=5) for _ in range(10)]

    out = run_spmd(2, prog, timeout=20)
    assert out[1] == list(range(10))


def test_any_source_any_tag_with_status():
    def prog(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                st = Status()
                val = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st)
                got.append((val, st.Get_source(), st.Get_tag()))
            return sorted(got)
        comm.send(comm.rank * 10, 0, tag=comm.rank)
        return None

    out = run_spmd(3, prog, timeout=20)
    assert out[0] == [(10, 1, 1), (20, 2, 2)]


def test_sendrecv_exchange():
    def prog(comm):
        n = comm.size
        return comm.sendrecv(comm.rank, (comm.rank + 1) % n, 0, (comm.rank - 1) % n, 0)

    out = run_spmd(5, prog, timeout=20)
    assert out == [(r - 1) % 5 for r in range(5)]


def test_probe_and_iprobe():
    def prog(comm):
        if comm.rank == 0:
            comm.send("x", 1, tag=9)
            return None
        st = comm.probe(source=0, tag=9)
        assert st.source == 0 and st.tag == 9
        assert comm.iprobe(source=0, tag=9)
        val = comm.recv(source=0, tag=9)
        assert not comm.iprobe(source=0, tag=9)
        return val

    out = run_spmd(2, prog, timeout=20)
    assert out[1] == "x"


def test_negative_user_tag_rejected():
    def prog(comm):
        with pytest.raises(MpiError):
            comm.send(1, 0, tag=-5)
        return True

    assert run_spmd(1, prog, timeout=20) == [True]


def test_invalid_destination():
    def prog(comm):
        with pytest.raises(MpiError):
            comm.send(1, 99)
        return True

    assert run_spmd(2, prog, timeout=20) == [True, True]


def test_object_payloads_pass_by_reference():
    # In-process MPI passes references (documented behaviour).
    def prog(comm):
        if comm.rank == 0:
            comm.send({"k": [1, 2]}, 1)
            return None
        return comm.recv(source=0)

    out = run_spmd(2, prog, timeout=20)
    assert out[1] == {"k": [1, 2]}
