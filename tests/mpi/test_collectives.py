"""Collective operations across rank counts, incl. non-commutative ops."""

import math

import pytest

from repro.mpi import reduce_ops, run_spmd


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
def test_bcast_all_roots(n):
    def prog(comm):
        out = []
        for root in range(comm.size):
            val = comm.bcast(f"msg{root}" if comm.rank == root else None, root=root)
            out.append(val)
        return out

    res = run_spmd(n, prog, timeout=30)
    for per_rank in res:
        assert per_rank == [f"msg{r}" for r in range(n)]


@pytest.mark.parametrize("n", [1, 2, 3, 5])
def test_gather_scatter(n):
    def prog(comm):
        g = comm.gather(comm.rank**2, root=0)
        if comm.rank == 0:
            assert g == [i**2 for i in range(comm.size)]
        else:
            assert g is None
        s = comm.scatter([i + 100 for i in range(comm.size)] if comm.rank == 0 else None)
        return s

    assert run_spmd(n, prog, timeout=30) == [i + 100 for i in range(n)]


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_allgather_alltoall(n):
    def prog(comm):
        ag = comm.allgather(comm.rank)
        assert ag == list(range(comm.size))
        a2a = comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)])
        assert a2a == [f"{i}->{comm.rank}" for i in range(comm.size)]
        return True

    assert all(run_spmd(n, prog, timeout=30))


@pytest.mark.parametrize("n", [1, 2, 3, 4, 8])
def test_reduce_allreduce(n):
    def prog(comm):
        total = comm.reduce(comm.rank, reduce_ops.SUM, root=n - 1)
        if comm.rank == n - 1:
            assert total == n * (n - 1) // 2
        prod = comm.allreduce(comm.rank + 1, reduce_ops.PROD)
        assert prod == math.factorial(n)
        mx = comm.allreduce(comm.rank, reduce_ops.MAX)
        assert mx == n - 1
        mn = comm.allreduce(comm.rank, reduce_ops.MIN)
        assert mn == 0
        bx = comm.allreduce(1 << comm.rank, reduce_ops.BOR)
        assert bx == (1 << n) - 1
        return True

    assert all(run_spmd(n, prog, timeout=30))


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
def test_scan_exscan(n):
    def prog(comm):
        r = comm.rank
        assert comm.scan(r, reduce_ops.SUM) == r * (r + 1) // 2
        ex = comm.exscan(r, reduce_ops.SUM)
        if r == 0:
            assert ex is None
        else:
            assert ex == (r - 1) * r // 2
        return True

    assert all(run_spmd(n, prog, timeout=30))


def test_reduce_and_scan_are_rank_ordered():
    # string concatenation is associative but non-commutative
    def prog(comm):
        cat = comm.reduce(str(comm.rank), lambda a, b: a + b, root=0)
        if comm.rank == 0:
            assert cat == "0123456"
        s = comm.scan(str(comm.rank), lambda a, b: a + b)
        assert s == "".join(map(str, range(comm.rank + 1)))
        return True

    assert all(run_spmd(7, prog, timeout=30))


def test_reduce_scatter():
    def prog(comm):
        n = comm.size
        return comm.reduce_scatter([j + comm.rank for j in range(n)], reduce_ops.SUM)

    n = 4
    out = run_spmd(n, prog, timeout=30)
    assert out == [n * r + n * (n - 1) // 2 for r in range(n)]


def test_barrier_many_rounds():
    def prog(comm):
        for _ in range(5):
            comm.barrier()
        return True

    assert all(run_spmd(6, prog, timeout=30))


def test_numpy_payload_reduce():
    import numpy as np

    def prog(comm):
        arr = np.full(4, comm.rank, dtype=float)
        out = comm.allreduce(arr, reduce_ops.SUM)
        return out.tolist()

    res = run_spmd(3, prog, timeout=30)
    assert res[0] == [3.0, 3.0, 3.0, 3.0]
