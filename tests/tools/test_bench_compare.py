"""Unit tests for the blocking bench gate (tools/bench_compare.py).

The comparator gates CI merges, so its verdict semantics are pinned
here: regressions beyond tolerance fail, improvements and one-sided
rows never do, and degenerate inputs (missing sections, malformed
sections, unloadable files) produce readable skip/fail lines instead
of tracebacks.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("bench_compare", bench_compare)
_SPEC.loader.exec_module(bench_compare)


def _row(kernel="qft", n_qubits=12, **extra):
    return {"kernel": kernel, "n_qubits": n_qubits, **extra}


def _verdicts(baseline, fresh, tolerance=0.30):
    return list(bench_compare.compare(baseline, fresh, tolerance))


class TestRowVerdicts:
    def test_within_tolerance_ok(self):
        out = _verdicts(
            {"sweep": [_row(speedup=2.0)]},
            {"sweep": [_row(speedup=1.5)]},
        )
        assert [v for *_, v in out] == ["ok"]

    def test_regression_beyond_tolerance_fails(self):
        out = _verdicts(
            {"sweep": [_row(speedup=2.0)]},
            {"sweep": [_row(speedup=1.0)]},
        )
        (key, field, base_v, new_v, verdict) = out[0]
        assert verdict == "FAIL"
        assert (field, base_v, new_v) == ("speedup", 2.0, 1.0)

    def test_improvement_never_fails(self):
        out = _verdicts(
            {"sweep": [_row(speedup=1.0)]},
            {"sweep": [_row(speedup=9.0)]},
        )
        assert [v for *_, v in out] == ["ok"]

    def test_rows_matched_on_identity_keys(self):
        base = {"sweep": [_row(n_qubits=12, speedup=2.0), _row(n_qubits=16, speedup=2.0)]}
        fresh = {"sweep": [_row(n_qubits=16, speedup=0.5), _row(n_qubits=12, speedup=2.0)]}
        verdicts = {k: v for k, _, _, _, v in _verdicts(base, fresh)}
        assert verdicts[("sweep", ("kernel", "qft"), ("n_qubits", 12))] == "ok"
        assert verdicts[("sweep", ("kernel", "qft"), ("n_qubits", 16))] == "FAIL"

    def test_one_sided_row_skips(self):
        out = _verdicts(
            {"sweep": [_row(n_qubits=12, speedup=2.0), _row(n_qubits=20, speedup=3.0)]},
            {"sweep": [_row(n_qubits=12, speedup=2.0)]},
        )
        assert sorted(v for *_, v in out) == ["ok", "skip (no counterpart)"]

    def test_nonpositive_baseline_skips(self):
        out = _verdicts(
            {"sweep": [_row(speedup=0.0)]}, {"sweep": [_row(speedup=1.0)]}
        )
        assert [v for *_, v in out] == ["skip"]

    def test_info_fields_never_gate(self):
        out = _verdicts(
            {"fabric": [_row(mp_vs_inproc=10.0)]},
            {"fabric": [_row(mp_vs_inproc=0.1)]},
        )
        assert [v for *_, v in out] == ["info"]

    def test_kernels_and_replay_sections_are_gated(self):
        for section in ("kernels", "replay"):
            out = _verdicts(
                {section: [_row(speedup=4.0)]},
                {section: [_row(speedup=1.0)]},
            )
            assert [v for *_, v in out] == ["FAIL"], section


class TestDegenerateInputs:
    def test_section_missing_from_fresh_skips_with_warning(self):
        out = _verdicts(
            {"kernels": [_row(speedup=2.0), _row(n_qubits=16, speedup=2.0)]}, {}
        )
        assert len(out) == 1
        key, field, *_, verdict = out[0]
        assert key == ("kernels",) and field == "-"
        assert verdict == "skip (section missing from fresh; 2 row(s) not gated)"

    def test_section_missing_from_baseline_skips_with_warning(self):
        out = _verdicts({}, {"kernels": [_row(speedup=2.0)]})
        assert [v for *_, v in out] == [
            "skip (section missing from baseline; 1 row(s) not gated)"
        ]

    def test_malformed_section_skips_not_crashes(self):
        out = _verdicts({"sweep": {"oops": "a dict"}}, {"sweep": [_row(speedup=1.0)]})
        (key, field, *_, verdict) = out[0]
        assert key == ("sweep",)
        assert verdict.startswith("skip (malformed baseline:")

    def test_unknown_sections_ignored(self):
        assert _verdicts({"meta": [{"host": "x"}]}, {"meta": []}) == []


class TestMain:
    def _write(self, tmp_path, name, payload):
        p = tmp_path / name
        p.write_text(json.dumps(payload))
        return str(p)

    def test_exit_zero_and_table(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", {"sweep": [_row(speedup=2.0)]})
        f = self._write(tmp_path, "fresh.json", {"sweep": [_row(speedup=1.9)]})
        assert bench_compare.main(["--baseline", b, "--fresh", f]) == 0
        captured = capsys.readouterr().out
        assert "sweep:qft/12" in captured and "ok" in captured

    def test_exit_one_on_regression(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", {"sweep": [_row(speedup=2.0)]})
        f = self._write(tmp_path, "fresh.json", {"sweep": [_row(speedup=0.1)]})
        assert bench_compare.main(["--baseline", b, "--fresh", f]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_section_prints_warning_and_passes(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", {"kernels": [_row(speedup=2.0)]})
        f = self._write(tmp_path, "fresh.json", {})
        assert bench_compare.main(["--baseline", b, "--fresh", f]) == 0
        assert "section missing from fresh" in capsys.readouterr().out

    def test_missing_file_fails_readably(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", {"sweep": [_row(speedup=2.0)]})
        missing = str(tmp_path / "nope.json")
        assert bench_compare.main(["--baseline", b, "--fresh", missing]) == 1
        out = capsys.readouterr().out
        assert "cannot load pair" in out and "Traceback" not in out

    def test_corrupt_json_fails_readably(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", {"sweep": [_row(speedup=2.0)]})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert bench_compare.main(["--baseline", b, "--fresh", str(bad)]) == 1
        assert "cannot load pair" in capsys.readouterr().out

    def test_unpaired_arguments_rejected(self, tmp_path):
        b = self._write(tmp_path, "base.json", {})
        with pytest.raises(SystemExit):
            bench_compare.main(["--baseline", b, "--fresh", b, "--fresh", b])

    def test_tolerance_flag(self, tmp_path):
        b = self._write(tmp_path, "base.json", {"sweep": [_row(speedup=2.0)]})
        f = self._write(tmp_path, "fresh.json", {"sweep": [_row(speedup=1.5)]})
        assert bench_compare.main(
            ["--baseline", b, "--fresh", f, "--tolerance", "0.1"]
        ) == 1
        assert bench_compare.main(
            ["--baseline", b, "--fresh", f, "--tolerance", "0.5"]
        ) == 0
