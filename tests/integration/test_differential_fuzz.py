"""Differential fuzzing of the schedule cache and the kernel dispatch.

Seeded random circuits (parameterized rz/ry/rx/crz/cphase + Clifford
h/x/s/cnot/cz/swap + end-of-circuit measurement) run twice — backend
``cache="on"`` vs ``cache="off"`` — with identical seeds, and every
run must agree **bit-identically**: the same measured bits and
``np.array_equal`` final amplitudes (no tolerance).  Configurations
cycle deterministically over shared/sharded × all four fusion modes ×
1/2/4 ranks, so the quick-mode corpus covers the full 24-combination
matrix several times over.

A second sweep runs the corpus ``kernels="jit"`` vs ``kernels="numpy"``
on top of the same configuration cycle (including cache on/off, so
frozen-replay native blocks are fuzzed too) under the identical
bit-equality bar — the acceptance contract of
:mod:`repro.sim.kernels`.  When no native provider resolves in the
environment (no numba, no C toolchain, or ``REPRO_QMPI_DISABLE_JIT``)
the sweep skips with a notice rather than silently passing.

Each circuit applies the same gate *shape* three times with fresh
random angles, flushing between passes: on the cache-on side the
second and third passes replay the compiled schedule with rebound
parameters, which is exactly the path the cache must prove safe.

A third sweep adds the **dtype axis**: the same differential bars
(cache on/off, jit vs numpy, per-shot bits) cycled over
``dtype="complex128"`` / ``"complex64"``.  Bit-identity is asserted
*within* a dtype — the mixed-precision contract of
:mod:`repro.sim.kernels` — never across dtypes.

Environment knobs (used by CI):

* ``QMPI_FUZZ_SEED`` — base corpus seed (fixed default for PRs; CI
  rotates it daily on push builds).
* ``QMPI_FUZZ_CIRCUITS`` — corpus size (default 200).

Failures are shrinking-friendly: the assertion message carries the
base seed, circuit index, full configuration, and the op-list repr —
enough to replay one circuit in isolation.
"""

import os

import numpy as np
import pytest

from repro.qmpi import qmpi_run
from repro.sim.kernels import provider_name

BASE_SEED = int(os.environ.get("QMPI_FUZZ_SEED", "20260808"))
N_CIRCUITS = int(os.environ.get("QMPI_FUZZ_CIRCUITS", "200"))
N_SHOT_CIRCUITS = max(4, N_CIRCUITS // 20)
N_KERNEL_CIRCUITS = max(8, N_CIRCUITS // 2)
N_DTYPE_CIRCUITS = max(8, N_CIRCUITS // 4)

# (gate, arity, n_params) — parameterized rotations + Cliffords.
GATE_POOL = (
    ("h", 1, 0),
    ("x", 1, 0),
    ("s", 1, 0),
    ("t", 1, 0),
    ("rz", 1, 1),
    ("ry", 1, 1),
    ("rx", 1, 1),
    ("cnot", 2, 0),
    ("cz", 2, 0),
    ("swap", 2, 0),
    ("crz", 2, 1),
    ("cphase", 2, 1),
)

BACKENDS = ("shared", "sharded")
FUSIONS = ("auto", "noplan", "nodiag", "off")
RANKS = (1, 2, 4)
DTYPES = ("complex128", "complex64")
PASSES = 3  # same shape, fresh angles — passes 2..3 replay warm


def _gen_circuit(rng):
    """One random circuit: (n_qubits, ops, measured) with symbolic angles.

    ``ops`` entries are ``(gate, qubit_indices, n_params)``; concrete
    angles are drawn per pass so the same shape replays with a fresh
    payload.
    """
    n_qubits = int(rng.integers(2, 6))
    n_ops = int(rng.integers(6, 19))
    ops = []
    for _ in range(n_ops):
        gate, arity, n_params = GATE_POOL[int(rng.integers(len(GATE_POOL)))]
        qs = tuple(
            int(q) for q in rng.choice(n_qubits, size=arity, replace=False)
        )
        ops.append((gate, qs, n_params))
    n_meas = int(rng.integers(0, n_qubits + 1))
    measured = sorted(
        int(q) for q in rng.choice(n_qubits, size=n_meas, replace=False)
    )
    return n_qubits, tuple(ops), tuple(measured)


def _angles(rng, ops):
    """One concrete angle vector per parametric site, in op order."""
    return tuple(
        tuple(float(a) for a in rng.uniform(-np.pi, np.pi, size=n_params))
        for _, _, n_params in ops
    )


def _prog(qc, n_qubits, ops, measured, passes):
    """Rank 0 drives the whole circuit; other ranks idle (deterministic)."""
    if qc.rank != 0:
        return None
    q = qc.alloc_qmem(n_qubits)
    for angles in passes:
        for (gate, qs, _), theta in zip(ops, angles):
            getattr(qc, gate)(*(q[i] for i in qs), *theta)
        qc.flush_ops()  # pass boundary: passes 2..n replay the cached shape
    return [qc.measure(q[i]) for i in measured]


def _run(
    circ, passes, backend, fusion, n_ranks, cache,
    shots=None, kernels=None, dtype=None,
):
    n_qubits, ops, measured = circ
    kw = {} if kernels is None else {"kernels": kernels}
    if dtype is not None:
        kw["dtype"] = dtype
    w = qmpi_run(
        n_ranks,
        _prog,
        args=(n_qubits, ops, measured, passes),
        seed=7,
        backend=backend,
        fusion=fusion,
        shots=shots,
        cache=cache,
        **kw,
    )
    bits = w.results[0]
    if shots is not None:
        return [np.asarray(b).tolist() for b in bits], None, w
    order = sorted(w.backend.qubit_ids())
    return bits, w.backend.statevector(order), w


def _describe(
    i, circ, passes, backend, fusion, n_ranks,
    shots=None, cache=None, dtype=None,
):
    n_qubits, ops, measured = circ
    return (
        f"fuzz circuit {i} (QMPI_FUZZ_SEED={BASE_SEED}): "
        f"backend={backend} fusion={fusion} n_ranks={n_ranks} "
        f"shots={shots} cache={cache} dtype={dtype} "
        f"n_qubits={n_qubits} measured={measured}\n"
        f"ops={ops!r}\n"
        f"passes={passes!r}"
    )


def _corpus(n, tag):
    for i in range(n):
        rng = np.random.default_rng((BASE_SEED, tag, i))
        circ = _gen_circuit(rng)
        passes = tuple(_angles(rng, circ[1]) for _ in range(PASSES))
        yield i, circ, passes


def test_fuzz_cache_on_off_bit_identical():
    """≥200 random circuits: cache replay is bit-identical to no cache."""
    checked = 0
    for i, circ, passes in _corpus(N_CIRCUITS, 0):
        backend = BACKENDS[i % len(BACKENDS)]
        fusion = FUSIONS[i % len(FUSIONS)]
        n_ranks = RANKS[i % len(RANKS)]
        label = _describe(i, circ, passes, backend, fusion, n_ranks)
        bits_on, sv_on, w_on = _run(circ, passes, backend, fusion, n_ranks, "on")
        bits_off, sv_off, _ = _run(circ, passes, backend, fusion, n_ranks, "off")
        assert bits_on == bits_off, f"measured bits diverged\n{label}"
        assert np.array_equal(sv_on, sv_off), f"amplitudes diverged\n{label}"
        info = w_on.backend.cache_info()
        if fusion != "off":
            # The buffered modes must actually exercise the cache.
            assert info is not None and info["misses"] + info["bypasses"] > 0, (
                f"cache never engaged\n{label}"
            )
        checked += 1
    assert checked >= min(N_CIRCUITS, 200) or checked == N_CIRCUITS


def test_fuzz_shots_mode_per_shot_bits_identical():
    """Shot-batched subset: per-shot bits and counts are identical."""
    for i, circ, passes in _corpus(N_SHOT_CIRCUITS, 1):
        if not circ[2]:  # need at least one measured qubit
            circ = (circ[0], circ[1], (0,))
        backend = BACKENDS[i % len(BACKENDS)]
        fusion = FUSIONS[i % len(FUSIONS)]
        n_ranks = RANKS[i % len(RANKS)]
        label = _describe(i, circ, passes, backend, fusion, n_ranks, shots=8)
        bits_on, _, w_on = _run(circ, passes, backend, fusion, n_ranks, "on", shots=8)
        bits_off, _, w_off = _run(circ, passes, backend, fusion, n_ranks, "off", shots=8)
        assert bits_on == bits_off, f"per-shot bits diverged\n{label}"
        assert w_on.counts == w_off.counts, f"shot counts diverged\n{label}"


def test_fuzz_warm_replay_actually_hits():
    """A fusion-proof sweep shape records real warm hits (not bypasses).

    Random circuits may peephole-fuse into value-dependent ``UNITARY``
    records (correctly uncacheable across angle changes), so warm-hit
    accounting is asserted on a shape built to survive fusion:
    rotation layers separated by entangler layers.
    """
    n_qubits = 4
    ops = []
    for layer in range(3):
        ops.extend(("ry", (q,), 1) for q in range(n_qubits))
        ops.extend(("cnot", (q, q + 1), 0) for q in range(n_qubits - 1))
        ops.extend(("crz", (q, q + 1), 1) for q in range(0, n_qubits - 1, 2))
    circ = (n_qubits, tuple(ops), (0, 1))
    rng = np.random.default_rng((BASE_SEED, 2))
    passes = tuple(_angles(rng, circ[1]) for _ in range(PASSES))
    for backend in BACKENDS:
        bits_on, sv_on, w_on = _run(circ, passes, backend, "auto", 2, "on")
        bits_off, sv_off, _ = _run(circ, passes, backend, "auto", 2, "off")
        assert bits_on == bits_off and np.array_equal(sv_on, sv_off)
        info = w_on.backend.cache_info()
        assert info["hits"] >= PASSES - 1, info
        assert info["bypasses"] == 0, info


def _require_provider():
    name = provider_name()
    if name is None:
        pytest.skip(
            "kernels=jit sweep skipped: no native kernel provider resolves "
            "in this environment (install the [jit] extra for numba, or a "
            "C toolchain for the cffi fallback)"
        )
    return name


def test_fuzz_kernels_jit_vs_numpy_bit_identical():
    """jit-vs-numpy kernels over the cache/fusion/rank matrix, bitwise.

    ``kernels="jit"`` dispatches native unconditionally (no break-even
    gate), so even these small fuzz circuits exercise the compiled
    driver; cycling ``cache`` alongside fuzzes the frozen-replay
    native blocks as well as the interpreter path.
    """
    _require_provider()
    caches = ("on", "off")
    for i, circ, passes in _corpus(N_KERNEL_CIRCUITS, 3):
        backend = BACKENDS[i % len(BACKENDS)]
        fusion = FUSIONS[i % len(FUSIONS)]
        n_ranks = RANKS[i % len(RANKS)]
        cache = caches[i % len(caches)]
        label = "kernels=jit vs numpy\n" + _describe(
            i, circ, passes, backend, fusion, n_ranks, cache=cache
        )
        bits_j, sv_j, w_j = _run(
            circ, passes, backend, fusion, n_ranks, cache, kernels="jit"
        )
        bits_n, sv_n, _ = _run(
            circ, passes, backend, fusion, n_ranks, cache, kernels="numpy"
        )
        assert bits_j == bits_n, f"measured bits diverged\n{label}"
        assert np.array_equal(sv_j, sv_n), f"amplitudes diverged\n{label}"
        info = w_j.backend.kernel_info()
        assert info["mode"] == "jit" and info["numpy_fallbacks"] == 0, (
            f"jit run fell back to numpy\n{label}\n{info}"
        )


def test_fuzz_kernels_shots_per_shot_bits_identical():
    """Shot-batched kernels sweep: per-shot bits and counts identical."""
    _require_provider()
    for i, circ, passes in _corpus(N_SHOT_CIRCUITS, 4):
        if not circ[2]:  # need at least one measured qubit
            circ = (circ[0], circ[1], (0,))
        backend = BACKENDS[i % len(BACKENDS)]
        fusion = FUSIONS[i % len(FUSIONS)]
        n_ranks = RANKS[i % len(RANKS)]
        label = "kernels=jit vs numpy\n" + _describe(
            i, circ, passes, backend, fusion, n_ranks, shots=8
        )
        bits_j, _, w_j = _run(
            circ, passes, backend, fusion, n_ranks, "on", shots=8, kernels="jit"
        )
        bits_n, _, w_n = _run(
            circ, passes, backend, fusion, n_ranks, "on", shots=8, kernels="numpy"
        )
        assert bits_j == bits_n, f"per-shot bits diverged\n{label}"
        assert w_j.counts == w_n.counts, f"shot counts diverged\n{label}"


def test_fuzz_dtype_axis_cache_bit_identical():
    """Dtype sweep: cache replay stays bit-identical within each dtype.

    Cycles ``dtype`` alongside the backend/fusion/rank matrix; the
    cache-on vs cache-off comparison is within one dtype, so the bar
    stays exact bit-equality even for complex64.
    """
    for i, circ, passes in _corpus(N_DTYPE_CIRCUITS, 5):
        backend = BACKENDS[i % len(BACKENDS)]
        fusion = FUSIONS[i % len(FUSIONS)]
        n_ranks = RANKS[i % len(RANKS)]
        dtype = DTYPES[i % len(DTYPES)]
        label = _describe(i, circ, passes, backend, fusion, n_ranks, dtype=dtype)
        bits_on, sv_on, w_on = _run(
            circ, passes, backend, fusion, n_ranks, "on", dtype=dtype
        )
        bits_off, sv_off, _ = _run(
            circ, passes, backend, fusion, n_ranks, "off", dtype=dtype
        )
        assert bits_on == bits_off, f"measured bits diverged\n{label}"
        assert np.array_equal(sv_on, sv_off), f"amplitudes diverged\n{label}"
        assert sv_on.dtype == np.dtype(dtype), f"wrong state dtype\n{label}"


def test_fuzz_dtype_kernels_jit_vs_numpy_bit_identical():
    """Dtype sweep: jit vs numpy stays bit-identical within each dtype."""
    _require_provider()
    caches = ("on", "off")
    for i, circ, passes in _corpus(N_DTYPE_CIRCUITS, 6):
        backend = BACKENDS[i % len(BACKENDS)]
        fusion = FUSIONS[i % len(FUSIONS)]
        n_ranks = RANKS[i % len(RANKS)]
        cache = caches[i % len(caches)]
        dtype = DTYPES[i % len(DTYPES)]
        label = "kernels=jit vs numpy\n" + _describe(
            i, circ, passes, backend, fusion, n_ranks, cache=cache, dtype=dtype
        )
        bits_j, sv_j, w_j = _run(
            circ, passes, backend, fusion, n_ranks, cache,
            kernels="jit", dtype=dtype,
        )
        bits_n, sv_n, _ = _run(
            circ, passes, backend, fusion, n_ranks, cache,
            kernels="numpy", dtype=dtype,
        )
        assert bits_j == bits_n, f"measured bits diverged\n{label}"
        assert np.array_equal(sv_j, sv_n), f"amplitudes diverged\n{label}"
        info = w_j.backend.kernel_info()
        assert info["mode"] == "jit" and info["numpy_fallbacks"] == 0, (
            f"jit run fell back to numpy\n{label}\n{info}"
        )


def test_fuzz_dtype_shots_per_shot_bits_identical():
    """Shot-batched dtype sweep: per-shot bits identical within a dtype."""
    for i, circ, passes in _corpus(N_SHOT_CIRCUITS, 7):
        if not circ[2]:  # need at least one measured qubit
            circ = (circ[0], circ[1], (0,))
        backend = BACKENDS[i % len(BACKENDS)]
        fusion = FUSIONS[i % len(FUSIONS)]
        n_ranks = RANKS[i % len(RANKS)]
        dtype = DTYPES[i % len(DTYPES)]
        label = _describe(
            i, circ, passes, backend, fusion, n_ranks, shots=8, dtype=dtype
        )
        bits_on, _, w_on = _run(
            circ, passes, backend, fusion, n_ranks, "on", shots=8, dtype=dtype
        )
        bits_off, _, w_off = _run(
            circ, passes, backend, fusion, n_ranks, "off", shots=8, dtype=dtype
        )
        assert bits_on == bits_off, f"per-shot bits diverged\n{label}"
        assert w_on.counts == w_off.counts, f"shot counts diverged\n{label}"
