"""Exact reference module, classical reduce ops, and cross-layer checks."""

import numpy as np
import pytest

from repro.exact import evolve, evolution_operator, fidelity, ghz_state, pauli_matrix, tfim_hamiltonian
from repro.mpi import reduce_ops
from repro.sim import StateVector


def test_pauli_matrix_ordering():
    # qubit 0 is the most significant factor (matches StateVector order)
    m = pauli_matrix("Z0", 2)
    assert np.allclose(np.diag(m), [1, 1, -1, -1])
    m = pauli_matrix("Z1", 2)
    assert np.allclose(np.diag(m), [1, -1, 1, -1])


def test_tfim_hamiltonian_structure():
    H = tfim_hamiltonian(3, J=1.0, g=0.0, periodic=True)
    # classical Ising ring: diagonal, ground states are Neel-frustrated
    assert np.allclose(H, np.diag(np.diag(H)))
    H2 = tfim_hamiltonian(2, J=0.5, g=0.3, periodic=True)
    assert np.allclose(H2, H2.conj().T)
    open_chain = tfim_hamiltonian(3, J=1.0, g=0.0, periodic=False)
    assert not np.allclose(H, open_chain)


def test_evolution_operator_unitary():
    H = tfim_hamiltonian(2, 0.7, 0.4)
    U = evolution_operator(H, 0.3)
    assert np.allclose(U @ U.conj().T, np.eye(4), atol=1e-10)
    psi = ghz_state(2)
    out = evolve(H, psi, 0.3)
    assert np.linalg.norm(out) == pytest.approx(1.0)


def test_fidelity_bounds():
    a = ghz_state(3)
    assert fidelity(a, a) == pytest.approx(1.0)
    b = np.zeros(8)
    b[1] = 1.0
    assert fidelity(a, b) == pytest.approx(0.0)


def test_ghz_state_matches_simulator():
    sv = StateVector(3, seed=0)
    sv.h(0)
    sv.cnot(0, 1)
    sv.cnot(1, 2)
    assert fidelity(sv.statevector(), ghz_state(3)) == pytest.approx(1.0)


def test_classical_reduce_ops_table():
    assert reduce_ops.SUM(2, 3) == 5
    assert reduce_ops.PROD(2, 3) == 6
    assert reduce_ops.MAX(2, 3) == 3
    assert reduce_ops.MIN(2, 3) == 2
    assert reduce_ops.BAND(0b110, 0b011) == 0b010
    assert reduce_ops.BOR(0b110, 0b011) == 0b111
    assert reduce_ops.BXOR(0b110, 0b011) == 0b101
    assert reduce_ops.LAND(1, 0) is False
    assert reduce_ops.LOR(1, 0) is True
    assert reduce_ops.LXOR(1, 1) is False
    arr = np.array([1.0, 5.0])
    assert reduce_ops.MAX(arr, np.array([3.0, 2.0])).tolist() == [3.0, 5.0]
    assert reduce_ops.MIN(arr, np.array([3.0, 2.0])).tolist() == [1.0, 2.0]
    assert repr(reduce_ops.SUM) == "<Op SUM>"


def test_qureg_slicing_semantics():
    from repro.qmpi import Qureg

    r = Qureg(range(10, 18))
    assert isinstance(r[2:5], Qureg)
    assert list(r[2:5]) == [12, 13, 14]
    assert isinstance(r[0], int)
    assert list(r + Qureg([99])) == list(range(10, 18)) + [99]


def test_full_stack_smoke_ghz_measure_statistics():
    """Distributed GHZ, measured many times: outcomes 50/50 all-equal."""
    from repro.apps.ghz import run_ghz

    ones = 0
    for seed in range(12):
        outs, _ = run_ghz(3, "chain", seed=seed)
        assert len(set(outs)) == 1
        ones += outs[0]
    assert 0 < ones < 12  # both branches observed
