"""Tables 1-3: measured ledger resources must equal the paper's numbers."""

import pytest

from repro.qmpi import PARITY, qmpi_run
from repro.sendq.analysis import table1


def _snap(world):
    s = world.ledger.snapshot()
    return s.epr_pairs, s.classical_bits


# ----------------------------------------------------------------------
# Table 1: copy / move / reduce / scan and inverses, per qubit, N nodes
# ----------------------------------------------------------------------
def test_table1_copy_and_uncopy():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.h(q[0])
            qc.send(q, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv(t, 0)
        qc.barrier()
        return True

    w = qmpi_run(2, prog, seed=0)
    ref = table1(2)
    assert _snap(w) == (ref["copy"]["epr"], ref["copy"]["cbits"])

    def prog_inv(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.h(q[0])
            qc.send(q, 1)
            qc.unsend(q, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv(t, 0)
            qc.unrecv(t, 0)
        qc.barrier()
        return True

    w = qmpi_run(2, prog_inv, seed=0)
    total_epr = table1(2)["copy"]["epr"] + table1(2)["uncopy"]["epr"]
    total_bits = table1(2)["copy"]["cbits"] + table1(2)["uncopy"]["cbits"]
    assert _snap(w) == (total_epr, total_bits)


def test_table1_move_and_unmove():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.h(q[0])
            qc.send_move(q, 1)
            qc.unsend_move(1, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv_move(t, 0)
            qc.unrecv_move(t, 0)
        qc.barrier()
        return True

    w = qmpi_run(2, prog, seed=0)
    ref = table1(2)
    assert _snap(w) == (
        ref["move"]["epr"] + ref["unmove"]["epr"],
        ref["move"]["cbits"] + ref["unmove"]["cbits"],
    )


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_table1_reduce_unreduce(n):
    def prog(qc):
        q = qc.alloc_qmem(1)
        if qc.rank % 2:
            qc.x(q[0])
        out, h = qc.reduce(q, op=PARITY, root=0)
        qc.unreduce(h)
        return True

    w = qmpi_run(n, prog, seed=0, timeout=60)
    ref = table1(n)
    assert _snap(w) == (
        ref["reduce"]["epr"] + ref["unreduce"]["epr"],
        ref["reduce"]["cbits"] + ref["unreduce"]["cbits"],
    )


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_table1_scan_unscan(n):
    def prog(qc):
        q = qc.alloc_qmem(1)
        if qc.rank % 2:
            qc.x(q[0])
        out, h = qc.scan(q, op=PARITY)
        qc.unscan(h)
        return True

    w = qmpi_run(n, prog, seed=0, timeout=60)
    ref = table1(n)
    assert _snap(w) == (
        ref["scan"]["epr"] + ref["unscan"]["epr"],
        ref["scan"]["cbits"] + ref["unscan"]["cbits"],
    )


# ----------------------------------------------------------------------
# Table 2: every p2p op costs its resource class (copy or move)
# ----------------------------------------------------------------------
def test_table2_send_variants_cost_copy():
    def prog(qc, variant):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            getattr(qc, variant)(q, 1)
        else:
            t = qc.alloc_qmem(1)
            qc.recv(t, 0)
        qc.barrier()
        return True

    for variant in ("send", "bsend", "ssend", "rsend"):
        w = qmpi_run(2, prog, args=(variant,), seed=0)
        assert _snap(w) == (1, 1), variant


def test_table2_sendrecv_costs_two_copies():
    def prog(qc):
        sq = qc.alloc_qmem(1)
        rq = qc.alloc_qmem(1)
        qc.sendrecv(sq, 1 - qc.rank, rq, 1 - qc.rank)
        qc.barrier()
        return True

    w = qmpi_run(2, prog, seed=0)
    assert _snap(w) == (2, 2)


def test_table2_sendrecv_replace_costs_two_moves():
    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.sendrecv_replace(q, 1 - qc.rank, 1 - qc.rank)
        qc.barrier()
        return True

    w = qmpi_run(2, prog, seed=0)
    assert _snap(w) == (2, 4)


# ----------------------------------------------------------------------
# Table 3: collectives cost their resource classes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [2, 3, 4])
def test_table3_bcast_costs_n_minus_1_copies(n):
    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.bcast(q, root=0)
        qc.barrier()
        return True

    w = qmpi_run(n, prog, seed=0)
    assert _snap(w) == (n - 1, n - 1)


def test_table3_gather_scatter_copy_class():
    n = 3

    def prog_gather(qc):
        q = qc.alloc_qmem(1)
        qc.gather(q, root=0)
        qc.barrier()
        return True

    w = qmpi_run(n, prog_gather, seed=0)
    assert _snap(w) == (n - 1, n - 1)

    def prog_scatter(qc):
        if qc.rank == 0:
            reg = qc.alloc_qmem(n)
            qc.scatter(reg, None, root=0)
        else:
            t = qc.alloc_qmem(1)
            qc.scatter(None, t, root=0)
        qc.barrier()
        return True

    w = qmpi_run(n, prog_scatter, seed=0)
    assert _snap(w) == (n - 1, n - 1)


def test_table3_gather_move_class():
    n = 3

    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.gather_move(q, root=0)
        qc.barrier()
        return True

    w = qmpi_run(n, prog, seed=0)
    assert _snap(w) == (n - 1, 2 * (n - 1))  # move: 1 EPR + 2 bits per qubit


def test_table3_allreduce_is_reduce_plus_copy():
    n = 3

    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.allreduce(q, op=PARITY)
        qc.barrier()
        return True

    w = qmpi_run(n, prog, seed=0, timeout=60)
    epr, bits = _snap(w)
    assert epr == (n - 1) + (n - 1)  # reduce + bcast of the result
    assert bits == (n - 1) + (n - 1)


def test_table3_allgather_copy_class():
    n = 3

    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.allgather(q)
        qc.barrier()
        return True

    w = qmpi_run(n, prog, seed=0, timeout=90)
    epr, _ = _snap(w)
    assert epr == n * (n - 1)  # one bcast per source


def test_table3_alltoall_copy_vs_move():
    n = 3

    def prog(qc, move):
        q = qc.alloc_qmem(n)
        if move:
            qc.alltoall_move(q)
        else:
            qc.alltoall(q)
        qc.barrier()
        return True

    w = qmpi_run(n, prog, args=(False,), seed=0, timeout=90)
    epr_c, bits_c = _snap(w)
    assert epr_c == n * (n - 1)
    assert bits_c == n * (n - 1)
    w = qmpi_run(n, prog, args=(True,), seed=0, timeout=90)
    epr_m, bits_m = _snap(w)
    assert epr_m == n * (n - 1)
    assert bits_m == 2 * n * (n - 1)  # move: 2 bits per transferred qubit
