"""Shared pytest fixtures and hypothesis settings."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property tests snappy across the whole suite; individual modules can
# override with @settings.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
