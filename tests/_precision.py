"""Engine-dtype-aware tolerance bars for the test suite.

The CI complex64 leg runs the whole tier-1 suite under
``REPRO_QMPI_DTYPE=complex64`` (the engines' environment default, see
:class:`repro.sim.StateVector`).  Assertions written against float64
arithmetic (``atol=1e-12``, ``pytest.approx`` at its 1e-6 relative
default) cannot hold in float32, where one rounding step is already
~6e-8 — so precision-bound tests import their bars from here instead
of hard-coding them.  Under the default complex128 the constants are
the historical tight values; under the override they scale to float32
eps times the typical circuit depth of the suite.
"""

import os

ENGINE_DTYPE = os.environ.get("REPRO_QMPI_DTYPE") or "complex128"
C64 = ENGINE_DTYPE == "complex64"

#: Amplitude agreement after a handful of gates (engine vs engine,
#: engine vs closed form).  float32 rounds each arithmetic step at
#: ~6e-8; a short circuit accumulates to the 1e-5 scale.
STATE_ATOL = 1e-5 if C64 else 1e-12

#: Amplitude agreement after deep circuits (QFT, Trotter sweeps,
#: schedule-order programs): depth amplifies the float32 noise floor.
DEEP_ATOL = 2e-4 if C64 else 1e-10

#: ``pytest.approx(..., abs=...)`` bar for probabilities, norms,
#: fidelities, and expectation values (quadratic in the amplitudes).
PROB_ABS = 1e-4 if C64 else 1e-9
