"""Engine-vs-formula agreement for every §7 workload program."""

import pytest

from repro.sendq import ScheduleDeadlock, SendqParams, analysis, programs, schedule


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 16, 17, 64])
def test_bcast_tree_matches_formula(n):
    p = SendqParams(N=n, S=1, E=1.0, D_R=1.0)
    tr = schedule(programs.bcast_tree_program(n), p)
    assert tr.makespan == pytest.approx(analysis.bcast_tree_time(p))
    assert tr.epr_pairs() == analysis.bcast_tree_epr(n)


@pytest.mark.parametrize("n", [2, 3, 4, 8, 16, 33])
def test_bcast_cat_matches_formula(n):
    p = SendqParams(N=n, S=2, E=1.0, D_M=0.25, D_F=0.125)
    tr = schedule(programs.bcast_cat_program(n), p)
    assert tr.makespan == pytest.approx(analysis.bcast_cat_time(p))
    assert tr.epr_pairs() == analysis.bcast_cat_epr(n)


def test_bcast_cat_infeasible_with_s1():
    with pytest.raises(ScheduleDeadlock):
        schedule(programs.bcast_cat_program(4), SendqParams(N=4, S=1, E=1.0))


def test_bcast_tree_eager_epr_needs_buffers():
    # §4.7-style pre-establishment: fine with S=2, deadlocks with S=1.
    p2 = SendqParams(N=8, S=2, E=1.0)
    tr = schedule(programs.bcast_tree_program(8, eager_epr=True), p2)
    assert tr.epr_pairs() == 7
    with pytest.raises(ScheduleDeadlock):
        schedule(programs.bcast_tree_program(8, eager_epr=True), SendqParams(N=8, S=1, E=1.0))


@pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 8, 13, 16])
def test_parity_inplace(k):
    p = SendqParams(N=k, S=1, E=1.0, D_R=0.5)
    tr = schedule(programs.parity_inplace_program(k), p)
    assert tr.makespan == pytest.approx(analysis.parity_inplace_time(k, p))
    assert tr.epr_pairs() == analysis.parity_inplace_epr(k)


@pytest.mark.parametrize("k", [2, 3, 4, 8])
def test_parity_outofplace(k):
    p = SendqParams(N=k + 1, S=1, E=1.0, D_R=0.5)
    tr = schedule(programs.parity_outofplace_program(k), p)
    assert tr.makespan == pytest.approx(analysis.parity_outofplace_time(k, p))
    assert tr.epr_pairs() == analysis.parity_outofplace_epr(k)


@pytest.mark.parametrize("k", [3, 4, 8, 16])
def test_parity_constdepth(k):
    p = SendqParams(N=k, S=2, E=1.0, D_R=0.5)
    tr = schedule(programs.parity_constdepth_program(k, aux_colocated=True), p)
    assert tr.makespan == pytest.approx(analysis.parity_constdepth_time(k, p))
    assert tr.epr_pairs() == analysis.parity_constdepth_epr(k, aux_colocated=True)


def test_parity_method_crossovers():
    # const-depth beats the others once k is large and E dominates
    p = SendqParams(N=64, S=2, E=1.0, D_R=0.1)
    k = 32
    t_a = analysis.parity_inplace_time(k, p)
    t_b = analysis.parity_outofplace_time(k, p)
    t_c = analysis.parity_constdepth_time(k, p)
    assert t_c < t_a < t_b
    # for tiny k the orders flip around
    assert analysis.parity_outofplace_time(2, p) == pytest.approx(2 * p.E + p.D_R)


def _per_step(n_spins, n_nodes, S, E, D_R, steps=5):
    p = SendqParams(N=n_nodes, S=S, E=E, D_R=D_R)
    t1 = schedule(programs.tfim_step_program(n_spins, n_nodes, steps - 1), p).makespan
    t2 = schedule(programs.tfim_step_program(n_spins, n_nodes, steps), p).makespan
    return t2 - t1


@pytest.mark.parametrize(
    "n_spins,n_nodes,S,E,D_R",
    [
        (16, 4, 2, 1.0, 1.0),  # compute-bound, S>=2
        (16, 4, 1, 1.0, 1.0),  # compute-bound, S=1
        (8, 4, 2, 10.0, 1.0),  # comm-bound, S>=2
        (8, 4, 1, 10.0, 1.0),  # comm-bound, S=1
        (8, 4, 1, 5.0, 2.0),
        (24, 4, 2, 2.0, 1.0),
        (32, 8, 2, 1.0, 1.0),
        (16, 8, 1, 3.0, 1.0),
    ],
)
def test_tfim_steady_state_matches_formula(n_spins, n_nodes, S, E, D_R):
    p = SendqParams(N=n_nodes, S=S, E=E, D_R=D_R)
    assert _per_step(n_spins, n_nodes, S, E, D_R) == pytest.approx(
        analysis.tfim_step_delay(n_spins, p)
    )


def test_tfim_odd_ring_engine_vs_refined_formula():
    # odd rings need 3 EPR rounds (chromatic index of an odd cycle)
    p = SendqParams(N=3, S=2, E=8.0, D_R=1.0)
    assert _per_step(6, 3, 2, 8.0, 1.0) == pytest.approx(
        analysis.tfim_step_delay_ring(6, p)
    )


def test_tfim_s1_strictly_slower_when_comm_bound():
    fast = _per_step(8, 4, 2, 10.0, 1.0)
    slow = _per_step(8, 4, 1, 10.0, 1.0)
    assert slow == fast + 2.0  # the paper's 2*D_R penalty


def test_tfim_single_node_no_communication():
    p = SendqParams(N=1, S=1, E=1.0, D_R=1.0)
    tr = schedule(programs.tfim_step_program(8, 1, 2), p)
    assert tr.epr_pairs() == 0
    assert tr.makespan == pytest.approx(2 * 2 * 8 * 1.0)  # 2 steps x 2n D_R


def test_tfim_requires_divisibility():
    with pytest.raises(ValueError):
        programs.tfim_step_program(10, 4)
