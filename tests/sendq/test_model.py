"""SENDQ params, closed forms, and the event engine's invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.sendq import Program, ScheduleDeadlock, SendqParams, analysis, schedule


def test_params_validation():
    with pytest.raises(ValueError):
        SendqParams(N=0)
    with pytest.raises(ValueError):
        SendqParams(E=-1)
    with pytest.raises(ValueError):
        SendqParams(S=-1)
    p = SendqParams(N=4, S=2, E=2.0, Q=8)
    assert p.with_(E=3.0).E == 3.0
    assert p.epr_bandwidth == 0.5
    assert p.total_qubits_per_node == 10


def test_table1_values():
    t = analysis.table1(8)
    assert t["copy"] == {"epr": 1, "cbits": 1}
    assert t["uncopy"] == {"epr": 0, "cbits": 1}
    assert t["move"] == {"epr": 1, "cbits": 2}
    assert t["unmove"] == {"epr": 1, "cbits": 2}
    assert t["reduce"] == {"epr": 7, "cbits": 7}
    assert t["unreduce"] == {"epr": 0, "cbits": 7}
    assert t["scan"] == {"epr": 7, "cbits": 7}
    assert t["unscan"] == {"epr": 0, "cbits": 7}


@given(st.integers(2, 200))
def test_bcast_formulas(n):
    import math

    p = SendqParams(N=n, E=1.5, D_M=0.1, D_F=0.2)
    assert analysis.bcast_tree_time(p) == 1.5 * math.ceil(math.log2(n))
    expected_rounds = 1 if n == 2 else 2
    assert analysis.bcast_cat_time(p) == pytest.approx(1.5 * expected_rounds + 0.3)
    assert analysis.bcast_tree_epr(n) == n - 1
    assert analysis.bcast_cat_epr(n) == n - 1


@given(st.integers(2, 100))
def test_parity_formulas(k):
    import math

    p = SendqParams(N=k + 1, E=2.0, D_R=0.5)
    L = math.ceil(math.log2(k))
    assert analysis.parity_inplace_time(k, p) == 4.0 * L + 0.5
    assert analysis.parity_inplace_epr(k) == 2 * (k - 1)
    assert analysis.parity_outofplace_time(k, p) == 2.0 * k + 0.5
    assert analysis.parity_outofplace_epr(k) == k
    assert analysis.parity_constdepth_time(k, p) == 4.5
    assert analysis.parity_constdepth_epr(k) == k
    assert analysis.parity_constdepth_epr(k, aux_colocated=True) == k - 1


def test_tfim_formulas():
    p = SendqParams(N=4, S=2, E=3.0, D_R=1.0)
    assert analysis.tfim_trotter_compute_delay(16, p) == 8.0
    assert analysis.tfim_step_delay(16, p) == max(8.0, 6.0)
    p1 = p.with_(S=1)
    assert analysis.tfim_step_delay(16, p1) == max(8.0, 8.0)
    p_comm = p.with_(E=10.0)
    assert analysis.tfim_step_delay(16, p_comm) == 20.0
    assert analysis.tfim_step_delay(16, p_comm.with_(S=1)) == 22.0
    with pytest.raises(ValueError):
        analysis.tfim_trotter_compute_delay(17, p)
    with pytest.raises(ValueError):
        analysis.tfim_step_delay(16, p.with_(S=0))
    assert analysis.tfim_max_nodes(16, SendqParams(E=2.0, D_R=1.0)) == 8
    assert analysis.tfim_min_nodes_for_s2(16, 3) == 8
    with pytest.raises(ValueError):
        analysis.tfim_min_nodes_for_s2(16, 1)


def test_tfim_odd_ring_refinement():
    p = SendqParams(N=3, S=2, E=8.0, D_R=1.0)
    assert analysis.tfim_step_delay_ring(6, p) == 24.0  # 3E, not 2E
    p_even = SendqParams(N=4, S=2, E=8.0, D_R=1.0)
    assert analysis.tfim_step_delay_ring(8, p_even) == analysis.tfim_step_delay(8, p_even)


# ----------------------------------------------------------------------
# engine invariants
# ----------------------------------------------------------------------
def test_program_validation():
    prog = Program(2)
    e = prog.epr(0, 1)
    with pytest.raises(ValueError):
        prog.epr(0, 0)
    with pytest.raises(ValueError):
        prog.epr(0, 5)
    with pytest.raises(ValueError):
        prog.rot(0, deps=[99])
        schedule(prog, SendqParams(N=2))
    prog2 = Program(2)
    e2 = prog2.epr(0, 1)
    prog2.local(0, releases=[(e2, 1)])  # wrong node? 1 is an endpoint - ok
    bad = Program(2)
    b_e = bad.epr(0, 1)
    bad.local(0, releases=[(b_e + 100, 0)])
    with pytest.raises(ValueError):
        schedule(bad, SendqParams(N=2))


def test_rotations_serialize_per_node():
    prog = Program(1)
    prog.rot(0)
    prog.rot(0)
    prog.rot(0)
    tr = schedule(prog, SendqParams(N=1, D_R=2.0))
    assert tr.makespan == 6.0
    assert tr.utilization(0) == pytest.approx(1.0)


def test_epr_port_exclusive():
    prog = Program(3)
    prog.epr(0, 1)
    prog.epr(0, 2)  # shares node 0's port -> serial
    tr = schedule(prog, SendqParams(N=3, S=2, E=1.0))
    assert tr.makespan == 2.0
    # disjoint pairs run in parallel
    prog2 = Program(4)
    prog2.epr(0, 1)
    prog2.epr(2, 3)
    tr2 = schedule(prog2, SendqParams(N=4, S=2, E=1.0))
    assert tr2.makespan == 1.0


def test_buffer_occupancy_never_exceeds_s():
    from repro.sendq import programs

    p = SendqParams(N=8, S=2, E=1.0, D_R=0.5)
    tr = schedule(programs.bcast_cat_program(8), p)
    # replay the trace and track buffer levels at every event
    events = []
    for e in tr.entries:
        if e.kind == "epr":
            for node in e.nodes:
                events.append((e.start, 1, node))
    # releases: find ops that release (we can't see releases in the trace,
    # so check the weaker invariant: concurrent epr STARTs per node <= S)
    for node in range(8):
        spans = [(e.start, e.end) for e in tr.entries if e.kind == "epr" and node in e.nodes]
        for i, (s1, e1) in enumerate(spans):
            overlap = sum(1 for s2, e2 in spans if s2 < e1 and e2 > s1)
            assert overlap <= p.S + 0  # at most S pairs in flight


def test_deadlock_reported_with_labels():
    prog = Program(2)
    e1 = prog.epr(0, 1, label="first")
    prog.epr(0, 1, label="second")  # S=1: nobody ever releases the first
    with pytest.raises(ScheduleDeadlock) as ei:
        schedule(prog, SendqParams(N=2, S=1, E=1.0))
    assert "second" in str(ei.value)


def test_classical_ops_are_free():
    prog = Program(2)
    c1 = prog.classical()
    c2 = prog.classical(deps=[c1])
    prog.classical(deps=[c2])
    tr = schedule(prog, SendqParams(N=2))
    assert tr.makespan == 0.0


def test_trace_utilities():
    prog = Program(2)
    e = prog.epr(0, 1, label="pair")
    prog.rot(0, deps=[e], releases=[(e, 0)], label="rotA")
    prog.local(1, deps=[e], releases=[(e, 1)], flavor="measure", label="m")
    tr = schedule(prog, SendqParams(N=2, S=1, E=2.0, D_R=1.0, D_M=0.5))
    assert tr.makespan == 3.0
    assert tr.epr_pairs() == 1
    assert tr.end_of("pair") == 2.0
    with pytest.raises(KeyError):
        tr.end_of("nope")
    g = tr.gantt(width=40)
    assert "node   0" in g and "R" in g and "=" in g
    rows = tr.as_rows()
    assert rows[0]["kind"] == "epr"
