"""Application-level tests: teleport, GHZ, Fig. 6 parity, Listing-1 TFIM."""

import math

import numpy as np
import pytest
from scipy.linalg import expm

from repro.apps.ghz import run_ghz, run_ghz_fidelity
from repro.apps.parity import (
    rotate_parity_constdepth,
    rotate_parity_inplace,
    rotate_parity_outofplace,
)
from repro.apps.teleport import run_relay_demo, run_teleport_demo
from repro.apps.tfim import tfim_program
from repro.exact import evolve, fidelity, pauli_matrix, tfim_hamiltonian
from repro.qmpi import qmpi_run
from repro.sim import StateVector
from tests._precision import PROB_ABS


def test_teleport_demo():
    p1, snap = run_teleport_demo(theta=1.234, phi=0.5)
    assert p1 == pytest.approx(math.sin(0.617) ** 2, abs=PROB_ABS)
    assert (snap.epr_pairs, snap.classical_bits) == (1, 2)


def test_relay_resources_scale_with_hops():
    p1, snap = run_relay_demo(theta=0.777, n_ranks=4)
    assert p1 == pytest.approx(math.sin(0.777 / 2) ** 2, abs=PROB_ABS)
    assert (snap.epr_pairs, snap.classical_bits) == (3, 6)


@pytest.mark.parametrize("algo", ["chain", "tree"])
def test_ghz_agreement_and_fidelity(algo):
    outs, snap = run_ghz(5, algo, seed=11)
    assert len(set(outs)) == 1
    assert snap.epr_pairs == 4
    assert run_ghz_fidelity(5, algo, seed=3) == pytest.approx(1.0, abs=PROB_ABS)


def _parity_prog(qc, method, theta):
    q = qc.alloc_qmem(1)
    qc.h(q[0])
    qc.ry(q[0], 0.3 * (qc.rank + 1))
    if method == "a":
        rotate_parity_inplace(qc, q[0], theta)
    elif method == "b":
        rotate_parity_outofplace(qc, q[0], theta)
    else:
        rotate_parity_constdepth(qc, q[0], theta)
    qc.barrier()
    return q[0]


@pytest.mark.parametrize("method", ["a", "b", "c"])
@pytest.mark.parametrize("k", [2, 3, 4])
def test_fig6_methods_match_exact(method, k):
    t = 0.45
    sv = StateVector(k, seed=0)
    for i in range(k):
        sv.h(i)
        sv.ry(i, 0.3 * (i + 1))
    ref = sv.statevector()
    zz = pauli_matrix(" ".join(f"Z{i}" for i in range(k)), k)
    expect = expm(-1j * t * zz) @ ref
    w = qmpi_run(k, _parity_prog, args=(method, 2 * t), seed=5)
    vec = w.backend.statevector(list(w.results))
    assert abs(np.vdot(expect, vec)) ** 2 > 1 - PROB_ABS


@pytest.mark.parametrize(
    "method,epr_of_k", [("a", lambda k: 2 * (k - 1)), ("b", lambda k: k - 1), ("c", lambda k: k - 1)]
)
def test_fig6_epr_budgets(method, epr_of_k):
    for k in (3, 4):
        w = qmpi_run(k, _parity_prog, args=(method, 0.9), seed=5)
        assert w.ledger.snapshot().epr_pairs == epr_of_k(k), (method, k)


def _tfim_fidelity(n_ranks, m, J, g, time, steps):
    w = qmpi_run(n_ranks, tfim_program, args=(J, g, time, m, steps), seed=0, timeout=300)
    qubits = [q for block in w.results for q in block]
    vec = w.backend.statevector(qubits)
    n = n_ranks * m
    H = tfim_hamiltonian(n, J, g, periodic=True)
    plus = np.ones(2**n) / 2 ** (n / 2)
    return fidelity(evolve(H, plus, time), vec)


def test_tfim_two_ranks_matches_exact():
    assert _tfim_fidelity(2, 2, 0.7, 0.4, 0.3, 48) > 0.9999


def test_tfim_three_ranks_matches_exact():
    assert _tfim_fidelity(3, 1, 0.5, 0.8, 0.25, 32) > 0.9999


def test_tfim_single_rank_ring():
    w = qmpi_run(1, tfim_program, args=(0.6, 0.3, 0.2, 3, 24), seed=0)
    vec = w.backend.statevector(list(w.results[0]))
    H = tfim_hamiltonian(3, 0.6, 0.3, periodic=True)
    plus = np.ones(8) / 8**0.5
    assert fidelity(evolve(H, plus, 0.2), vec) > 0.9999


def test_tfim_epr_budget_per_step():
    # N ring-boundary terms per Trotter step, 1 EPR each (copy semantics)
    n_ranks, steps = 3, 2
    w = qmpi_run(n_ranks, tfim_program, args=(0.5, 0.5, 0.1, 1, steps), seed=0)
    assert w.ledger.snapshot().epr_pairs == n_ranks * steps


def test_annealing_smoke():
    from repro.apps.tfim import run_annealing

    outcomes, snap = run_annealing(
        n_ranks=2, num_local_spins=1, num_annealing_steps=4, num_trotter=1, time=0.5, seed=1
    )
    assert len(outcomes) == 2
    assert all(b in (0, 1) for b in outcomes)
    assert snap.epr_pairs > 0
