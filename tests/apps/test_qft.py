"""QFT app: DFT-matrix exactness, inverse roundtrip, new-gate usage."""

import numpy as np
import pytest

from repro.apps.qft import _dft_column, inverse_qft, qft, run_qft
from repro.qmpi import qmpi_run
from tests._precision import DEEP_ATOL


@pytest.mark.parametrize("backend", ["shared", "sharded"])
@pytest.mark.parametrize("n_qubits,value", [(1, 1), (3, 5), (4, 9)])
def test_qft_matches_dft_column(backend, n_qubits, value):
    w = run_qft(1, n_qubits, value=value, backend=backend)
    vec = w.backend.statevector(w.results[0])
    np.testing.assert_allclose(vec, _dft_column(n_qubits, value), atol=DEEP_ATOL)


@pytest.mark.parametrize("fusion", ["auto", "off"])
def test_qft_inverse_roundtrip(fusion):
    def prog(qc):
        q = qc.alloc_qmem(3)
        qc.x(q[1])  # |010>
        qft(qc, q)
        inverse_qft(qc, q)
        qc.barrier()
        return list(q)

    w = qmpi_run(1, prog, seed=0, fusion=fusion)
    vec = w.backend.statevector(w.results[0])
    expected = np.zeros(8)
    expected[2] = 1.0
    np.testing.assert_allclose(vec, expected, atol=DEEP_ATOL)


def test_each_rank_qfts_its_own_register():
    w = run_qft(2, 2, value=1, backend="sharded", seed=0)
    for rank, qubits in enumerate(w.results):
        # Trace structure: product state of per-rank DFT columns, so each
        # rank's marginal equals its own DFT column.
        order = [q for block in w.results for q in block]
        vec = w.backend.statevector(order).reshape(4, 4)
        marginal = vec if rank == 0 else vec.T
        col = _dft_column(2, 1 + rank)
        # project out the other rank's register
        other = _dft_column(2, 2 - rank)
        np.testing.assert_allclose(marginal @ other.conj(), col, atol=DEEP_ATOL)
