"""QMPI point-to-point: copy/move semantics, inverses, Table 1 resources."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.qmpi import qmpi_run
from tests._precision import PROB_ABS

angle = st.floats(-3.0, 3.0, allow_nan=False)


@settings(max_examples=10)
@given(angle, angle)
def test_teleport_preserves_any_state(theta, phi):
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.ry(q[0], theta)
            qc.rz(q[0], phi)
            qc.send_move(q, 1)
            return None
        t = qc.alloc_qmem(1)
        qc.recv_move(t, 0)
        return qc.prob_one(t[0])

    w = qmpi_run(2, prog, seed=0)
    assert w.results[1] == pytest.approx(math.sin(theta / 2) ** 2, abs=PROB_ABS)
    snap = w.ledger.snapshot()
    assert (snap.epr_pairs, snap.classical_bits) == (1, 2)  # Table 1: move


@settings(max_examples=10)
@given(angle)
def test_copy_uncopy_roundtrip(theta):
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.ry(q[0], theta)
            qc.send(q, 1)
            qc.unsend(q, 1)
            return qc.prob_one(q[0])
        t = qc.alloc_qmem(1)
        qc.recv(t, 0)
        qc.unrecv(t, 0)
        return None

    w = qmpi_run(2, prog, seed=0)
    assert w.results[0] == pytest.approx(math.sin(theta / 2) ** 2, abs=PROB_ABS)
    snap = w.ledger.snapshot()
    # Table 1: copy = 1 EPR + 1 bit; uncopy = 0 EPR + 1 bit
    assert (snap.epr_pairs, snap.classical_bits) == (1, 2)


def test_copy_exposes_value_on_both_nodes():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.x(q[0])
            qc.send(q, 1)
            return qc.measure(q[0])
        t = qc.alloc_qmem(1)
        qc.recv(t, 0)
        return qc.measure(t[0])

    w = qmpi_run(2, prog, seed=0)
    assert w.results == [1, 1]


def test_copy_is_entangled_not_cloned():
    # measuring the copy collapses the original (superposition case)
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.h(q[0])
            qc.send(q, 1)
            qc.barrier()
            return qc.measure(q[0])
        t = qc.alloc_qmem(1)
        qc.recv(t, 0)
        m = qc.measure(t[0])
        qc.barrier()
        return m

    for seed in range(5):
        w = qmpi_run(2, prog, seed=seed)
        assert w.results[0] == w.results[1]


def test_move_transfers_ownership_and_frees_source():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.x(q[0])
            qc.send_move(q, 1)
            # sender's qubits are measured out and gone
            return len(qc.backend.owned_by(0))
        t = qc.alloc_qmem(1)
        qc.recv_move(t, 0)
        return qc.measure(t[0])

    w = qmpi_run(2, prog, seed=0)
    assert w.results == [0, 1]


def test_unmove_roundtrip():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.ry(q[0], 1.1)
            qc.send_move(q, 1)
            back = qc.unsend_move(1, 1)
            return qc.prob_one(back[0])
        t = qc.alloc_qmem(1)
        qc.recv_move(t, 0)
        qc.unrecv_move(t, 0)
        return None

    w = qmpi_run(2, prog, seed=0)
    assert w.results[0] == pytest.approx(math.sin(0.55) ** 2, abs=PROB_ABS)
    snap = w.ledger.snapshot()
    # move + unmove: 2 EPR pairs, 4 classical bits (Table 1)
    assert (snap.epr_pairs, snap.classical_bits) == (2, 4)


def test_register_send_scales_per_qubit():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(3)
            for i, qq in enumerate(q):
                qc.ry(qq, 0.2 * (i + 1))
            qc.send(q, 1)
            return None
        t = qc.alloc_qmem(3)
        qc.recv(t, 0)
        return [qc.prob_one(x) for x in t]

    w = qmpi_run(2, prog, seed=0)
    for i, p in enumerate(w.results[1]):
        assert p == pytest.approx(math.sin(0.1 * (i + 1)) ** 2, abs=PROB_ABS)
    snap = w.ledger.snapshot()
    assert (snap.epr_pairs, snap.classical_bits) == (3, 3)


def test_head_to_head_sendrecv():
    def prog(qc):
        n = qc.size
        sq = qc.alloc_qmem(1)
        if qc.rank == 1:
            qc.x(sq[0])
        rq = qc.alloc_qmem(1)
        qc.sendrecv(sq, (qc.rank + 1) % n, rq, (qc.rank - 1) % n)
        return round(qc.prob_one(rq[0]))

    w = qmpi_run(4, prog, seed=0)
    assert w.results == [0, 0, 1, 0]


def test_sendrecv_replace_ring_rotation():
    def prog(qc):
        n = qc.size
        q = qc.alloc_qmem(1)
        if qc.rank == 0:
            qc.ry(q[0], 1.0)
        new = qc.sendrecv_replace(q, (qc.rank + 1) % n, (qc.rank - 1) % n)
        return qc.prob_one(new[0])

    w = qmpi_run(3, prog, seed=0)
    assert w.results[1] == pytest.approx(math.sin(0.5) ** 2, abs=PROB_ABS)
    assert w.results[0] == pytest.approx(0.0, abs=PROB_ABS)


def test_isend_nonblocking_and_alias_table2_ops():
    def prog(qc):
        from repro.qmpi import p2p

        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.x(q[0])
            req = p2p.isend(qc, q, 1)
            req.wait()
            # Table 2 aliases exist and are callable
            assert qc.bsend == qc.send and qc.ssend == qc.send
            qc.cancel()
            return True
        t = qc.alloc_qmem(1)
        req = p2p.irecv(qc, t, 0)
        reg = req.wait()
        return qc.measure(reg[0])

    w = qmpi_run(2, prog, seed=0)
    assert w.results == [True, 1]


def test_locality_violation_caught_in_program():
    from repro.mpi import RankFailure

    def prog(qc):
        q = qc.alloc_qmem(1)
        ids = qc.comm.allgather(q[0])
        if qc.rank == 0:
            qc.h(ids[1])  # touching a remote qubit: must blow up
        return True

    with pytest.raises(RankFailure):
        qmpi_run(2, prog, seed=0)
