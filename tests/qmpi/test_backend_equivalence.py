"""Shared vs. sharded backend equivalence.

Two layers:

1. Amplitude-exactness: GHZ-cat, teleportation, and TFIM-Trotter
   workloads must leave *identical* final states (up to global phase,
   atol 1e-10) on both backends at 1, 2, and 4 ranks.
2. Scenario reruns: the existing ``test_p2p`` teleport and
   ``test_cat_and_misc`` GHZ scenarios, parametrized over both backends,
   with their original assertions (probabilities + ledger accounting).

Programs used for exactness allocate their primary qubits in rank order
(`_ordered_alloc`) so qubit ids are deterministic across runs; the
protocols' internal measurement fixups are outcome-independent, so the
final state does not depend on thread interleaving.
"""

import math

import numpy as np
import pytest

from repro.apps.tfim import tfim_time_evolution
from tests._precision import DEEP_ATOL, PROB_ABS
from repro.qmpi import cat_state_chain, cat_state_tree, qmpi_run

BACKEND_SPECS = ["shared", "sharded"]
RANK_COUNTS = [1, 2, 4]


@pytest.fixture(params=BACKEND_SPECS)
def backend_spec(request):
    """Run the decorated scenario once per backend."""
    return request.param


def _ordered_alloc(qc, n=1):
    """Allocate ``n`` qubits per rank, in rank order (deterministic ids)."""
    out = None
    for r in range(qc.size):
        if qc.rank == r:
            out = qc.alloc_qmem(n)
        qc.barrier()
    return out


def assert_same_up_to_phase(vec_a, vec_b, atol=DEEP_ATOL):
    """Amplitude-identical up to one global phase."""
    assert vec_a.shape == vec_b.shape
    pivot = int(np.argmax(np.abs(vec_a)))
    assert abs(vec_a[pivot]) > 1e-6, "degenerate reference state"
    phase = vec_b[pivot] / vec_a[pivot]
    assert abs(abs(phase) - 1.0) < atol
    np.testing.assert_allclose(vec_a * phase, vec_b, atol=atol)


def run_both(n_ranks, prog, seed=0, **kwargs):
    shared = qmpi_run(n_ranks, prog, seed=seed, backend="shared", **kwargs)
    sharded = qmpi_run(n_ranks, prog, seed=seed, backend="sharded", **kwargs)
    return shared, sharded


# ----------------------------------------------------------------------
# amplitude-exact equivalence (the acceptance bar)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_ranks", RANK_COUNTS)
def test_ghz_cat_amplitude_exact(n_ranks):
    def prog(qc):
        q = _ordered_alloc(qc)
        cat_state_chain(qc, q[0])
        qc.barrier()
        return q[0]

    shared, sharded = run_both(n_ranks, prog, seed=3)
    assert shared.results == sharded.results  # deterministic qubit ids
    order = list(shared.results)
    assert_same_up_to_phase(
        shared.backend.statevector(order), sharded.backend.statevector(order)
    )
    assert shared.ledger.epr_pairs == sharded.ledger.epr_pairs == n_ranks - 1


@pytest.mark.parametrize("n_ranks", [2, 4])
def test_teleport_amplitude_exact(n_ranks):
    theta, phi = 1.234, 0.5

    def prog(qc):
        q = _ordered_alloc(qc)
        last = qc.size - 1
        if qc.rank == 0:
            qc.ry(q[0], theta)
            qc.rz(q[0], phi)
            qc.send_move(q, last)
            # rank 0's qubit is measured out by the move protocol;
            # intermediate ranks keep their (idle) qubit
            qc.barrier()
            return None
        if qc.rank == last:
            t = qc.recv_move(q, 0)
            qc.barrier()
            return t[0]
        qc.barrier()
        return q[0]

    shared, sharded = run_both(n_ranks, prog, seed=0)
    assert shared.results == sharded.results
    order = sorted(shared.backend.qubit_ids())
    assert order == sorted(sharded.backend.qubit_ids())
    assert_same_up_to_phase(
        shared.backend.statevector(order), sharded.backend.statevector(order)
    )
    # and the teleported amplitudes are the prepared ones
    p1 = math.sin(theta / 2) ** 2
    received = shared.results[n_ranks - 1]

    def prob(world):
        vec = world.backend.statevector([received] + [q for q in order if q != received])
        half = vec.reshape(2, -1)[1]
        return float(np.sum(np.abs(half) ** 2))

    assert prob(shared) == pytest.approx(p1, abs=PROB_ABS)
    assert prob(sharded) == pytest.approx(p1, abs=PROB_ABS)


@pytest.mark.parametrize("n_ranks", RANK_COUNTS)
def test_tfim_trotter_amplitude_exact(n_ranks):
    J, g, time, spins, steps = 0.7, 0.9, 0.8, 2, 3

    def prog(qc):
        q = _ordered_alloc(qc, spins)
        for qq in q:
            qc.h(qq)
        tfim_time_evolution(qc, J, g, time, q, steps)
        qc.barrier()
        return list(q)

    shared, sharded = run_both(n_ranks, prog, seed=0, timeout=300.0)
    assert shared.results == sharded.results
    order = [q for block in shared.results for q in block]
    assert_same_up_to_phase(
        shared.backend.statevector(order), sharded.backend.statevector(order)
    )


def test_seeded_measurements_agree_across_backends():
    # Sequential protocol => same RNG draw order => identical outcomes.
    def prog(qc):
        q = _ordered_alloc(qc)
        cat_state_chain(qc, q[0])
        qc.barrier()
        out = []
        for r in range(qc.size):
            if qc.rank == r:
                out.append(qc.measure(q[0]))
            qc.barrier()
        return out[0]

    for seed in range(4):
        shared = qmpi_run(3, prog, seed=seed, backend="shared")
        sharded = qmpi_run(3, prog, seed=seed, backend="sharded")
        assert shared.results == sharded.results
        assert len(set(shared.results)) == 1  # GHZ correlations


# ----------------------------------------------------------------------
# existing scenarios, parametrized over both backends
# ----------------------------------------------------------------------
def test_teleport_scenario_both_backends(backend_spec):
    # The test_p2p.py teleport scenario, verbatim assertions.
    theta, phi = 0.9, -1.1

    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.ry(q[0], theta)
            qc.rz(q[0], phi)
            qc.send_move(q, 1)
            return None
        t = qc.alloc_qmem(1)
        qc.recv_move(t, 0)
        return qc.prob_one(t[0])

    w = qmpi_run(2, prog, seed=0, backend=backend_spec)
    assert w.results[1] == pytest.approx(math.sin(theta / 2) ** 2, abs=PROB_ABS)
    snap = w.ledger.snapshot()
    assert (snap.epr_pairs, snap.classical_bits) == (1, 2)  # Table 1: move


@pytest.mark.parametrize("algo", ["chain", "tree"])
@pytest.mark.parametrize("n", [2, 3, 4])
def test_ghz_scenario_both_backends(backend_spec, algo, n):
    # The test_cat_and_misc.py GHZ scenario, verbatim assertions.
    def prog(qc):
        q = qc.alloc_qmem(1)
        if algo == "chain":
            cat_state_chain(qc, q[0])
        else:
            cat_state_tree(qc, q[0])
        qc.barrier()
        return q[0]

    w = qmpi_run(n, prog, seed=3, backend=backend_spec)
    vec = w.backend.statevector(list(w.results))
    ideal = np.zeros(2**n, dtype=complex)
    ideal[0] = ideal[-1] = 2**-0.5
    assert abs(np.vdot(ideal, vec)) ** 2 == pytest.approx(1.0, abs=PROB_ABS)
    assert w.ledger.epr_pairs == n - 1


def test_copy_roundtrip_scenario_both_backends(backend_spec):
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.ry(q[0], 1.3)
            qc.send(q, 1)
            qc.unsend(q, 1)
            return qc.prob_one(q[0])
        t = qc.alloc_qmem(1)
        qc.recv(t, 0)
        qc.unrecv(t, 0)
        return None

    w = qmpi_run(2, prog, seed=0, backend=backend_spec)
    assert w.results[0] == pytest.approx(math.sin(0.65) ** 2, abs=PROB_ABS)
