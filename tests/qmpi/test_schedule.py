"""The execution-schedule IR: compiler, cost model, run-level dispatch.

Five layers:

1. ``FUSION_MODES`` validation (unknown mode strings raise, booleans
   normalize) and the re-export from ``repro.qmpi``;
2. white-box compiler tests: segment typing and communication classes,
   order preservation (every input record lands in exactly one segment,
   in program order), controlled gates joining kernel runs;
3. size-aware planning: no ``PlanSegment`` below ``plan_min_qubits``,
   four-qubit windows at/above ``wide_window_min_qubits``;
4. run-level worker dispatch: one task per worker per
   communication-free stretch (not per chunk per entry), amplitude
   exactness vs ``workers=0``;
5. the property suite: per-qubit program order is preserved across all
   fusion modes x 1/2/4 ranks (amplitude-exact against the eager
   shared reference).
"""

import numpy as np
import pytest

from repro.qmpi import (
    FUSION_MODES,
    ContractionPlan,
    CostModel,
    DiagBatch,
    Op,
    OpStream,
    SharedBackend,
    qmpi_run,
)
from repro.sim import (
    DiagSegment,
    ExchangeSegment,
    KernelRun,
    PlanSegment,
    ShardedStateVector,
    StateVector,
    coalesce_diagonals,
    compile_segments,
    lower_flush,
    plan_contractions,
)
from repro.sim.schedule import BLOCKDIAG, LOCAL, MIXING, classify_matrix
from tests._precision import DEEP_ATOL


# ----------------------------------------------------------------------
# fusion-mode validation
# ----------------------------------------------------------------------
def test_fusion_modes_exported_and_validated():
    assert FUSION_MODES == ("auto", "on", "noplan", "nodiag", "off")
    be = SharedBackend(seed=0)
    for mode in FUSION_MODES:
        OpStream(be, 0, fusion=mode)
    for bogus in ("no_plan", "nodiagg", "AUTO", "", None, 2):
        with pytest.raises(ValueError):
            OpStream(be, 0, fusion=bogus)


def test_fusion_booleans_normalize():
    be = SharedBackend(seed=0)
    assert OpStream(be, 0, fusion=True).fusion
    assert not OpStream(be, 0, fusion=False).fusion


# ----------------------------------------------------------------------
# compiler white-box: segment typing, comm classes, order
# ----------------------------------------------------------------------
def _flatten(segs):
    out = []
    for seg in segs:
        if isinstance(seg, KernelRun):
            out.extend(seg.ops)
        elif isinstance(seg, DiagSegment):
            out.append(seg.batch)
        elif isinstance(seg, PlanSegment):
            out.append(seg.plan)
        else:
            out.append(seg.op)
    return out


def test_layoutless_compile_is_all_local():
    batch = DiagBatch.from_ops([Op("t", (0,)), Op("cz", (0, 1))])
    plan = ContractionPlan.from_ops([Op("cnot", (0, 1)), Op("h", (1,))])
    ops = [Op("h", (0,)), Op("cnot", (0, 1)), batch, plan, Op("x", (1,))]
    segs = compile_segments(ops)
    assert [type(s) for s in segs] == [
        KernelRun, DiagSegment, PlanSegment, KernelRun,
    ]
    assert all(s.comm == LOCAL for s in segs)
    assert all(s.cost > 0 for s in segs)
    assert segs[0].entries is None  # no layout, no kernel entries
    assert _flatten(segs) == ops


def test_sharded_compile_classifies_once():
    # 4 qubits on 4 shards: bits 3,2 are shard axes (qubits 0,1).
    sv = ShardedStateVector(4, seed=0, n_shards=4)
    batch = DiagBatch.from_ops([Op("t", (0,)), Op("cz", (0, 1))])
    plan_local = plan_contractions(
        [Op("cnot", (2, 3)), Op("ry", (3,), (0.8,))]
    )[0]
    plan_blockdiag = plan_contractions(
        [Op("cnot", (0, 2)), Op("ry", (2,), (0.5,)), Op("cnot", (0, 2))]
    )[0]
    plan_mixing = plan_contractions(
        [Op("cnot", (2, 0)), Op("h", (0,)), Op("cnot", (2, 0))]
    )[0]
    ops = [
        Op("h", (2,)),          # local single-qubit kernel
        Op("rz", (0,), (0.3,)),  # diagonal on a shard axis: blockdiag
        Op("cnot", (0, 3)),     # shard-axis control, local target: blockdiag
        batch,                  # touches shard axes: blockdiag
        plan_local,
        plan_blockdiag,
        Op("h", (0,)),          # non-diagonal on a shard axis: mixing
        plan_mixing,
    ]
    segs = compile_segments(ops, bit=sv._bit, n_local=sv.n_local)
    assert [type(s) for s in segs] == [
        KernelRun, DiagSegment, PlanSegment, PlanSegment,
        ExchangeSegment, PlanSegment,
    ]
    run = segs[0]
    assert run.comm == BLOCKDIAG  # upgraded by the rz/cnot entries
    assert [e[0] for e in run.entries] == ["sq", "sq", "cc"]
    assert segs[1].comm == BLOCKDIAG
    assert segs[2].comm == LOCAL and segs[2].entry[0] == "ct"
    assert segs[3].comm == BLOCKDIAG and segs[3].entry[0] == "csel"
    assert segs[4].comm == MIXING
    assert segs[5].comm == MIXING and segs[5].entry is None
    assert _flatten(segs) == ops


def test_classify_matrix_matches_plan_classes():
    # Diagonal product over two shard axes: per-chunk scalars.
    plan = ContractionPlan.from_ops(
        [Op("cz", (0, 1)), Op("t", (0,)), Op("s", (1,))]
    )
    entry = classify_matrix(plan.u, [3, 2], 2)
    assert entry[0] == "csel" and entry[3] == ()  # no local window qubits
    # A swap across the chunk boundary genuinely mixes.
    assert classify_matrix(np.asarray(Op("swap", (0, 1)).matrix()), [2, 1], 2) is None


def test_compile_preserves_per_qubit_order():
    rng = np.random.default_rng(7)
    gates = ["h", "x", "t", "s", "z"]
    ops = []
    for _ in range(60):
        roll = rng.random()
        if roll < 0.5:
            ops.append(Op(str(rng.choice(gates)), (int(rng.integers(4)),)))
        elif roll < 0.8:
            a, b = rng.choice(4, size=2, replace=False)
            ops.append(Op("cnot", (int(a), int(b))))
        else:
            a, b = rng.choice(4, size=2, replace=False)
            ops.append(Op("crz", (int(a), int(b)), (float(rng.random()),)))
    sv = ShardedStateVector(4, seed=0, n_shards=4)
    for layout in ({}, {"bit": sv._bit, "n_local": sv.n_local}):
        flat = _flatten(compile_segments(ops, **layout))
        # Every record lands in exactly one segment, in program order.
        assert flat == ops


# ----------------------------------------------------------------------
# size-aware planning
# ----------------------------------------------------------------------
def test_default_cost_model_thresholds():
    from repro.qmpi import DEFAULT_COST_MODEL

    assert DEFAULT_COST_MODEL.plan_window(12) == 0
    assert DEFAULT_COST_MODEL.plan_window(15) == 0
    assert DEFAULT_COST_MODEL.plan_window(16) == 3
    assert DEFAULT_COST_MODEL.plan_window(17) == 3
    assert DEFAULT_COST_MODEL.plan_window(18) == 4
    assert DEFAULT_COST_MODEL.plan_window(24) == 4


def _dense_ladder(qubits):
    ops = []
    for i in range(len(qubits) - 1):
        ops.append(Op("cnot", (qubits[i], qubits[i + 1])))
        ops.append(Op("ry", (qubits[i + 1],), (0.3 + 0.1 * i,)))
        ops.append(Op("cnot", (qubits[i], qubits[i + 1])))
    return ops


def test_no_plan_segment_below_threshold():
    # Default model: a 6-qubit register never plans, so a dense ladder
    # flushes as plain ops — no ContractionPlan anywhere in the batch.
    be = SharedBackend(seed=0)
    seen = []
    orig = be.apply_ops
    be.apply_ops = lambda rank, ops: (seen.extend(ops), orig(rank, ops))
    be.apply_flush = None  # legacy flush path: the spy sees lowered records
    qs = tuple(be.alloc(0, 6))
    stream = OpStream(be, 0, fusion="auto")
    for op in _dense_ladder(qs):
        stream.append(op)
    stream.flush()
    assert seen and not any(isinstance(o, ContractionPlan) for o in seen)
    # The same circuit with the threshold lowered does plan.
    be2 = SharedBackend(seed=0)
    seen2 = []
    orig2 = be2.apply_ops
    be2.apply_ops = lambda rank, ops: (seen2.extend(ops), orig2(rank, ops))
    be2.apply_flush = None  # legacy flush path: the spy sees lowered records
    qs2 = tuple(be2.alloc(0, 6))
    stream2 = OpStream(
        be2, 0, fusion="auto", cost_model=CostModel(plan_min_qubits=0)
    )
    for op in _dense_ladder(qs2):
        stream2.append(op)
    stream2.flush()
    assert any(isinstance(o, ContractionPlan) for o in seen2)


def test_wide_windows_above_threshold():
    # Above wide_window_min_qubits the planner may grow 4-qubit windows
    # (one 16x16 contraction); below it the classic 3-qubit bound holds.
    ops = _dense_ladder((0, 1, 2, 3))
    wide = lower_flush(
        ops, 6,
        cost_model=CostModel(plan_min_qubits=0, wide_window_min_qubits=6),
    )
    plans = [o for o in wide if isinstance(o, ContractionPlan)]
    assert max(len(p.qubits) for p in plans) == 4
    narrow = lower_flush(
        ops, 6,
        cost_model=CostModel(plan_min_qubits=0, wide_window_min_qubits=7),
    )
    assert max(
        len(p.qubits) for p in narrow if isinstance(p, ContractionPlan)
    ) <= 3
    # Wide windows are exact: the fused product equals sequential apply.
    ref = StateVector(4, seed=0)
    got = StateVector(4, seed=0)
    for q in range(4):
        ref.h(q), got.h(q)
    ref.apply_ops(ops)
    got.apply_ops(wide)
    np.testing.assert_allclose(ref.statevector(), got.statevector(), atol=DEEP_ATOL)


def test_wide_windows_match_on_sharded_engine():
    ops = _dense_ladder((0, 1, 2, 3)) + [Op("crz", (0, 3), (0.7,))]
    wide = lower_flush(
        ops, 6,
        cost_model=CostModel(plan_min_qubits=0, wide_window_min_qubits=6),
    )
    ref = ShardedStateVector(4, seed=0, n_shards=4)
    got = ShardedStateVector(4, seed=0, n_shards=4)
    for q in range(4):
        ref.h(q), got.h(q)
    ref.apply_ops(ops)
    got.apply_ops(wide)
    np.testing.assert_allclose(ref.statevector(), got.statevector(), atol=DEEP_ATOL)


# ----------------------------------------------------------------------
# run-level worker dispatch
# ----------------------------------------------------------------------
@pytest.fixture
def pooled():
    sv = ShardedStateVector(4, seed=0, n_shards=4, workers=2, parallel_min_chunk=1)
    yield sv
    sv.close()


def _stretch_ops():
    """One communication-free stretch: runs + a diagonal batch + runs."""
    return (
        [Op("rx", (2,), (0.4,)), Op("ry", (3,), (0.8,))]
        + coalesce_diagonals(
            [Op("t", (0,)), Op("cz", (0, 1)), Op("rz", (2,), (0.3,))]
        )
        + [Op("cnot", (0, 2)), Op("h", (3,))]
    )


def test_one_task_per_worker_per_stretch(pooled):
    pooled.apply_ops([Op("h", (2,))])  # local-axis kernel: spawns the pool
    pool = pooled._pool
    assert pool is not None
    before = pool.tasks_dispatched
    pooled.apply_ops(_stretch_ops())
    # One communication-free stretch => one task per worker, NOT
    # chunks x entries (the old dispatch: 4 chunks x 3 bulk records = 12).
    assert pool.tasks_dispatched - before == pooled.workers == 2


def test_mixing_segment_splits_stretches(pooled):
    pooled.apply_ops([Op("h", (2,))])
    pool = pooled._pool
    before = pool.tasks_dispatched
    ops = (
        [Op("rx", (2,), (0.4,))]
        + [Op("h", (1,))]  # non-diagonal shard axis: mixing barrier
        + [Op("ry", (3,), (0.2,))]
    )
    pooled.apply_ops(ops)
    # Two stretches around the barrier => 2 x workers tasks.
    assert pool.tasks_dispatched - before == 2 * pooled.workers


def test_dispatch_gate_is_cost_aware():
    # parallel_min_chunk is the break-even chunk size for a ONE-kernel
    # stretch; the segments' cost tags scale it: a stretch carrying k
    # kernels' worth of work dispatches at chunks k times smaller.
    sv = ShardedStateVector(4, seed=0, n_shards=4, workers=2,
                            parallel_min_chunk=4 * 8)  # 8 kernels break even
    try:
        sv.apply_ops([Op("rx", (2,), (0.1,))])  # 1 kernel: stays serial
        assert sv._pool is None
        heavy = [Op("rx", (q,), (0.1 * i,)) for i in range(8) for q in (2, 3)]
        sv.apply_ops(heavy)  # 16 kernels on size-4 chunks: dispatches
        assert sv._pool is not None
        serial = ShardedStateVector(4, seed=0, n_shards=4)
        serial.apply_ops([Op("rx", (2,), (0.1,))])
        serial.apply_ops(heavy)
        np.testing.assert_allclose(
            serial.statevector(), sv.statevector(), atol=DEEP_ATOL
        )
    finally:
        sv.close()


def test_run_level_dispatch_matches_serial(pooled):
    serial = ShardedStateVector(4, seed=0, n_shards=4)
    spread = [Op("h", (q,)) for q in range(4)]
    serial.apply_ops(spread)
    pooled.apply_ops(spread)
    serial.apply_ops(_stretch_ops())
    pooled.apply_ops(_stretch_ops())
    np.testing.assert_allclose(
        serial.statevector(), pooled.statevector(), atol=DEEP_ATOL
    )


def test_controlled_gates_ride_the_pool(pooled):
    # Shard-axis controls and local targets are "cc" kernel entries now:
    # they join the dispatched run instead of serializing between pool
    # round-trips.
    serial = ShardedStateVector(4, seed=0, n_shards=4)
    ops = [
        Op("h", (0,)), Op("h", (2,)),
        Op("cnot", (0, 2)),            # shard control, local target
        Op("cnot", (2, 3)),            # both local
        Op("toffoli", (0, 1, 3)),      # two shard controls, local target
        Op("crz", (0, 1), (0.4,)),     # diagonal, both on shard axes
    ]
    serial.apply_ops(ops)
    pooled.apply_ops(ops)
    np.testing.assert_allclose(
        serial.statevector(), pooled.statevector(), atol=DEEP_ATOL
    )


def test_pooled_plans_and_wide_windows_match_serial(pooled):
    serial = ShardedStateVector(4, seed=0, n_shards=4)
    spread = [Op("h", (q,)) for q in range(4)]
    lowered = lower_flush(
        _dense_ladder((2, 3)) + _dense_ladder((0, 1)),
        6,
        cost_model=CostModel(plan_min_qubits=0, wide_window_min_qubits=99),
    )
    assert any(isinstance(o, ContractionPlan) for o in lowered)
    serial.apply_ops(spread)
    pooled.apply_ops(spread)
    serial.apply_ops(lowered)
    pooled.apply_ops(lowered)
    np.testing.assert_allclose(
        serial.statevector(), pooled.statevector(), atol=DEEP_ATOL
    )


# ----------------------------------------------------------------------
# property suite: order preservation across modes x ranks
# ----------------------------------------------------------------------
def _random_program(qc, seed):
    q = None
    for r in range(qc.size):
        if qc.rank == r:
            q = qc.alloc_qmem(3)
        qc.barrier()
    rng = np.random.default_rng(seed + qc.rank)
    for q_i in q:
        qc.h(q_i)
    for _ in range(40):
        roll = rng.random()
        a, b = (int(x) for x in rng.choice(3, size=2, replace=False))
        if roll < 0.2:
            qc.cnot(q[a], q[b])
        elif roll < 0.35:
            qc.swap(q[a], q[b])
        elif roll < 0.5:
            qc.crz(q[a], q[b], float(rng.random()))
        elif roll < 0.6:
            qc.cphase(q[a], q[b], float(rng.random()))
        elif roll < 0.7:
            qc.rz(q[a], float(rng.random()))
        elif roll < 0.8:
            qc.ry(q[a], float(rng.random()))
        elif roll < 0.9:
            qc.t(q[a])
        else:
            qc.toffoli(q[a], q[b], q[3 - a - b])
    qc.barrier()
    return list(q)


def _assert_same_up_to_phase(vec_a, vec_b, atol=DEEP_ATOL):
    pivot = int(np.argmax(np.abs(vec_a)))
    phase = vec_b[pivot] / vec_a[pivot]
    assert abs(abs(phase) - 1.0) < atol
    np.testing.assert_allclose(vec_a * phase, vec_b, atol=atol)


@pytest.mark.parametrize("n_ranks", [1, 2, 4])
@pytest.mark.parametrize("seed", [11, 29])
def test_schedule_preserves_program_order_all_modes(n_ranks, seed):
    # Per-qubit program order is an amplitude-observable property: if
    # the compiled schedule reordered any two non-commuting ops on a
    # shared qubit, some amplitude would differ from the eager shared
    # reference. Runs every fusion mode x shared/sharded x rank count.
    worlds = {
        (bk, fu): qmpi_run(n_ranks, _random_program, args=(seed,), seed=5,
                           backend=bk, fusion=fu)
        for bk in ("shared", "sharded")
        for fu in FUSION_MODES
    }
    ref_world = worlds[("shared", "off")]
    order = [q for block in ref_world.results for q in block]
    ref = ref_world.backend.statevector(order)
    for w in worlds.values():
        _assert_same_up_to_phase(ref, w.backend.statevector(order))
