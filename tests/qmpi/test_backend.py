"""Shared backend: rank-0 semantics, ownership, locality enforcement."""

import numpy as np
import pytest

from repro.qmpi import LocalityError, SharedBackend
from repro.sim import SimulationError


def test_alloc_and_ownership():
    be = SharedBackend(seed=0)
    a = be.alloc(0, 2)
    b = be.alloc(1, 1)
    assert [be.owner(q) for q in a] == [0, 0]
    assert be.owner(b[0]) == 1
    assert list(be.owned_by(0)) == list(a)


def test_locality_enforced():
    be = SharedBackend(seed=0)
    (qa,) = be.alloc(0, 1)
    (qb,) = be.alloc(1, 1)
    with pytest.raises(LocalityError):
        be.h(1, qa)
    with pytest.raises(LocalityError):
        be.cnot(0, qa, qb)  # cross-node gate must use QMPI protocols
    with pytest.raises(LocalityError):
        be.measure(1, qa)


def test_locality_can_be_disabled_for_whitebox_tests():
    be = SharedBackend(seed=0, enforce_locality=False)
    (qa,) = be.alloc(0, 1)
    be.h(1, qa)  # no error


def test_ownership_transfer():
    be = SharedBackend(seed=0)
    (q,) = be.alloc(0, 1)
    be.transfer(q, 3)
    assert be.owner(q) == 3
    with pytest.raises(LocalityError):
        be.x(0, q)
    be.x(3, q)
    assert be.measure(3, q) == 1


def test_free_checks_state_and_owner():
    be = SharedBackend(seed=0)
    (q,) = be.alloc(0, 1)
    be.x(0, q)
    with pytest.raises(SimulationError):
        be.free(0, q)  # not |0>
    be.x(0, q)
    with pytest.raises(LocalityError):
        be.free(1, q)
    be.free(0, q)
    assert be.num_qubits == 0


def test_entangle_pair_is_bell():
    be = SharedBackend(seed=0)
    (qa,) = be.alloc(0, 1)
    (qb,) = be.alloc(1, 1)
    be.entangle_pair(qa, qb)
    vec = be.statevector([qa, qb])
    assert np.allclose(vec, [2**-0.5, 0, 0, 2**-0.5])


def test_measure_and_release_removes_ownership():
    be = SharedBackend(seed=0)
    (q,) = be.alloc(2, 1)
    be.measure_and_release(2, q)
    with pytest.raises(SimulationError):
        be.owner(q)


def test_unknown_qubit_raises():
    be = SharedBackend(seed=0)
    with pytest.raises(SimulationError):
        be.h(0, 42)
