"""Shot-batched execution: ShotBits, single-pass evolution, distributions.

The contract under test (ISSUE 6 tentpole): ``qmpi_run(..., shots=N)``
executes the program *once* through the normal segment interpreters and
yields the same measurement distribution as N independent single-shot
runs.
"""

import math
from collections import Counter

import numpy as np
import pytest
from scipy.stats import chi2

from repro.qmpi import ShotBits, ShotDivergenceError, qmpi_run
from repro.sim.shots import branch_mask, fork_outcomes


# ----------------------------------------------------------------------
# ShotBits semantics
# ----------------------------------------------------------------------
class TestShotBits:
    def test_elementwise_integer_arithmetic(self):
        a = ShotBits([0, 1, 0, 1])
        b = ShotBits([0, 0, 1, 1])
        assert (a | b) == ShotBits([0, 1, 1, 1])
        assert (a & b) == ShotBits([0, 0, 0, 1])
        assert (a ^ b) == ShotBits([0, 1, 1, 0])
        # the p2p composition idiom: m |= 2 * m2, then r & 1 / r & 2
        r = a | 2 * b
        assert list(r) == [0, 1, 2, 3]
        assert (r & 1) == a
        assert ((r >> 1) & 1) == b
        # int on the left works too
        assert (1 & r) == a

    def test_scalar_conversion_requires_unanimity(self):
        assert bool(ShotBits([1, 1, 1]))
        assert not bool(ShotBits([0, 0]))
        assert int(ShotBits([1, 1])) == 1
        with pytest.raises(ShotDivergenceError):
            bool(ShotBits([0, 1]))
        with pytest.raises(ShotDivergenceError):
            int(ShotBits([0, 1]))

    def test_container_protocol_and_counts(self):
        b = ShotBits([0, 1, 1, 0, 1])
        assert len(b) == b.shots == 5
        assert b[1] == 1 and list(b) == [0, 1, 1, 0, 1]
        assert b.counts() == Counter({1: 3, 0: 2})
        with pytest.raises(TypeError):
            hash(b)

    def test_values_are_read_only(self):
        b = ShotBits([0, 1])
        with pytest.raises(ValueError):
            b.values[0] = 1


# ----------------------------------------------------------------------
# fork/mask helpers
# ----------------------------------------------------------------------
class TestForkHelpers:
    def test_deterministic_outcomes_never_fork(self):
        rng = np.random.default_rng(0)
        shot_of = np.zeros(16, dtype=np.int64)
        bits, new_shot_of, spec = fork_outcomes(np.array([1.0]), shot_of, rng)
        assert list(bits) == [1] * 16
        assert spec == [(0, 1, 1.0)]
        assert np.all(new_shot_of == 0)

    def test_fork_splits_and_renormalizes(self):
        rng = np.random.default_rng(1)
        shot_of = np.zeros(1000, dtype=np.int64)
        bits, new_shot_of, spec = fork_outcomes(np.array([0.5]), shot_of, rng)
        assert {o for (_, o, _) in spec} == {0, 1}
        for _, _, scale in spec:
            assert scale == pytest.approx(math.sqrt(2.0))
        for s in range(1000):
            branch = new_shot_of[s]
            assert spec[branch][1] == bits[s]

    def test_branch_mask_unanimity(self):
        shot_of = np.array([0, 0, 1, 1])
        mask = branch_mask(ShotBits([1, 1, 0, 0]), shot_of, 2)
        assert list(mask) == [True, False]
        # nonzero (not just 1) counts as true: the `r & 2` idiom
        mask = branch_mask(ShotBits([2, 2, 0, 0]), shot_of, 2)
        assert list(mask) == [True, False]
        with pytest.raises(ShotDivergenceError):
            branch_mask(ShotBits([1, 0, 0, 0]), shot_of, 2)
        # scalars broadcast (None is plain false)
        assert list(branch_mask(1, shot_of, 2)) == [True, True]
        assert list(branch_mask(None, shot_of, 2)) == [False, False]


# ----------------------------------------------------------------------
# single-pass evolution (the acceptance-criterion white-box check)
# ----------------------------------------------------------------------
def _ghz(qc, n):
    q = qc.alloc_qmem(n)
    qc.h(q[0])
    for i in range(n - 1):
        qc.cnot(q[i], q[i + 1])
    return [qc.measure(x) for x in q]


def _chi2_uniform_pair(counts, total):
    """Chi-square statistic of a 50/50 split over two observed keys."""
    exp = total / 2.0
    return sum((counts.get(k, 0) - exp) ** 2 / exp for k in ("0" * 16, "1" * 16))


def test_ghz16_shots_runs_segments_once_and_matches_distribution():
    shots = 4096
    with qmpi_run(1, _ghz, args=(16,), seed=11, shots=shots) as w:
        batched = w.backend._sv.segments_executed
        counts = w.counts
    w1 = qmpi_run(1, _ghz, args=(16,), seed=11)
    single = w1.backend._sv.segments_executed
    # state evolution ran exactly once: same segment count as one shot
    assert batched == single
    assert set(counts) <= {"0" * 16, "1" * 16}
    assert sum(counts.values()) == shots
    # 50/50 at p=0.001 (df=1)
    assert _chi2_uniform_pair(counts, shots) < chi2.ppf(0.999, df=1)


def test_ghz_shots_matches_looped_single_shot_distribution():
    shots = 600
    w = qmpi_run(1, _ghz, args=(3,), seed=5, shots=shots)
    batched = w.counts
    w.close()
    looped = Counter()
    for s in range(shots):
        w1 = qmpi_run(1, _ghz, args=(3,), seed=10_000 + s)
        looped["".join(map(str, w1.results[0]))] += 1
    assert set(batched) == set(looped) == {"000", "111"}
    # two binomial samples of the same p: difference bounded by ~4 sigma
    p_b = batched["111"] / shots
    p_l = looped["111"] / shots
    assert abs(p_b - p_l) < 4.0 * math.sqrt(0.5 / shots)


# ----------------------------------------------------------------------
# protocols under shots (1 / 2 / 4 ranks)
# ----------------------------------------------------------------------
def _teleport(qc, theta):
    if qc.rank == 0:
        q = qc.alloc_qmem(1)
        qc.ry(q[0], theta)
        qc.send_move(q, 1)
        return None
    if qc.rank == 1:
        t = qc.alloc_qmem(1)
        qc.recv_move(t, 0)
        return qc.measure(t[0])
    return None


@pytest.mark.parametrize("n_ranks", [2, 4])
def test_teleport_shots_distribution(n_ranks):
    theta, shots = 1.1, 2048
    w = qmpi_run(n_ranks, _teleport, args=(theta,), seed=3, shots=shots)
    counts = w.counts
    w.close()
    # only the user measurement is logged — protocol parity bits
    # (measure_and_release) must not leak into the histogram
    assert all(len(k) == 1 for k in counts)
    p = math.sin(theta / 2) ** 2
    sigma = math.sqrt(p * (1 - p) / shots)
    assert abs(counts.get("1", 0) / shots - p) < 5 * sigma


def test_fanout_copies_agree_per_shot():
    def prog(qc):
        if qc.rank == 0:
            q = qc.alloc_qmem(1)
            qc.h(q[0])
            qc.send(q, 1)
            qc.barrier()
            return qc.measure(q[0])
        t = qc.alloc_qmem(1)
        qc.recv(t, 0)
        m = qc.measure(t[0])
        qc.barrier()
        return m

    w = qmpi_run(2, prog, seed=9, shots=512)
    m0, m1 = w.results
    assert isinstance(m0, ShotBits) and m0 == m1
    assert set(w.counts) <= {"00", "11"}
    w.close()


def test_cat_bcast_shots_four_ranks():
    def prog(qc):
        q = qc.alloc_qmem(1)
        if qc.rank == 0:
            qc.x(q[0])
        qc.bcast(q, root=0, algorithm="cat")
        return qc.measure(q[0])

    w = qmpi_run(4, prog, seed=2, shots=128)
    assert w.counts == Counter({"1111": 128})
    w.close()


def test_shared_and_sharded_shots_agree_bit_for_bit():
    def prog(qc):
        q = qc.alloc_qmem(3)
        qc.h(q[0])
        qc.cnot(q[0], q[1])
        m0 = qc.measure(q[0])
        qc.h(q[2])
        m2 = qc.measure(q[2])
        return [m0, m2]

    a = qmpi_run(1, prog, seed=13, shots=256, backend="shared")
    b = qmpi_run(1, prog, seed=13, shots=256, backend="sharded", n_shards=4)
    assert a.results[0][0] == b.results[0][0]
    assert a.results[0][1] == b.results[0][1]
    assert a.counts == b.counts
    a.close()
    b.close()


def test_mid_circuit_fork_conditional_fixup():
    # measure |+>, then undo the collapse with a conditioned X: the
    # second measurement must equal the first deterministically per shot
    def prog(qc):
        q = qc.alloc_qmem(2)
        qc.h(q[0])
        qc.cnot(q[0], q[1])
        m = qc.measure(q[0])
        qc.backend.apply_pauli_if(qc.rank, m, "X", q[1])
        return [m, qc.measure(q[1])]

    w = qmpi_run(1, prog, seed=21, shots=300)
    m, m1 = w.results[0]
    assert m.counts()[1] > 0 and m.counts()[0] > 0  # genuinely forked
    assert m1 == ShotBits([0] * 300)  # fixup undid the correlation
    w.close()


def test_divergent_branch_raises_shot_divergence():
    def prog(qc):
        q = qc.alloc_qmem(1)
        qc.h(q[0])
        m = qc.measure(q[0])
        if m:  # program-level branch on divergent data
            qc.x(q[0])
        return m

    with pytest.raises(Exception) as exc_info:
        qmpi_run(1, prog, seed=1, shots=64)
    assert "ShotDivergence" in repr(exc_info.value) or isinstance(
        exc_info.value, ShotDivergenceError
    )


# ----------------------------------------------------------------------
# world object / construction surface (ISSUE 6 satellites)
# ----------------------------------------------------------------------
def test_world_indexing_iteration_and_context_manager():
    with qmpi_run(2, _teleport, args=(0.0,), seed=0) as w:
        assert len(w) == 2
        assert w[1] == w.results[1]
        assert list(w) == w.results
        with pytest.raises(RuntimeError, match="shots"):
            w.counts
    # close() released the engine resources; double close is fine
    w.close()


def test_backend_opts_deprecated_but_working():
    with pytest.deprecated_call():
        w = qmpi_run(1, _ghz, args=(2,), seed=0, backend="sharded",
                     backend_opts={"n_shards": 2})
    assert w.backend._sv.n_shards == 2
    w.close()


def test_backend_plain_keyword_construction():
    w = qmpi_run(1, _ghz, args=(2,), seed=0, backend="sharded", n_shards=8)
    assert w.backend._sv.n_shards == 8
    w.close()
