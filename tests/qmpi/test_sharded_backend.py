"""Sharded backend: registry, ownership/locality parity, protocol runs."""

import numpy as np
import pytest

from repro.mpi import RankFailure
from repro.qmpi import (
    BACKENDS,
    LocalityError,
    QuantumBackend,
    SharedBackend,
    ShardedBackend,
    make_backend,
    qmpi_run,
    register_backend,
)
from repro.sim import ShardedStateVector, SimulationError


# ----------------------------------------------------------------------
# registry / factory
# ----------------------------------------------------------------------
def test_registry_names():
    assert BACKENDS["shared"] is SharedBackend
    assert BACKENDS["sharded"] is ShardedBackend


def test_make_backend_by_name_class_and_instance():
    assert isinstance(make_backend("shared"), SharedBackend)
    assert isinstance(make_backend(ShardedBackend, n_shards=2), ShardedBackend)
    inst = SharedBackend(seed=0)
    assert make_backend(inst) is inst


def test_make_backend_shard_count_selection():
    assert make_backend("sharded:8").n_shards == 8
    # plain "sharded": chunk = rank, rounded to the next power of two
    for n_ranks, want in [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8)]:
        assert make_backend("sharded", n_ranks=n_ranks).n_shards == want
        # class specs get the same chunk = rank sizing as the name spec
        assert make_backend(ShardedBackend, n_ranks=n_ranks).n_shards == want
    # explicit opts beat the n_ranks hint
    assert make_backend("sharded", n_ranks=4, n_shards=16).n_shards == 16
    assert make_backend(ShardedBackend, n_ranks=4, n_shards=16).n_shards == 16


def test_make_backend_errors():
    with pytest.raises(ValueError):
        make_backend("no-such-backend")
    with pytest.raises(ValueError):
        make_backend("shared:4")


def test_register_backend_roundtrip():
    class Custom(SharedBackend):
        pass

    register_backend("custom-test", Custom)
    try:
        assert isinstance(make_backend("custom-test"), Custom)
    finally:
        del BACKENDS["custom-test"]


# ----------------------------------------------------------------------
# ownership / locality parity with SharedBackend
# ----------------------------------------------------------------------
def test_sharded_backend_is_quantum_backend():
    be = ShardedBackend(seed=0, n_shards=2)
    assert isinstance(be, QuantumBackend)
    assert isinstance(be.raw(), ShardedStateVector)


def test_alloc_ownership_and_locality():
    be = ShardedBackend(seed=0, n_shards=4)
    a = be.alloc(0, 2)
    (qb,) = be.alloc(1, 1)
    assert [be.owner(q) for q in a] == [0, 0]
    assert be.owner(qb) == 1
    assert list(be.owned_by(0)) == list(a)
    with pytest.raises(LocalityError):
        be.h(1, a[0])
    with pytest.raises(LocalityError):
        be.cnot(0, a[0], qb)
    with pytest.raises(LocalityError):
        be.measure(1, a[0])


def test_transfer_and_free():
    be = ShardedBackend(seed=0, n_shards=2)
    (q,) = be.alloc(0, 1)
    be.transfer(q, 3)
    with pytest.raises(LocalityError):
        be.x(0, q)
    be.x(3, q)
    with pytest.raises(SimulationError):
        be.free(3, q)  # not |0>
    be.x(3, q)
    be.free(3, q)
    assert be.num_qubits == 0


def test_entangle_pair_is_bell():
    be = ShardedBackend(seed=0, n_shards=4)
    (qa,) = be.alloc(0, 1)
    (qb,) = be.alloc(1, 1)
    be.entangle_pair(qa, qb)
    vec = be.statevector([qa, qb])
    np.testing.assert_allclose(vec, [2**-0.5, 0, 0, 2**-0.5], atol=1e-12)


def test_measure_and_release_removes_ownership():
    be = ShardedBackend(seed=0, n_shards=2)
    (q,) = be.alloc(2, 1)
    be.measure_and_release(2, q)
    with pytest.raises(SimulationError):
        be.owner(q)


# ----------------------------------------------------------------------
# protocols on the sharded backend
# ----------------------------------------------------------------------
def test_qmpi_run_sharded_backend_instance_exposed():
    def prog(qc):
        return type(qc.backend).__name__

    w = qmpi_run(2, prog, seed=0, backend="sharded")
    assert w.results == ["ShardedBackend", "ShardedBackend"]
    assert w.backend.n_shards == 2


def test_qmpi_run_backend_opts_passthrough():
    w = qmpi_run(
        2,
        lambda qc: qc.backend.n_shards,
        seed=0,
        backend="sharded",
        backend_opts={"n_shards": 8},
    )
    assert w.results == [8, 8]


def test_locality_violation_on_sharded_backend():
    def prog(qc):
        q = qc.alloc_qmem(1)
        ids = qc.comm.allgather(q[0])
        if qc.rank == 0:
            qc.h(ids[1])
        return True

    with pytest.raises(RankFailure):
        qmpi_run(2, prog, seed=0, backend="sharded")


def test_epr_example_on_sharded_backend():
    def prog(qc):
        qubit = qc.alloc_qmem(1)
        qc.prepare_epr(qubit[0], 1 - qc.rank, 0)
        return qc.measure(qubit[0])

    w = qmpi_run(2, prog, seed=0, backend="sharded")
    assert w.results[0] == w.results[1]
    assert w.ledger.epr_pairs == 1
