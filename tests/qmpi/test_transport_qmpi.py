"""QMPI over the mp transport: bit-identical equivalence with inproc.

The acceptance bar of the transport subsystem: at equal seed,
``transport="mp"`` must produce the *same per-shot outcomes* as
``transport="inproc"`` — the parent-held backend consumes the identical
RNG stream because the protocols below are fully dependency-sequenced
(teleport, fanout send/recv, cat-state broadcast), so their global
measurement order is deterministic on both transports.

All programs are module-level (the mp transport pickles them into
spawned rank processes) and allocate in rank order so qubit ids are
deterministic across runs.
"""

import numpy as np
import pytest

from repro.mpi import RankFailure
from repro.qmpi import EprBufferFull, LocalityError, qmpi_run, qmpi_submit
from repro.qmpi.jobs import JobRunner

BACKEND_SPECS = ["shared", "sharded"]
RANK_COUNTS = [2, 4]


def _ordered_alloc(qc, n=1):
    """Allocate ``n`` qubits per rank, in rank order (deterministic ids)."""
    out = None
    for r in range(qc.size):
        if qc.rank == r:
            out = qc.alloc_qmem(n)
        qc.barrier()
    return out


# ----------------------------------------------------------------------
# programs (module-level: pickled into rank processes)
# ----------------------------------------------------------------------
def teleport_prog(qc, theta):
    """Teleport a rotated qubit from rank 0 to the last rank; measure there."""
    (q,) = _ordered_alloc(qc, 1)
    last = qc.size - 1
    if qc.rank == 0:
        qc.h(q)
        qc.rz(q, theta)
        qc.send_move([q], dest=last, tag=3)
        return None
    if qc.rank == last:
        (dst,) = qc.recv_move([q], source=0, tag=3)
        return qc.measure(dst)
    qc.free_qmem([q])
    return None


def fanout_prog(qc):
    """Entangled-copy fanout from rank 0 to every other rank, in order."""
    (q,) = _ordered_alloc(qc, 1)
    if qc.rank == 0:
        qc.h(q)
        for dest in range(1, qc.size):
            qc.send([q], dest=dest, tag=5)
    else:
        qc.recv([q], source=0, tag=5)
    # All copy-protocol measurements precede the readout: without the
    # barrier an early receiver's measure races rank 0's later copies
    # and permutes the backend's RNG stream.
    qc.barrier()
    return qc.measure(q)


def cat_bcast_prog(qc):
    """Cat-state broadcast (§7.1 optimized construction) + measure."""
    (q,) = _ordered_alloc(qc, 1)
    if qc.rank == 0:
        qc.h(q)
    qc.bcast([q], root=0, algorithm="cat")
    return qc.measure(q)


def locality_prog(qc):
    regs = _ordered_alloc(qc, 1)
    if qc.rank == 1:
        qc.h(regs[0] - 1)  # rank 0's qubit: must be rejected
        qc.flush_ops()
    return True


def buffer_full_prog(qc):
    (a, b) = _ordered_alloc(qc, 2)
    peer = 1 - qc.rank
    if qc.rank == 0:
        qc.iprepare_epr(a, dest=peer, tag=1)
        qc.iprepare_epr(b, dest=peer, tag=2)  # second half: S=1 exceeded
    else:
        qc.prepare_epr(a, dest=peer, tag=1)
    return True


def failing_prog(qc):
    (q,) = _ordered_alloc(qc, 1)
    if qc.rank == 1:
        raise ValueError("deliberate failure on rank 1")
    qc.recv_move(1, source=1, tag=0)  # blocks until the abort wakes it
    return True


PROGRAMS = {
    "teleport": (teleport_prog, (0.7,)),
    "fanout": (fanout_prog, ()),
    "cat-bcast": (cat_bcast_prog, ()),
}


# ----------------------------------------------------------------------
# bit-identical equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKEND_SPECS)
@pytest.mark.parametrize("n_ranks", RANK_COUNTS)
@pytest.mark.parametrize("kernel", sorted(PROGRAMS))
def test_mp_matches_inproc_per_shot(kernel, n_ranks, backend):
    prog, args = PROGRAMS[kernel]
    outcome = {}
    for transport in ("inproc", "mp"):
        with qmpi_run(
            n_ranks, prog, args=args, seed=42, shots=64,
            backend=backend, transport=transport,
        ) as world:
            outcome[transport] = (list(world), world.counts)
    assert outcome["mp"][0] == outcome["inproc"][0]
    assert outcome["mp"][1] == outcome["inproc"][1]


def test_mp_matches_inproc_single_trajectory_state():
    """Without shots: same RNG draws, same collapses, same final state."""
    vecs = {}
    for transport in ("inproc", "mp"):
        world = qmpi_run(
            2, teleport_prog, args=(0.3,), seed=7, transport=transport
        )
        vecs[transport] = (world.results, world.backend.statevector())
    assert vecs["mp"][0] == vecs["inproc"][0]
    np.testing.assert_allclose(vecs["mp"][1], vecs["inproc"][1], atol=1e-12)


# ----------------------------------------------------------------------
# resource accounting across the process boundary
# ----------------------------------------------------------------------
def test_mp_ledger_merge_totals_and_rows():
    world = qmpi_run(2, teleport_prog, args=(0.5,), seed=0, transport="mp")
    ledger = world.ledger
    # One teleport: one EPR pair (recorded parent-side), two fixup bits
    # (recorded rank-side, merged at teardown).
    assert ledger.epr_pairs == 1
    assert ledger.classical_bits == 2
    assert ledger.row("send_move").calls >= 1
    assert ledger.row("recv_move").calls >= 1
    assert ledger.row("recv_move").classical_bits == 2


def test_mp_ledger_matches_inproc():
    ledgers = {}
    for transport in ("inproc", "mp"):
        world = qmpi_run(4, cat_bcast_prog, seed=1, transport=transport)
        ledgers[transport] = world.ledger
    li, lm = ledgers["inproc"], ledgers["mp"]
    assert lm.epr_pairs == li.epr_pairs
    assert lm.classical_bits == li.classical_bits
    assert lm.classical_messages == li.classical_messages


# ----------------------------------------------------------------------
# failure surfacing through the service plane
# ----------------------------------------------------------------------
def test_mp_locality_error_propagates():
    with pytest.raises(RankFailure) as ei:
        qmpi_run(2, locality_prog, transport="mp", timeout=30)
    assert isinstance(ei.value.failures[1], LocalityError)


def test_mp_epr_buffer_full_propagates():
    with pytest.raises(RankFailure) as ei:
        qmpi_run(2, buffer_full_prog, s_limit=1, transport="mp", timeout=30)
    assert isinstance(ei.value.failures[0], EprBufferFull)


def test_mp_abort_unblocks_epr_wait():
    with pytest.raises(RankFailure) as ei:
        qmpi_run(2, failing_prog, transport="mp", timeout=30)
    assert set(ei.value.failures) == {1}
    assert isinstance(ei.value.failures[1], ValueError)


# ----------------------------------------------------------------------
# job runner integration
# ----------------------------------------------------------------------
def test_qmpi_submit_mp_transport():
    with JobRunner(max_workers=2, base_seed=3) as runner:
        futs = [
            qmpi_submit(
                fanout_prog, n_ranks=2, shots=32,
                transport="mp", runner=runner,
            )
            for _ in range(2)
        ]
        for fut in futs:
            counts = fut.counts(timeout=60)
            assert sum(counts.values()) == 32
            # Fanout of H|0>: both ranks always agree.
            assert set(counts) <= {"00", "11"}


def test_submit_seed_determinism_across_transports():
    histograms = {}
    for transport in ("inproc", "mp"):
        with JobRunner(max_workers=1, base_seed=11) as runner:
            fut = qmpi_submit(
                cat_bcast_prog, n_ranks=2, shots=48,
                transport=transport, runner=runner,
            )
            histograms[transport] = fut.counts(timeout=60)
    assert histograms["mp"] == histograms["inproc"]
