"""Diagonal phase-vector batching: DiagBatch records and their dispatch.

Four layers:

1. unit tests of ``DiagBatch.from_ops`` (table merging, reversed pair
   keys, ``terms()`` round-trip) and ``coalesce_diagonals`` (run
   splitting, singleton passthrough);
2. stream-level tests proving flushes emit ``DiagBatch`` records in
   ``fusion="auto"`` and never in ``"nodiag"``/``"off"``, with
   non-diagonal ops splitting batches;
3. flush-boundary tests (measurement / p2p mid-batch);
4. amplitude-exact equivalence of diagonal-heavy programs across
   shared/sharded x auto/nodiag/off x 1/2/4 ranks, including the QFT.
"""

import math

import numpy as np
import pytest

from repro.apps.qft import qft
from repro.qmpi import (
    DiagBatch,
    Op,
    OpStream,
    SharedBackend,
    qmpi_run,
)
from repro.sim import StateVector, coalesce_diagonals
from repro.sim import gates as G
from tests._precision import DEEP_ATOL, STATE_ATOL


# ----------------------------------------------------------------------
# DiagBatch unit tests
# ----------------------------------------------------------------------
def test_from_ops_merges_repeated_operands():
    ops = [
        Op("rz", (3,), (0.2,)),
        Op("rz", (3,), (0.5,)),
        Op("crz", (1, 2), (0.3,)),
        Op("crz", (1, 2), (0.4,)),
    ]
    batch = DiagBatch.from_ops(ops)
    assert set(batch.phases1) == {3}
    assert set(batch.phases2) == {(1, 2)}
    assert batch.n_ops == 2
    np.testing.assert_allclose(
        batch.phases1[3], np.diagonal(G.rz(0.7)), atol=STATE_ATOL
    )
    np.testing.assert_allclose(
        batch.phases2[(1, 2)],
        np.diagonal(G.controlled(G.rz(0.7))),
        atol=STATE_ATOL,
    )


def test_from_ops_permutes_reversed_pair_key():
    # cphase(2, 5) then cphase(5, 2): one table, in (2, 5) orientation.
    batch = DiagBatch.from_ops(
        [Op("cphase", (2, 5), (0.3,)), Op("cphase", (5, 2), (0.8,))]
    )
    assert set(batch.phases2) == {(2, 5)}
    # cphase is symmetric in control/target, so the tables just multiply.
    expected = np.diagonal(G.controlled(G.phase(0.3)) @ G.controlled(G.phase(0.8)))
    np.testing.assert_allclose(batch.phases2[(2, 5)], expected, atol=STATE_ATOL)


def test_from_ops_permutes_asymmetric_pair():
    # crz is NOT symmetric: crz(a, b) has the phase on b, conditioned on a.
    batch = DiagBatch.from_ops(
        [Op("crz", (0, 1), (0.4,)), Op("crz", (1, 0), (1.1,))]
    )
    assert set(batch.phases2) == {(0, 1)}
    fwd = np.diag(np.diagonal(G.controlled(G.rz(0.4))))
    # reversed op, expressed on (qubit0, qubit1) axes via the swap matrix
    rev = G.SWAP @ G.controlled(G.rz(1.1)) @ G.SWAP
    np.testing.assert_allclose(
        batch.phases2[(0, 1)], np.diagonal(fwd @ rev), atol=STATE_ATOL
    )


def test_from_ops_rejects_non_diagonal():
    with pytest.raises(ValueError):
        DiagBatch.from_ops([Op("h", (0,))])


def test_terms_roundtrip_matches_sequential_application():
    ops = [
        Op("t", (0,)),
        Op("cz", (0, 1)),
        Op("rz", (2,), (0.9,)),
        Op("cphase", (1, 2), (0.5,)),
    ]
    batch = DiagBatch.from_ops(ops)
    assert sorted(batch.qubits) == [0, 1, 2]

    ref = StateVector(3, seed=0)
    for q in range(3):
        ref.h(q)  # spread amplitude so phases are observable
    got = ref.copy()
    for op in ops:
        if op.controls:
            ref.apply_controlled(op.target_matrix(), list(op.controls), list(op.targets))
        else:
            ref.apply(op.target_matrix(), *op.targets)
    for qs, table in batch.terms():
        got.apply(np.diag(table), *qs)
    np.testing.assert_allclose(ref.statevector(), got.statevector(), atol=STATE_ATOL)


def test_coalesce_splits_on_non_diagonal_and_keeps_singletons():
    ops = [
        Op("z", (0,)),
        Op("cz", (0, 1)),
        Op("h", (0,)),  # splits
        Op("t", (1,)),  # lone diagonal: stays a plain op
        Op("cnot", (0, 1)),  # splits
        Op("rz", (0,), (0.1,)),
        Op("rz", (1,), (0.2,)),
    ]
    out = coalesce_diagonals(ops)
    kinds = [type(o).__name__ for o in out]
    assert kinds == ["DiagBatch", "Op", "Op", "Op", "DiagBatch"]
    assert out[1].gate == "h" and out[2].gate == "t" and out[3].gate == "cnot"


def test_coalesce_leaves_wide_diagonal_unitaries_alone():
    wide = Op("unitary", (0, 1, 2), u=np.diag(np.exp(1j * np.arange(8))))
    assert wide.is_diagonal
    out = coalesce_diagonals([Op("z", (0,)), Op("t", (1,)), wide])
    assert [type(o).__name__ for o in out] == ["DiagBatch", "Op"]
    assert out[1] is wide


def test_tracked_engine_tallies_diag_batches():
    from repro.sim import TrackedStateVector

    sv = TrackedStateVector(3, seed=0)
    batch = DiagBatch.from_ops(
        [Op("rz", (0,), (0.2,)), Op("rz", (0,), (0.3,)), Op("cz", (1, 2))]
    )
    sv.apply_ops([Op("h", (0,)), batch])
    # merged rz pair = one u1 table, cz = one u2 table, plus the named h
    assert sv.counts.gates["u1"] == 1
    assert sv.counts.gates["u2"] == 1
    assert sv.counts.gates["h"] == 1
    assert sv.counts.total_gates() == 3


# ----------------------------------------------------------------------
# stream dispatch: what the backend actually receives
# ----------------------------------------------------------------------
class _SpyBackend(SharedBackend):
    """Records every op dispatched through apply_ops."""

    def __init__(self):
        super().__init__(seed=0)
        self.seen = []
        # Force the legacy lower-then-apply_ops flush path so the spy
        # sees the lowered records (apply_flush takes the raw buffer).
        self.apply_flush = None

    def apply_ops(self, rank, ops):
        ops = tuple(ops)
        self.seen.extend(ops)
        super().apply_ops(rank, ops)


def _diag_heavy(stream, q):
    stream.append(Op("rz", (q[0],), (0.3,)))
    stream.append(Op("cphase", (q[0], q[1]), (0.7,)))
    stream.append(Op("t", (q[1],)))
    stream.append(Op("h", (q[2],)))  # splits the run
    stream.append(Op("cz", (q[1], q[2])))
    stream.append(Op("crz", (q[2], q[0]), (0.4,)))
    stream.flush()


def test_stream_flush_emits_diag_batches():
    be = _SpyBackend()
    q = list(be.alloc(0, 3))
    st = OpStream(be, 0, fusion="auto")
    _diag_heavy(st, q)
    kinds = [type(o).__name__ for o in be.seen]
    assert kinds == ["DiagBatch", "Op", "DiagBatch"]
    assert st.diag_batching


@pytest.mark.parametrize("fusion", ["nodiag", "off"])
def test_nodiag_and_off_bypass_diag_batching(fusion):
    be = _SpyBackend()
    q = list(be.alloc(0, 3))
    st = OpStream(be, 0, fusion=fusion)
    _diag_heavy(st, q)
    assert not any(isinstance(o, DiagBatch) for o in be.seen)
    assert not st.diag_batching
    # same physics as the batched path
    ref = _SpyBackend()
    qr = list(ref.alloc(0, 3))
    _diag_heavy(OpStream(ref, 0, fusion="auto"), qr)
    np.testing.assert_allclose(
        be.statevector(q), ref.statevector(qr), atol=STATE_ATOL
    )


# ----------------------------------------------------------------------
# flush boundaries mid-batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["shared", "sharded"])
def test_measurement_mid_diag_run_flushes(backend):
    def prog(qc):
        q = qc.alloc_qmem(2)
        qc.x(q[0])
        qc.z(q[0])  # buffered diagonal run on a |1> qubit
        qc.cz(q[0], q[1])
        bit = qc.measure(q[0])  # boundary: the batch must have applied
        assert qc.stream.pending == 0
        return bit

    w = qmpi_run(1, prog, seed=0, backend=backend)
    assert w.results == [1]


@pytest.mark.parametrize("backend", ["shared", "sharded"])
def test_p2p_mid_diag_run_flushes(backend):
    # Rank 0 buffers diagonal phases, then sends: the receiver must see
    # the phased state, not the pre-batch one.
    def prog(qc):
        q = qc.alloc_qmem(1)
        if qc.rank == 0:
            qc.h(q[0])
            qc.rz(q[0], math.pi / 2)  # buffered diagonal
            qc.send_move(q, 1)  # move: the state teleports intact
            return None
        t = qc.alloc_qmem(1)
        qc.recv_move(t, 0)
        # undo the phases and interfere back: H Rz(-pi/2) Rz(pi/2) H = I
        qc.rz(t[0], -math.pi / 2)
        qc.h(t[0])
        return qc.measure(t[0])

    w = qmpi_run(2, prog, seed=0, backend=backend)
    assert w.results[1] == 0


# ----------------------------------------------------------------------
# equivalence: diagonal-heavy programs across backends, modes and ranks
# ----------------------------------------------------------------------
def _ordered_alloc(qc, n=1):
    out = None
    for r in range(qc.size):
        if qc.rank == r:
            out = qc.alloc_qmem(n)
        qc.barrier()
    return out


def _diag_heavy_program(qc, seed):
    q = _ordered_alloc(qc, 3)
    rng = np.random.default_rng(seed + qc.rank)
    for q_i in q:
        qc.h(q_i)
    for _ in range(25):
        roll = rng.random()
        a, b = rng.choice(3, size=2, replace=False)
        if roll < 0.5:
            qc.cphase(q[a], q[b], float(rng.random()))
        elif roll < 0.7:
            qc.crz(q[a], q[b], float(rng.random()))
        elif roll < 0.8:
            qc.rz(q[a], float(rng.random()))
        elif roll < 0.9:
            qc.t(q[a])
        else:
            qc.h(q[a])  # occasional splitter
    qc.barrier()
    return list(q)


def _assert_same_up_to_phase(vec_a, vec_b, atol=DEEP_ATOL):
    pivot = int(np.argmax(np.abs(vec_a)))
    phase = vec_b[pivot] / vec_a[pivot]
    assert abs(abs(phase) - 1.0) < atol
    np.testing.assert_allclose(vec_a * phase, vec_b, atol=atol)


@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_diag_heavy_equivalence_across_modes(n_ranks):
    worlds = {
        (bk, fu): qmpi_run(n_ranks, _diag_heavy_program, args=(7,), seed=1,
                           backend=bk, fusion=fu)
        for bk in ("shared", "sharded")
        for fu in ("auto", "nodiag", "off")
    }
    ref_world = worlds[("shared", "off")]
    order = [q for block in ref_world.results for q in block]
    ref = ref_world.backend.statevector(order)
    for key, w in worlds.items():
        _assert_same_up_to_phase(ref, w.backend.statevector(order))


@pytest.mark.parametrize("backend", ["shared", "sharded"])
def test_qft_batched_matches_unbatched(backend):
    def prog(qc):
        q = qc.alloc_qmem(5)
        qc.x(q[1])
        qc.x(q[4])
        qft(qc, q)
        return list(q)

    batched = qmpi_run(1, prog, seed=0, backend=backend, fusion="auto")
    plain = qmpi_run(1, prog, seed=0, backend=backend, fusion="off")
    order = plain.results[0]
    np.testing.assert_allclose(
        batched.backend.statevector(order),
        plain.backend.statevector(order),
        rtol=0,
        atol=DEEP_ATOL,
    )


# ----------------------------------------------------------------------
# the doubling/DP materializer vs a naive pair-table reference
# ----------------------------------------------------------------------
def _naive_phase(singles, pairs, n_axes, ci=0):
    """Reference materializer: one full-size pass per table, no doubling."""
    out = np.ones((2,) * n_axes, dtype=np.complex128) if n_axes else np.ones(())
    idx = np.indices((2,) * n_axes) if n_axes else None

    def bitval(b):
        if b >= n_axes:
            return (ci >> (b - n_axes)) & 1
        return idx[n_axes - 1 - b]

    for b, t in singles:
        out = out * np.asarray(t)[bitval(b)]
    for (ba, bb), t in pairs:
        out = out * np.asarray(t).reshape(2, 2)[bitval(ba), bitval(bb)]
    return out


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n_axes", [1, 3, 6])
def test_dp_materializer_matches_naive_reference(seed, n_axes):
    from repro.sim.diag import chunk_phase

    rng = np.random.default_rng(seed)
    n_bits = n_axes + 2  # two shard-axis bits on top
    singles = [
        (int(b), np.exp(1j * rng.normal(size=2)))
        for b in rng.choice(n_bits, size=min(3, n_bits), replace=False)
    ]
    pairs = []
    for _ in range(4):
        a, b = (int(x) for x in rng.choice(n_bits, size=2, replace=False))
        pairs.append(((a, b), np.exp(1j * rng.normal(size=4))))
    for ci in range(4):
        got = chunk_phase(singles, pairs, n_axes, ci)
        want = _naive_phase(singles, pairs, n_axes, ci)
        np.testing.assert_allclose(
            np.broadcast_to(got, (2,) * n_axes), want, atol=STATE_ATOL
        )


def test_dp_materializer_all_distinct_pair_ladder():
    # The qft_ladder shape: every pair distinct, forced through the
    # wide-batch angle-accumulation path (>= 24 live parts).
    from repro.sim.diag import chunk_phase

    n_axes = 8
    rng = np.random.default_rng(7)
    pairs = [
        ((a, b), np.exp(1j * rng.normal(size=4)))
        for a in range(n_axes)
        for b in range(a + 1, n_axes)
    ]
    assert len(pairs) >= 24
    got = chunk_phase([], pairs, n_axes)
    want = _naive_phase([], pairs, n_axes)
    np.testing.assert_allclose(np.broadcast_to(got, (2,) * n_axes), want, atol=STATE_ATOL)


def test_dp_materializer_non_unit_tables_fall_back_exactly():
    # Non-unit-modulus entries (a non-unitary explicit diagonal) must
    # not ride the angle accumulator.
    from repro.sim.diag import chunk_phase

    rng = np.random.default_rng(3)
    n_axes = 8  # 28 unit pairs: the angle path runs, with one deferral
    singles = [(0, np.array([1.0, 0.5]))]  # non-unit
    pairs = [
        ((a, b), np.exp(1j * rng.normal(size=4)))
        for a in range(n_axes)
        for b in range(a + 1, n_axes)
    ]
    assert len(pairs) + len(singles) >= 24
    got = chunk_phase(singles, pairs, n_axes)
    want = _naive_phase(singles, pairs, n_axes)
    np.testing.assert_allclose(np.broadcast_to(got, (2,) * n_axes), want, atol=STATE_ATOL)
